//! # agg-apps
//!
//! This crate carries no library code of its own; it hosts the repository's
//! runnable examples (`examples/` at the workspace root) and the cross-crate
//! integration tests (`tests/` at the workspace root), wiring them to every
//! crate of the AggregaThor reproduction.
//!
//! Run an example with, for instance:
//!
//! ```text
//! cargo run --release -p agg-apps --example quickstart
//! ```
