//! Learning-rate schedules: the `--learning-rate` choices of the original
//! runner (`fixed`, `polynomial`, `exponential`).

use serde::{Deserialize, Serialize};

/// A learning-rate schedule evaluated per model-update step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LearningRate {
    /// Constant learning rate (the paper's evaluation uses `fixed 1e-3`).
    Fixed {
        /// The constant rate.
        rate: f32,
    },
    /// Polynomial decay from `initial` to `end` over `decay_steps`, with the
    /// given `power` (TensorFlow `polynomial_decay` semantics, no cycling).
    Polynomial {
        /// Rate at step 0.
        initial: f32,
        /// Rate at and after `decay_steps`.
        end: f32,
        /// Number of steps over which to decay.
        decay_steps: u64,
        /// Decay exponent (1.0 = linear).
        power: f32,
    },
    /// Exponential decay: `initial · decay_rate^(step / decay_steps)`
    /// (continuous, not staircased).
    Exponential {
        /// Rate at step 0.
        initial: f32,
        /// Multiplicative decay per `decay_steps` steps.
        decay_rate: f32,
        /// Step period of the decay.
        decay_steps: u64,
    },
}

impl LearningRate {
    /// The paper's default: fixed `1e-3`.
    pub fn paper_default() -> Self {
        LearningRate::Fixed { rate: 1e-3 }
    }

    /// Learning rate at a given model-update step.
    pub fn at(&self, step: u64) -> f32 {
        match *self {
            LearningRate::Fixed { rate } => rate,
            LearningRate::Polynomial { initial, end, decay_steps, power } => {
                if decay_steps == 0 {
                    return end;
                }
                let progress = (step.min(decay_steps) as f32) / decay_steps as f32;
                (initial - end) * (1.0 - progress).powf(power) + end
            }
            LearningRate::Exponential { initial, decay_rate, decay_steps } => {
                if decay_steps == 0 {
                    return initial;
                }
                initial * decay_rate.powf(step as f32 / decay_steps as f32)
            }
        }
    }
}

impl Default for LearningRate {
    fn default() -> Self {
        LearningRate::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_constant() {
        let lr = LearningRate::Fixed { rate: 0.05 };
        assert_eq!(lr.at(0), 0.05);
        assert_eq!(lr.at(1_000_000), 0.05);
    }

    #[test]
    fn polynomial_decays_to_end_value() {
        let lr = LearningRate::Polynomial { initial: 1.0, end: 0.1, decay_steps: 100, power: 1.0 };
        assert_eq!(lr.at(0), 1.0);
        assert!((lr.at(50) - 0.55).abs() < 1e-6);
        assert!((lr.at(100) - 0.1).abs() < 1e-6);
        // Clamped after decay_steps.
        assert!((lr.at(500) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn polynomial_with_zero_steps_is_the_end_rate() {
        let lr = LearningRate::Polynomial { initial: 1.0, end: 0.2, decay_steps: 0, power: 2.0 };
        assert_eq!(lr.at(0), 0.2);
    }

    #[test]
    fn exponential_halves_every_period() {
        let lr = LearningRate::Exponential { initial: 0.8, decay_rate: 0.5, decay_steps: 10 };
        assert_eq!(lr.at(0), 0.8);
        assert!((lr.at(10) - 0.4).abs() < 1e-6);
        assert!((lr.at(20) - 0.2).abs() < 1e-6);
        // Monotone decreasing.
        assert!(lr.at(5) > lr.at(6));
    }

    #[test]
    fn default_matches_the_paper() {
        assert_eq!(LearningRate::default().at(123), 1e-3);
    }
}
