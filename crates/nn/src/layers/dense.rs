//! Fully connected (dense) layer.

use crate::init::Init;
use crate::layer::Layer;
use crate::{NnError, Result};
use agg_tensor::Tensor;

/// A fully connected layer: `y = x · W + b`.
///
/// Expects rank-2 input `[batch, in_features]` (insert a
/// [`crate::layers::Flatten`] before it when coming from a convolution).
#[derive(Debug, Clone)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    /// Row-major `[in_features, out_features]`.
    weights: Vec<f32>,
    bias: Vec<f32>,
    grad_weights: Vec<f32>,
    grad_bias: Vec<f32>,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with the given initialiser and seed.
    pub fn new(in_features: usize, out_features: usize, init: Init, seed: u64) -> Self {
        Dense {
            in_features,
            out_features,
            weights: init.generate(in_features * out_features, in_features, out_features, seed),
            bias: Init::Zeros.generate(out_features, in_features, out_features, seed),
            grad_weights: vec![0.0; in_features * out_features],
            grad_bias: vec![0.0; out_features],
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    fn check_input(&self, input: &Tensor) -> Result<usize> {
        let shape = input.shape();
        if shape.len() != 2 || shape[1] != self.in_features {
            return Err(NnError::BadInputShape {
                layer: "dense",
                expected: format!("[batch, {}]", self.in_features),
                actual: shape.to_vec(),
            });
        }
        Ok(shape[0])
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>> {
        if input_shape != [self.in_features] {
            return Err(NnError::BadInputShape {
                layer: "dense",
                expected: format!("[{}]", self.in_features),
                actual: input_shape.to_vec(),
            });
        }
        Ok(vec![self.out_features])
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let batch = self.check_input(input)?;
        let x = input.as_slice();
        let mut out = vec![0.0f32; batch * self.out_features];
        for n in 0..batch {
            let x_row = &x[n * self.in_features..(n + 1) * self.in_features];
            let out_row = &mut out[n * self.out_features..(n + 1) * self.out_features];
            out_row.copy_from_slice(&self.bias);
            for (i, &xi) in x_row.iter().enumerate() {
                if xi == 0.0 {
                    continue;
                }
                let w_row = &self.weights[i * self.out_features..(i + 1) * self.out_features];
                for (o, &w) in w_row.iter().enumerate() {
                    out_row[o] += xi * w;
                }
            }
        }
        self.cached_input = Some(input.clone());
        Tensor::from_vec(&[batch, self.out_features], out).map_err(NnError::from)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self.cached_input.take().ok_or(NnError::BackwardBeforeForward("dense"))?;
        let batch = input.shape()[0];
        let go = grad_output.as_slice();
        let x = input.as_slice();
        let mut grad_input = vec![0.0f32; batch * self.in_features];
        for n in 0..batch {
            let go_row = &go[n * self.out_features..(n + 1) * self.out_features];
            let x_row = &x[n * self.in_features..(n + 1) * self.in_features];
            for (o, &g) in go_row.iter().enumerate() {
                self.grad_bias[o] += g;
            }
            let gi_row = &mut grad_input[n * self.in_features..(n + 1) * self.in_features];
            for (i, &xi) in x_row.iter().enumerate() {
                let w_row = &self.weights[i * self.out_features..(i + 1) * self.out_features];
                let gw_row =
                    &mut self.grad_weights[i * self.out_features..(i + 1) * self.out_features];
                let mut acc = 0.0;
                for (o, &g) in go_row.iter().enumerate() {
                    gw_row[o] += xi * g;
                    acc += w_row[o] * g;
                }
                gi_row[i] += acc;
            }
        }
        Tensor::from_vec(&[batch, self.in_features], grad_input).map_err(NnError::from)
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn collect_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(&self.weights);
        out.extend_from_slice(&self.bias);
    }

    fn collect_grads(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(&self.grad_weights);
        out.extend_from_slice(&self.grad_bias);
    }

    fn load_params(&mut self, data: &[f32]) -> usize {
        let nw = self.weights.len();
        let nb = self.bias.len();
        self.weights.copy_from_slice(&data[..nw]);
        self.bias.copy_from_slice(&data[nw..nw + nb]);
        nw + nb
    }

    fn zero_grads(&mut self) {
        self.grad_weights.iter_mut().for_each(|g| *g = 0.0);
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }

    fn forward_flops(&self, _input_shape: &[usize]) -> u64 {
        2 * self.in_features as u64 * self.out_features as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_dense() -> Dense {
        // 2 -> 2 with known weights: W = [[1, 2], [3, 4]], b = [0.5, -0.5]
        let mut layer = Dense::new(2, 2, Init::Zeros, 0);
        layer.load_params(&[1.0, 2.0, 3.0, 4.0, 0.5, -0.5]);
        layer
    }

    #[test]
    fn forward_matches_hand_computation() {
        let mut layer = simple_dense();
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 1.0]).unwrap();
        let y = layer.forward(&x, true).unwrap();
        // [1*1 + 1*3 + 0.5, 1*2 + 1*4 - 0.5] = [4.5, 5.5]
        assert_eq!(y.as_slice(), &[4.5, 5.5]);
    }

    #[test]
    fn backward_computes_all_three_gradients() {
        let mut layer = simple_dense();
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 2.0]).unwrap();
        layer.forward(&x, true).unwrap();
        let go = Tensor::from_vec(&[1, 2], vec![1.0, 1.0]).unwrap();
        let gi = layer.backward(&go).unwrap();
        // dL/dx_i = sum_o W[i][o] * go[o] => [1+2, 3+4] = [3, 7]
        assert_eq!(gi.as_slice(), &[3.0, 7.0]);
        let mut grads = Vec::new();
        layer.collect_grads(&mut grads);
        // dW[i][o] = x_i * go_o => [[1,1],[2,2]]; db = [1,1]
        assert_eq!(grads, vec![1.0, 1.0, 2.0, 2.0, 1.0, 1.0]);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut layer = simple_dense();
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 0.0]).unwrap();
        let go = Tensor::from_vec(&[1, 2], vec![1.0, 0.0]).unwrap();
        for _ in 0..2 {
            layer.forward(&x, true).unwrap();
            layer.backward(&go).unwrap();
        }
        let mut grads = Vec::new();
        layer.collect_grads(&mut grads);
        assert_eq!(grads[0], 2.0);
        layer.zero_grads();
        grads.clear();
        layer.collect_grads(&mut grads);
        assert!(grads.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn params_round_trip() {
        let layer = Dense::new(3, 4, Init::HeNormal, 42);
        let mut params = Vec::new();
        layer.collect_params(&mut params);
        assert_eq!(params.len(), layer.param_count());
        let mut other = Dense::new(3, 4, Init::Zeros, 0);
        assert_eq!(other.load_params(&params), 16);
        let mut copied = Vec::new();
        other.collect_params(&mut copied);
        assert_eq!(copied, params);
    }

    #[test]
    fn shape_errors() {
        let mut layer = Dense::new(2, 3, Init::Zeros, 0);
        let bad = Tensor::zeros(&[1, 5]);
        assert!(matches!(layer.forward(&bad, true).unwrap_err(), NnError::BadInputShape { .. }));
        assert!(layer.output_shape(&[5]).is_err());
        assert_eq!(layer.output_shape(&[2]).unwrap(), vec![3]);
        assert!(matches!(
            layer.backward(&Tensor::zeros(&[1, 3])).unwrap_err(),
            NnError::BackwardBeforeForward(_)
        ));
    }

    #[test]
    fn batch_processing_is_independent_per_sample() {
        let mut layer = simple_dense();
        let x = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let y = layer.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[2, 2]);
        assert_eq!(&y.as_slice()[..2], &[1.5, 1.5]); // row [1,0]
        assert_eq!(&y.as_slice()[2..], &[3.5, 3.5]); // row [0,1]
    }

    #[test]
    fn flops_estimate_is_positive() {
        assert_eq!(Dense::new(10, 20, Init::Zeros, 0).forward_flops(&[10]), 400);
    }
}
