//! Activation layers.

use crate::layer::Layer;
use crate::{NnError, Result};
use agg_tensor::Tensor;

/// Rectified linear unit applied elementwise.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    /// Mask of positive pre-activations from the last forward pass.
    mask: Option<Vec<bool>>,
    shape: Vec<usize>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None, shape: Vec::new() }
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>> {
        Ok(input_shape.to_vec())
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let mask: Vec<bool> = input.as_slice().iter().map(|&x| x > 0.0).collect();
        let out = input.map(agg_tensor::ops::relu);
        self.shape = input.shape().to_vec();
        self.mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self.mask.take().ok_or(NnError::BackwardBeforeForward("relu"))?;
        let data: Vec<f32> = grad_output
            .as_slice()
            .iter()
            .zip(mask.iter())
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(&self.shape, data).map_err(NnError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(&[1, 4], vec![-1.0, 0.0, 2.0, -3.0]).unwrap();
        let y = relu.forward(&x, true).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(&[1, 4], vec![-1.0, 0.5, 2.0, -3.0]).unwrap();
        relu.forward(&x, true).unwrap();
        let go = Tensor::from_vec(&[1, 4], vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        let gi = relu.backward(&go).unwrap();
        assert_eq!(gi.as_slice(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut relu = Relu::new();
        assert!(relu.backward(&Tensor::zeros(&[1])).is_err());
    }

    #[test]
    fn shape_is_preserved() {
        let relu = Relu::new();
        assert_eq!(relu.output_shape(&[3, 4, 5]).unwrap(), vec![3, 4, 5]);
        assert_eq!(relu.param_count(), 0);
    }
}
