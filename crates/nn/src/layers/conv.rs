//! 2-D convolution layer (direct convolution, NCHW layout).

use crate::init::Init;
use crate::layer::Layer;
use crate::{NnError, Result};
use agg_tensor::Tensor;

/// A 2-D convolution over `[batch, channels, height, width]` tensors.
///
/// Zero padding is symmetric (`padding` pixels on each side); the Table 1 CNN
/// uses `padding = kernel / 2` ("same" padding for odd kernels) with stride 1.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    /// `[out_channels, in_channels, kernel, kernel]`, row-major.
    weights: Vec<f32>,
    bias: Vec<f32>,
    grad_weights: Vec<f32>,
    grad_bias: Vec<f32>,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0` or `kernel == 0` (programming errors, not data
    /// errors).
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        init: Init,
        seed: u64,
    ) -> Self {
        assert!(kernel > 0, "kernel size must be positive");
        assert!(stride > 0, "stride must be positive");
        let fan_in = in_channels * kernel * kernel;
        let fan_out = out_channels * kernel * kernel;
        let count = out_channels * in_channels * kernel * kernel;
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            weights: init.generate(count, fan_in, fan_out, seed),
            bias: vec![0.0; out_channels],
            grad_weights: vec![0.0; count],
            grad_bias: vec![0.0; out_channels],
            cached_input: None,
        }
    }

    /// Convenience constructor for the paper's "same"-padded stride-1
    /// convolutions: `padding = kernel / 2`.
    pub fn same(in_channels: usize, out_channels: usize, kernel: usize, seed: u64) -> Self {
        Conv2d::new(in_channels, out_channels, kernel, 1, kernel / 2, Init::HeNormal, seed)
    }

    fn spatial_output(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        let padded_h = h + 2 * self.padding;
        let padded_w = w + 2 * self.padding;
        if padded_h < self.kernel || padded_w < self.kernel {
            return Err(NnError::BadInputShape {
                layer: "conv2d",
                expected: format!("spatial size >= {}", self.kernel),
                actual: vec![h, w],
            });
        }
        Ok(((padded_h - self.kernel) / self.stride + 1, (padded_w - self.kernel) / self.stride + 1))
    }

    fn check_input(&self, input: &Tensor) -> Result<(usize, usize, usize)> {
        let shape = input.shape();
        if shape.len() != 4 || shape[1] != self.in_channels {
            return Err(NnError::BadInputShape {
                layer: "conv2d",
                expected: format!("[batch, {}, h, w]", self.in_channels),
                actual: shape.to_vec(),
            });
        }
        Ok((shape[0], shape[2], shape[3]))
    }

    #[inline]
    fn weight_index(&self, oc: usize, ic: usize, ki: usize, kj: usize) -> usize {
        ((oc * self.in_channels + ic) * self.kernel + ki) * self.kernel + kj
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>> {
        if input_shape.len() != 3 || input_shape[0] != self.in_channels {
            return Err(NnError::BadInputShape {
                layer: "conv2d",
                expected: format!("[{}, h, w]", self.in_channels),
                actual: input_shape.to_vec(),
            });
        }
        let (oh, ow) = self.spatial_output(input_shape[1], input_shape[2])?;
        Ok(vec![self.out_channels, oh, ow])
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let (batch, h, w) = self.check_input(input)?;
        let (oh, ow) = self.spatial_output(h, w)?;
        let x = input.as_slice();
        let mut out = vec![0.0f32; batch * self.out_channels * oh * ow];
        let in_plane = h * w;
        let out_plane = oh * ow;
        for n in 0..batch {
            for oc in 0..self.out_channels {
                let bias = self.bias[oc];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias;
                        for ic in 0..self.in_channels {
                            let x_base = (n * self.in_channels + ic) * in_plane;
                            for ki in 0..self.kernel {
                                let iy = (oy * self.stride + ki) as isize - self.padding as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kj in 0..self.kernel {
                                    let ix =
                                        (ox * self.stride + kj) as isize - self.padding as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    acc += x[x_base + iy as usize * w + ix as usize]
                                        * self.weights[self.weight_index(oc, ic, ki, kj)];
                                }
                            }
                        }
                        out[(n * self.out_channels + oc) * out_plane + oy * ow + ox] = acc;
                    }
                }
            }
        }
        self.cached_input = Some(input.clone());
        Tensor::from_vec(&[batch, self.out_channels, oh, ow], out).map_err(NnError::from)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self.cached_input.take().ok_or(NnError::BackwardBeforeForward("conv2d"))?;
        let (batch, h, w) = self.check_input(&input)?;
        let (oh, ow) = self.spatial_output(h, w)?;
        let x = input.as_slice();
        let go = grad_output.as_slice();
        let in_plane = h * w;
        let out_plane = oh * ow;
        let mut grad_input = vec![0.0f32; batch * self.in_channels * in_plane];
        for n in 0..batch {
            for oc in 0..self.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = go[(n * self.out_channels + oc) * out_plane + oy * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        self.grad_bias[oc] += g;
                        for ic in 0..self.in_channels {
                            let x_base = (n * self.in_channels + ic) * in_plane;
                            for ki in 0..self.kernel {
                                let iy = (oy * self.stride + ki) as isize - self.padding as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kj in 0..self.kernel {
                                    let ix =
                                        (ox * self.stride + kj) as isize - self.padding as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let xi = x_base + iy as usize * w + ix as usize;
                                    let wi = self.weight_index(oc, ic, ki, kj);
                                    self.grad_weights[wi] += x[xi] * g;
                                    grad_input[xi] += self.weights[wi] * g;
                                }
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(&[batch, self.in_channels, h, w], grad_input).map_err(NnError::from)
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn collect_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(&self.weights);
        out.extend_from_slice(&self.bias);
    }

    fn collect_grads(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(&self.grad_weights);
        out.extend_from_slice(&self.grad_bias);
    }

    fn load_params(&mut self, data: &[f32]) -> usize {
        let nw = self.weights.len();
        let nb = self.bias.len();
        self.weights.copy_from_slice(&data[..nw]);
        self.bias.copy_from_slice(&data[nw..nw + nb]);
        nw + nb
    }

    fn zero_grads(&mut self) {
        self.grad_weights.iter_mut().for_each(|g| *g = 0.0);
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }

    fn forward_flops(&self, input_shape: &[usize]) -> u64 {
        if input_shape.len() != 3 {
            return 0;
        }
        match self.spatial_output(input_shape[1], input_shape[2]) {
            Ok((oh, ow)) => {
                2 * (self.out_channels * self.in_channels * self.kernel * self.kernel * oh * ow)
                    as u64
            }
            Err(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1-channel 3x3 identity-kernel convolution for hand checks.
    fn identity_conv() -> Conv2d {
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, Init::Zeros, 0);
        // Kernel with a 1 in the centre: output == input (same padding).
        let mut params = vec![0.0f32; 10];
        params[4] = 1.0;
        conv.load_params(&params);
        conv
    }

    #[test]
    fn identity_kernel_preserves_input() {
        let mut conv = identity_conv();
        let x = Tensor::from_vec(&[1, 1, 3, 3], (1..=9).map(|v| v as f32).collect()).unwrap();
        let y = conv.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[1, 1, 3, 3]);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn output_shape_follows_stride_and_padding() {
        let conv = Conv2d::new(3, 8, 5, 1, 2, Init::Zeros, 0);
        assert_eq!(conv.output_shape(&[3, 32, 32]).unwrap(), vec![8, 32, 32]);
        let strided = Conv2d::new(3, 8, 3, 2, 0, Init::Zeros, 0);
        assert_eq!(strided.output_shape(&[3, 9, 9]).unwrap(), vec![8, 4, 4]);
        assert!(conv.output_shape(&[1, 32, 32]).is_err());
        assert!(conv.output_shape(&[3, 32]).is_err());
    }

    #[test]
    fn sum_kernel_computes_local_sums() {
        // 2x2 kernel of ones, stride 1, no padding, on a 2x2 input of ones
        // => single output = 4 + bias.
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, Init::Zeros, 0);
        conv.load_params(&[1.0, 1.0, 1.0, 1.0, 0.5]);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0; 4]).unwrap();
        let y = conv.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.as_slice(), &[4.5]);
    }

    #[test]
    fn backward_of_identity_kernel_passes_gradient_through() {
        let mut conv = identity_conv();
        let x = Tensor::from_vec(&[1, 1, 3, 3], vec![1.0; 9]).unwrap();
        conv.forward(&x, true).unwrap();
        let go = Tensor::from_vec(&[1, 1, 3, 3], (1..=9).map(|v| v as f32).collect()).unwrap();
        let gi = conv.backward(&go).unwrap();
        assert_eq!(gi.as_slice(), go.as_slice());
        // Bias gradient = sum of output gradients = 45.
        let mut grads = Vec::new();
        conv.collect_grads(&mut grads);
        assert_eq!(grads[9], 45.0);
        // Centre weight gradient = sum_i x_i * go_i = 45 (x is all ones).
        assert_eq!(grads[4], 45.0);
    }

    #[test]
    fn multi_channel_shapes() {
        let mut conv = Conv2d::new(3, 4, 3, 1, 1, Init::HeNormal, 5);
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let y = conv.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[2, 4, 8, 8]);
        let gi = conv.backward(&y).unwrap();
        assert_eq!(gi.shape(), &[2, 3, 8, 8]);
    }

    #[test]
    fn rejects_bad_input_and_double_backward() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 0, Init::Zeros, 0);
        assert!(conv.forward(&Tensor::zeros(&[1, 2, 4, 4]), true).is_err());
        assert!(conv.forward(&Tensor::zeros(&[1, 1, 2, 2]), true).is_err());
        assert!(conv.backward(&Tensor::zeros(&[1, 1, 1, 1])).is_err());
    }

    #[test]
    fn param_count_matches_table1_first_conv() {
        // Table 1: conv 5x5x64 on 3-channel input -> 5*5*3*64 + 64 = 4864.
        let conv = Conv2d::same(3, 64, 5, 0);
        assert_eq!(conv.param_count(), 4864);
    }

    #[test]
    fn flops_scale_with_spatial_size() {
        let conv = Conv2d::same(3, 16, 3, 0);
        let small = conv.forward_flops(&[3, 8, 8]);
        let big = conv.forward_flops(&[3, 16, 16]);
        assert_eq!(big, small * 4);
    }
}
