//! Concrete layer implementations.

pub mod activation;
pub mod conv;
pub mod dense;
pub mod dropout;
pub mod flatten;
pub mod pool;

pub use activation::Relu;
pub use conv::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use pool::MaxPool2d;
