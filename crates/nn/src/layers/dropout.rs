//! Inverted dropout layer.

use crate::layer::Layer;
use crate::{NnError, Result};
use agg_tensor::rng::seeded_rng;
use agg_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::Rng;

/// Inverted dropout: during training each activation is zeroed with
/// probability `rate` and the survivors are scaled by `1 / (1 - rate)` so the
/// expected activation is unchanged; during evaluation the layer is a no-op.
#[derive(Debug, Clone)]
pub struct Dropout {
    rate: f32,
    rng: SmallRng,
    mask: Option<Vec<f32>>,
    shape: Vec<usize>,
}

impl Dropout {
    /// Creates a dropout layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidHyperParameter`] unless `0 ≤ rate < 1`.
    pub fn new(rate: f32, seed: u64) -> Result<Self> {
        if !(0.0..1.0).contains(&rate) {
            return Err(NnError::InvalidHyperParameter {
                name: "dropout rate",
                message: format!("must be in [0, 1), got {rate}"),
            });
        }
        Ok(Dropout { rate, rng: seeded_rng(seed), mask: None, shape: Vec::new() })
    }

    /// The configured drop probability.
    pub fn rate(&self) -> f32 {
        self.rate
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "dropout"
    }

    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>> {
        Ok(input_shape.to_vec())
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        self.shape = input.shape().to_vec();
        if !train || self.rate == 0.0 {
            self.mask = Some(vec![1.0; input.len()]);
            return Ok(input.clone());
        }
        let keep = 1.0 - self.rate;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..input.len())
            .map(|_| if self.rng.gen::<f32>() < keep { scale } else { 0.0 })
            .collect();
        let data: Vec<f32> =
            input.as_slice().iter().zip(mask.iter()).map(|(&x, &m)| x * m).collect();
        self.mask = Some(mask);
        Tensor::from_vec(&self.shape, data).map_err(NnError::from)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self.mask.take().ok_or(NnError::BackwardBeforeForward("dropout"))?;
        let data: Vec<f32> =
            grad_output.as_slice().iter().zip(mask.iter()).map(|(&g, &m)| g * m).collect();
        Tensor::from_vec(&self.shape, data).map_err(NnError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_rates() {
        assert!(Dropout::new(1.0, 0).is_err());
        assert!(Dropout::new(-0.1, 0).is_err());
        assert!(Dropout::new(0.5, 0).is_ok());
    }

    #[test]
    fn evaluation_mode_is_identity() {
        let mut dropout = Dropout::new(0.9, 1).unwrap();
        let x = Tensor::from_vec(&[1, 4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = dropout.forward(&x, false).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn training_mode_zeroes_roughly_rate_fraction() {
        let mut dropout = Dropout::new(0.5, 2).unwrap();
        let x = Tensor::from_vec(&[1, 10_000], vec![1.0; 10_000]).unwrap();
        let y = dropout.forward(&x, true).unwrap();
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!((zeros as f32 / 10_000.0 - 0.5).abs() < 0.05);
        // Survivors are scaled so the expectation is preserved.
        let mean: f32 = y.as_slice().iter().sum::<f32>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.1);
    }

    #[test]
    fn backward_reuses_the_forward_mask() {
        let mut dropout = Dropout::new(0.5, 3).unwrap();
        let x = Tensor::from_vec(&[1, 8], vec![1.0; 8]).unwrap();
        let y = dropout.forward(&x, true).unwrap();
        let go = Tensor::from_vec(&[1, 8], vec![1.0; 8]).unwrap();
        let gi = dropout.backward(&go).unwrap();
        // Gradient is zero exactly where the activation was dropped.
        for i in 0..8 {
            assert_eq!(gi.as_slice()[i] == 0.0, y.as_slice()[i] == 0.0);
        }
        assert!(dropout.backward(&go).is_err());
    }
}
