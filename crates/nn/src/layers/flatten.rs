//! Flatten layer: reshapes `[batch, ...]` into `[batch, features]`.

use crate::layer::Layer;
use crate::{NnError, Result};
use agg_tensor::Tensor;

/// Flattens every non-batch axis into a single feature axis.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { input_shape: None }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>> {
        if input_shape.is_empty() {
            return Err(NnError::BadInputShape {
                layer: "flatten",
                expected: "at least one non-batch axis".to_string(),
                actual: input_shape.to_vec(),
            });
        }
        Ok(vec![input_shape.iter().product()])
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let shape = input.shape();
        if shape.len() < 2 {
            return Err(NnError::BadInputShape {
                layer: "flatten",
                expected: "[batch, ...]".to_string(),
                actual: shape.to_vec(),
            });
        }
        self.input_shape = Some(shape.to_vec());
        let batch = shape[0];
        let features: usize = shape[1..].iter().product();
        input.reshaped(&[batch, features]).map_err(NnError::from)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let shape = self.input_shape.take().ok_or(NnError::BackwardBeforeForward("flatten"))?;
        grad_output.reshaped(&shape).map_err(NnError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattens_and_restores_shape() {
        let mut flatten = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 5]);
        let y = flatten.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[2, 60]);
        let gi = flatten.backward(&y).unwrap();
        assert_eq!(gi.shape(), &[2, 3, 4, 5]);
    }

    #[test]
    fn output_shape_excludes_batch() {
        let flatten = Flatten::new();
        assert_eq!(flatten.output_shape(&[3, 4, 5]).unwrap(), vec![60]);
        assert!(flatten.output_shape(&[]).is_err());
    }

    #[test]
    fn preserves_data_order() {
        let mut flatten = Flatten::new();
        let x = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = flatten.forward(&x, true).unwrap();
        assert_eq!(y.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn errors() {
        let mut flatten = Flatten::new();
        assert!(flatten.forward(&Tensor::zeros(&[4]), true).is_err());
        assert!(flatten.backward(&Tensor::zeros(&[1, 4])).is_err());
    }
}
