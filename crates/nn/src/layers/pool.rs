//! Max pooling layer (NCHW layout).

use crate::layer::Layer;
use crate::{NnError, Result};
use agg_tensor::Tensor;

/// 2-D max pooling.
///
/// With `same_padding = true` the output spatial size is `ceil(size / stride)`
/// (TensorFlow "SAME" semantics), which is what the Table 1 CNN relies on to
/// reach its 1.75 M-parameter count; padded positions are treated as `-∞` and
/// can never win the max.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    same_padding: bool,
    /// For backward: shape of the cached input and, for every output element,
    /// the flat input index that won the max.
    cached: Option<(Vec<usize>, Vec<usize>)>,
}

impl MaxPool2d {
    /// Creates a max-pooling layer with "VALID" (no) padding.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0` or `stride == 0`.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
        MaxPool2d { kernel, stride, same_padding: false, cached: None }
    }

    /// Creates a max-pooling layer with TensorFlow-style "SAME" padding.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0` or `stride == 0`.
    pub fn same(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
        MaxPool2d { kernel, stride, same_padding: true, cached: None }
    }

    fn spatial_output(&self, size: usize) -> Result<(usize, usize)> {
        if self.same_padding {
            let out = size.div_ceil(self.stride);
            let needed = (out - 1) * self.stride + self.kernel;
            let pad_total = needed.saturating_sub(size);
            Ok((out, pad_total / 2))
        } else {
            if size < self.kernel {
                return Err(NnError::BadInputShape {
                    layer: "maxpool2d",
                    expected: format!("spatial size >= {}", self.kernel),
                    actual: vec![size],
                });
            }
            Ok(((size - self.kernel) / self.stride + 1, 0))
        }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>> {
        if input_shape.len() != 3 {
            return Err(NnError::BadInputShape {
                layer: "maxpool2d",
                expected: "[channels, h, w]".to_string(),
                actual: input_shape.to_vec(),
            });
        }
        let (oh, _) = self.spatial_output(input_shape[1])?;
        let (ow, _) = self.spatial_output(input_shape[2])?;
        Ok(vec![input_shape[0], oh, ow])
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
        let shape = input.shape();
        if shape.len() != 4 {
            return Err(NnError::BadInputShape {
                layer: "maxpool2d",
                expected: "[batch, channels, h, w]".to_string(),
                actual: shape.to_vec(),
            });
        }
        let (batch, channels, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let (oh, pad_h) = self.spatial_output(h)?;
        let (ow, pad_w) = self.spatial_output(w)?;
        let x = input.as_slice();
        let mut out = vec![f32::NEG_INFINITY; batch * channels * oh * ow];
        let mut argmax = vec![0usize; out.len()];
        let in_plane = h * w;
        let out_plane = oh * ow;
        for n in 0..batch {
            for c in 0..channels {
                let base = (n * channels + c) * in_plane;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = base;
                        for ki in 0..self.kernel {
                            let iy = (oy * self.stride + ki) as isize - pad_h as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kj in 0..self.kernel {
                                let ix = (ox * self.stride + kj) as isize - pad_w as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let idx = base + iy as usize * w + ix as usize;
                                // NaN inputs never win the max, mirroring the
                                // robust treatment elsewhere in the stack.
                                if x[idx] > best {
                                    best = x[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let o = (n * channels + c) * out_plane + oy * ow + ox;
                        out[o] = if best.is_finite() { best } else { 0.0 };
                        argmax[o] = best_idx;
                    }
                }
            }
        }
        self.cached = Some((shape.to_vec(), argmax));
        Tensor::from_vec(&[batch, channels, oh, ow], out).map_err(NnError::from)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let (input_shape, argmax) =
            self.cached.take().ok_or(NnError::BackwardBeforeForward("maxpool2d"))?;
        let go = grad_output.as_slice();
        let mut grad_input = vec![0.0f32; input_shape.iter().product()];
        for (o, &idx) in argmax.iter().enumerate() {
            grad_input[idx] += go[o];
        }
        Tensor::from_vec(&input_shape, grad_input).map_err(NnError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_pooling_picks_maxima() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(
            &[1, 1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        )
        .unwrap();
        let y = pool.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn backward_routes_gradient_to_the_argmax() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 9.0, 3.0, 2.0]).unwrap();
        pool.forward(&x, true).unwrap();
        let go = Tensor::from_vec(&[1, 1, 1, 1], vec![5.0]).unwrap();
        let gi = pool.backward(&go).unwrap();
        assert_eq!(gi.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn same_padding_matches_tensorflow_output_size() {
        // The Table 1 pipeline: 32x32, pool 3x3 stride 2, SAME => 16x16.
        let pool = MaxPool2d::same(3, 2);
        assert_eq!(pool.output_shape(&[64, 32, 32]).unwrap(), vec![64, 16, 16]);
        assert_eq!(pool.output_shape(&[64, 16, 16]).unwrap(), vec![64, 8, 8]);
        // VALID would give 15x15.
        let valid = MaxPool2d::new(3, 2);
        assert_eq!(valid.output_shape(&[64, 32, 32]).unwrap(), vec![64, 15, 15]);
    }

    #[test]
    fn same_padding_forward_ignores_padded_cells() {
        let mut pool = MaxPool2d::same(2, 2);
        // 3x3 input pooled to 2x2; last row/col windows extend past the edge.
        let x = Tensor::from_vec(&[1, 1, 3, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0])
            .unwrap();
        let y = pool.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn errors_on_bad_shapes() {
        let mut pool = MaxPool2d::new(3, 2);
        assert!(pool.forward(&Tensor::zeros(&[2, 2]), true).is_err());
        assert!(pool.forward(&Tensor::zeros(&[1, 1, 2, 2]), true).is_err());
        assert!(pool.output_shape(&[4, 4]).is_err());
        assert!(pool.backward(&Tensor::zeros(&[1, 1, 1, 1])).is_err());
    }

    #[test]
    fn has_no_parameters() {
        let pool = MaxPool2d::new(2, 2);
        assert_eq!(pool.param_count(), 0);
    }

    #[test]
    fn nan_inputs_do_not_poison_the_output() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![f32::NAN, 1.0, 2.0, 3.0]).unwrap();
        let y = pool.forward(&x, true).unwrap();
        assert_eq!(y.as_slice(), &[3.0]);
    }
}
