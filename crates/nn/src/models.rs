//! Ready-made model architectures used by the experiments.

use crate::init::Init;
use crate::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
use crate::model::Sequential;

/// The paper's Table 1 CNN for CIFAR-10-shaped inputs (`3 × 32 × 32`):
///
/// | Input | Conv1 | Pool1 | Conv2 | Pool2 | FC1 | FC2 | FC3 |
/// |---|---|---|---|---|---|---|---|
/// | 32×32×3 | 5×5×64, stride 1 | 3×3, stride 2 | 5×5×64, stride 1 | 3×3, stride 2 | 384 | 192 | 10 |
///
/// With "SAME" padding throughout, the parameter count is ≈ 1.75 M, matching
/// the paper's description of the model.
pub fn paper_cnn(seed: u64) -> Sequential {
    Sequential::new("paper-cnn", &[3, 32, 32])
        .with_layer(Box::new(Conv2d::same(3, 64, 5, seed)))
        .with_layer(Box::new(Relu::new()))
        .with_layer(Box::new(MaxPool2d::same(3, 2)))
        .with_layer(Box::new(Conv2d::same(64, 64, 5, seed + 1)))
        .with_layer(Box::new(Relu::new()))
        .with_layer(Box::new(MaxPool2d::same(3, 2)))
        .with_layer(Box::new(Flatten::new()))
        .with_layer(Box::new(Dense::new(64 * 8 * 8, 384, Init::HeNormal, seed + 2)))
        .with_layer(Box::new(Relu::new()))
        .with_layer(Box::new(Dense::new(384, 192, Init::HeNormal, seed + 3)))
        .with_layer(Box::new(Relu::new()))
        .with_layer(Box::new(Dense::new(192, 10, Init::XavierUniform, seed + 4)))
}

/// A small convolutional model with the same layer pattern as the Table 1 CNN
/// but scaled down to `channels × 8 × 8` inputs, so end-to-end distributed
/// training experiments run in seconds on a laptop while exercising exactly
/// the same code path (conv → pool → conv → pool → dense stack).
pub fn small_cnn(channels: usize, classes: usize, seed: u64) -> Sequential {
    Sequential::new("small-cnn", &[channels, 8, 8])
        .with_layer(Box::new(Conv2d::same(channels, 8, 3, seed)))
        .with_layer(Box::new(Relu::new()))
        .with_layer(Box::new(MaxPool2d::same(2, 2)))
        .with_layer(Box::new(Conv2d::same(8, 8, 3, seed + 1)))
        .with_layer(Box::new(Relu::new()))
        .with_layer(Box::new(MaxPool2d::same(2, 2)))
        .with_layer(Box::new(Flatten::new()))
        .with_layer(Box::new(Dense::new(8 * 2 * 2, 32, Init::HeNormal, seed + 2)))
        .with_layer(Box::new(Relu::new()))
        .with_layer(Box::new(Dense::new(32, classes, Init::XavierUniform, seed + 3)))
}

/// A plain multi-layer perceptron over flat feature vectors.
///
/// Used for the convergence-shape experiments: the Byzantine-resilience
/// statements are about gradient statistics, not about convolution, so the
/// MLP gives the same comparative curves at a fraction of the cost.
pub fn synthetic_mlp(input_dim: usize, hidden: &[usize], classes: usize, seed: u64) -> Sequential {
    let mut model = Sequential::new("synthetic-mlp", &[input_dim]);
    let mut in_dim = input_dim;
    let mut layer_seed = seed;
    for &h in hidden {
        model.push(Box::new(Dense::new(in_dim, h, Init::HeNormal, layer_seed)));
        model.push(Box::new(Relu::new()));
        in_dim = h;
        layer_seed += 1;
    }
    model.push(Box::new(Dense::new(in_dim, classes, Init::XavierUniform, layer_seed)));
    model
}

/// The "large model" standing in for ResNet50 in the Figure 5(b) scalability
/// experiment.
///
/// ResNet50 has ~25.6 M parameters and a gradient-computation cost that
/// dwarfs aggregation; what the experiment needs is that ratio, so the
/// stand-in is a deep, wide MLP whose parameter count (~25 M) and per-sample
/// FLOPs are in the same regime. It is used for cost modelling and parameter
/// counting, not for accuracy experiments.
pub fn large_model(seed: u64) -> Sequential {
    // 2048 -> 3072 -> 3072 -> 2048 -> 1000 ≈ 24 M parameters.
    synthetic_mlp_named("large-resnet50-standin", 2048, &[3072, 3072, 2048], 1000, seed)
}

/// Same as [`synthetic_mlp`] but with an explicit model name.
pub fn synthetic_mlp_named(
    name: &str,
    input_dim: usize,
    hidden: &[usize],
    classes: usize,
    seed: u64,
) -> Sequential {
    let mut model = Sequential::new(name, &[input_dim]);
    let mut in_dim = input_dim;
    let mut layer_seed = seed;
    for &h in hidden {
        model.push(Box::new(Dense::new(in_dim, h, Init::HeNormal, layer_seed)));
        model.push(Box::new(Relu::new()));
        in_dim = h;
        layer_seed += 1;
    }
    model.push(Box::new(Dense::new(in_dim, classes, Init::XavierUniform, layer_seed)));
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_tensor::Tensor;

    #[test]
    fn paper_cnn_has_about_1_75_million_parameters() {
        let model = paper_cnn(0);
        let d = model.param_count();
        // The paper reports "a total of 1.75M parameters".
        assert!((1_700_000..=1_800_000).contains(&d), "expected ~1.75M parameters, got {d}");
        assert_eq!(model.output_shape().unwrap(), vec![10]);
    }

    #[test]
    fn paper_cnn_layer_chain_is_consistent() {
        let model = paper_cnn(1);
        // Conv1 4864 params, Conv2 102464, FC1 1573248, FC2 73920, FC3 1930.
        let summary = model.layer_summary();
        let conv_params: Vec<usize> =
            summary.iter().filter(|(n, _)| *n == "conv2d").map(|&(_, p)| p).collect();
        assert_eq!(conv_params, vec![4864, 102_464]);
        let dense_params: Vec<usize> =
            summary.iter().filter(|(n, _)| *n == "dense").map(|&(_, p)| p).collect();
        assert_eq!(dense_params, vec![1_573_248, 73_920, 1930]);
    }

    #[test]
    fn small_cnn_forward_backward_runs() {
        let mut model = small_cnn(1, 4, 2);
        let x = Tensor::zeros(&[2, 1, 8, 8]);
        let eval = model.gradient(&x, &[0, 1]).unwrap();
        assert_eq!(eval.gradient.len(), model.param_count());
        assert!(eval.loss.is_finite());
    }

    #[test]
    fn mlp_layer_structure() {
        let model = synthetic_mlp(16, &[32, 8], 4, 3);
        assert_eq!(model.output_shape().unwrap(), vec![4]);
        assert_eq!(model.param_count(), 16 * 32 + 32 + 32 * 8 + 8 + 8 * 4 + 4);
    }

    #[test]
    fn large_model_is_in_the_resnet50_parameter_regime() {
        let model = large_model(0);
        let d = model.param_count();
        assert!((20_000_000..=30_000_000).contains(&d), "expected ~25M parameters, got {d}");
        // Its per-sample compute must dwarf the small CNN's.
        assert!(model.flops_per_sample() > 20 * small_cnn(3, 10, 0).flops_per_sample());
    }
}
