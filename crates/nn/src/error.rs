//! Error type for the neural-network crate.

use thiserror::Error;

/// Errors produced while building or running a model.
#[derive(Debug, Error, Clone, PartialEq)]
pub enum NnError {
    /// A layer received an input of an unexpected shape.
    #[error("{layer}: expected input shape {expected}, got {actual:?}")]
    BadInputShape {
        /// Layer name.
        layer: &'static str,
        /// Human-readable description of the expected shape.
        expected: String,
        /// Shape actually received.
        actual: Vec<usize>,
    },

    /// `backward` was called before `forward`.
    #[error("{0}: backward called before forward")]
    BackwardBeforeForward(&'static str),

    /// The provided parameter buffer does not match the model size.
    #[error("parameter buffer has {actual} values, model needs {expected}")]
    ParameterSizeMismatch {
        /// Number of parameters the model holds.
        expected: usize,
        /// Number of values provided.
        actual: usize,
    },

    /// Labels and batch size disagree.
    #[error("batch has {inputs} samples but {labels} labels")]
    LabelCountMismatch {
        /// Number of samples in the batch.
        inputs: usize,
        /// Number of labels provided.
        labels: usize,
    },

    /// A label is outside the valid class range.
    #[error("label {label} out of range for {classes} classes")]
    LabelOutOfRange {
        /// Offending label.
        label: usize,
        /// Number of classes the model predicts.
        classes: usize,
    },

    /// Invalid hyper-parameter value.
    #[error("invalid hyper-parameter {name}: {message}")]
    InvalidHyperParameter {
        /// Hyper-parameter name.
        name: &'static str,
        /// Why the value was rejected.
        message: String,
    },

    /// An underlying tensor operation failed.
    #[error("tensor operation failed: {0}")]
    Tensor(String),
}

impl From<agg_tensor::TensorError> for NnError {
    fn from(e: agg_tensor::TensorError) -> Self {
        NnError::Tensor(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_informative() {
        let e = NnError::ParameterSizeMismatch { expected: 10, actual: 3 };
        assert!(e.to_string().contains("10") && e.to_string().contains('3'));
    }

    #[test]
    fn tensor_error_converts() {
        let e: NnError = agg_tensor::TensorError::dim(1, 2).into();
        assert!(matches!(e, NnError::Tensor(_)));
    }
}
