//! Weight initialisers.

use agg_tensor::rng::seeded_rng;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Weight initialisation schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// All zeros (used for biases).
    Zeros,
    /// Glorot/Xavier uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// He normal: `N(0, sqrt(2 / fan_in))`, the standard choice before ReLU.
    HeNormal,
    /// Uniform in a fixed small range, for reproducible toy tests.
    SmallUniform,
}

impl Init {
    /// Generates `count` values for a layer with the given fan-in/fan-out.
    pub fn generate(self, count: usize, fan_in: usize, fan_out: usize, seed: u64) -> Vec<f32> {
        let mut rng = seeded_rng(seed);
        match self {
            Init::Zeros => vec![0.0; count],
            Init::XavierUniform => {
                let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                (0..count).map(|_| rng.gen_range(-a..a)).collect()
            }
            Init::HeNormal => {
                let std = (2.0 / fan_in.max(1) as f32).sqrt();
                let normal = Normal::new(0.0f32, std).expect("std is positive and finite");
                (0..count).map(|_| normal.sample(&mut rng)).collect()
            }
            Init::SmallUniform => (0..count).map(|_| rng.gen_range(-0.05..0.05)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_are_zero() {
        assert!(Init::Zeros.generate(10, 4, 4, 0).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn initialisation_is_deterministic_per_seed() {
        let a = Init::HeNormal.generate(64, 16, 16, 7);
        let b = Init::HeNormal.generate(64, 16, 16, 7);
        assert_eq!(a, b);
        let c = Init::HeNormal.generate(64, 16, 16, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn xavier_respects_bound() {
        let fan_in = 100;
        let fan_out = 100;
        let a = (6.0 / 200.0f32).sqrt();
        let w = Init::XavierUniform.generate(1000, fan_in, fan_out, 1);
        assert!(w.iter().all(|&x| x.abs() <= a));
        // Not degenerate.
        assert!(w.iter().any(|&x| x.abs() > a / 10.0));
    }

    #[test]
    fn he_normal_has_expected_scale() {
        let w = Init::HeNormal.generate(10_000, 50, 10, 3);
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        let std: f32 =
            (w.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / w.len() as f32).sqrt();
        let expected = (2.0f32 / 50.0).sqrt();
        assert!((std - expected).abs() < expected * 0.1, "std {std} vs {expected}");
    }

    #[test]
    fn small_uniform_is_bounded() {
        let w = Init::SmallUniform.generate(100, 1, 1, 4);
        assert!(w.iter().all(|&x| x.abs() <= 0.05));
    }
}
