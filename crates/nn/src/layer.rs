//! The [`Layer`] trait: the unit of composition for models.

use crate::Result;
use agg_tensor::Tensor;
use std::fmt;

/// A differentiable layer.
///
/// Layers process mini-batches: the leading axis of every input and output
/// tensor is the batch dimension. A layer owns its parameters and the
/// gradients accumulated by the most recent [`Layer::backward`] call; the
/// [`crate::Sequential`] model flattens them into the single vector the
/// parameter-server protocol exchanges.
///
/// The forward/backward contract is stateful, mirroring classic
/// backpropagation implementations: `forward` caches whatever activations
/// `backward` needs, and `backward` must be called at most once per
/// `forward`.
pub trait Layer: Send + fmt::Debug {
    /// Short layer name used in error messages and model summaries.
    fn name(&self) -> &'static str;

    /// Output shape (excluding the batch axis) for a given input shape
    /// (excluding the batch axis).
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::BadInputShape`] if the layer cannot accept
    /// the input shape.
    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>>;

    /// Forward pass over a batch. `train` enables training-only behaviour
    /// (e.g. dropout).
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::BadInputShape`] on shape mismatch.
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor>;

    /// Backward pass: receives the loss gradient with respect to this layer's
    /// output, accumulates parameter gradients internally, and returns the
    /// gradient with respect to the layer's input.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::BackwardBeforeForward`] if no forward pass
    /// is cached.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// Number of trainable parameters.
    fn param_count(&self) -> usize {
        0
    }

    /// Appends the current parameter values to `out` (in a fixed layer-local
    /// order).
    fn collect_params(&self, _out: &mut Vec<f32>) {}

    /// Appends the accumulated gradients to `out`, in the same order as
    /// [`Layer::collect_params`].
    fn collect_grads(&self, _out: &mut Vec<f32>) {}

    /// Loads parameters from the beginning of `data`, returning how many
    /// values were consumed.
    fn load_params(&mut self, _data: &[f32]) -> usize {
        0
    }

    /// Clears the accumulated gradients.
    fn zero_grads(&mut self) {}

    /// Approximate number of floating-point operations for one sample's
    /// forward pass, used by the cluster cost model in `agg-ps`.
    fn forward_flops(&self, _input_shape: &[usize]) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A do-nothing layer used to exercise the default trait methods.
    #[derive(Debug)]
    struct Identity;

    impl Layer for Identity {
        fn name(&self) -> &'static str {
            "identity"
        }
        fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>> {
            Ok(input_shape.to_vec())
        }
        fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
            Ok(input.clone())
        }
        fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
            Ok(grad_output.clone())
        }
    }

    #[test]
    fn default_methods_are_parameterless() {
        let mut layer = Identity;
        assert_eq!(layer.param_count(), 0);
        let mut buf = Vec::new();
        layer.collect_params(&mut buf);
        layer.collect_grads(&mut buf);
        assert!(buf.is_empty());
        assert_eq!(layer.load_params(&[1.0, 2.0]), 0);
        layer.zero_grads();
        assert_eq!(layer.forward_flops(&[3, 4]), 0);
    }

    #[test]
    fn identity_round_trips() {
        let mut layer = Identity;
        let t = Tensor::zeros(&[2, 3]);
        let out = layer.forward(&t, true).unwrap();
        assert_eq!(out, t);
        assert_eq!(layer.backward(&t).unwrap(), t);
        assert_eq!(layer.output_shape(&[3]).unwrap(), vec![3]);
    }
}
