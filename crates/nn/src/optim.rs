//! Optimizers: the `--optimizer` choices of the original AggregaThor runner
//! (`sgd`, `momentum`, `adam`, `rmsprop`, `adagrad`, `adadelta`), plus the
//! optional L1/L2 regularisation the runner exposes.
//!
//! Optimizers operate on the flattened parameter vector the parameter server
//! holds: the server aggregates the workers' gradients with a GAR and then
//! applies one optimizer step (Equation 4 of the paper).

use crate::{NnError, Result};
use agg_tensor::Vector;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An SGD-family update rule applied by the parameter server.
pub trait Optimizer: Send + fmt::Debug {
    /// Short name (matches the runner's `--optimizer` values).
    fn name(&self) -> &'static str;

    /// Applies one update step in place: `params ← params − lr · direction`,
    /// where `direction` is derived from `gradient` and the optimizer state.
    ///
    /// # Errors
    ///
    /// Returns an error when the gradient length does not match the parameter
    /// length.
    fn step(&mut self, params: &mut Vector, gradient: &Vector, lr: f32) -> Result<()>;

    /// Resets any accumulated state (e.g. when restarting training).
    fn reset(&mut self) {}
}

fn check_lengths(params: &Vector, gradient: &Vector) -> Result<()> {
    if params.len() != gradient.len() {
        return Err(NnError::ParameterSizeMismatch {
            expected: params.len(),
            actual: gradient.len(),
        });
    }
    Ok(())
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sgd {
    _private: (),
}

impl Sgd {
    /// Creates plain SGD.
    pub fn new() -> Self {
        Sgd { _private: () }
    }
}

impl Optimizer for Sgd {
    fn name(&self) -> &'static str {
        "sgd"
    }

    fn step(&mut self, params: &mut Vector, gradient: &Vector, lr: f32) -> Result<()> {
        check_lengths(params, gradient)?;
        params.axpy(-lr, gradient)?;
        Ok(())
    }
}

/// SGD with classical momentum.
#[derive(Debug, Clone)]
pub struct Momentum {
    momentum: f32,
    velocity: Option<Vector>,
}

impl Momentum {
    /// Creates momentum SGD (the paper's Draco comparison uses 0.9).
    pub fn new(momentum: f32) -> Self {
        Momentum { momentum, velocity: None }
    }
}

impl Optimizer for Momentum {
    fn name(&self) -> &'static str {
        "momentum"
    }

    fn step(&mut self, params: &mut Vector, gradient: &Vector, lr: f32) -> Result<()> {
        check_lengths(params, gradient)?;
        let velocity = self.velocity.get_or_insert_with(|| Vector::zeros(params.len()));
        if velocity.len() != params.len() {
            *velocity = Vector::zeros(params.len());
        }
        velocity.scale(self.momentum);
        velocity.axpy(1.0, gradient)?;
        params.axpy(-lr, velocity)?;
        Ok(())
    }

    fn reset(&mut self) {
        self.velocity = None;
    }
}

/// RMSProp (Tieleman & Hinton, 2012) — the optimizer the paper's evaluation
/// uses ("we employ an RMSprop optimizer with a fixed initial learning rate
/// of 10⁻³").
#[derive(Debug, Clone)]
pub struct RmsProp {
    decay: f32,
    epsilon: f32,
    mean_square: Option<Vector>,
}

impl RmsProp {
    /// Creates RMSProp with the conventional decay of 0.9.
    pub fn new() -> Self {
        RmsProp::with_decay(0.9, 1e-8)
    }

    /// Creates RMSProp with an explicit decay and epsilon.
    pub fn with_decay(decay: f32, epsilon: f32) -> Self {
        RmsProp { decay, epsilon, mean_square: None }
    }
}

impl Default for RmsProp {
    fn default() -> Self {
        RmsProp::new()
    }
}

impl Optimizer for RmsProp {
    fn name(&self) -> &'static str {
        "rmsprop"
    }

    fn step(&mut self, params: &mut Vector, gradient: &Vector, lr: f32) -> Result<()> {
        check_lengths(params, gradient)?;
        let ms = self.mean_square.get_or_insert_with(|| Vector::zeros(params.len()));
        if ms.len() != params.len() {
            *ms = Vector::zeros(params.len());
        }
        for i in 0..params.len() {
            let g = gradient[i];
            ms[i] = self.decay * ms[i] + (1.0 - self.decay) * g * g;
            params[i] -= lr * g / (ms[i].sqrt() + self.epsilon);
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.mean_square = None;
    }
}

/// Adam (adaptive moments).
#[derive(Debug, Clone)]
pub struct Adam {
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    step: u64,
    first_moment: Option<Vector>,
    second_moment: Option<Vector>,
}

impl Adam {
    /// Creates Adam with the conventional hyper-parameters (0.9, 0.999).
    pub fn new() -> Self {
        Adam {
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            step: 0,
            first_moment: None,
            second_moment: None,
        }
    }
}

impl Default for Adam {
    fn default() -> Self {
        Adam::new()
    }
}

impl Optimizer for Adam {
    fn name(&self) -> &'static str {
        "adam"
    }

    fn step(&mut self, params: &mut Vector, gradient: &Vector, lr: f32) -> Result<()> {
        check_lengths(params, gradient)?;
        let d = params.len();
        let m = self.first_moment.get_or_insert_with(|| Vector::zeros(d));
        if m.len() != d {
            *m = Vector::zeros(d);
        }
        let v = self.second_moment.get_or_insert_with(|| Vector::zeros(d));
        if v.len() != d {
            *v = Vector::zeros(d);
        }
        self.step += 1;
        let t = self.step as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for i in 0..d {
            let g = gradient[i];
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = m[i] / bias1;
            let v_hat = v[i] / bias2;
            params[i] -= lr * m_hat / (v_hat.sqrt() + self.epsilon);
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.step = 0;
        self.first_moment = None;
        self.second_moment = None;
    }
}

/// Adagrad (per-coordinate accumulated squared gradients).
#[derive(Debug, Clone, Default)]
pub struct Adagrad {
    accumulator: Option<Vector>,
}

impl Adagrad {
    /// Creates Adagrad.
    pub fn new() -> Self {
        Adagrad { accumulator: None }
    }
}

impl Optimizer for Adagrad {
    fn name(&self) -> &'static str {
        "adagrad"
    }

    fn step(&mut self, params: &mut Vector, gradient: &Vector, lr: f32) -> Result<()> {
        check_lengths(params, gradient)?;
        let acc = self.accumulator.get_or_insert_with(|| Vector::zeros(params.len()));
        if acc.len() != params.len() {
            *acc = Vector::zeros(params.len());
        }
        for i in 0..params.len() {
            let g = gradient[i];
            acc[i] += g * g;
            params[i] -= lr * g / (acc[i].sqrt() + 1e-8);
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.accumulator = None;
    }
}

/// Adadelta (accumulated squared gradients and squared updates, no global
/// learning rate dependence in the classic formulation; the `lr` argument
/// scales the final update as TensorFlow does).
#[derive(Debug, Clone)]
pub struct Adadelta {
    rho: f32,
    epsilon: f32,
    acc_grad: Option<Vector>,
    acc_update: Option<Vector>,
}

impl Adadelta {
    /// Creates Adadelta with the conventional decay of 0.95.
    pub fn new() -> Self {
        Adadelta { rho: 0.95, epsilon: 1e-6, acc_grad: None, acc_update: None }
    }
}

impl Default for Adadelta {
    fn default() -> Self {
        Adadelta::new()
    }
}

impl Optimizer for Adadelta {
    fn name(&self) -> &'static str {
        "adadelta"
    }

    fn step(&mut self, params: &mut Vector, gradient: &Vector, lr: f32) -> Result<()> {
        check_lengths(params, gradient)?;
        let d = params.len();
        let eg = self.acc_grad.get_or_insert_with(|| Vector::zeros(d));
        if eg.len() != d {
            *eg = Vector::zeros(d);
        }
        let eu = self.acc_update.get_or_insert_with(|| Vector::zeros(d));
        if eu.len() != d {
            *eu = Vector::zeros(d);
        }
        for i in 0..d {
            let g = gradient[i];
            eg[i] = self.rho * eg[i] + (1.0 - self.rho) * g * g;
            let update = ((eu[i] + self.epsilon).sqrt() / (eg[i] + self.epsilon).sqrt()) * g;
            eu[i] = self.rho * eu[i] + (1.0 - self.rho) * update * update;
            params[i] -= lr * update;
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.acc_grad = None;
        self.acc_update = None;
    }
}

/// The optimizer choices exposed by the runner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Plain SGD.
    Sgd,
    /// SGD with momentum (field = momentum coefficient).
    Momentum(f32),
    /// RMSProp.
    RmsProp,
    /// Adam.
    Adam,
    /// Adagrad.
    Adagrad,
    /// Adadelta.
    Adadelta,
}

impl OptimizerKind {
    /// Builds the optimizer.
    pub fn build(&self) -> Box<dyn Optimizer> {
        match self {
            OptimizerKind::Sgd => Box::new(Sgd::new()),
            OptimizerKind::Momentum(m) => Box::new(Momentum::new(*m)),
            OptimizerKind::RmsProp => Box::new(RmsProp::new()),
            OptimizerKind::Adam => Box::new(Adam::new()),
            OptimizerKind::Adagrad => Box::new(Adagrad::new()),
            OptimizerKind::Adadelta => Box::new(Adadelta::new()),
        }
    }
}

/// Optional L1/L2 regularisation, mirroring the `--l1-regularize` /
/// `--l2-regularize` runner flags. Applied by adding the penalty gradient to
/// the data gradient before the optimizer step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Regularization {
    /// L1 coefficient (0 disables).
    pub l1: f32,
    /// L2 coefficient (0 disables).
    pub l2: f32,
}

impl Regularization {
    /// No regularisation.
    pub fn none() -> Self {
        Regularization { l1: 0.0, l2: 0.0 }
    }

    /// Adds the regularisation gradient (`l1 · sign(w) + l2 · w`) to
    /// `gradient` in place.
    ///
    /// # Errors
    ///
    /// Returns an error when lengths differ.
    pub fn apply(&self, gradient: &mut Vector, params: &Vector) -> Result<()> {
        if self.l1 == 0.0 && self.l2 == 0.0 {
            return Ok(());
        }
        if gradient.len() != params.len() {
            return Err(NnError::ParameterSizeMismatch {
                expected: params.len(),
                actual: gradient.len(),
            });
        }
        for i in 0..gradient.len() {
            gradient[i] += self.l1 * params[i].signum() + self.l2 * params[i];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimising f(w) = ||w - target||² with each optimizer must converge.
    fn optimise_quadratic(mut opt: Box<dyn Optimizer>, lr: f32, steps: usize) -> f32 {
        let target = Vector::from(vec![1.0, -2.0, 3.0]);
        let mut w = Vector::zeros(3);
        for _ in 0..steps {
            let grad = Vector::from_iter((0..3).map(|i| 2.0 * (w[i] - target[i])));
            opt.step(&mut w, &grad, lr).unwrap();
        }
        w.distance(&target)
    }

    #[test]
    fn all_optimizers_minimise_a_quadratic() {
        assert!(optimise_quadratic(Box::new(Sgd::new()), 0.1, 200) < 1e-3);
        assert!(optimise_quadratic(Box::new(Momentum::new(0.9)), 0.05, 200) < 1e-2);
        assert!(optimise_quadratic(Box::new(RmsProp::new()), 0.05, 500) < 1e-2);
        assert!(optimise_quadratic(Box::new(Adam::new()), 0.1, 800) < 1e-2);
        assert!(optimise_quadratic(Box::new(Adagrad::new()), 0.5, 800) < 1e-2);
        assert!(optimise_quadratic(Box::new(Adadelta::new()), 10.0, 2000) < 0.3);
    }

    #[test]
    fn sgd_step_is_exactly_lr_times_gradient() {
        let mut opt = Sgd::new();
        let mut w = Vector::from(vec![1.0, 1.0]);
        let g = Vector::from(vec![0.5, -0.5]);
        opt.step(&mut w, &g, 0.1).unwrap();
        assert_eq!(w.as_slice(), &[0.95, 1.05]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut opt = Momentum::new(0.5);
        let mut w = Vector::zeros(1);
        let g = Vector::from(vec![1.0]);
        opt.step(&mut w, &g, 1.0).unwrap(); // v=1, w=-1
        opt.step(&mut w, &g, 1.0).unwrap(); // v=1.5, w=-2.5
        assert!((w[0] + 2.5).abs() < 1e-6);
        opt.reset();
        let mut w2 = Vector::zeros(1);
        opt.step(&mut w2, &g, 1.0).unwrap();
        assert!((w2[0] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn mismatched_lengths_are_rejected() {
        let mut w = Vector::zeros(2);
        let g = Vector::zeros(3);
        assert!(Sgd::new().step(&mut w, &g, 0.1).is_err());
        assert!(Adam::new().step(&mut w, &g, 0.1).is_err());
        assert!(RmsProp::new().step(&mut w, &g, 0.1).is_err());
    }

    #[test]
    fn kind_builds_the_right_optimizer() {
        assert_eq!(OptimizerKind::Sgd.build().name(), "sgd");
        assert_eq!(OptimizerKind::Momentum(0.9).build().name(), "momentum");
        assert_eq!(OptimizerKind::RmsProp.build().name(), "rmsprop");
        assert_eq!(OptimizerKind::Adam.build().name(), "adam");
        assert_eq!(OptimizerKind::Adagrad.build().name(), "adagrad");
        assert_eq!(OptimizerKind::Adadelta.build().name(), "adadelta");
    }

    #[test]
    fn regularisation_adds_penalty_gradient() {
        let reg = Regularization { l1: 0.1, l2: 0.01 };
        let params = Vector::from(vec![2.0, -3.0]);
        let mut grad = Vector::zeros(2);
        reg.apply(&mut grad, &params).unwrap();
        assert!((grad[0] - (0.1 + 0.02)).abs() < 1e-6);
        assert!((grad[1] - (-0.1 - 0.03)).abs() < 1e-6);
        // none() is a no-op.
        let mut grad2 = Vector::from(vec![1.0, 1.0]);
        Regularization::none().apply(&mut grad2, &params).unwrap();
        assert_eq!(grad2.as_slice(), &[1.0, 1.0]);
        // Length mismatch is an error.
        assert!(reg.apply(&mut Vector::zeros(3), &params).is_err());
    }

    #[test]
    fn rmsprop_normalises_per_coordinate_scale() {
        // Coordinates with wildly different gradient scales should move at
        // comparable speeds under RMSProp.
        let mut opt = RmsProp::new();
        let mut w = Vector::zeros(2);
        for _ in 0..10 {
            let g = Vector::from(vec![100.0, 0.01]);
            opt.step(&mut w, &g, 0.01).unwrap();
        }
        let ratio = (w[0] / w[1]).abs();
        assert!(ratio < 10.0, "RMSProp should roughly equalise step sizes, ratio {ratio}");
    }
}
