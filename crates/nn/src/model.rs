//! The [`Sequential`] model: an ordered stack of layers with the flattened
//! parameter/gradient view the parameter-server protocol exchanges.

use crate::layer::Layer;
use crate::loss::{LossOutput, SoftmaxCrossEntropy};
use crate::{NnError, Result};
use agg_tensor::{Tensor, Vector};

/// A feed-forward stack of layers trained with softmax cross-entropy.
///
/// The model is the unit shipped between the parameter server and the
/// workers: [`Sequential::parameters`] flattens every layer's weights into a
/// single [`Vector`] (the `x` of Equation 2), [`Sequential::set_parameters`]
/// installs such a vector, and [`Sequential::gradient`] runs
/// forward + backward over a mini-batch and returns the flattened gradient
/// (the `G(x, ξ)` a worker submits).
#[derive(Debug)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    loss: SoftmaxCrossEntropy,
    input_shape: Vec<usize>,
    name: String,
}

/// Summary of one forward/backward evaluation over a mini-batch.
#[derive(Debug, Clone)]
pub struct BatchEvaluation {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Fraction of correctly classified samples in the batch.
    pub accuracy: f32,
    /// Flattened gradient of the mean loss with respect to every parameter.
    pub gradient: Vector,
}

impl Sequential {
    /// Creates an empty model expecting inputs of `input_shape` (excluding
    /// the batch axis).
    pub fn new(name: impl Into<String>, input_shape: &[usize]) -> Self {
        Sequential {
            layers: Vec::new(),
            loss: SoftmaxCrossEntropy::new(),
            input_shape: input_shape.to_vec(),
            name: name.into(),
        }
    }

    /// Appends a layer (builder style).
    #[must_use]
    pub fn with_layer(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Appends a layer in place.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Model name (used by experiment configs and reports).
    pub fn model_name(&self) -> &str {
        &self.name
    }

    /// The expected per-sample input shape.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Total number of trainable parameters (the `d` of the paper).
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Per-layer (name, parameter count) pairs, mirroring Table 1.
    pub fn layer_summary(&self) -> Vec<(&'static str, usize)> {
        self.layers.iter().map(|l| (l.name(), l.param_count())).collect()
    }

    /// Output shape (excluding batch) after every layer, validating the
    /// layer chain against the configured input shape.
    ///
    /// # Errors
    ///
    /// Returns the first layer's shape error if the chain is inconsistent.
    pub fn output_shape(&self) -> Result<Vec<usize>> {
        let mut shape = self.input_shape.clone();
        for layer in &self.layers {
            shape = layer.output_shape(&shape)?;
        }
        Ok(shape)
    }

    /// Approximate forward FLOPs for one sample, used by the cluster cost
    /// model.
    pub fn flops_per_sample(&self) -> u64 {
        let mut shape = self.input_shape.clone();
        let mut total = 0u64;
        for layer in &self.layers {
            total += layer.forward_flops(&shape);
            if let Ok(next) = layer.output_shape(&shape) {
                shape = next;
            }
        }
        total
    }

    /// Flattens all parameters into a single vector.
    pub fn parameters(&self) -> Vector {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            layer.collect_params(&mut out);
        }
        Vector::from(out)
    }

    /// Installs a flattened parameter vector.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParameterSizeMismatch`] when the vector length does
    /// not equal [`Sequential::param_count`].
    pub fn set_parameters(&mut self, params: &Vector) -> Result<()> {
        if params.len() != self.param_count() {
            return Err(NnError::ParameterSizeMismatch {
                expected: self.param_count(),
                actual: params.len(),
            });
        }
        let mut data = params.as_slice();
        for layer in &mut self.layers {
            let consumed = layer.load_params(data);
            data = &data[consumed..];
        }
        Ok(())
    }

    /// Flattens the currently accumulated gradients into a single vector.
    pub fn gradients(&self) -> Vector {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            layer.collect_grads(&mut out);
        }
        Vector::from(out)
    }

    /// Clears all accumulated gradients.
    pub fn zero_gradients(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Forward pass only (inference).
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train)?;
        }
        Ok(x)
    }

    /// Evaluates the loss on a batch without computing gradients.
    ///
    /// # Errors
    ///
    /// Propagates layer and loss errors.
    pub fn evaluate_loss(&mut self, input: &Tensor, labels: &[usize]) -> Result<LossOutput> {
        let logits = self.forward(input, false)?;
        self.loss.evaluate(&logits, labels)
    }

    /// Classification accuracy on a batch (inference mode).
    ///
    /// # Errors
    ///
    /// Propagates layer and loss errors.
    pub fn accuracy(&mut self, input: &Tensor, labels: &[usize]) -> Result<f32> {
        let out = self.evaluate_loss(input, labels)?;
        Ok(out.correct_predictions as f32 / labels.len().max(1) as f32)
    }

    /// Runs forward + backward on a mini-batch and returns loss, accuracy and
    /// the flattened gradient of the **mean** loss.
    ///
    /// Gradients are zeroed before the backward pass, so consecutive calls
    /// are independent (one call = one worker gradient estimate).
    ///
    /// # Errors
    ///
    /// Propagates layer and loss errors.
    pub fn gradient(&mut self, input: &Tensor, labels: &[usize]) -> Result<BatchEvaluation> {
        self.zero_gradients();
        let logits = self.forward(input, true)?;
        let loss_out = self.loss.evaluate(&logits, labels)?;
        let mut grad = loss_out.grad_logits.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad)?;
        }
        Ok(BatchEvaluation {
            loss: loss_out.loss,
            accuracy: loss_out.correct_predictions as f32 / labels.len().max(1) as f32,
            gradient: self.gradients(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::layers::{Dense, Relu};

    fn tiny_model(seed: u64) -> Sequential {
        Sequential::new("tiny", &[4])
            .with_layer(Box::new(Dense::new(4, 8, Init::HeNormal, seed)))
            .with_layer(Box::new(Relu::new()))
            .with_layer(Box::new(Dense::new(8, 3, Init::HeNormal, seed + 1)))
    }

    fn batch() -> (Tensor, Vec<usize>) {
        let x = Tensor::from_vec(&[2, 4], vec![0.5, -0.2, 0.1, 0.9, -0.5, 0.3, 0.8, -0.1]).unwrap();
        (x, vec![0, 2])
    }

    #[test]
    fn param_count_and_shapes() {
        let model = tiny_model(1);
        assert_eq!(model.param_count(), 4 * 8 + 8 + 8 * 3 + 3);
        assert_eq!(model.output_shape().unwrap(), vec![3]);
        assert_eq!(model.layer_count(), 3);
        assert!(model.flops_per_sample() > 0);
    }

    #[test]
    fn parameters_round_trip() {
        let model = tiny_model(2);
        let params = model.parameters();
        let mut other = tiny_model(3);
        assert_ne!(other.parameters(), params);
        other.set_parameters(&params).unwrap();
        assert_eq!(other.parameters(), params);
        assert!(other.set_parameters(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut model = tiny_model(4);
        let (x, labels) = batch();
        let analytic = model.gradient(&x, &labels).unwrap().gradient;
        let params = model.parameters();
        let eps = 1e-2f32;
        // Spot-check a spread of coordinates (full check would be slow).
        for &i in &[0usize, 7, 13, 20, 40, analytic.len() - 1] {
            let mut plus = params.clone();
            plus[i] += eps;
            model.set_parameters(&plus).unwrap();
            let lp = model.evaluate_loss(&x, &labels).unwrap().loss;
            let mut minus = params.clone();
            minus[i] -= eps;
            model.set_parameters(&minus).unwrap();
            let lm = model.evaluate_loss(&x, &labels).unwrap().loss;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic[i]).abs() < 2e-2,
                "param {i}: numeric {numeric} vs analytic {}",
                analytic[i]
            );
        }
    }

    #[test]
    fn gradient_calls_are_independent() {
        let mut model = tiny_model(5);
        let (x, labels) = batch();
        let g1 = model.gradient(&x, &labels).unwrap().gradient;
        let g2 = model.gradient(&x, &labels).unwrap().gradient;
        assert_eq!(g1, g2, "gradients must not accumulate across calls");
    }

    #[test]
    fn training_reduces_loss() {
        let mut model = tiny_model(6);
        let (x, labels) = batch();
        let initial = model.evaluate_loss(&x, &labels).unwrap().loss;
        // 50 steps of plain gradient descent on the same batch.
        for _ in 0..50 {
            let eval = model.gradient(&x, &labels).unwrap();
            let mut params = model.parameters();
            params.axpy(-0.5, &eval.gradient).unwrap();
            model.set_parameters(&params).unwrap();
        }
        let final_loss = model.evaluate_loss(&x, &labels).unwrap().loss;
        assert!(
            final_loss < initial * 0.5,
            "loss should drop substantially: {initial} -> {final_loss}"
        );
        assert_eq!(model.accuracy(&x, &labels).unwrap(), 1.0);
    }

    #[test]
    fn accuracy_is_between_zero_and_one() {
        let mut model = tiny_model(7);
        let (x, labels) = batch();
        let acc = model.accuracy(&x, &labels).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }
}
