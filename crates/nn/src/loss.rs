//! Loss functions.

use crate::{NnError, Result};
use agg_tensor::ops::{cross_entropy, softmax};
use agg_tensor::Tensor;

/// Softmax cross-entropy over a batch of logits.
///
/// Returns the mean loss and the gradient of the mean loss with respect to
/// the logits — the gradient the workers send to the parameter server (after
/// backpropagating it through the model).
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftmaxCrossEntropy {
    _private: (),
}

/// Result of one loss evaluation.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Gradient of the mean loss with respect to the logits, shaped like the
    /// logits tensor.
    pub grad_logits: Tensor,
    /// Per-sample probability assigned to the correct class (useful for
    /// diagnostics).
    pub correct_probabilities: Vec<f32>,
    /// Number of samples whose argmax prediction equals the label.
    pub correct_predictions: usize,
}

impl SoftmaxCrossEntropy {
    /// Creates the loss.
    pub fn new() -> Self {
        SoftmaxCrossEntropy { _private: () }
    }

    /// Evaluates the loss and its gradient for a batch of logits
    /// `[batch, classes]` and integer labels.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LabelCountMismatch`] or [`NnError::LabelOutOfRange`]
    /// when labels and logits disagree, and [`NnError::BadInputShape`] when
    /// the logits are not rank 2.
    pub fn evaluate(&self, logits: &Tensor, labels: &[usize]) -> Result<LossOutput> {
        let shape = logits.shape();
        if shape.len() != 2 {
            return Err(NnError::BadInputShape {
                layer: "softmax-cross-entropy",
                expected: "[batch, classes]".to_string(),
                actual: shape.to_vec(),
            });
        }
        let (batch, classes) = (shape[0], shape[1]);
        if labels.len() != batch {
            return Err(NnError::LabelCountMismatch { inputs: batch, labels: labels.len() });
        }
        let x = logits.as_slice();
        let mut grad = vec![0.0f32; batch * classes];
        let mut total_loss = 0.0;
        let mut correct_probabilities = Vec::with_capacity(batch);
        let mut correct_predictions = 0;
        for n in 0..batch {
            let label = labels[n];
            if label >= classes {
                return Err(NnError::LabelOutOfRange { label, classes });
            }
            let row = &x[n * classes..(n + 1) * classes];
            let probs = softmax(row);
            total_loss += cross_entropy(&probs, label);
            correct_probabilities.push(probs[label]);
            if agg_tensor::ops::argmax(row) == Some(label) {
                correct_predictions += 1;
            }
            let grad_row = &mut grad[n * classes..(n + 1) * classes];
            for (c, &p) in probs.iter().enumerate() {
                grad_row[c] = (p - if c == label { 1.0 } else { 0.0 }) / batch as f32;
            }
        }
        Ok(LossOutput {
            loss: total_loss / batch as f32,
            grad_logits: Tensor::from_vec(&[batch, classes], grad)?,
            correct_probabilities,
            correct_predictions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(&[1, 3], vec![100.0, 0.0, 0.0]).unwrap();
        let out = loss.evaluate(&logits, &[0]).unwrap();
        assert!(out.loss < 1e-3);
        assert_eq!(out.correct_predictions, 1);
    }

    #[test]
    fn uniform_logits_give_log_classes_loss() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(&[1, 4], vec![0.0; 4]).unwrap();
        let out = loss.evaluate(&logits, &[2]).unwrap();
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_sums_to_zero_per_sample() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let out = loss.evaluate(&logits, &[0, 2]).unwrap();
        let g = out.grad_logits.as_slice();
        assert!((g[0] + g[1] + g[2]).abs() < 1e-6);
        assert!((g[3] + g[4] + g[5]).abs() < 1e-6);
        // The true-class gradient is negative (probability below one).
        assert!(g[0] < 0.0);
        assert!(g[5] < 0.0);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let loss = SoftmaxCrossEntropy::new();
        let base = vec![0.3, -0.2, 0.7];
        let labels = [1usize];
        let logits = Tensor::from_vec(&[1, 3], base.clone()).unwrap();
        let analytic = loss.evaluate(&logits, &labels).unwrap().grad_logits;
        let eps = 1e-3;
        for i in 0..3 {
            let mut plus = base.clone();
            plus[i] += eps;
            let mut minus = base.clone();
            minus[i] -= eps;
            let lp =
                loss.evaluate(&Tensor::from_vec(&[1, 3], plus).unwrap(), &labels).unwrap().loss;
            let lm =
                loss.evaluate(&Tensor::from_vec(&[1, 3], minus).unwrap(), &labels).unwrap().loss;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic.as_slice()[i]).abs() < 1e-3,
                "coordinate {i}: numeric {numeric} vs analytic {}",
                analytic.as_slice()[i]
            );
        }
    }

    #[test]
    fn validation_errors() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(&[1, 3], vec![0.0; 3]).unwrap();
        assert!(matches!(
            loss.evaluate(&logits, &[0, 1]).unwrap_err(),
            NnError::LabelCountMismatch { .. }
        ));
        assert!(matches!(
            loss.evaluate(&logits, &[5]).unwrap_err(),
            NnError::LabelOutOfRange { .. }
        ));
        assert!(loss.evaluate(&Tensor::zeros(&[3]), &[0]).is_err());
    }
}
