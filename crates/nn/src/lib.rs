//! # agg-nn — the training substrate
//!
//! The AggregaThor paper builds on TensorFlow; this crate is the
//! reproduction's from-scratch substitute: a small, dependency-free
//! neural-network library with exactly the pieces the paper's evaluation
//! needs.
//!
//! * [`layer`] / [`layers`] — dense, 2-D convolution, max-pooling, ReLU,
//!   flatten and dropout layers with hand-written backpropagation.
//! * [`loss`] — softmax cross-entropy (the image-classification loss used
//!   throughout the paper's evaluation).
//! * [`model`] — [`model::Sequential`], which chains layers and exposes the
//!   flattened parameter / gradient vectors the parameter-server protocol
//!   exchanges.
//! * [`models`] — ready-made architectures: the paper's Table 1 CNN
//!   (~1.75 M parameters), a fast MLP for convergence experiments, and a
//!   large model standing in for ResNet50 in the Figure 5(b) scalability
//!   experiment.
//! * [`optim`] — SGD, Momentum, Adam, RMSProp, Adagrad and Adadelta update
//!   rules (the `--optimizer` choices of the original runner).
//! * [`schedule`] — fixed, polynomial and exponential learning-rate
//!   schedules (the `--learning-rate` choices of the original runner).
//! * [`init`] — weight initialisers.
//!
//! ```
//! use agg_nn::models;
//! use agg_nn::model::Sequential;
//!
//! let model = models::synthetic_mlp(16, &[32], 4, 1);
//! assert!(model.param_count() > 0);
//! ```

pub mod error;
pub mod init;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod model;
pub mod models;
pub mod optim;
pub mod schedule;

pub use error::NnError;
pub use layer::Layer;
pub use model::Sequential;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NnError>;
