//! Property tests pinning the selection-network order-statistic kernels to
//! the frozen pre-arena oracle in [`agg_core::reference`].
//!
//! The vertical network path (n ≤ 32: Batcher networks over lane-major
//! tiles, NaN canonicalised to `+∞`) must reproduce the reference for every
//! order-statistic rule — median, trimmed mean, MeaMed and Bulyan (whose
//! second phase is the closest-to-median window) — across:
//!
//! * every worker count the networks serve in practice (`n ∈ 1..=25`, odd
//!   and even, crossing the paper's n = 19),
//! * duplicates-heavy inputs (values drawn from a seven-element set, so
//!   compare–exchange ties are everywhere and any unstable-ordering bug
//!   would surface),
//! * NaN/±∞ rows (the canonicalisation pre-pass and per-lane finite counts
//!   must reproduce the scalar kernels' drop-NaN-then-select semantics),
//! * ragged lane tails (`d` free in `1..=41`, rarely a multiple of the 16-
//!   or 8-wide lane groups, so short leading/trailing tiles are exercised
//!   constantly),
//! * row counts beyond the network cap (n > 32 falls back to the scalar
//!   quickselect path, which must stay pinned too).
//!
//! Like `batch_matches_reference.rs`, the reference pinning is **up to
//! ties**: the median and trimmed mean are functions of the sorted value
//! multiset alone and must pin exactly even on tie-saturated inputs, while
//! MeaMed and Bulyan's closest-to-median window legitimately diverges from
//! the pre-arena kernels on exact ties (the reference broke them by
//! submission order, the arena deterministically prefers the smaller
//! value), so on tie-heavy inputs those two are pinned for Ok/Err agreement
//! against the reference and for **value identity between the network and
//! quickselect paths** — which is what keeps the `n ≤ 32` dispatch an
//! implementation detail rather than observable behaviour. Shard
//! equivalence across the new kernels is pinned by
//! `tests/shard_equivalence.rs` (every rule × S ∈ {1, 2, 3, 7} — shard
//! boundaries land mid-tile on purpose); here a column-view probe checks
//! the same property at adversarially misaligned offsets.

use agg_core::{reference, GarConfig, GarKind, GradientBatch};
use agg_tensor::Vector;
use proptest::prelude::*;

const TOLERANCE: f32 = 1e-5;

/// The rules whose per-coordinate reductions are order statistics, i.e.
/// everything the selection networks serve.
const ORDER_STAT_KINDS: [GarKind; 4] =
    [GarKind::Median, GarKind::TrimmedMean, GarKind::MeaMed, GarKind::Bulyan];

/// The order-statistic rules that are functions of each column's sorted
/// value multiset alone — immune to tie-breaking order, so they pin to the
/// reference exactly even on duplicates-saturated inputs.
const TIE_INSENSITIVE_KINDS: [GarKind; 2] = [GarKind::Median, GarKind::TrimmedMean];

fn close(actual: f32, expected: f32) -> bool {
    if actual.is_nan() && expected.is_nan() {
        return true;
    }
    if actual == expected {
        return true; // covers equal infinities and exact matches
    }
    (actual - expected).abs() <= TOLERANCE * expected.abs().max(1.0)
}

/// Mirrors the leniency of `batch_matches_reference.rs`: where the
/// pre-arena kernels broke non-finite ties arbitrarily (MeaMed / Bulyan
/// windows short of finite values), any non-finite output matches any
/// other.
fn assert_rules_match_reference(kinds: &[GarKind], f: usize, gradients: &[Vector]) {
    for &kind in kinds {
        let live = GarConfig::new(kind, f).build().expect("buildable rule");
        let arena = live.aggregate(gradients);
        let legacy = reference::aggregate(kind, f, gradients);
        let lenient = matches!(kind, GarKind::MeaMed | GarKind::Bulyan);
        match (arena, legacy) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.len(), b.len(), "{kind}: dimension mismatch");
                for c in 0..a.len() {
                    if lenient && !a[c].is_finite() && !b[c].is_finite() {
                        continue;
                    }
                    assert!(
                        close(a[c], b[c]),
                        "{kind} (f={f}, n={}, d={}): coordinate {c}: network {} vs reference {}",
                        gradients.len(),
                        gradients[0].len(),
                        a[c],
                        b[c]
                    );
                }
            }
            (Err(_), Err(_)) => {}
            (a, b) => panic!("{kind}: network {a:?} disagrees with reference {b:?} on success"),
        }
    }
}

/// On tie-heavy inputs MeaMed/Bulyan window membership is not pinned to
/// the reference, but whether the rule *succeeds* still is.
fn assert_rules_agree_on_success(kinds: &[GarKind], f: usize, gradients: &[Vector]) {
    for &kind in kinds {
        let live = GarConfig::new(kind, f).build().expect("buildable rule");
        let arena = live.aggregate(gradients).is_ok();
        let legacy = reference::aggregate(kind, f, gradients).is_ok();
        assert_eq!(arena, legacy, "{kind} (f={f}): success disagrees with the reference");
    }
}

/// A duplicates-heavy coordinate: seven distinct values, so every column of
/// a worker-count batch carries ties.
fn duplicate_heavy() -> impl Strategy<Value = f32> {
    (0usize..7).prop_map(|i| [-2.0f32, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0][i])
}

/// A duplicates-heavy coordinate that is sometimes NaN/±∞.
fn duplicate_heavy_corrupt() -> impl Strategy<Value = f32> {
    prop_oneof![
        duplicate_heavy().boxed(),
        duplicate_heavy().boxed(),
        duplicate_heavy().boxed(),
        duplicate_heavy().boxed(),
        (0usize..3).prop_map(|i| [f32::NAN, f32::INFINITY, f32::NEG_INFINITY][i]).boxed(),
    ]
}

fn rows<S: Strategy<Value = f32>>(
    n: impl Strategy<Value = usize>,
    coord: impl Fn() -> S + Clone + 'static,
) -> impl Strategy<Value = Vec<Vector>> {
    (n, 1usize..42).prop_flat_map(move |(n, d)| {
        prop::collection::vec(prop::collection::vec(coord(), d).prop_map(Vector::from), n.max(1))
    })
}

proptest! {
    #[test]
    fn network_rules_match_reference_on_duplicate_heavy_batches(
        gs in rows(1usize..26, duplicate_heavy),
        f in 0usize..3,
    ) {
        assert_rules_match_reference(&TIE_INSENSITIVE_KINDS, f, &gs);
        assert_rules_agree_on_success(&ORDER_STAT_KINDS, f, &gs);
    }

    #[test]
    fn network_rules_match_reference_on_corrupt_batches(
        gs in rows(1usize..26, duplicate_heavy_corrupt),
        f in 0usize..3,
    ) {
        assert_rules_match_reference(&TIE_INSENSITIVE_KINDS, f, &gs);
        assert_rules_agree_on_success(&ORDER_STAT_KINDS, f, &gs);
    }

    #[test]
    fn network_rules_match_reference_on_continuous_batches(
        gs in rows(3usize..26, || -8.0f32..8.0),
        f in 0usize..3,
    ) {
        // Continuous inputs never land on tie sets: all four rules pin.
        assert_rules_match_reference(&ORDER_STAT_KINDS, f, &gs);
    }

    #[test]
    fn scalar_fallback_beyond_the_network_cap_matches_reference(
        gs in rows(33usize..41, duplicate_heavy_corrupt),
        f in 0usize..3,
    ) {
        // n > MAX_NETWORK_N: the quickselect path must stay pinned too.
        assert_rules_match_reference(&TIE_INSENSITIVE_KINDS, f, &gs);
        assert_rules_agree_on_success(&ORDER_STAT_KINDS, f, &gs);
    }

    #[test]
    fn network_and_quickselect_paths_agree_value_identically(
        gs in rows(1usize..26, duplicate_heavy_corrupt),
        trim in 0usize..4,
    ) {
        // The n ≤ 32 dispatch must be unobservable: same values (NaN-aware
        // equality; `-0.0 == 0.0` is fine, both are the same number) from
        // the network tiles and the scalar gather, including the NaN and
        // ±∞ regimes and the trimmed-mean median fallback.
        let batch = GradientBatch::from_vectors(&gs).unwrap();
        let same = |a: agg_tensor::Result<Vector>, b: agg_tensor::Result<Vector>, what: &str| {
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.len(), b.len());
                    for c in 0..a.len() {
                        prop_assert!(
                            a[c] == b[c] || (a[c].is_nan() && b[c].is_nan()),
                            "{} diverged at {}: network {} vs quickselect {}",
                            what, c, a[c], b[c]
                        );
                    }
                }
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "{}: {:?} vs {:?} disagree on success", what, a, b),
            }
        };
        same(
            batch.coordinate_median(),
            batch.coordinate_median_quickselect(),
            "median",
        );
        same(
            batch.coordinate_trimmed_mean(trim),
            batch.coordinate_trimmed_mean_quickselect(trim),
            "trimmed-mean",
        );
        let keep = (gs.len() / 2).max(1);
        same(
            batch.mean_around_median(keep),
            batch.coordinate_mean_around_median_quickselect(keep),
            "mean-around-median",
        );
    }

    #[test]
    fn misaligned_column_views_match_the_full_width_kernels(
        gs in rows(1usize..26, duplicate_heavy_corrupt),
        start_frac in 0.0f64..1.0,
        keep in 1usize..8,
    ) {
        // Shard boundaries land anywhere relative to the 16/8-wide lane
        // grid; a view's kernels must be bit-identical to the same columns
        // of the full-width result (short leading tiles, narrow tails and
        // the NaN-tile dispatch must not leak across columns).
        let batch = GradientBatch::from_vectors(&gs).unwrap();
        let d = batch.dim();
        let start = ((d as f64) * start_frac) as usize;
        let cols = start..d;
        let view = batch.columns(cols.clone());
        let pairs: [(agg_tensor::Result<Vector>, agg_tensor::Result<Vector>); 3] = [
            (batch.coordinate_median(), view.median(None)),
            (batch.coordinate_trimmed_mean(2), view.trimmed_mean(2)),
            (batch.mean_around_median(keep), view.mean_around_median(None, keep)),
        ];
        for (full, windowed) in pairs {
            match (full, windowed) {
                (Ok(full), Ok(windowed)) => {
                    let expected = &full.as_slice()[cols.clone()];
                    for (c, (&a, &b)) in windowed.as_slice().iter().zip(expected).enumerate() {
                        prop_assert!(
                            a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
                            "column {} of view {}..{}: {} vs {}", c, cols.start, cols.end, a, b
                        );
                    }
                }
                // The full kernel can fail on an all-NaN column *outside*
                // the view, so a failing full result pins nothing here.
                (Err(_), _) => {}
                // The view's columns are a subset of the full kernel's: the
                // view failing where the full kernel succeeded is a bug.
                (Ok(a), Err(b)) => {
                    prop_assert!(false, "view failed ({b:?}) where full succeeded ({a:?})");
                }
            }
        }
    }
}
