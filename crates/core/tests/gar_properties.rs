//! Property-based tests of the Byzantine-resilience invariants the paper
//! states for each gradient aggregation rule.

use agg_core::{Average, Bulyan, CoordinateMedian, Gar, MultiKrum, TrimmedMean};
use agg_tensor::Vector;
use proptest::prelude::*;

/// Strategy: an honest gradient cluster of dimension `d` centred on `center`
/// with bounded spread.
fn honest_cluster(n: usize, d: usize) -> impl Strategy<Value = (Vec<Vector>, f32)> {
    (-10.0f32..10.0).prop_flat_map(move |center| {
        prop::collection::vec(prop::collection::vec(-1.0f32..1.0, d), n).prop_map(move |noise| {
            let grads = noise
                .into_iter()
                .map(|nv| Vector::from_iter(nv.into_iter().map(|x| center + 0.1 * x)))
                .collect();
            (grads, center)
        })
    })
}

/// Strategy: a Byzantine gradient with unbounded coordinates, possibly
/// non-finite.
fn byzantine_gradient(d: usize) -> impl Strategy<Value = Vector> {
    prop::collection::vec(
        prop_oneof![-1e9f32..1e9, Just(f32::NAN), Just(f32::INFINITY), Just(f32::NEG_INFINITY),],
        d,
    )
    .prop_map(Vector::from)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Multi-Krum's output stays within the honest bounding box, no matter
    /// what the f Byzantine gradients are.
    #[test]
    fn multi_krum_output_bounded_by_honest_box(
        (honest, _center) in honest_cluster(11, 4),
        byz in prop::collection::vec(byzantine_gradient(4), 4),
    ) {
        let mut all = honest.clone();
        all.extend(byz);
        let gar = MultiKrum::new(4).unwrap();
        let out = gar.aggregate(&all).unwrap();
        for c in 0..4 {
            let lo = honest.iter().map(|g| g[c]).fold(f32::INFINITY, f32::min);
            let hi = honest.iter().map(|g| g[c]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(out[c] >= lo - 1e-3 && out[c] <= hi + 1e-3,
                "coordinate {} = {} outside honest range [{}, {}]", c, out[c], lo, hi);
        }
    }

    /// Multi-Krum never selects a Byzantine index when Byzantine gradients
    /// are far from the honest cluster.
    #[test]
    fn multi_krum_never_selects_distant_byzantine(
        (honest, center) in honest_cluster(11, 3),
        offsets in prop::collection::vec(100.0f32..1e6, 4),
    ) {
        let mut all = honest;
        for off in &offsets {
            all.push(Vector::filled(3, center + off));
        }
        let gar = MultiKrum::new(4).unwrap();
        let selected = gar.select(&all).unwrap();
        prop_assert!(selected.iter().all(|&i| i < 11), "selected {:?}", selected);
    }

    /// Bulyan's output is within the honest coordinate range (strong
    /// resilience, Definition 2 in miniature).
    #[test]
    fn bulyan_output_bounded_by_honest_box(
        (honest, _center) in honest_cluster(15, 3),
        byz in prop::collection::vec(byzantine_gradient(3), 3),
    ) {
        let mut all = honest.clone();
        all.extend(byz);
        let gar = Bulyan::new(3).unwrap();
        let out = gar.aggregate(&all).unwrap();
        for c in 0..3 {
            let lo = honest.iter().map(|g| g[c]).fold(f32::INFINITY, f32::min);
            let hi = honest.iter().map(|g| g[c]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(out[c] >= lo - 1e-3 && out[c] <= hi + 1e-3);
        }
    }

    /// The coordinate-wise median is bounded by honest values per coordinate
    /// as long as honest workers form a strict majority.
    #[test]
    fn median_bounded_per_coordinate(
        (honest, _center) in honest_cluster(7, 3),
        byz in prop::collection::vec(byzantine_gradient(3), 3),
    ) {
        let mut all = honest.clone();
        all.extend(byz);
        let gar = CoordinateMedian::new(3);
        let out = gar.aggregate(&all).unwrap();
        for c in 0..3 {
            let lo = honest.iter().map(|g| g[c]).fold(f32::INFINITY, f32::min);
            let hi = honest.iter().map(|g| g[c]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(out[c] >= lo - 1e-3 && out[c] <= hi + 1e-3);
        }
    }

    /// Trimmed mean with trim = f is bounded by honest values per coordinate.
    #[test]
    fn trimmed_mean_bounded_per_coordinate(
        (honest, _center) in honest_cluster(7, 3),
        byz in prop::collection::vec(byzantine_gradient(3), 2),
    ) {
        let mut all = honest.clone();
        all.extend(byz);
        let gar = TrimmedMean::new(2);
        let out = gar.aggregate(&all).unwrap();
        for c in 0..3 {
            let lo = honest.iter().map(|g| g[c]).fold(f32::INFINITY, f32::min);
            let hi = honest.iter().map(|g| g[c]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(out[c] >= lo - 1e-3 && out[c] <= hi + 1e-3);
        }
    }

    /// Aggregation output is invariant (up to float tolerance) under
    /// permutation of the submission order for every robust rule.
    ///
    /// Byzantine gradients are kept far from the honest cluster: when an
    /// "attacker" submits a gradient statistically indistinguishable from the
    /// honest ones, score ties can legitimately break differently under
    /// permutation (and such a gradient is harmless anyway).
    #[test]
    fn robust_rules_are_permutation_invariant(
        (honest, center) in honest_cluster(13, 3),
        offsets in prop::collection::vec(100.0f32..1e6, 2),
        seed in 0u64..1000,
    ) {
        let mut all = honest;
        for off in &offsets {
            all.push(Vector::filled(3, center + off));
        }
        let mut permuted = all.clone();
        // Deterministic pseudo-shuffle driven by the seed.
        let n = permuted.len();
        for i in 0..n {
            let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            permuted.swap(i, j);
        }
        // Exact score ties (identical honest gradients) may legitimately
        // break differently under permutation; the outputs can then differ by
        // at most the honest per-coordinate spread. Real gradients have
        // essentially zero probability of exact ties, so the spread-based
        // tolerance is the honest statement of the invariant.
        let honest = &all[..13];
        let tolerance: Vec<f32> = (0..3)
            .map(|c| {
                let lo = honest.iter().map(|g| g[c]).fold(f32::INFINITY, f32::min);
                let hi = honest.iter().map(|g| g[c]).fold(f32::NEG_INFINITY, f32::max);
                (hi - lo) + 1e-3
            })
            .collect();
        for gar in [
            Box::new(MultiKrum::new(2).unwrap()) as Box<dyn Gar>,
            Box::new(Bulyan::new(2).unwrap()) as Box<dyn Gar>,
            Box::new(CoordinateMedian::new(2)) as Box<dyn Gar>,
        ] {
            let a = gar.aggregate(&all).unwrap();
            let b = gar.aggregate(&permuted).unwrap();
            for c in 0..3 {
                prop_assert!((a[c] - b[c]).abs() <= tolerance[c],
                    "{} not permutation invariant at coordinate {}", gar.name(), c);
            }
        }
    }

    /// With zero Byzantine workers and f = 0, Multi-Krum with the maximal m
    /// equals the average of the selected (n - 2) gradients, hence stays very
    /// close to the overall average for a tight cluster.
    #[test]
    fn multi_krum_close_to_average_without_byzantine(
        (honest, _center) in honest_cluster(9, 3),
    ) {
        let avg = Average::new().aggregate(&honest).unwrap();
        let mk = MultiKrum::new(0).unwrap().aggregate(&honest).unwrap();
        for c in 0..3 {
            prop_assert!((avg[c] - mk[c]).abs() < 0.2);
        }
    }
}
