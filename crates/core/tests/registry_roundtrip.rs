//! Integration tests of the GAR registry: every rule registered in
//! `registry.rs` must resolve by name, report the paper-correct resilience
//! level, and carry configuration/properties that survive a serde round-trip.

use agg_core::{GarConfig, GarKind, GarProperties, Resilience};

/// The resilience level the paper assigns to each rule: plain and selective
/// averaging provide none, the Krum/median families are weakly resilient
/// (Definition 1), and Bulyan is strongly resilient (Definition 2).
fn paper_resilience(kind: GarKind) -> Resilience {
    match kind {
        GarKind::Average | GarKind::SelectiveAverage => Resilience::None,
        GarKind::Median
        | GarKind::TrimmedMean
        | GarKind::MeaMed
        | GarKind::GeometricMedian
        | GarKind::Krum
        | GarKind::MultiKrum => Resilience::Weak,
        GarKind::Bulyan => Resilience::Strong,
    }
}

#[test]
fn every_registered_rule_resolves_by_name() {
    for kind in GarKind::ALL {
        let parsed: GarKind = kind
            .name()
            .parse()
            .unwrap_or_else(|e| panic!("canonical name '{}' failed to parse: {e}", kind.name()));
        assert_eq!(parsed, kind);

        let gar = GarConfig::new(kind, 1)
            .build()
            .unwrap_or_else(|e| panic!("registered rule '{}' failed to build: {e}", kind.name()));
        assert_eq!(gar.name(), kind.name(), "built rule disagrees about its name");
    }
}

#[test]
fn runner_style_specs_resolve_for_every_rule() {
    for kind in GarKind::ALL {
        let spec = format!("{}:f=2", kind.name());
        let config = GarConfig::parse(&spec).unwrap();
        assert_eq!(config.kind, kind);
        assert_eq!(config.f, 2);
    }
}

#[test]
fn every_rule_reports_the_paper_correct_resilience() {
    for kind in GarKind::ALL {
        let gar = GarConfig::new(kind, 2).build().unwrap();
        let properties = gar.properties();
        assert_eq!(
            properties.resilience,
            paper_resilience(kind),
            "{} reports the wrong resilience level",
            kind.name()
        );
    }
}

#[test]
fn declared_f_propagates_into_properties_of_resilient_rules() {
    for kind in GarKind::ALL {
        if paper_resilience(kind) == Resilience::None {
            continue;
        }
        for f in [1usize, 3, 5] {
            let properties = GarConfig::new(kind, f).build().unwrap().properties();
            assert_eq!(properties.f, f, "{} dropped its declared f", kind.name());
            assert!(
                properties.minimum_workers > f,
                "{} must need more than f workers",
                kind.name()
            );
        }
    }
}

#[test]
fn gar_properties_round_trip_through_serde() {
    for kind in GarKind::ALL {
        let properties = GarConfig::new(kind, 2).build().unwrap().properties();
        let json = serde_json::to_string(&properties).unwrap();
        let back: GarProperties = serde_json::from_str(&json).unwrap();
        assert_eq!(back, properties, "{} properties changed across serde", kind.name());
    }
}

#[test]
fn gar_config_round_trips_through_serde() {
    for kind in GarKind::ALL {
        for config in [GarConfig::new(kind, 4), GarConfig::new(kind, 1).with_selection(3)] {
            let json = serde_json::to_string(&config).unwrap();
            let back: GarConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(back, config);
        }
    }
}

#[test]
fn gar_kind_round_trips_through_serde() {
    for kind in GarKind::ALL {
        let json = serde_json::to_string(&kind).unwrap();
        let back: GarKind = serde_json::from_str(&json).unwrap();
        assert_eq!(back, kind);
    }
}

#[test]
fn unknown_names_are_rejected() {
    assert!("draco".parse::<GarKind>().is_err());
    assert!(GarConfig::parse("no-such-rule:f=1").is_err());
}
