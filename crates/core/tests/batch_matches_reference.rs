//! Property tests pinning the fused `GradientBatch` kernels to the frozen
//! pre-arena reference implementations in [`agg_core::reference`].
//!
//! Every live rule must reproduce its reference within 1e-5 (relative to the
//! reference magnitude, absolute near zero) across random worker counts,
//! dimensions and declared `f` — including batches carrying NaN/±∞
//! gradients, where the paper's non-finite policy must hold: corrupt
//! gradients map to `+∞` distance and are never selected while enough finite
//! candidates exist.
//!
//! The pinning is up to ties: where the pre-arena kernels themselves were
//! order- or partition-dependent (values exactly equidistant from a median,
//! equal Krum scores, non-finite garbage competing at key `+∞`), the arena
//! kernels choose deterministically instead, and continuous random inputs
//! never land on those measure-zero sets.

use agg_core::{reference, GarConfig, GarKind, GradientBatch, MultiKrum};
use agg_tensor::{stats, Vector};
use proptest::prelude::*;

const TOLERANCE: f32 = 1e-5;

/// Component-wise "matches the reference" check: equal non-finite behaviour,
/// otherwise within 1e-5 of the reference value.
fn close(actual: f32, expected: f32) -> bool {
    if actual.is_nan() && expected.is_nan() {
        return true;
    }
    if actual == expected {
        return true; // covers equal infinities and exact matches
    }
    (actual - expected).abs() <= TOLERANCE * expected.abs().max(1.0)
}

fn assert_vectors_close(kind: GarKind, actual: &Vector, expected: &Vector) {
    // MeaMed and Bulyan's second phase rank every unusable value (NaN, ±∞)
    // at key +∞; when a coordinate has fewer usable values than the keep
    // count, the pre-arena kernel breaks that tie arbitrarily (unstable
    // selection), so which non-finite garbage reaches the mean is not part
    // of its contract. In that regime any non-finite output matches any
    // other; everywhere else the comparison is strict.
    let lenient_non_finite = matches!(kind, GarKind::MeaMed | GarKind::Bulyan);
    assert_eq!(actual.len(), expected.len(), "{kind}: dimension mismatch");
    for c in 0..actual.len() {
        if lenient_non_finite && !actual[c].is_finite() && !expected[c].is_finite() {
            continue;
        }
        assert!(
            close(actual[c], expected[c]),
            "{kind}: coordinate {c} diverged: arena {} vs reference {}",
            actual[c],
            expected[c]
        );
    }
}

/// Runs every rule through both paths and checks they agree on success and
/// on the produced aggregate.
fn assert_all_rules_match(f: usize, gradients: &[Vector]) {
    for kind in GarKind::ALL {
        let live = GarConfig::new(kind, f).build().expect("buildable rule");
        let arena = live.aggregate(gradients);
        let legacy = reference::aggregate(kind, f, gradients);
        match (arena, legacy) {
            (Ok(a), Ok(b)) => assert_vectors_close(kind, &a, &b),
            (Err(_), Err(_)) => {}
            (a, b) => panic!("{kind}: arena {a:?} disagrees with reference {b:?} on success"),
        }
    }
}

fn finite_rows() -> impl Strategy<Value = Vec<Vector>> {
    (5usize..24, 1usize..24).prop_flat_map(|(n, d)| {
        prop::collection::vec(prop::collection::vec(-8.0f32..8.0, d).prop_map(Vector::from), n)
    })
}

/// A mostly-finite coordinate that occasionally turns non-finite, mirroring
/// real malicious submissions (the paper: "actual malicious workers will
/// send NaN/±Inf coordinates").
fn sometimes_corrupt() -> impl Strategy<Value = f32> {
    prop_oneof![
        (-8.0f32..8.0).boxed(),
        (-8.0f32..8.0).boxed(),
        (-8.0f32..8.0).boxed(),
        Just(f32::NAN).boxed(),
        Just(f32::INFINITY).boxed(),
        Just(f32::NEG_INFINITY).boxed(),
    ]
}

/// Finite batch with up to `n/5` rows replaced by corrupt submissions.
fn corrupt_rows() -> impl Strategy<Value = Vec<Vector>> {
    (6usize..24, 1usize..16).prop_flat_map(|(n, d)| {
        let honest =
            prop::collection::vec(prop::collection::vec(-8.0f32..8.0, d).prop_map(Vector::from), n);
        let corrupt = prop::collection::vec(
            prop::collection::vec(sometimes_corrupt(), d).prop_map(Vector::from),
            n / 5 + 1,
        );
        (honest, corrupt).prop_map(|(mut rows, corrupt)| {
            let n = rows.len();
            for (k, bad) in corrupt.into_iter().enumerate() {
                let slot = (k * 3 + 1) % n;
                rows[slot] = bad;
            }
            rows
        })
    })
}

proptest! {
    #[test]
    fn all_rules_match_reference_on_finite_batches(gs in finite_rows(), f in 0usize..3) {
        assert_all_rules_match(f, &gs);
    }

    #[test]
    fn all_rules_match_reference_on_corrupt_batches(gs in corrupt_rows(), f in 0usize..3) {
        assert_all_rules_match(f, &gs);
    }

    #[test]
    fn triangular_distances_equal_dense_reference(gs in corrupt_rows()) {
        let batch = GradientBatch::from_vectors(&gs).unwrap();
        let triangular = batch.pairwise_squared_distances();
        let dense = reference::distance_matrix(&gs);
        for (i, dense_row) in dense.iter().enumerate() {
            for (j, &dense_dist) in dense_row.iter().enumerate() {
                // Same inner kernel on the same operands, each pair computed
                // once: the expansion must agree exactly, including the +∞
                // mapping of non-finite distances.
                prop_assert_eq!(triangular.get(i, j), dense_dist);
                prop_assert_eq!(triangular.get(i, j), triangular.get(j, i));
            }
        }
    }

    #[test]
    fn corrupt_gradients_are_never_selected(gs in finite_rows(), f in 1usize..3) {
        // Corrupt exactly f rows; Multi-Krum with a valid precondition must
        // select none of them (their distances are +∞ to everything).
        let n = gs.len();
        if n < 2 * f + 3 {
            return;
        }
        let mut gs = gs;
        let d = gs[0].len();
        for k in 0..f {
            let slot = (k * 5 + 2) % n;
            gs[slot] = Vector::from(vec![f32::NAN; d]);
        }
        let corrupt: Vec<usize> = (0..f).map(|k| (k * 5 + 2) % n).collect();
        let selected = MultiKrum::new(f).unwrap().select(&gs).unwrap();
        for i in &selected {
            prop_assert!(!corrupt.contains(i), "corrupt row {i} was selected: {selected:?}");
        }
    }

    #[test]
    fn k_smallest_matches_stable_sort_reference(
        values in prop::collection::vec(sometimes_corrupt(), 1..40),
        k_frac in 0.0f64..1.0,
    ) {
        let k = ((values.len() as f64) * k_frac) as usize;
        let fast = stats::k_smallest_indices(&values, k).unwrap();
        // The pre-optimisation reference: stable full sort with NaN → +∞.
        let mut reference_idx: Vec<usize> = (0..values.len()).collect();
        reference_idx.sort_by(|&a, &b| {
            let va = if values[a].is_nan() { f32::INFINITY } else { values[a] };
            let vb = if values[b].is_nan() { f32::INFINITY } else { values[b] };
            va.partial_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal)
        });
        reference_idx.truncate(k);
        prop_assert_eq!(fast, reference_idx);
    }

    #[test]
    fn batch_column_kernels_match_slice_stats(gs in corrupt_rows()) {
        let batch = GradientBatch::from_vectors(&gs).unwrap();
        let d = gs[0].len();
        let mut column = Vec::with_capacity(gs.len());
        let median = batch.coordinate_median();
        let std = batch.coordinate_std().unwrap();
        let nan_mean = batch.coordinate_nan_mean().unwrap();
        for c in 0..d {
            column.clear();
            column.extend(gs.iter().map(|g| g[c]));
            match (&median, stats::median(&column)) {
                (Ok(m), Ok(expected)) => prop_assert!(close(m[c], expected)),
                (Err(_), Err(_)) => {}
                // The batch kernel fails on the first all-NaN column, the
                // slice kernel per column — a later column can still be
                // computable by the slice kernel.
                (Err(_), Ok(_)) => {}
                (Ok(_), Err(_)) => panic!("batch median succeeded where slice median failed"),
            }
            prop_assert!(close(std[c], stats::variance(&column).sqrt()));
            prop_assert!(close(nan_mean[c], stats::nan_mean(&column).unwrap_or(0.0)));
        }
    }
}
