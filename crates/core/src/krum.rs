//! Krum (Blanchard et al., 2017): the `m = 1` special case of Multi-Krum.
//!
//! Kept as a distinct type because the paper repeatedly contrasts the two
//! ("choosing m = 1 hampers the speed of convergence") and the Figure 5 / 6
//! experiments need both configurations side by side.

use crate::gar::{Gar, GarProperties, Resilience};
use crate::multi_krum::MultiKrum;
use crate::{resilience, Result};
use agg_tensor::{GradientBatch, Vector};

/// The original Krum rule: select the single gradient with the smallest sum
/// of distances to its `n − f − 2` nearest neighbours.
///
/// The output is always exactly one of the submitted gradients, which is the
/// property the paper exploits when discussing variance: Krum discards the
/// information of all other workers, so it converges in `O(1/√1)` steps-worth
/// of samples instead of `O(1/√m)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Krum {
    inner: MultiKrum,
}

impl Krum {
    /// Creates Krum declared to tolerate `f` Byzantine workers.
    pub fn new(f: usize) -> Self {
        let inner =
            MultiKrum::with_selection(f, 1).expect("m = 1 is always a valid selection size");
        Krum { inner }
    }

    /// Declared number of Byzantine workers.
    pub fn f(&self) -> usize {
        self.inner.f()
    }

    /// Index of the gradient Krum would select for this batch.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Krum::aggregate`].
    pub fn select_index(&self, gradients: &[Vector]) -> Result<usize> {
        Ok(self.inner.select(gradients)?[0])
    }
}

impl Default for Krum {
    fn default() -> Self {
        Krum::new(0)
    }
}

impl Gar for Krum {
    fn properties(&self) -> GarProperties {
        GarProperties {
            name: "krum",
            resilience: Resilience::Weak,
            f: self.f(),
            minimum_workers: resilience::multi_krum_min_workers(self.f()),
            tolerates_non_finite: true,
        }
    }

    fn aggregate_batch(&self, batch: &GradientBatch) -> Result<Vector> {
        self.inner.aggregate_batch(batch)
    }

    fn aggregate_batch_with_distances(
        &self,
        batch: &GradientBatch,
        distances: &agg_tensor::DistanceMatrix,
    ) -> Result<Vector> {
        self.inner.aggregate_batch_with_distances(batch, distances)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_tensor::rng::{gaussian_vector, seeded_rng};

    #[test]
    fn output_is_one_of_the_inputs() {
        let mut rng = seeded_rng(11);
        let gs: Vec<Vector> = (0..9).map(|_| gaussian_vector(&mut rng, 5, 0.0, 1.0)).collect();
        let gar = Krum::new(2);
        let out = gar.aggregate(&gs).unwrap();
        assert!(gs.iter().any(|g| g == &out));
    }

    #[test]
    fn selects_a_central_gradient_not_the_outlier() {
        let mut gs = vec![
            Vector::from(vec![1.0, 1.0]),
            Vector::from(vec![1.1, 0.9]),
            Vector::from(vec![0.9, 1.1]),
            Vector::from(vec![1.05, 1.0]),
            Vector::from(vec![0.95, 1.0]),
            Vector::from(vec![1.0, 1.05]),
        ];
        gs.push(Vector::from(vec![1e6, -1e6]));
        let gar = Krum::new(1);
        let idx = gar.select_index(&gs).unwrap();
        assert!(idx < 6);
    }

    #[test]
    fn requires_2f_plus_3_workers() {
        let gar = Krum::new(3);
        assert!(gar.aggregate(&vec![Vector::zeros(1); 8]).is_err());
        assert!(gar.aggregate(&vec![Vector::zeros(1); 9]).is_ok());
    }

    #[test]
    fn properties_name_is_krum() {
        assert_eq!(Krum::new(1).name(), "krum");
        assert_eq!(Krum::default().f(), 0);
    }
}
