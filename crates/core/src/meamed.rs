//! Mean-around-median (MeaMed), one of the median-based rules of Xie et al.
//! (2018) cited by the paper's related work and evaluation.
//!
//! For every coordinate, the rule keeps the `n − f` values closest to the
//! coordinate-wise median and averages them. It sits between the plain
//! median (which keeps one value's worth of information per coordinate) and
//! the trimmed mean (which always removes exactly the two tails), and is
//! weakly Byzantine-resilient for `f < n/2`.
//!
//! The kernel (shared with Bulyan's second phase) sorts each column via the
//! vertical selection networks of `agg_tensor::sortnet` and grows the
//! closest-to-median window with the one two-pointer walk both rules use.

use crate::gar::{ensure_batch_nonempty, Gar, GarProperties, Resilience};
use crate::{resilience, Result};
use agg_tensor::{GradientBatch, Vector};

/// Coordinate-wise mean of the `n − f` values closest to the median.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeaMed {
    f: usize,
}

impl MeaMed {
    /// Creates the rule declared to tolerate `f` Byzantine workers.
    pub fn new(f: usize) -> Self {
        MeaMed { f }
    }

    /// Declared number of Byzantine workers.
    pub fn f(&self) -> usize {
        self.f
    }
}

impl Default for MeaMed {
    fn default() -> Self {
        MeaMed::new(0)
    }
}

impl Gar for MeaMed {
    fn properties(&self) -> GarProperties {
        GarProperties {
            name: "meamed",
            resilience: Resilience::Weak,
            f: self.f,
            minimum_workers: resilience::median_min_workers(self.f),
            tolerates_non_finite: true,
        }
    }

    fn aggregate_batch(&self, batch: &GradientBatch) -> Result<Vector> {
        let n = ensure_batch_nonempty("meamed", batch)?;
        resilience::check_median("meamed", n, self.f)?;
        let keep = (n - self.f).max(1);
        Ok(batch.mean_around_median(keep)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equals_average_with_f_zero_and_clean_input() {
        let gar = MeaMed::new(0);
        let gs = vec![Vector::from(vec![1.0, 4.0]), Vector::from(vec![3.0, 8.0])];
        assert_eq!(gar.aggregate(&gs).unwrap().as_slice(), &[2.0, 6.0]);
    }

    #[test]
    fn excludes_the_f_most_extreme_values_per_coordinate() {
        let gar = MeaMed::new(1);
        let gs = vec![
            Vector::from(vec![1.0]),
            Vector::from(vec![2.0]),
            Vector::from(vec![3.0]),
            Vector::from(vec![1e9]),
        ];
        // keep = 3 closest to median(=2.5): {1, 2, 3} -> mean 2.
        assert_eq!(gar.aggregate(&gs).unwrap().as_slice(), &[2.0]);
    }

    #[test]
    fn output_stays_in_honest_range_under_attack() {
        let gar = MeaMed::new(2);
        let mut gs: Vec<Vector> = (0..5).map(|i| Vector::from(vec![i as f32 * 0.1])).collect();
        gs.push(Vector::from(vec![-1e8]));
        gs.push(Vector::from(vec![1e8]));
        let out = gar.aggregate(&gs).unwrap();
        assert!(out[0] >= 0.0 && out[0] <= 0.4, "out {}", out[0]);
    }

    #[test]
    fn tolerates_non_finite_values() {
        let gar = MeaMed::new(1);
        let gs =
            vec![Vector::from(vec![1.0]), Vector::from(vec![2.0]), Vector::from(vec![f32::NAN])];
        let out = gar.aggregate(&gs).unwrap();
        assert!(out.is_finite());
        assert!(out[0] >= 1.0 && out[0] <= 2.0);
    }

    #[test]
    fn requires_honest_majority() {
        let gar = MeaMed::new(3);
        assert!(gar.aggregate(&vec![Vector::zeros(1); 6]).is_err());
        assert!(gar.aggregate(&vec![Vector::zeros(1); 7]).is_ok());
    }

    #[test]
    fn properties() {
        let p = MeaMed::new(2).properties();
        assert_eq!(p.name, "meamed");
        assert_eq!(p.resilience, Resilience::Weak);
        assert!(p.tolerates_non_finite);
        assert_eq!(MeaMed::default().f(), 0);
    }
}
