//! The [`Gar`] trait: the interface every gradient aggregation rule exposes to
//! the parameter server.

use crate::Result;
use agg_tensor::{DistanceMatrix, GradientBatch, Vector};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The Byzantine-resilience level a rule provides, as defined in §2.2 of the
/// paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Resilience {
    /// No resilience: a single Byzantine gradient can steer the update
    /// arbitrarily (e.g. plain averaging).
    None,
    /// Weak resilience: convergence to *some* flat region is guaranteed, but
    /// the attacker may steer which one (Definition 1).
    Weak,
    /// Strong resilience: in every coordinate the output stays within
    /// `O(1/√d)` of a correct gradient (Definition 2).
    Strong,
}

impl fmt::Display for Resilience {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Resilience::None => "none",
            Resilience::Weak => "weak",
            Resilience::Strong => "strong",
        };
        f.write_str(s)
    }
}

/// Static properties of a gradient aggregation rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GarProperties {
    /// Short machine-readable name (e.g. `"multi-krum"`), matching the
    /// `--aggregator` flag of the original runner.
    pub name: &'static str,
    /// Resilience level provided by the rule.
    pub resilience: Resilience,
    /// Declared number of Byzantine workers the rule is configured to
    /// tolerate.
    pub f: usize,
    /// Minimum number of submitted gradients required for `f` Byzantine
    /// workers.
    pub minimum_workers: usize,
    /// Whether the rule tolerates non-finite coordinates without an external
    /// sanitisation pass.
    pub tolerates_non_finite: bool,
}

/// A Gradient Aggregation Rule (GAR).
///
/// A GAR consumes the `n` gradient estimates submitted in one synchronous
/// step (Equation 4 of the paper) and produces the single vector the server
/// applies to the model. Implementations must be deterministic functions of
/// their input: the server may be replicated and each replica must compute an
/// identical update (§6 of the paper).
///
/// Implementations are `Send + Sync` so the parameter-server simulator can
/// evaluate them from worker threads and the benchmarks can share them.
pub trait Gar: Send + Sync + fmt::Debug {
    /// Static properties (name, resilience, preconditions).
    fn properties(&self) -> GarProperties;

    /// Aggregates one round of gradients packed into a contiguous
    /// [`GradientBatch`] arena — the hot-path entry point.
    ///
    /// The arena guarantees dimensional consistency by construction, so
    /// implementations only check their own preconditions (worker count,
    /// corruption). Callers that hold gradients as separate vectors use
    /// [`Gar::aggregate`], which packs them once and delegates here.
    ///
    /// # Errors
    ///
    /// Implementations return [`crate::AggregationError`] when the batch is
    /// empty, too small for the declared `f`, or entirely corrupt.
    fn aggregate_batch(&self, batch: &GradientBatch) -> Result<Vector>;

    /// Aggregates one round when the pairwise squared-distance matrix over
    /// the batch rows has already been computed — the entry point of the
    /// streaming round engine, which accumulates distances incrementally as
    /// rows complete instead of recomputing them behind the round barrier.
    ///
    /// The default ignores the matrix and delegates to
    /// [`Gar::aggregate_batch`]: coordinate-wise rules never consult
    /// distances, so for them the two entry points are the same function.
    /// Distance-based rules (Krum, Multi-Krum, Bulyan and their sharded
    /// wrappers) override this to select directly from the supplied matrix;
    /// because the streaming accumulator reproduces the batch kernels
    /// bit-for-bit, both entry points return identical bits there too.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Gar::aggregate_batch`]; overriding
    /// implementations additionally reject a matrix whose `n` disagrees with
    /// the batch.
    fn aggregate_batch_with_distances(
        &self,
        batch: &GradientBatch,
        _distances: &DistanceMatrix,
    ) -> Result<Vector> {
        self.aggregate_batch(batch)
    }

    /// Aggregates one round of gradients (thin adapter over
    /// [`Gar::aggregate_batch`]: validates, packs the arena, aggregates).
    ///
    /// # Errors
    ///
    /// Implementations return [`crate::AggregationError`] when the submission
    /// violates the rule's preconditions (too few gradients, inconsistent
    /// dimensions) or when every candidate is corrupt.
    fn aggregate(&self, gradients: &[Vector]) -> Result<Vector> {
        let rule = self.properties().name;
        validate_batch(rule, gradients)?;
        let batch = GradientBatch::from_vectors(gradients)
            .expect("validate_batch guarantees a non-empty, consistent batch");
        self.aggregate_batch(&batch)
    }

    /// Convenience accessor for the rule name.
    fn name(&self) -> &'static str {
        self.properties().name
    }
}

/// Validates that a batch of gradients is non-empty and dimensionally
/// consistent, returning the common dimension.
///
/// Every concrete rule calls this before touching the data, so the error
/// behaviour is uniform across rules.
///
/// # Errors
///
/// Returns [`crate::AggregationError::NoGradients`] or
/// [`crate::AggregationError::DimensionMismatch`].
pub fn validate_batch(rule: &'static str, gradients: &[Vector]) -> Result<usize> {
    use crate::AggregationError;
    if gradients.is_empty() {
        return Err(AggregationError::NoGradients(rule));
    }
    let d = gradients[0].len();
    for (i, g) in gradients.iter().enumerate() {
        if g.len() != d {
            return Err(AggregationError::DimensionMismatch {
                index: i,
                expected: d,
                actual: g.len(),
            });
        }
    }
    Ok(d)
}

/// Validates that an arena batch is non-empty, returning the gradient count.
///
/// The arena enforces dimensional consistency at construction, so this is
/// the only structural check an [`Gar::aggregate_batch`] implementation
/// needs before its rule-specific preconditions.
///
/// # Errors
///
/// Returns [`crate::AggregationError::NoGradients`].
pub fn ensure_batch_nonempty(rule: &'static str, batch: &GradientBatch) -> Result<usize> {
    if batch.is_empty() {
        return Err(crate::AggregationError::NoGradients(rule));
    }
    Ok(batch.n())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AggregationError;

    #[test]
    fn resilience_ordering_matches_strength() {
        assert!(Resilience::None < Resilience::Weak);
        assert!(Resilience::Weak < Resilience::Strong);
        assert_eq!(Resilience::Strong.to_string(), "strong");
    }

    #[test]
    fn validate_batch_accepts_consistent_input() {
        let gs = vec![Vector::zeros(3), Vector::zeros(3)];
        assert_eq!(validate_batch("test", &gs).unwrap(), 3);
    }

    #[test]
    fn validate_batch_rejects_empty_and_ragged() {
        assert_eq!(validate_batch("test", &[]).unwrap_err(), AggregationError::NoGradients("test"));
        let gs = vec![Vector::zeros(3), Vector::zeros(4)];
        assert!(matches!(
            validate_batch("test", &gs).unwrap_err(),
            AggregationError::DimensionMismatch { index: 1, expected: 3, actual: 4 }
        ));
    }
}
