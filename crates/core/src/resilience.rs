//! Byzantine-resilience preconditions and the admissible selection sizes
//! proven in the paper's appendix.
//!
//! * Multi-Krum (weak resilience): `n ≥ 2f + 3`, any `m ≤ n − f − 2`
//!   (Theorem 1).
//! * Bulyan over Multi-Krum (strong resilience): `n ≥ 4f + 3`, any
//!   `m ≤ n − 2f − 2` (Theorem 2).
//! * The slowdown-optimal choices are `m̃ = n − f − 2` (weak) and
//!   `m̃ = n − 2f − 2` (strong), giving a slowdown of `Ω(√(m̃/n))` versus
//!   plain averaging.

use crate::{AggregationError, GarKind, Result};

/// Minimum number of workers for weak resilience with Multi-Krum.
pub fn multi_krum_min_workers(f: usize) -> usize {
    2 * f + 3
}

/// Minimum number of workers for strong resilience with Bulyan.
pub fn bulyan_min_workers(f: usize) -> usize {
    4 * f + 3
}

/// Minimum number of workers for the coordinate-wise median / trimmed-mean
/// family (an honest majority in every coordinate).
pub fn median_min_workers(f: usize) -> usize {
    2 * f + 1
}

/// Largest admissible Multi-Krum selection size: `m ≤ n − f − 2`.
///
/// # Errors
///
/// Returns [`AggregationError::NotEnoughWorkers`] when `n < 2f + 3`.
pub fn multi_krum_max_m(n: usize, f: usize) -> Result<usize> {
    check_multi_krum(n, f)?;
    Ok(n - f - 2)
}

/// Largest admissible Bulyan selection size: `m ≤ n − 2f − 2`.
///
/// # Errors
///
/// Returns [`AggregationError::NotEnoughWorkers`] when `n < 4f + 3`.
pub fn bulyan_max_m(n: usize, f: usize) -> Result<usize> {
    check_bulyan(n, f)?;
    Ok(n - 2 * f - 2)
}

/// Number of Krum neighbours used in the score: `n − f − 2`.
///
/// # Errors
///
/// Returns [`AggregationError::NotEnoughWorkers`] when `n < 2f + 3`.
pub fn krum_neighbour_count(n: usize, f: usize) -> Result<usize> {
    check_multi_krum(n, f)?;
    Ok(n - f - 2)
}

/// Number of selection iterations Bulyan performs: `θ = n − 2f`.
///
/// # Errors
///
/// Returns [`AggregationError::NotEnoughWorkers`] when `n < 4f + 3`.
pub fn bulyan_selection_count(n: usize, f: usize) -> Result<usize> {
    check_bulyan(n, f)?;
    Ok(n - 2 * f)
}

/// Number of values averaged around the coordinate-wise median inside
/// Bulyan: `β = θ − 2f = n − 4f`.
///
/// # Errors
///
/// Returns [`AggregationError::NotEnoughWorkers`] when `n < 4f + 3`.
pub fn bulyan_beta(n: usize, f: usize) -> Result<usize> {
    check_bulyan(n, f)?;
    Ok(n - 4 * f)
}

/// Checks the Multi-Krum precondition `n ≥ 2f + 3`.
///
/// # Errors
///
/// Returns [`AggregationError::NotEnoughWorkers`] when violated.
pub fn check_multi_krum(n: usize, f: usize) -> Result<()> {
    let required = multi_krum_min_workers(f);
    if n < required {
        return Err(AggregationError::NotEnoughWorkers {
            rule: "multi-krum",
            f,
            required,
            actual: n,
        });
    }
    Ok(())
}

/// Checks the Bulyan precondition `n ≥ 4f + 3`.
///
/// # Errors
///
/// Returns [`AggregationError::NotEnoughWorkers`] when violated.
pub fn check_bulyan(n: usize, f: usize) -> Result<()> {
    let required = bulyan_min_workers(f);
    if n < required {
        return Err(AggregationError::NotEnoughWorkers { rule: "bulyan", f, required, actual: n });
    }
    Ok(())
}

/// Checks the coordinate-median / trimmed-mean precondition `n ≥ 2f + 1`.
///
/// # Errors
///
/// Returns [`AggregationError::NotEnoughWorkers`] when violated.
pub fn check_median(rule: &'static str, n: usize, f: usize) -> Result<()> {
    let required = median_min_workers(f);
    if n < required {
        return Err(AggregationError::NotEnoughWorkers { rule, f, required, actual: n });
    }
    Ok(())
}

/// Largest `f` tolerable by Multi-Krum with `n` workers (`⌊(n − 3) / 2⌋`),
/// or `None` when even `f = 0` is not supported.
pub fn max_f_multi_krum(n: usize) -> Option<usize> {
    if n < 3 {
        None
    } else {
        Some((n - 3) / 2)
    }
}

/// Largest `f` tolerable by Bulyan with `n` workers (`⌊(n − 3) / 4⌋`), or
/// `None` when even `f = 0` is not supported.
pub fn max_f_bulyan(n: usize) -> Option<usize> {
    if n < 3 {
        None
    } else {
        Some((n - 3) / 4)
    }
}

/// Minimum live worker count below which `rule` loses its resilience
/// guarantee for a declared `f`: `2f + 3` for the Krum family, `4f + 3` for
/// Bulyan, `2f + 1` for the coordinate-wise family, and `1` for the
/// non-resilient averaging rules (they aggregate anything, so only an empty
/// round is inadmissible).
///
/// The elastic-membership engine consults this floor on every churn
/// transition and refuses to aggregate once the live set shrinks past it.
pub fn resilience_floor(rule: GarKind, f: usize) -> usize {
    match rule {
        GarKind::Krum | GarKind::MultiKrum => multi_krum_min_workers(f),
        GarKind::Bulyan => bulyan_min_workers(f),
        GarKind::Median | GarKind::TrimmedMean | GarKind::MeaMed | GarKind::GeometricMedian => {
            median_min_workers(f)
        }
        GarKind::Average | GarKind::SelectiveAverage => 1,
    }
}

/// Largest total Byzantine worker count the two-level aggregation tree
/// tolerates when every group runs its GAR with a declared per-group budget
/// `f_group` and the root runs its GAR over the group outputs with a declared
/// budget `f_root`:
///
/// ```text
/// f_total_max = (f_group + 1) · (f_root + 1) − 1.
/// ```
///
/// The capture-counting argument: a group's GAR withstands up to `f_group`
/// Byzantine members, so the adversary must spend `f_group + 1` workers to
/// *capture* a group (control its output arbitrarily). The root withstands up
/// to `f_root` captured groups. An adversary with `f_total` workers captures
/// at most `⌊f_total / (f_group + 1)⌋` groups (concentrating workers in the
/// fewest groups is optimal — exactly the colluding-group attack in
/// `agg-attacks`), so the tree is safe iff
/// `⌊f_total / (f_group + 1)⌋ ≤ f_root`, i.e.
/// `f_total ≤ (f_group + 1)(f_root + 1) − 1`. Workers left over after the
/// last whole capture sit inside still-honest-majority groups where their
/// group's GAR absorbs them (they are within that group's `f_group` budget by
/// construction of the division).
pub fn composed_max_f(f_group: usize, f_root: usize) -> usize {
    (f_group + 1) * (f_root + 1) - 1
}

/// Number of groups that can *contribute* to the root round: a group
/// contributes iff its (live) member count clears its rule's resilience
/// floor for the declared per-group `f`. Undersized groups — the ragged last
/// group of an indivisible `n`, or a group shrunk by churn evictions — are
/// excluded here rather than aggregated unsoundly or panicked over.
pub fn contributing_groups(
    group_sizes: impl IntoIterator<Item = usize>,
    group_rule: GarKind,
    f_group: usize,
) -> usize {
    let floor = resilience_floor(group_rule, f_group);
    group_sizes.into_iter().filter(|&size| size >= floor).count()
}

/// Checks the composed two-level precondition for a tree round over groups of
/// the given sizes: the number of contributing groups (per
/// [`contributing_groups`]) must itself clear the *root* rule's resilience
/// floor for `f_root`. This is the tree-tier counterpart of the flat
/// `check_*` functions — the engine consults it after every churn transition
/// and refuses the round (never panics, never under-counts) when it fails.
///
/// # Errors
///
/// Returns [`AggregationError::NotEnoughWorkers`] naming the root rule when
/// too few groups contribute.
pub fn check_tree(
    group_rule: GarKind,
    f_group: usize,
    root_rule: GarKind,
    f_root: usize,
    group_sizes: impl IntoIterator<Item = usize>,
) -> Result<()> {
    let contributing = contributing_groups(group_sizes, group_rule, f_group);
    let required = resilience_floor(root_rule, f_root);
    if contributing < required {
        return Err(AggregationError::NotEnoughWorkers {
            rule: root_rule.name(),
            f: f_root,
            required,
            actual: contributing,
        });
    }
    Ok(())
}

/// Smallest identical-row clique that *captures* a Krum-family selection
/// over `n` rows: `⌈n / 2⌉`. A clique of `c` identical rows gives each
/// member `c − 1` zero-distance neighbours; once `c − 1 ≥ n − c` — i.e.
/// `c ≥ ⌈n / 2⌉` — every clique member's Krum score is the minimum possible
/// and the selection is theirs regardless of the declared `f`. The
/// contrapositive is the budget a placement policy can rely on: a group of
/// size `n` *survives* any planted clique of at most
/// `clique_capture_threshold(n) − 1 = ⌊(n − 1) / 2⌋` members.
///
/// This is the arithmetic behind reputation-driven containment reshuffles:
/// concentrating suspects into sacrificial groups (each fully captured, then
/// out-voted at the root) while every remaining group stays below this
/// threshold.
pub fn clique_capture_threshold(n: usize) -> usize {
    n.div_ceil(2)
}

/// The theoretical slowdown ratio `√(m̃ / n)` of Multi-Krum / AggregaThor
/// versus plain averaging, in the absence of Byzantine workers
/// (Theorems 1 & 2 part (ii)).
///
/// Returns `None` when the configuration is inadmissible.
pub fn theoretical_slowdown(n: usize, f: usize, strong: bool) -> Option<f64> {
    let m_tilde = if strong { bulyan_max_m(n, f).ok()? } else { multi_krum_max_m(n, f).ok()? };
    Some((m_tilde as f64 / n as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_capture_threshold_is_the_majority_point() {
        // c identical rows capture iff each member sees c − 1 zero-distance
        // neighbours out-numbering the n − c outsiders.
        assert_eq!(clique_capture_threshold(5), 3);
        assert_eq!(clique_capture_threshold(6), 3);
        assert_eq!(clique_capture_threshold(7), 4);
        // The survivable budget is one less than the capture point.
        for n in 2..64 {
            let survivable = clique_capture_threshold(n) - 1;
            assert_eq!(survivable, (n - 1) / 2, "n={n}");
        }
    }

    #[test]
    fn paper_setup_is_admissible() {
        // The paper's main setup: 19 workers, f = 4.
        assert!(check_multi_krum(19, 4).is_ok());
        assert!(check_bulyan(19, 4).is_ok());
        assert_eq!(multi_krum_max_m(19, 4).unwrap(), 13);
        assert_eq!(bulyan_max_m(19, 4).unwrap(), 9);
        assert_eq!(bulyan_selection_count(19, 4).unwrap(), 11);
        assert_eq!(bulyan_beta(19, 4).unwrap(), 3);
    }

    #[test]
    fn preconditions_reject_too_few_workers() {
        assert!(check_multi_krum(10, 4).is_err());
        assert!(check_bulyan(18, 4).is_err());
        assert!(check_median("median", 8, 4).is_err());
        assert!(check_median("median", 9, 4).is_ok());
    }

    #[test]
    fn boundary_values_are_exact() {
        assert!(check_multi_krum(11, 4).is_ok());
        assert!(check_multi_krum(10, 4).is_err());
        assert!(check_bulyan(19, 4).is_ok());
        assert!(check_bulyan(7, 1).is_ok());
        assert!(check_bulyan(6, 1).is_err());
    }

    #[test]
    fn max_f_is_inverse_of_min_workers() {
        for n in 3..64usize {
            let f = max_f_multi_krum(n).unwrap();
            assert!(multi_krum_min_workers(f) <= n);
            assert!(multi_krum_min_workers(f + 1) > n);
            let f = max_f_bulyan(n).unwrap();
            assert!(bulyan_min_workers(f) <= n);
            assert!(bulyan_min_workers(f + 1) > n);
        }
        assert_eq!(max_f_multi_krum(2), None);
        assert_eq!(max_f_bulyan(1), None);
        // With 19 workers (the paper): Multi-Krum tolerates f=8, Bulyan f=4.
        assert_eq!(max_f_multi_krum(19), Some(8));
        assert_eq!(max_f_bulyan(19), Some(4));
    }

    #[test]
    fn max_f_is_the_exact_boundary_of_check_for_all_n_up_to_128() {
        // Property: `max_f_*` is *exactly* the largest f for which `check_*`
        // passes — f itself is admissible, f + 1 is not — for every n the
        // engine could plausibly run with.
        for n in 0..=128usize {
            match max_f_multi_krum(n) {
                Some(f) => {
                    assert!(check_multi_krum(n, f).is_ok(), "multi-krum n={n} f={f}");
                    assert!(check_multi_krum(n, f + 1).is_err(), "multi-krum n={n} f={}", f + 1);
                }
                None => assert!(check_multi_krum(n, 0).is_err(), "multi-krum n={n} f=0"),
            }
            match max_f_bulyan(n) {
                Some(f) => {
                    assert!(check_bulyan(n, f).is_ok(), "bulyan n={n} f={f}");
                    assert!(check_bulyan(n, f + 1).is_err(), "bulyan n={n} f={}", f + 1);
                }
                None => assert!(check_bulyan(n, 0).is_err(), "bulyan n={n} f=0"),
            }
        }
    }

    #[test]
    fn resilience_floor_matches_the_per_rule_preconditions() {
        for f in 0..16usize {
            assert_eq!(resilience_floor(GarKind::Krum, f), multi_krum_min_workers(f));
            assert_eq!(resilience_floor(GarKind::MultiKrum, f), multi_krum_min_workers(f));
            assert_eq!(resilience_floor(GarKind::Bulyan, f), bulyan_min_workers(f));
            assert_eq!(resilience_floor(GarKind::Median, f), median_min_workers(f));
            assert_eq!(resilience_floor(GarKind::TrimmedMean, f), median_min_workers(f));
            assert_eq!(resilience_floor(GarKind::MeaMed, f), median_min_workers(f));
            assert_eq!(resilience_floor(GarKind::GeometricMedian, f), median_min_workers(f));
            assert_eq!(resilience_floor(GarKind::Average, f), 1);
            assert_eq!(resilience_floor(GarKind::SelectiveAverage, f), 1);

            // The floor is exactly the n where `check_*` flips from Err to Ok.
            let n = resilience_floor(GarKind::MultiKrum, f);
            assert!(check_multi_krum(n, f).is_ok());
            assert!(n == 0 || check_multi_krum(n - 1, f).is_err());
            let n = resilience_floor(GarKind::Bulyan, f);
            assert!(check_bulyan(n, f).is_ok());
            assert!(n == 0 || check_bulyan(n - 1, f).is_err());
        }
        // Paper deployment: n = 19, f = 4 sits exactly on Bulyan's floor.
        assert_eq!(resilience_floor(GarKind::Bulyan, 4), 19);
        assert_eq!(resilience_floor(GarKind::MultiKrum, 4), 11);
    }

    #[test]
    fn composed_max_f_counts_whole_group_captures() {
        // Capturing a group costs f_group + 1 workers; the root absorbs
        // f_root captures, so one more worker than (f_g+1)(f_r+1)-1 buys the
        // (f_root + 1)-th capture.
        assert_eq!(composed_max_f(0, 0), 0);
        assert_eq!(composed_max_f(4, 0), 4);
        assert_eq!(composed_max_f(0, 4), 4);
        // n = 1024, g = 32 → 32 groups; multi-krum at both levels tolerates
        // f_group = 14 per group and f_root = 14 groups: 224 total.
        assert_eq!(composed_max_f(14, 14), 224);
        for f_g in 0..8usize {
            for f_r in 0..8usize {
                let total = composed_max_f(f_g, f_r);
                assert_eq!(total / (f_g + 1), f_r, "f_total/(f_g+1) captures exactly f_root");
                assert_eq!((total + 1) / (f_g + 1), f_r + 1, "one more worker over-captures");
            }
        }
    }

    #[test]
    fn contributing_groups_excludes_undersized_groups() {
        // Multi-Krum f=2 → floor 7: the ragged 5-worker tail and the
        // churn-shrunk 6-worker group drop out; f = 0 still floors at 3.
        let sizes = [32usize, 32, 6, 5];
        assert_eq!(contributing_groups(sizes, GarKind::MultiKrum, 2), 2);
        assert_eq!(contributing_groups(sizes, GarKind::MultiKrum, 0), 4);
        assert_eq!(contributing_groups([2usize, 1, 2], GarKind::MultiKrum, 0), 0);
        // Averaging rules only need a non-empty group.
        assert_eq!(contributing_groups([1usize, 0, 3], GarKind::Average, 0), 2);
        assert_eq!(contributing_groups(std::iter::empty(), GarKind::Median, 1), 0);
    }

    #[test]
    fn check_tree_requires_the_root_floor_in_contributing_groups() {
        // 8 full groups of 32: multi-krum root with f_root = 2 needs 7.
        let full = vec![32usize; 8];
        assert!(check_tree(GarKind::MultiKrum, 4, GarKind::MultiKrum, 2, full.clone()).is_ok());
        // Shrinking two groups below the group floor (11) leaves 6 < 7.
        let mut shrunk = full;
        shrunk[3] = 10;
        shrunk[5] = 0;
        let err = check_tree(GarKind::MultiKrum, 4, GarKind::MultiKrum, 2, shrunk).unwrap_err();
        match err {
            AggregationError::NotEnoughWorkers { rule, f, required, actual } => {
                assert_eq!(rule, "multi-krum");
                assert_eq!(f, 2);
                assert_eq!(required, 7);
                assert_eq!(actual, 6);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // A degenerate single-group tree works whenever the root floor is 1.
        assert!(check_tree(GarKind::MultiKrum, 4, GarKind::Average, 0, [11usize]).is_ok());
        assert!(check_tree(GarKind::MultiKrum, 4, GarKind::Median, 0, [11usize]).is_ok());
        assert!(check_tree(GarKind::MultiKrum, 4, GarKind::MultiKrum, 0, [11usize]).is_err());
    }

    #[test]
    fn composed_two_level_boundary_is_exact_for_all_n_up_to_128() {
        // Extension of the flat boundary property to the composed bound: for
        // every total worker count n ≤ 128 partitioned into contiguous groups
        // of g (ragged last group included), `check_tree` must agree exactly
        // with the brute-force evaluation — count the groups whose size
        // clears the group floor, compare against the root floor — for
        // every level-rule combination the tree tier supports, including
        // f = 0 groups. Never a panic, never an under-count.
        let combos = [
            (GarKind::MultiKrum, 4usize, GarKind::MultiKrum, 2usize),
            (GarKind::MultiKrum, 0, GarKind::MultiKrum, 0),
            (GarKind::Bulyan, 1, GarKind::MultiKrum, 1),
            (GarKind::Median, 3, GarKind::Median, 1),
            (GarKind::TrimmedMean, 0, GarKind::Bulyan, 0),
            (GarKind::Average, 0, GarKind::Average, 0),
        ];
        for n in 1..=128usize {
            for g in [1usize, 4, 8, 17, 32] {
                let group_count = n.div_ceil(g);
                let sizes: Vec<usize> = (0..group_count)
                    .map(|k| if (k + 1) * g <= n { g } else { n - k * g })
                    .collect();
                assert_eq!(sizes.iter().sum::<usize>(), n);
                for (group_rule, f_g, root_rule, f_r) in combos {
                    let group_floor = resilience_floor(group_rule, f_g);
                    let contributing_brute = sizes.iter().filter(|&&s| s >= group_floor).count();
                    assert_eq!(
                        contributing_groups(sizes.iter().copied(), group_rule, f_g),
                        contributing_brute,
                        "n={n} g={g} {group_rule} f={f_g}"
                    );
                    let ok =
                        check_tree(group_rule, f_g, root_rule, f_r, sizes.iter().copied()).is_ok();
                    let expected = contributing_brute >= resilience_floor(root_rule, f_r);
                    assert_eq!(ok, expected, "n={n} g={g} {group_rule}/{root_rule}");
                }
            }
        }
    }

    #[test]
    fn krum_neighbour_count_matches_definition() {
        assert_eq!(krum_neighbour_count(19, 4).unwrap(), 13);
        assert_eq!(krum_neighbour_count(7, 2).unwrap(), 3);
        assert!(krum_neighbour_count(6, 2).is_err());
    }

    #[test]
    fn slowdown_is_below_one_and_monotone_in_f() {
        let s1 = theoretical_slowdown(19, 1, false).unwrap();
        let s4 = theoretical_slowdown(19, 4, false).unwrap();
        assert!(s1 < 1.0 && s4 < 1.0);
        assert!(s4 < s1, "more declared failures => fewer selected => more slowdown");
        assert_eq!(theoretical_slowdown(5, 4, false), None);
    }
}
