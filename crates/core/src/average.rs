//! Plain gradient averaging — the non-resilient baseline
//! (`tf.train.SyncReplicasOptimizer` in the paper's evaluation).

use crate::gar::{ensure_batch_nonempty, Gar, GarProperties, Resilience};
use crate::Result;
use agg_tensor::{GradientBatch, Vector};

/// Coordinate-wise arithmetic mean of all submitted gradients.
///
/// This is the baseline GAR against which the paper quantifies the 19 % / 43 %
/// overhead of Multi-Krum and Bulyan. It offers **no** Byzantine resilience: a
/// single adversarial gradient shifts the mean arbitrarily, and a single
/// non-finite coordinate poisons the whole update (both behaviours are covered
/// by tests because the evaluation relies on them).
///
/// ```
/// use agg_core::{Average, Gar};
/// use agg_tensor::Vector;
/// let gar = Average::new();
/// let out = gar
///     .aggregate(&[Vector::from(vec![1.0]), Vector::from(vec![3.0])])
///     .unwrap();
/// assert_eq!(out.as_slice(), &[2.0]);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Average {
    _private: (),
}

impl Average {
    /// Creates the averaging rule.
    pub fn new() -> Self {
        Average { _private: () }
    }
}

impl Gar for Average {
    fn properties(&self) -> GarProperties {
        GarProperties {
            name: "average",
            resilience: Resilience::None,
            f: 0,
            minimum_workers: 1,
            tolerates_non_finite: false,
        }
    }

    fn aggregate_batch(&self, batch: &GradientBatch) -> Result<Vector> {
        ensure_batch_nonempty("average", batch)?;
        Ok(batch.coordinate_mean()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AggregationError;

    #[test]
    fn averages_coordinatewise() {
        let gar = Average::new();
        let gs = vec![
            Vector::from(vec![1.0, 10.0]),
            Vector::from(vec![3.0, 30.0]),
            Vector::from(vec![5.0, 20.0]),
        ];
        assert_eq!(gar.aggregate(&gs).unwrap().as_slice(), &[3.0, 20.0]);
    }

    #[test]
    fn rejects_empty_and_ragged_batches() {
        let gar = Average::new();
        assert!(matches!(gar.aggregate(&[]).unwrap_err(), AggregationError::NoGradients(_)));
        let gs = vec![Vector::zeros(2), Vector::zeros(3)];
        assert!(matches!(
            gar.aggregate(&gs).unwrap_err(),
            AggregationError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn a_single_outlier_moves_the_mean() {
        // This documents *why* averaging is not Byzantine-resilient.
        let gar = Average::new();
        let mut gs = vec![Vector::from(vec![1.0]); 9];
        gs.push(Vector::from(vec![1e9]));
        let out = gar.aggregate(&gs).unwrap();
        assert!(out[0] > 1e7);
    }

    #[test]
    fn nan_poisons_the_mean() {
        let gar = Average::new();
        let gs = vec![Vector::from(vec![1.0]), Vector::from(vec![f32::NAN])];
        assert!(gar.aggregate(&gs).unwrap()[0].is_nan());
    }

    #[test]
    fn properties_describe_the_baseline() {
        let p = Average::new().properties();
        assert_eq!(p.name, "average");
        assert_eq!(p.resilience, Resilience::None);
        assert!(!p.tolerates_non_finite);
    }
}
