//! Runtime construction of gradient aggregation rules by name, mirroring the
//! `--aggregator` / `--aggregator-args` flags of the original AggregaThor
//! runner (`runner.py`).

use crate::AggregationError;
use crate::{
    Average, Bulyan, CoordinateMedian, Gar, GeometricMedian, Krum, MeaMed, MultiKrum, Result,
    SelectiveAverage, TrimmedMean,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The set of gradient aggregation rules known to the framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GarKind {
    /// Plain averaging (non-resilient baseline).
    Average,
    /// Loss-tolerant selective averaging.
    SelectiveAverage,
    /// Coordinate-wise median.
    Median,
    /// Coordinate-wise trimmed mean.
    TrimmedMean,
    /// Mean-around-median (Xie et al.).
    MeaMed,
    /// Approximate geometric median (Weiszfeld).
    GeometricMedian,
    /// Krum (m = 1).
    Krum,
    /// Multi-Krum.
    MultiKrum,
    /// Bulyan over Multi-Krum.
    Bulyan,
}

impl GarKind {
    /// All known kinds, in a stable order (useful for sweeps and listings).
    pub const ALL: [GarKind; 9] = [
        GarKind::Average,
        GarKind::SelectiveAverage,
        GarKind::Median,
        GarKind::TrimmedMean,
        GarKind::MeaMed,
        GarKind::GeometricMedian,
        GarKind::Krum,
        GarKind::MultiKrum,
        GarKind::Bulyan,
    ];

    /// Whether this rule selects on the pairwise distance matrix. The
    /// streaming round engine accumulates distances incrementally per
    /// arriving row only for these rules; the others aggregate
    /// coordinate-wise and gain nothing from a pre-computed matrix.
    pub fn uses_distances(self) -> bool {
        matches!(self, GarKind::Krum | GarKind::MultiKrum | GarKind::Bulyan)
    }

    /// The canonical rule name (matches `--aggregator`).
    pub fn name(&self) -> &'static str {
        match self {
            GarKind::Average => "average",
            GarKind::SelectiveAverage => "selective-average",
            GarKind::Median => "median",
            GarKind::TrimmedMean => "trimmed-mean",
            GarKind::MeaMed => "meamed",
            GarKind::GeometricMedian => "geometric-median",
            GarKind::Krum => "krum",
            GarKind::MultiKrum => "multi-krum",
            GarKind::Bulyan => "bulyan",
        }
    }
}

impl fmt::Display for GarKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for GarKind {
    type Err = AggregationError;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_lowercase().replace('_', "-").as_str() {
            "average" | "mean" => Ok(GarKind::Average),
            "selective-average" | "selective" => Ok(GarKind::SelectiveAverage),
            "median" => Ok(GarKind::Median),
            "trimmed-mean" | "trimmed" => Ok(GarKind::TrimmedMean),
            "meamed" | "mean-around-median" => Ok(GarKind::MeaMed),
            "geometric-median" | "geomed" => Ok(GarKind::GeometricMedian),
            "krum" => Ok(GarKind::Krum),
            "multi-krum" | "multikrum" => Ok(GarKind::MultiKrum),
            "bulyan" => Ok(GarKind::Bulyan),
            other => Err(AggregationError::UnknownRule(other.to_string())),
        }
    }
}

/// A declarative GAR configuration: which rule, the declared number of
/// Byzantine workers `f`, and (for Multi-Krum) an optional selection size.
///
/// This is the serialisable piece that experiment configurations store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GarConfig {
    /// Which aggregation rule to use.
    pub kind: GarKind,
    /// Declared number of Byzantine workers to tolerate.
    pub f: usize,
    /// Optional Multi-Krum selection size `m` (ignored by other rules).
    pub m: Option<usize>,
}

impl GarConfig {
    /// Configuration for a rule with a declared `f`.
    pub fn new(kind: GarKind, f: usize) -> Self {
        GarConfig { kind, f, m: None }
    }

    /// Sets an explicit Multi-Krum selection size.
    pub fn with_selection(mut self, m: usize) -> Self {
        self.m = Some(m);
        self
    }

    /// Builds the configured rule as a boxed trait object.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::InvalidSelectionSize`] when `m` is invalid
    /// for the chosen rule.
    pub fn build(&self) -> Result<Box<dyn Gar>> {
        Ok(match self.kind {
            GarKind::Average => Box::new(Average::new()),
            GarKind::SelectiveAverage => Box::new(SelectiveAverage::new()),
            GarKind::Median => Box::new(CoordinateMedian::new(self.f)),
            GarKind::TrimmedMean => Box::new(TrimmedMean::new(self.f)),
            GarKind::MeaMed => Box::new(MeaMed::new(self.f)),
            GarKind::GeometricMedian => Box::new(GeometricMedian::new(self.f)),
            GarKind::Krum => Box::new(Krum::new(self.f)),
            GarKind::MultiKrum => match self.m {
                Some(m) => Box::new(MultiKrum::with_selection(self.f, m)?),
                None => Box::new(MultiKrum::new(self.f)?),
            },
            GarKind::Bulyan => Box::new(Bulyan::new(self.f)?),
        })
    }

    /// Parses a runner-style specification of the form
    /// `"<name>"`, `"<name>:f=<k>"` or `"<name>:f=<k>,m=<j>"`.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::UnknownRule`] or
    /// [`AggregationError::InvalidArgument`] on malformed input.
    pub fn parse(spec: &str) -> Result<Self> {
        let mut parts = spec.splitn(2, ':');
        let name = parts.next().unwrap_or_default().trim();
        let kind: GarKind = name.parse()?;
        let mut config = GarConfig::new(kind, 0);
        if let Some(args) = parts.next() {
            for kv in args.split(',').filter(|s| !s.trim().is_empty()) {
                let mut it = kv.splitn(2, '=');
                let key = it.next().unwrap_or_default().trim();
                let value = it.next().unwrap_or_default().trim();
                let parsed: usize =
                    value.parse().map_err(|_| AggregationError::InvalidArgument {
                        rule: name.to_string(),
                        message: format!("'{key}={value}' is not an integer assignment"),
                    })?;
                match key {
                    "f" => config.f = parsed,
                    "m" => config.m = Some(parsed),
                    other => {
                        return Err(AggregationError::InvalidArgument {
                            rule: name.to_string(),
                            message: format!("unknown argument '{other}'"),
                        })
                    }
                }
            }
        }
        Ok(config)
    }
}

impl fmt::Display for GarConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.m {
            Some(m) => write!(f, "{}:f={},m={}", self.kind, self.f, m),
            None => write!(f, "{}:f={}", self.kind, self.f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds() {
        for kind in GarKind::ALL {
            let gar = GarConfig::new(kind, 1).build().unwrap();
            assert_eq!(gar.name(), kind.name());
        }
    }

    #[test]
    fn names_round_trip_through_fromstr() {
        for kind in GarKind::ALL {
            let parsed: GarKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("no-such-rule".parse::<GarKind>().is_err());
        assert_eq!("Multi_Krum".parse::<GarKind>().unwrap(), GarKind::MultiKrum);
    }

    #[test]
    fn parse_accepts_runner_style_specs() {
        let c = GarConfig::parse("multi-krum:f=4").unwrap();
        assert_eq!(c.kind, GarKind::MultiKrum);
        assert_eq!(c.f, 4);
        assert_eq!(c.m, None);

        let c = GarConfig::parse("multi-krum:f=4,m=9").unwrap();
        assert_eq!(c.m, Some(9));

        let c = GarConfig::parse("average").unwrap();
        assert_eq!(c.kind, GarKind::Average);
        assert_eq!(c.f, 0);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(GarConfig::parse("bogus:f=1").is_err());
        assert!(matches!(
            GarConfig::parse("krum:f=abc").unwrap_err(),
            AggregationError::InvalidArgument { .. }
        ));
        assert!(matches!(
            GarConfig::parse("krum:q=3").unwrap_err(),
            AggregationError::InvalidArgument { .. }
        ));
    }

    #[test]
    fn display_round_trips_through_parse() {
        let c = GarConfig::new(GarKind::MultiKrum, 4).with_selection(9);
        let reparsed = GarConfig::parse(&c.to_string()).unwrap();
        assert_eq!(reparsed, c);
    }

    #[test]
    fn build_propagates_invalid_m() {
        let c = GarConfig::new(GarKind::MultiKrum, 1).with_selection(0);
        assert!(c.build().is_err());
    }
}
