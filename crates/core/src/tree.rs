//! Hierarchical two-level aggregation: a full GAR per worker group, then a
//! GAR over the group outputs at the root.
//!
//! Every flat rule is O(n²·d) (distance family) or bound to the
//! `n ≤ agg_tensor::sortnet::MAX_NETWORK_N` selection-network sweet spot
//! (coordinate family), which caps practical worker counts around 32. The
//! tree changes the asymptotics instead of the constants: partition the `n`
//! workers into groups of `g ≤ MAX_NETWORK_N`
//! ([`agg_tensor::GroupPlan`]), run the group GAR on each group's rows —
//! every group reuses the existing arena + selection-network kernels exactly
//! at their sweet spot — and run the root GAR over the `⌈n/g⌉` group
//! outputs:
//!
//! ```text
//! O(n²·d)  →  O(n·g·d + (n/g)²·d)
//! ```
//!
//! Resilience composes by capture counting
//! ([`crate::resilience::composed_max_f`]): the adversary needs
//! `f_group + 1` workers to capture a group, the root absorbs `f_root`
//! captured groups, so the tree withstands
//! `f_total = (f_group + 1)(f_root + 1) − 1` Byzantine workers. Groups whose
//! (live) size falls below the group rule's resilience floor — the ragged
//! last group of an indivisible `n`, or a group shrunk by churn evictions —
//! are *excluded* from the round rather than aggregated unsoundly, and the
//! round itself is refused ([`crate::resilience::check_tree`]) when the
//! contributing groups no longer clear the root rule's floor, exactly like
//! the flat path's refusal below `resilience_floor`.

use crate::gar::{ensure_batch_nonempty, Gar, GarProperties};
use crate::{resilience, AggregationError, GarConfig, GarKind, Result};
use agg_tensor::batch::PARALLEL_MIN_WORK;
use agg_tensor::sortnet::MAX_NETWORK_N;
use agg_tensor::{GradientBatch, GroupPlan, Vector};
use rayon::prelude::*;

/// Configuration of a two-level aggregation tree: the per-group rule, the
/// root rule over group outputs, and the group size `g`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TreeConfig {
    /// The GAR every group runs over its members' gradients, with the
    /// per-group Byzantine budget `group.f`.
    pub group: GarConfig,
    /// The GAR the root runs over the group outputs, with the
    /// captured-group budget `root.f`.
    pub root: GarConfig,
    /// Workers per group (`g`). Must stay within the selection-network sweet
    /// spot `g ≤ 32` — that cap is the whole reason the tier exists.
    pub group_size: usize,
}

impl TreeConfig {
    /// A tree running `kind` at both levels with per-group budget `f_group`
    /// and root budget `f_root`, groups of `group_size`.
    pub fn uniform(kind: GarKind, f_group: usize, f_root: usize, group_size: usize) -> Self {
        TreeConfig {
            group: GarConfig::new(kind, f_group),
            root: GarConfig::new(kind, f_root),
            group_size,
        }
    }

    /// The composed Byzantine tolerance
    /// `(f_group + 1)(f_root + 1) − 1` of this tree
    /// ([`resilience::composed_max_f`]).
    pub fn composed_max_f(&self) -> usize {
        resilience::composed_max_f(self.group.f, self.root.f)
    }

    /// Minimum members a group needs to contribute to the round.
    pub fn group_floor(&self) -> usize {
        resilience::resilience_floor(self.group.kind, self.group.f)
    }

    /// Minimum contributing groups the root round needs.
    pub fn root_floor(&self) -> usize {
        resilience::resilience_floor(self.root.kind, self.root.f)
    }
}

/// One contributing group's aggregation result.
#[derive(Debug, Clone)]
pub struct GroupOutput {
    /// Group id in the [`GroupPlan`].
    pub group: usize,
    /// The batch row indices the group reduced, in ascending order.
    pub members: Vec<usize>,
    /// The group GAR's aggregate over those rows.
    pub output: Vector,
}

/// The per-group stage of a tree round: the contributing groups' outputs (in
/// ascending group order) plus the groups that were excluded for sitting
/// below the group rule's resilience floor.
#[derive(Debug, Clone)]
pub struct TreeRound {
    /// Contributing groups, ascending by group id.
    pub outputs: Vec<GroupOutput>,
    /// `(group id, live member count)` of every excluded group.
    pub skipped: Vec<(usize, usize)>,
}

/// A gradient aggregation rule evaluated as a two-level tree over worker
/// groups — the scale tier beside [`crate::ShardedAggregator`] (which splits
/// *coordinates*; this splits *workers*).
///
/// ```
/// use agg_core::{Gar, GarKind, TreeAggregator, TreeConfig};
/// use agg_tensor::Vector;
/// # fn main() -> Result<(), agg_core::AggregationError> {
/// // 96 workers in groups of 32, Multi-Krum at both levels.
/// let tree = TreeAggregator::new(TreeConfig::uniform(GarKind::MultiKrum, 4, 0, 32))?;
/// let gradients: Vec<Vector> = (0..96).map(|i| {
///     if i >= 91 { Vector::from(vec![1e6; 8]) } else { Vector::from(vec![1.0; 8]) }
/// }).collect();
/// let update = tree.aggregate(&gradients)?;
/// assert!((update[0] - 1.0).abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TreeAggregator {
    config: TreeConfig,
    /// The group-level rule (shared by every group: rules are stateless).
    group_rule: Box<dyn Gar>,
    /// The root rule over group outputs.
    root_rule: Box<dyn Gar>,
    /// `false` forces the per-group work through a plain sequential
    /// iterator; the determinism tests pin both modes bit-identical, exactly
    /// like [`crate::ShardedAggregator::set_parallel`].
    parallel: bool,
}

impl TreeAggregator {
    /// Builds the tree tier from its configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::InvalidArgument`] when `group_size` is
    /// zero or exceeds the selection-network cap
    /// (`agg_tensor::sortnet::MAX_NETWORK_N`), and propagates
    /// rule-construction errors from either level.
    pub fn new(config: TreeConfig) -> Result<Self> {
        if config.group_size == 0 || config.group_size > MAX_NETWORK_N {
            return Err(AggregationError::InvalidArgument {
                rule: config.group.kind.name().to_string(),
                message: format!(
                    "tree group size must be in 1..={MAX_NETWORK_N} (the selection-network \
                     sweet spot), got {}",
                    config.group_size
                ),
            });
        }
        let group_rule = config.group.build()?;
        let root_rule = config.root.build()?;
        Ok(TreeAggregator { config, group_rule, root_rule, parallel: true })
    }

    /// The tree configuration.
    pub fn config(&self) -> TreeConfig {
        self.config
    }

    /// Forces the per-group work through the sequential group ordering. Both
    /// modes must produce bit-identical aggregates — the determinism test
    /// asserts exactly that.
    pub fn set_parallel(&mut self, parallel: bool) {
        self.parallel = parallel;
    }

    /// The group partition for `n` workers.
    ///
    /// # Errors
    ///
    /// Returns an error for `n = 0`.
    pub fn plan(&self, workers: usize) -> Result<GroupPlan> {
        Ok(GroupPlan::new(workers, self.config.group_size)?)
    }

    /// Buckets `groups[i]` (the group id of batch row `i`) into ascending
    /// per-group member lists. Group ids need not be dense: rows of evicted
    /// groups simply never appear.
    fn buckets(&self, batch: &GradientBatch, groups: &[usize]) -> Result<Vec<(usize, Vec<usize>)>> {
        if groups.len() != batch.n() {
            return Err(AggregationError::InvalidArgument {
                rule: self.group_rule.properties().name.to_string(),
                message: format!(
                    "group assignment covers {} rows but the batch has {}",
                    groups.len(),
                    batch.n()
                ),
            });
        }
        let mut buckets: Vec<(usize, Vec<usize>)> = Vec::new();
        for (row, &gid) in groups.iter().enumerate() {
            match buckets.iter_mut().find(|(g, _)| *g == gid) {
                Some((_, members)) => members.push(row),
                None => buckets.push((gid, vec![row])),
            }
        }
        buckets.sort_by_key(|&(gid, _)| gid);
        Ok(buckets)
    }

    /// Runs the per-group stage: every group whose live member count clears
    /// the group rule's resilience floor is aggregated with the group GAR
    /// (in parallel over groups, results in ascending group order);
    /// undersized groups are excluded and reported, never panicked over.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError`] when the batch is empty, the group
    /// assignment does not match the batch, or a group's aggregation fails
    /// for a reason other than its size (e.g. all rows non-finite).
    pub fn group_outputs(&self, batch: &GradientBatch, groups: &[usize]) -> Result<TreeRound> {
        ensure_batch_nonempty(self.group_rule.properties().name, batch)?;
        let buckets = self.buckets(batch, groups)?;
        let floor = self.config.group_floor();
        let mut skipped = Vec::new();
        let mut contributing: Vec<(usize, Vec<usize>)> = Vec::new();
        for (gid, members) in buckets {
            if members.len() >= floor {
                contributing.push((gid, members));
            } else {
                skipped.push((gid, members.len()));
            }
        }
        let aggregate_group = |(gid, members): &(usize, Vec<usize>)| -> Result<GroupOutput> {
            let mut scratch = GradientBatch::with_capacity(batch.dim(), members.len());
            for &row in members {
                scratch.push_row(batch.row(row))?;
            }
            let output = self.group_rule.aggregate_batch(&scratch)?;
            Ok(GroupOutput { group: *gid, members: members.clone(), output })
        };
        let total_work = batch.n().saturating_mul(batch.dim());
        let results: Vec<Result<GroupOutput>> =
            if self.parallel && contributing.len() > 1 && total_work >= PARALLEL_MIN_WORK {
                contributing.par_iter().map(aggregate_group).collect()
            } else {
                contributing.iter().map(aggregate_group).collect()
            };
        let outputs = results.into_iter().collect::<Result<Vec<GroupOutput>>>()?;
        Ok(TreeRound { outputs, skipped })
    }

    /// Runs the root GAR over already-computed group outputs (the engine
    /// calls this after carrying each output over its group→root link, so
    /// outputs lost on the wire degrade exactly like an excluded group).
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::NotEnoughWorkers`] (naming the root rule)
    /// when fewer outputs remain than the root floor, plus any root-rule
    /// aggregation error.
    pub fn root_aggregate(&self, outputs: &[Vector]) -> Result<Vector> {
        let required = self.config.root_floor();
        if outputs.len() < required {
            return Err(AggregationError::NotEnoughWorkers {
                rule: self.config.root.kind.name(),
                f: self.config.root.f,
                required,
                actual: outputs.len(),
            });
        }
        let batch = GradientBatch::from_vectors(outputs)?;
        self.root_rule.aggregate_batch(&batch)
    }

    /// Full tree round over an explicit row→group assignment (`groups[i]` is
    /// the group id of batch row `i`), the entry point for engines whose
    /// quorum/churn compaction leaves groups ragged.
    ///
    /// # Errors
    ///
    /// Refuses with [`AggregationError::NotEnoughWorkers`] when the
    /// contributing groups fall below the root floor
    /// ([`resilience::check_tree`]); propagates group/root aggregation
    /// errors otherwise.
    pub fn aggregate_batch_grouped(
        &self,
        batch: &GradientBatch,
        groups: &[usize],
    ) -> Result<Vector> {
        ensure_batch_nonempty(self.group_rule.properties().name, batch)?;
        let buckets = self.buckets(batch, groups)?;
        resilience::check_tree(
            self.config.group.kind,
            self.config.group.f,
            self.config.root.kind,
            self.config.root.f,
            buckets.iter().map(|(_, members)| members.len()),
        )?;
        let round = self.group_outputs(batch, groups)?;
        let outputs: Vec<Vector> = round.outputs.into_iter().map(|g| g.output).collect();
        self.root_aggregate(&outputs)
    }

    /// Runs `level`'s selection phase over `batch`, returning the picked row
    /// indices, or `None` when the level's rule has no selection phase.
    fn level_selection(level: &GarConfig, batch: &GradientBatch) -> Result<Option<Vec<usize>>> {
        use crate::{Bulyan, MultiKrum};
        let f = level.f;
        let picked = match level.kind {
            GarKind::Krum => MultiKrum::with_selection(f, 1)?.select_batch(batch)?,
            GarKind::MultiKrum => match level.m {
                Some(m) => MultiKrum::with_selection(f, m)?,
                None => MultiKrum::new(f)?,
            }
            .select_batch(batch)?,
            GarKind::Bulyan => Bulyan::new(f)?.select_batch(batch)?,
            _ => return Ok(None),
        };
        Ok(Some(picked))
    }

    /// The batch row indices that contributed to the root rule's selection,
    /// ascending (`None` for non-selecting root rules) — the tree tier's
    /// selection-feedback signal. A row is "selected" iff its group's output
    /// made the root selection AND the group rule's own selection phase kept
    /// the row (all live members count when the group rule has no selection
    /// phase, e.g. Median groups). The second condition matters for
    /// attribution: a root-selected group may itself have excluded an
    /// outlier member, and that member did not touch the applied update.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TreeAggregator::aggregate_batch_grouped`].
    pub fn selected_rows(
        &self,
        batch: &GradientBatch,
        groups: &[usize],
    ) -> Result<Option<Vec<usize>>> {
        let selecting =
            matches!(self.config.root.kind, GarKind::Krum | GarKind::MultiKrum | GarKind::Bulyan);
        if !selecting {
            return Ok(None);
        }
        let round = self.group_outputs(batch, groups)?;
        resilience::check_tree(
            self.config.group.kind,
            self.config.group.f,
            self.config.root.kind,
            self.config.root.f,
            round
                .outputs
                .iter()
                .map(|g| g.members.len())
                .chain(round.skipped.iter().map(|&(_, size)| size)),
        )?;
        let outputs: Vec<Vector> = round.outputs.iter().map(|g| g.output.clone()).collect();
        let output_batch = GradientBatch::from_vectors(&outputs)?;
        let picked = Self::level_selection(&self.config.root, &output_batch)?
            .expect("selecting root rules matched above");
        let mut rows: Vec<usize> = Vec::new();
        for i in picked {
            let group = &round.outputs[i];
            let mut scratch = GradientBatch::with_capacity(batch.dim(), group.members.len());
            for &row in &group.members {
                scratch.push_row(batch.row(row))?;
            }
            match Self::level_selection(&self.config.group, &scratch)? {
                Some(inner) => rows.extend(inner.into_iter().map(|r| group.members[r])),
                None => rows.extend(group.members.iter().copied()),
            }
        }
        rows.sort_unstable();
        Ok(Some(rows))
    }
}

impl Gar for TreeAggregator {
    fn properties(&self) -> GarProperties {
        // The tree's resilience story is the composed bound; for reporting
        // purposes it presents the root rule's properties (the defence the
        // final update passed through).
        self.root_rule.properties()
    }

    fn aggregate_batch(&self, batch: &GradientBatch) -> Result<Vector> {
        ensure_batch_nonempty(self.group_rule.properties().name, batch)?;
        let plan = self.plan(batch.n())?;
        let groups: Vec<usize> = (0..batch.n()).map(|w| plan.group_of(w)).collect();
        self.aggregate_batch_grouped(batch, &groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gar;
    use agg_tensor::rng::{gaussian_vector, seeded_rng};

    fn random_batch(n: usize, d: usize, seed: u64) -> GradientBatch {
        let mut rng = seeded_rng(seed);
        let vs: Vec<Vector> = (0..n).map(|_| gaussian_vector(&mut rng, d, 0.0, 1.0)).collect();
        GradientBatch::from_vectors(&vs).unwrap()
    }

    #[test]
    fn group_size_must_stay_in_the_network_sweet_spot() {
        assert!(TreeAggregator::new(TreeConfig::uniform(GarKind::MultiKrum, 1, 0, 0)).is_err());
        assert!(TreeAggregator::new(TreeConfig::uniform(
            GarKind::MultiKrum,
            1,
            0,
            MAX_NETWORK_N + 1
        ))
        .is_err());
        assert!(TreeAggregator::new(TreeConfig::uniform(GarKind::MultiKrum, 1, 0, MAX_NETWORK_N))
            .is_ok());
    }

    #[test]
    fn config_accessors_expose_the_composed_bound() {
        let config = TreeConfig::uniform(GarKind::MultiKrum, 14, 14, 32);
        assert_eq!(config.composed_max_f(), 224);
        assert_eq!(config.group_floor(), 31);
        assert_eq!(config.root_floor(), 31);
        let tree = TreeAggregator::new(config).unwrap();
        assert_eq!(tree.config(), config);
        assert_eq!(tree.properties().name, "multi-krum");
    }

    #[test]
    fn excludes_outliers_within_each_group() {
        // 96 workers in 3 groups of 32; the last 5 submit garbage. Multi-Krum
        // per group absorbs them (f_group = 5 within the last group), the
        // root averages the three group outputs.
        let mut batch = random_batch(91, 16, 3);
        for _ in 0..5 {
            batch.push_row(&[1e6; 16]).unwrap();
        }
        let tree = TreeAggregator::new(TreeConfig {
            group: GarConfig::new(GarKind::MultiKrum, 5),
            root: GarConfig::new(GarKind::Average, 0),
            group_size: 32,
        })
        .unwrap();
        let out = tree.aggregate_batch(&batch).unwrap();
        for c in 0..16 {
            assert!(out[c].abs() < 1.0, "coordinate {c} contaminated: {}", out[c]);
        }
    }

    #[test]
    fn ragged_last_group_below_floor_is_skipped_not_panicked() {
        // n = 70, g = 32 → sizes [32, 32, 6]; multi-krum f=4 floors at 11,
        // so the 6-worker tail drops out. Root average over 2 outputs works.
        let batch = random_batch(70, 8, 5);
        let tree = TreeAggregator::new(TreeConfig {
            group: GarConfig::new(GarKind::MultiKrum, 4),
            root: GarConfig::new(GarKind::Average, 0),
            group_size: 32,
        })
        .unwrap();
        let plan = tree.plan(70).unwrap();
        let groups: Vec<usize> = (0..70).map(|w| plan.group_of(w)).collect();
        let round = tree.group_outputs(&batch, &groups).unwrap();
        assert_eq!(round.outputs.len(), 2);
        assert_eq!(round.skipped, vec![(2, 6)]);
        assert!(tree.aggregate_batch(&batch).is_ok());
    }

    #[test]
    fn rounds_below_the_composed_floor_are_refused() {
        // Multi-Krum root with f_root = 2 needs 7 contributing groups; 96
        // workers in groups of 32 give only 3.
        let batch = random_batch(96, 8, 7);
        let tree = TreeAggregator::new(TreeConfig::uniform(GarKind::MultiKrum, 4, 2, 32)).unwrap();
        match tree.aggregate_batch(&batch).unwrap_err() {
            AggregationError::NotEnoughWorkers { rule, f, required, actual } => {
                assert_eq!(rule, "multi-krum");
                assert_eq!(f, 2);
                assert_eq!(required, 7);
                assert_eq!(actual, 3);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn churn_shrunk_groups_degrade_through_the_same_refusal() {
        // 3 groups of 4 under median f=1 (floor 3). Evicting rows from one
        // group first skips it (root median f=1 needs 3 groups → refusal),
        // proving the eviction path and the refusal path compose.
        let batch = random_batch(12, 6, 9);
        let tree = TreeAggregator::new(TreeConfig::uniform(GarKind::Median, 1, 1, 4)).unwrap();
        let full: Vec<usize> = (0..12).map(|w| w / 4).collect();
        assert!(tree.aggregate_batch_grouped(&batch, &full).is_ok());

        // Group 1 loses 2 of its 4 rows → 2 < 3 → skipped → 2 groups < 3.
        let mut shrunk_batch = GradientBatch::with_capacity(6, 10);
        let mut shrunk_groups = Vec::new();
        for w in 0..12 {
            if w == 4 || w == 5 {
                continue;
            }
            shrunk_batch.push_row(batch.row(w)).unwrap();
            shrunk_groups.push(w / 4);
        }
        let round = tree.group_outputs(&shrunk_batch, &shrunk_groups).unwrap();
        assert_eq!(round.skipped, vec![(1, 2)]);
        assert!(tree.aggregate_batch_grouped(&shrunk_batch, &shrunk_groups).is_err());
    }

    #[test]
    fn f_zero_groups_aggregate_fine() {
        // f = 0 at both levels: floors are 3 (multi-krum) and 1 (average).
        let batch = random_batch(9, 4, 11);
        let tree = TreeAggregator::new(TreeConfig {
            group: GarConfig::new(GarKind::MultiKrum, 0),
            root: GarConfig::new(GarKind::Average, 0),
            group_size: 3,
        })
        .unwrap();
        assert!(tree.aggregate_batch(&batch).is_ok());
    }

    #[test]
    fn parallel_and_sequential_groups_agree_bitwise() {
        let batch = random_batch(96, 4_000, 13);
        for kind in [GarKind::MultiKrum, GarKind::Median, GarKind::TrimmedMean] {
            let mut tree = TreeAggregator::new(TreeConfig {
                group: GarConfig::new(kind, 2),
                root: GarConfig::new(GarKind::Median, 1),
                group_size: 32,
            })
            .unwrap();
            let parallel = tree.aggregate_batch(&batch).unwrap();
            tree.set_parallel(false);
            let sequential = tree.aggregate_batch(&batch).unwrap();
            assert_eq!(
                parallel.as_slice(),
                sequential.as_slice(),
                "{kind}: group-parallel aggregation must be bit-identical to group order"
            );
        }
    }

    #[test]
    fn single_group_tree_is_bit_identical_to_the_flat_rule() {
        // n ≤ g: one group, and a root with floor 1 reduces a single output
        // — the degenerate tree must equal the flat rule bit for bit.
        let batch = random_batch(19, 64, 17);
        for kind in [GarKind::MultiKrum, GarKind::Median, GarKind::Bulyan, GarKind::Average] {
            let tree = TreeAggregator::new(TreeConfig {
                group: GarConfig::new(kind, 4),
                root: GarConfig::new(GarKind::Average, 0),
                group_size: 32,
            })
            .unwrap();
            let flat = GarConfig::new(kind, 4).build().unwrap().aggregate_batch(&batch).unwrap();
            let treed = tree.aggregate_batch(&batch).unwrap();
            assert_eq!(treed.as_slice(), flat.as_slice(), "{kind}");
        }
    }

    #[test]
    fn root_selection_maps_back_to_member_rows() {
        // 4 groups of 4 (median groups), multi-krum root f=0 over 4 outputs.
        // One whole group submits identical garbage → its output is the
        // outlier → its members must be missing from the selection.
        let mut rows: Vec<Vector> = Vec::new();
        let mut rng = seeded_rng(23);
        for w in 0..16 {
            if (4..8).contains(&w) {
                rows.push(Vector::from(vec![1e6; 8]));
            } else {
                rows.push(gaussian_vector(&mut rng, 8, 0.0, 0.1));
            }
        }
        let batch = GradientBatch::from_vectors(&rows).unwrap();
        let tree = TreeAggregator::new(TreeConfig {
            group: GarConfig::new(GarKind::Median, 1),
            root: GarConfig::new(GarKind::MultiKrum, 0),
            group_size: 4,
        })
        .unwrap();
        let groups: Vec<usize> = (0..16).map(|w| w / 4).collect();
        let selected = tree.selected_rows(&batch, &groups).unwrap().unwrap();
        assert!(!selected.is_empty());
        for w in 4..8 {
            assert!(!selected.contains(&w), "captured group member {w} selected at the root");
        }
        // Coordinate root rules expose no selection.
        let flat_root = TreeAggregator::new(TreeConfig {
            group: GarConfig::new(GarKind::Median, 1),
            root: GarConfig::new(GarKind::Median, 1),
            group_size: 4,
        })
        .unwrap();
        assert_eq!(flat_root.selected_rows(&batch, &groups).unwrap(), None);
    }

    #[test]
    fn mismatched_group_assignment_is_rejected() {
        let batch = random_batch(8, 4, 29);
        let tree = TreeAggregator::new(TreeConfig::uniform(GarKind::Median, 1, 0, 4)).unwrap();
        assert!(tree.aggregate_batch_grouped(&batch, &[0, 0, 1]).is_err());
        let empty = GradientBatch::new(4);
        assert!(tree.aggregate_batch(&empty).is_err());
    }

    #[test]
    fn tree_config_round_trips_through_json() {
        let config = TreeConfig::uniform(GarKind::Bulyan, 3, 1, 16);
        let json = serde_json::to_string(&config).unwrap();
        let back: TreeConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
    }
}
