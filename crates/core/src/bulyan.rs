//! Bulyan over Multi-Krum: the strongly Byzantine-resilient GAR
//! (El Mhamdi et al., 2018; §2.3 and Appendix B.3 of the AggregaThor paper).
//!
//! Bulyan proceeds in two phases:
//!
//! 1. **Selection** — run the underlying weak GAR (Krum selection) `θ = n − 2f`
//!    times; each iteration extracts the best-scoring gradient from the
//!    remaining set.
//! 2. **Robust coordinate-wise averaging** — for every coordinate, take the
//!    median of the `θ` selected values and average the `β = θ − 2f` values
//!    closest to that median.
//!
//! The implementation follows the paper's optimisation: the O(n²·d) pairwise
//! distance matrix is computed **once** (it is the Multi-Krum triangular
//! [`agg_tensor::DistanceMatrix`], each unordered pair computed exactly
//! once); subsequent selection iterations only re-rank scores over the
//! shrinking active set, so the additional cost per iteration is O(n²)
//! rather than O(n²·d). The second phase runs fused over column blocks of
//! the [`GradientBatch`] arena through the branch-free vertical selection
//! networks of `agg_tensor::sortnet` (the θ selected rows are far below the
//! network cap), sharing the closest-to-median window kernel with MeaMed.

use crate::gar::{ensure_batch_nonempty, validate_batch, Gar, GarProperties, Resilience};
use crate::multi_krum::krum_scores;
use crate::{resilience, AggregationError, Result};
use agg_tensor::{stats, GradientBatch, TensorError, Vector};

/// The Bulyan gradient aggregation rule (strong Byzantine resilience,
/// requires `n ≥ 4f + 3`).
///
/// ```
/// use agg_core::{Bulyan, Gar};
/// use agg_tensor::Vector;
/// # fn main() -> Result<(), agg_core::AggregationError> {
/// let gar = Bulyan::new(1)?; // needs n >= 7
/// let honest = (0..6).map(|i| Vector::from(vec![1.0 + 0.001 * i as f32]));
/// let byzantine = std::iter::once(Vector::from(vec![1e9]));
/// let gradients: Vec<_> = honest.chain(byzantine).collect();
/// let update = gar.aggregate(&gradients)?;
/// assert!((update[0] - 1.0).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bulyan {
    f: usize,
}

impl Bulyan {
    /// Creates Bulyan declared to tolerate `f` Byzantine workers.
    ///
    /// # Errors
    ///
    /// Never fails today; returns `Result` for signature consistency with the
    /// other configurable rules.
    pub fn new(f: usize) -> Result<Self> {
        Ok(Bulyan { f })
    }

    /// Declared number of Byzantine workers.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Runs the selection phase, returning the indices of the `θ = n − 2f`
    /// gradients extracted by iterated Krum, in extraction order.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::NotEnoughWorkers`] when `n < 4f + 3`, plus
    /// the usual batch-validation errors.
    pub fn select(&self, gradients: &[Vector]) -> Result<Vec<usize>> {
        validate_batch("bulyan", gradients)?;
        let batch = GradientBatch::from_vectors(gradients)
            .expect("validate_batch guarantees a non-empty, consistent batch");
        self.select_batch(&batch)
    }

    /// Arena variant of [`Bulyan::select`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Bulyan::select`].
    pub fn select_batch(&self, batch: &GradientBatch) -> Result<Vec<usize>> {
        let n = ensure_batch_nonempty("bulyan", batch)?;
        resilience::check_bulyan(n, self.f)?;
        // The paper's optimisation: distances are computed once, here.
        let distances = batch.pairwise_squared_distances();
        self.select_with_distances(&distances)
    }

    /// Runs the iterated-Krum selection on an already-computed distance
    /// matrix (the sharded layer reduces per-shard partial matrices into the
    /// global one and selects here once, so the sharded selection — and the
    /// strong-resilience guarantee — is identical to the unsharded rule).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Bulyan::select`], with `n` taken from the matrix.
    pub fn select_with_distances(
        &self,
        distances: &agg_tensor::DistanceMatrix,
    ) -> Result<Vec<usize>> {
        let n = distances.n();
        resilience::check_bulyan(n, self.f)?;
        let theta = resilience::bulyan_selection_count(n, self.f)?;

        let mut active: Vec<usize> = (0..n).collect();
        let mut selected = Vec::with_capacity(theta);
        for _ in 0..theta {
            // Neighbour count follows the Krum definition on the *remaining*
            // set, clamped to at least one neighbour so the last iterations
            // remain well defined.
            let neighbours = active.len().saturating_sub(self.f + 2).max(1);
            let scores = krum_scores(distances, &active, neighbours);
            let best_pos = stats::k_smallest_indices(&scores, 1)?[0];
            selected.push(active.remove(best_pos));
        }
        Ok(selected)
    }
}

impl Gar for Bulyan {
    fn properties(&self) -> GarProperties {
        GarProperties {
            name: "bulyan",
            resilience: Resilience::Strong,
            f: self.f,
            minimum_workers: resilience::bulyan_min_workers(self.f),
            tolerates_non_finite: true,
        }
    }

    fn aggregate_batch(&self, batch: &GradientBatch) -> Result<Vector> {
        let n = ensure_batch_nonempty("bulyan", batch)?;
        resilience::check_bulyan(n, self.f)?;
        // The paper's optimisation: distances are computed once, here.
        let distances = batch.pairwise_squared_distances();
        self.aggregate_batch_with_distances(batch, &distances)
    }

    fn aggregate_batch_with_distances(
        &self,
        batch: &GradientBatch,
        distances: &agg_tensor::DistanceMatrix,
    ) -> Result<Vector> {
        ensure_batch_nonempty("bulyan", batch)?;
        if distances.n() != batch.n() {
            return Err(TensorError::dim(batch.n(), distances.n()).into());
        }
        let selected = self.select_with_distances(distances)?;
        let beta = resilience::bulyan_beta(batch.n(), self.f)?;
        if selected.iter().all(|&i| batch.row(i).iter().any(|x| !x.is_finite())) {
            return Err(AggregationError::AllGradientsCorrupt("bulyan"));
        }
        // Phase 2, fused: for every coordinate of the selected rows, average
        // the β values closest to the coordinate-wise median. Non-finite
        // values rank as infinitely far and are never selected while enough
        // finite values exist; a coordinate that is NaN in every selected
        // row means the whole selection is corrupt.
        batch.mean_around_median_of_rows(&selected, beta).map_err(|e| match e {
            TensorError::EmptyInput(_) => AggregationError::AllGradientsCorrupt("bulyan"),
            other => other.into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_tensor::rng::{gaussian_vector, seeded_rng};

    fn honest_batch(n: usize, d: usize, seed: u64) -> Vec<Vector> {
        let mut rng = seeded_rng(seed);
        (0..n)
            .map(|_| {
                let mut v = Vector::filled(d, 1.0);
                v.axpy(1.0, &gaussian_vector(&mut rng, d, 0.0, 0.05)).unwrap();
                v
            })
            .collect()
    }

    #[test]
    fn paper_setup_selection_counts() {
        // n = 19, f = 4 => theta = 11, beta = 3.
        let gs = honest_batch(19, 4, 1);
        let gar = Bulyan::new(4).unwrap();
        assert_eq!(gar.select(&gs).unwrap().len(), 11);
    }

    #[test]
    fn excludes_large_outliers() {
        let mut gs = honest_batch(15, 3, 2);
        for _ in 0..3 {
            gs.push(Vector::from(vec![1e8, -1e8, 1e8]));
        }
        let gar = Bulyan::new(3).unwrap(); // needs n >= 15, have 18
        let out = gar.aggregate(&gs).unwrap();
        for c in 0..3 {
            assert!((out[c] - 1.0).abs() < 0.2, "coordinate {c} was {}", out[c]);
        }
    }

    #[test]
    fn output_is_within_honest_coordinate_range() {
        // Strong resilience in miniature: every output coordinate must lie
        // within the range spanned by honest gradients.
        let mut gs = honest_batch(8, 5, 3);
        gs.push(Vector::from(vec![50.0, -50.0, 50.0, -50.0, 50.0]));
        let gar = Bulyan::new(1).unwrap();
        let out = gar.aggregate(&gs).unwrap();
        for c in 0..5 {
            let honest: Vec<f32> = gs[..8].iter().map(|g| g[c]).collect();
            let lo = honest.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = honest.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            assert!(out[c] >= lo - 1e-4 && out[c] <= hi + 1e-4);
        }
    }

    #[test]
    fn nan_and_infinite_gradients_are_tolerated() {
        let mut gs = honest_batch(8, 3, 4);
        gs.push(Vector::from(vec![f32::NAN, f32::NAN, f32::NAN]));
        let gar = Bulyan::new(1).unwrap();
        let out = gar.aggregate(&gs).unwrap();
        assert!(out.is_finite());
        assert!((out[0] - 1.0).abs() < 0.2);
    }

    #[test]
    fn requires_4f_plus_3_workers() {
        let gar = Bulyan::new(4).unwrap();
        assert!(gar.aggregate(&honest_batch(18, 2, 5)).is_err());
        assert!(gar.aggregate(&honest_batch(19, 2, 5)).is_ok());
    }

    #[test]
    fn f_zero_still_aggregates() {
        let gar = Bulyan::new(0).unwrap();
        let gs = honest_batch(5, 2, 6);
        let out = gar.aggregate(&gs).unwrap();
        assert!((out[0] - 1.0).abs() < 0.2);
    }

    #[test]
    fn extraction_order_starts_with_best_scoring() {
        // All gradients identical except one outlier: the outlier must be
        // extracted last (or not at all if theta < n).
        let mut gs = vec![Vector::from(vec![2.0, 2.0]); 8];
        gs.push(Vector::from(vec![100.0, 100.0]));
        let gar = Bulyan::new(1).unwrap();
        let order = gar.select(&gs).unwrap();
        // theta = 9 - 2 = 7 selections; index 8 (the outlier) must not be
        // among the first 7 extracted because identical gradients score 0.
        assert!(!order.contains(&8));
    }

    #[test]
    fn properties_report_strong_resilience() {
        let p = Bulyan::new(2).unwrap().properties();
        assert_eq!(p.resilience, Resilience::Strong);
        assert_eq!(p.minimum_workers, 11);
        assert!(p.tolerates_non_finite);
    }
}
