//! Policies for handling non-finite gradient coordinates.
//!
//! The lossy transport (§3.3 of the paper) marks lost coordinates with `NaN`.
//! Three recovery policies are discussed in the paper, and all three are
//! implemented here so the Figure 8 experiments can compare them:
//!
//! 1. **Drop the whole gradient** when any coordinate is missing, then
//!    aggregate what remains ("the most straightforward solution").
//! 2. **Selective averaging** — ignore the missing coordinates while
//!    averaging (see [`crate::SelectiveAverage`]).
//! 3. **Fill the missing coordinates with random/arbitrary values** and rely
//!    on a Byzantine-resilient GAR on top (the AggregaThor approach).

use agg_tensor::Vector;
use serde::{Deserialize, Serialize};

/// How to prepare a set of possibly corrupt gradients before handing them to
/// a gradient aggregation rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SanitizePolicy {
    /// Pass gradients through untouched (the robust GARs tolerate non-finite
    /// coordinates by construction). This is AggregaThor's default.
    #[default]
    PassThrough,
    /// Remove any gradient containing a non-finite coordinate.
    DropCorrupt,
    /// Replace non-finite coordinates with zero.
    ZeroFill,
    /// Replace non-finite coordinates with the value of a deterministic
    /// pseudo-random function of the coordinate index (paper: "put random
    /// values at the lost coordinates").
    RandomFill,
}

/// Applies a [`SanitizePolicy`] to a batch of gradients, returning the
/// prepared batch together with the number of gradients that were dropped.
pub fn apply_policy(policy: SanitizePolicy, gradients: &[Vector]) -> (Vec<Vector>, usize) {
    match policy {
        SanitizePolicy::PassThrough => (gradients.to_vec(), 0),
        SanitizePolicy::DropCorrupt => {
            let kept: Vec<Vector> = gradients.iter().filter(|g| g.is_finite()).cloned().collect();
            let dropped = gradients.len() - kept.len();
            (kept, dropped)
        }
        SanitizePolicy::ZeroFill => (
            gradients
                .iter()
                .map(|g| {
                    let mut g = g.clone();
                    g.replace_non_finite(|_| 0.0);
                    g
                })
                .collect(),
            0,
        ),
        SanitizePolicy::RandomFill => (
            gradients
                .iter()
                .map(|g| {
                    let mut g = g.clone();
                    g.replace_non_finite(pseudo_random_fill);
                    g
                })
                .collect(),
            0,
        ),
    }
}

/// Deterministic pseudo-random fill value for coordinate `index`.
///
/// The exact values are irrelevant for correctness — a Byzantine-resilient
/// GAR on top tolerates arbitrary values — but determinism keeps every
/// experiment reproducible.
fn pseudo_random_fill(index: usize) -> f32 {
    let mut z = (index as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Map to [-1, 1).
    ((z >> 41) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corrupt_batch() -> Vec<Vector> {
        vec![
            Vector::from(vec![1.0, 2.0]),
            Vector::from(vec![f32::NAN, 2.0]),
            Vector::from(vec![1.0, f32::INFINITY]),
        ]
    }

    #[test]
    fn pass_through_keeps_everything() {
        let (out, dropped) = apply_policy(SanitizePolicy::PassThrough, &corrupt_batch());
        assert_eq!(out.len(), 3);
        assert_eq!(dropped, 0);
        assert!(!out[1].is_finite());
    }

    #[test]
    fn drop_corrupt_removes_non_finite_gradients() {
        let (out, dropped) = apply_policy(SanitizePolicy::DropCorrupt, &corrupt_batch());
        assert_eq!(out.len(), 1);
        assert_eq!(dropped, 2);
        assert!(out[0].is_finite());
    }

    #[test]
    fn zero_fill_replaces_with_zero() {
        let (out, dropped) = apply_policy(SanitizePolicy::ZeroFill, &corrupt_batch());
        assert_eq!(dropped, 0);
        assert_eq!(out[1][0], 0.0);
        assert_eq!(out[2][1], 0.0);
        assert!(out.iter().all(Vector::is_finite));
    }

    #[test]
    fn random_fill_is_deterministic_and_bounded() {
        let (a, _) = apply_policy(SanitizePolicy::RandomFill, &corrupt_batch());
        let (b, _) = apply_policy(SanitizePolicy::RandomFill, &corrupt_batch());
        assert_eq!(a, b);
        assert!(a.iter().all(Vector::is_finite));
        assert!(a[1][0].abs() <= 1.0);
    }

    #[test]
    fn default_policy_is_pass_through() {
        assert_eq!(SanitizePolicy::default(), SanitizePolicy::PassThrough);
    }
}
