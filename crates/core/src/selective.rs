//! Selective averaging: the loss-tolerant averaging variant of §3.3.
//!
//! When the unreliable transport loses packets, the receiving endpoint marks
//! the missing coordinates with `NaN`. Selective averaging ignores those
//! coordinates while averaging, so a lost packet only reduces the effective
//! sample count of the affected coordinates instead of discarding the whole
//! gradient. The paper notes this variant requires in-order packet metadata
//! (sequence numbers) so that received coordinates land at the right offsets;
//! that part is implemented in `agg-net`.

use crate::gar::{ensure_batch_nonempty, Gar, GarProperties, Resilience};
use crate::{AggregationError, Result};
use agg_tensor::{GradientBatch, Vector};

/// Coordinate-wise mean that skips non-finite (lost) coordinates.
///
/// Not Byzantine-resilient — a worker can still submit arbitrary finite
/// values — but tolerant to packet loss, which is exactly the role it plays
/// in the Figure 8 comparison.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectiveAverage {
    _private: (),
}

impl SelectiveAverage {
    /// Creates the selective-averaging rule.
    pub fn new() -> Self {
        SelectiveAverage { _private: () }
    }
}

impl Gar for SelectiveAverage {
    fn properties(&self) -> GarProperties {
        GarProperties {
            name: "selective-average",
            resilience: Resilience::None,
            f: 0,
            minimum_workers: 1,
            tolerates_non_finite: true,
        }
    }

    fn aggregate_batch(&self, batch: &GradientBatch) -> Result<Vector> {
        ensure_batch_nonempty("selective-average", batch)?;
        // A coordinate that was lost in every submission becomes a zero
        // update rather than poisoning the model — this matches "not caring
        // what happens at the lower layer": the coordinate simply does not
        // move this step.
        let out = batch.coordinate_nan_mean()?;
        if batch.rows().all(|row| row.iter().all(|x| !x.is_finite())) {
            return Err(AggregationError::AllGradientsCorrupt("selective-average"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_like_average_on_clean_input() {
        let gar = SelectiveAverage::new();
        let gs = vec![Vector::from(vec![1.0, 4.0]), Vector::from(vec![3.0, 8.0])];
        assert_eq!(gar.aggregate(&gs).unwrap().as_slice(), &[2.0, 6.0]);
    }

    #[test]
    fn skips_lost_coordinates() {
        let gar = SelectiveAverage::new();
        let gs = vec![Vector::from(vec![1.0, f32::NAN]), Vector::from(vec![3.0, 8.0])];
        assert_eq!(gar.aggregate(&gs).unwrap().as_slice(), &[2.0, 8.0]);
    }

    #[test]
    fn coordinate_lost_everywhere_becomes_zero_update() {
        let gar = SelectiveAverage::new();
        let gs = vec![Vector::from(vec![1.0, f32::NAN]), Vector::from(vec![3.0, f32::NAN])];
        assert_eq!(gar.aggregate(&gs).unwrap().as_slice(), &[2.0, 0.0]);
    }

    #[test]
    fn fully_corrupt_batch_is_an_error() {
        let gar = SelectiveAverage::new();
        let gs = vec![Vector::from(vec![f32::NAN, f32::NAN])];
        assert!(matches!(
            gar.aggregate(&gs).unwrap_err(),
            AggregationError::AllGradientsCorrupt(_)
        ));
    }

    #[test]
    fn properties_advertise_non_finite_tolerance() {
        assert!(SelectiveAverage::new().properties().tolerates_non_finite);
    }
}
