//! Shard-parallel aggregation with exact distance-decomposed GARs.
//!
//! The paper's deployment shards the model across multiple parameter
//! servers. Naive per-shard aggregation would run each GAR independently on
//! its coordinate slice — cheap, but it weakens the distance-based rules: a
//! Byzantine gradient only has to look locally plausible per shard, and the
//! per-shard Krum selections can disagree. This module implements the exact
//! alternative: because squared L2 distances decompose as sums of per-shard
//! partials over disjoint coordinate ranges,
//!
//! ```text
//! ‖x − y‖² = Σ_s Σ_{c ∈ shard s} (x_c − y_c)²,
//! ```
//!
//! even Krum, Multi-Krum and Bulyan can be computed with *no robustness
//! loss* in a sharded layout:
//!
//! 1. every shard computes its partial pair-distance matrix on its own
//!    column slice ([`agg_tensor::BatchColumns::distance_partials`]),
//! 2. the partials are reduce-summed in **fixed shard order** into one
//!    global [`DistanceMatrix`] (bit-reproducible under any thread count),
//! 3. selection runs **once, globally** — identical to the unsharded rule,
//! 4. each shard then averages (Multi-Krum) or median-windows (Bulyan) only
//!    the selected rows of its own slice, and the per-shard outputs
//!    concatenate into the final update.
//!
//! Coordinate-wise rules (average, median, trimmed mean, MeaMed) shard
//! trivially — their per-column reductions are independent, so the sharded
//! output is bit-identical to the unsharded one. The geometric median is the
//! one rule whose fixed-point iteration is inherently global; it runs
//! unsharded (which is, again, exact).
//!
//! The distance partials fan out over shards under rayon with a
//! deterministic shard-order reduce; the coordinate kernels instead run in
//! shard order and parallelise *inside* each shard over column blocks (a
//! shard-level fan-out on top of the block-level one is pure nested-dispatch
//! overhead — see [`ShardedAggregator::coordinate_sharded`]). Either way,
//! for a fixed shard count the aggregate is bit-for-bit reproducible
//! regardless of `RAYON_NUM_THREADS`.

use crate::gar::{ensure_batch_nonempty, Gar, GarProperties};
use crate::{resilience, AggregationError, Bulyan, GarConfig, GarKind, MultiKrum, Result};
use agg_tensor::batch::PARALLEL_MIN_WORK;
use agg_tensor::{DistanceMatrix, GradientBatch, ShardPlan, TensorError, Vector};
use rayon::prelude::*;
use std::ops::Range;

/// A gradient aggregation rule evaluated over `S` contiguous coordinate
/// shards, exactly equivalent to the underlying unsharded rule (up to
/// floating-point reassociation in the distance sums).
///
/// Implements [`Gar`], so a parameter server can swap it in wherever a plain
/// rule is used.
///
/// ```
/// use agg_core::{Gar, GarConfig, GarKind, ShardedAggregator};
/// use agg_tensor::Vector;
/// # fn main() -> Result<(), agg_core::AggregationError> {
/// let config = GarConfig::new(GarKind::MultiKrum, 1);
/// let sharded = ShardedAggregator::new(config, 4)?;
/// let honest = (0..6).map(|_| Vector::from(vec![1.0; 8]));
/// let byzantine = std::iter::once(Vector::from(vec![1e6; 8]));
/// let gradients: Vec<_> = honest.chain(byzantine).collect();
/// let update = sharded.aggregate(&gradients)?;
/// assert!((update[0] - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShardedAggregator {
    config: GarConfig,
    shards: usize,
    /// The unsharded rule: source of [`GarProperties`], the aggregation path
    /// for the non-decomposable geometric median, and the documentation of
    /// what this aggregator must be equivalent to.
    inner: Box<dyn Gar>,
    /// `false` forces the per-shard work through a plain sequential
    /// iterator. The determinism tests run both modes and assert bit-for-bit
    /// identical aggregates, which (together with the shard-order reduce)
    /// pins thread-count independence.
    parallel: bool,
}

impl ShardedAggregator {
    /// Wraps `config`'s rule in an `S`-shard evaluation plan.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::InvalidArgument`] when `shards` is zero
    /// and propagates rule-construction errors.
    pub fn new(config: GarConfig, shards: usize) -> Result<Self> {
        if shards == 0 {
            return Err(AggregationError::InvalidArgument {
                rule: config.kind.name().to_string(),
                message: "a sharded aggregator needs at least one shard".into(),
            });
        }
        let inner = config.build()?;
        Ok(ShardedAggregator { config, shards, inner, parallel: true })
    }

    /// Number of coordinate shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The wrapped rule configuration.
    pub fn config(&self) -> GarConfig {
        self.config
    }

    /// Forces the per-shard work through the sequential iterator (the shard
    /// ordering) instead of the rayon fan-out. Both modes must produce
    /// bit-identical aggregates — the determinism test asserts exactly that.
    pub fn set_parallel(&mut self, parallel: bool) {
        self.parallel = parallel;
    }

    /// The shard partition for a `d`-dimensional batch.
    pub fn plan(&self, d: usize) -> ShardPlan {
        ShardPlan::new(d, self.shards).expect("constructor guarantees shards >= 1")
    }

    /// Maps `run` over every shard's column range — in parallel when the
    /// total element-op count clears [`PARALLEL_MIN_WORK`] — and returns the
    /// per-shard results in shard order (the fan-out preserves order, so the
    /// downstream reduce is deterministic under any thread count).
    fn map_shards<T: Send>(
        &self,
        plan: &ShardPlan,
        total_work: usize,
        run: impl Fn(Range<usize>) -> T + Sync,
    ) -> Vec<T> {
        let ranges: Vec<Range<usize>> = plan.ranges().collect();
        if self.parallel && self.shards > 1 && total_work >= PARALLEL_MIN_WORK {
            ranges.into_par_iter().map(run).collect()
        } else {
            ranges.into_iter().map(run).collect()
        }
    }

    /// Runs a per-shard coordinate kernel, each shard writing its slice of
    /// one shared output buffer in place (the `*_into` kernel surface of
    /// [`agg_tensor::BatchColumns`]), so assembling the full update costs no
    /// concatenation copy.
    ///
    /// Deliberately sequential over shards: the column kernels already
    /// parallelise over `PARALLEL_MIN_WORK`-gated column blocks inside each
    /// shard, so a shard-level rayon fan-out on top adds nothing but nested
    /// dispatch — and together with the per-shard output vectors it is what
    /// made the coordinate-wise rules *regress* under sharding
    /// (BENCH_shard recorded 0.95× for the median at S ∈ {2, 4, 8} before
    /// this loop went shard-sequential and zero-copy). Per-column
    /// reductions are independent, so running the shards in shard order is
    /// bit-identical to any other schedule.
    fn coordinate_sharded(
        &self,
        batch: &GradientBatch,
        kernel: impl Fn(agg_tensor::BatchColumns<'_>, &mut [f32]) -> Result<()> + Sync,
    ) -> Result<Vector> {
        let plan = self.plan(batch.dim());
        let mut out = vec![0.0f32; batch.dim()];
        for range in plan.ranges() {
            let dst = &mut out[range.clone()];
            kernel(batch.columns(range), dst)?;
        }
        Ok(Vector::from(out))
    }

    /// The global pair-distance matrix assembled from per-shard partials:
    /// shard-parallel compute, shard-order reduce, one non-finite → `+∞`
    /// mapping at the end (NaN propagates faithfully through the raw sums).
    pub fn global_distances(&self, batch: &GradientBatch) -> DistanceMatrix {
        let n = batch.n();
        let plan = self.plan(batch.dim());
        let pairs = n.saturating_sub(1) * n / 2;
        let partials = self.map_shards(&plan, pairs.saturating_mul(batch.dim()), |range| {
            batch.columns(range).distance_partials()
        });
        let mut global = DistanceMatrix::zeros(n);
        for partial in &partials {
            global.accumulate(partial);
        }
        global.map_non_finite_to_infinity();
        global
    }

    /// The worker rows the rule's selection phase picks for this batch
    /// (computed through the sharded distance pipeline), or `None` for rules
    /// with no selection phase.
    ///
    /// Exposed so tests and experiment instrumentation can assert the
    /// decomposition's central claim: the sharded selection equals the
    /// unsharded one.
    ///
    /// # Errors
    ///
    /// Same conditions as the underlying rule's selection.
    pub fn selected_rows(&self, batch: &GradientBatch) -> Result<Option<Vec<usize>>> {
        match self.config.kind {
            GarKind::Krum | GarKind::MultiKrum => {
                let n = ensure_batch_nonempty("multi-krum", batch)?;
                // Cheap precondition before the O(n²·d) distance pipeline.
                resilience::check_multi_krum(n, self.config.f)?;
                let distances = self.global_distances(batch);
                self.selected_rows_with_distances(batch, &distances)
            }
            GarKind::Bulyan => {
                let n = ensure_batch_nonempty("bulyan", batch)?;
                resilience::check_bulyan(n, self.config.f)?;
                let distances = self.global_distances(batch);
                self.selected_rows_with_distances(batch, &distances)
            }
            _ => Ok(None),
        }
    }

    /// [`ShardedAggregator::selected_rows`] on an already-reduced global
    /// distance matrix — the streaming round engine's entry point, where the
    /// matrix was accumulated incrementally as rows completed and folded in
    /// the same shard order, so the selection is bit-identical to the batch
    /// pipeline's.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ShardedAggregator::selected_rows`], plus a
    /// dimension error when the matrix `n` disagrees with the batch.
    pub fn selected_rows_with_distances(
        &self,
        batch: &GradientBatch,
        distances: &DistanceMatrix,
    ) -> Result<Option<Vec<usize>>> {
        match self.config.kind {
            GarKind::Krum | GarKind::MultiKrum => {
                let n = ensure_batch_nonempty("multi-krum", batch)?;
                resilience::check_multi_krum(n, self.config.f)?;
                if distances.n() != n {
                    return Err(TensorError::dim(n, distances.n()).into());
                }
                let rule = self.multi_krum_rule()?;
                Ok(Some(rule.select_with_distances(distances)?))
            }
            GarKind::Bulyan => {
                let n = ensure_batch_nonempty("bulyan", batch)?;
                resilience::check_bulyan(n, self.config.f)?;
                if distances.n() != n {
                    return Err(TensorError::dim(n, distances.n()).into());
                }
                Ok(Some(Bulyan::new(self.config.f)?.select_with_distances(distances)?))
            }
            _ => Ok(None),
        }
    }

    /// The Multi-Krum instance backing the Krum / Multi-Krum decomposition
    /// (Krum is Multi-Krum with `m = 1`, exactly as in [`crate::Krum`]).
    fn multi_krum_rule(&self) -> Result<MultiKrum> {
        match self.config.kind {
            GarKind::Krum => MultiKrum::with_selection(self.config.f, 1),
            GarKind::MultiKrum => match self.config.m {
                Some(m) => MultiKrum::with_selection(self.config.f, m),
                None => MultiKrum::new(self.config.f),
            },
            other => unreachable!("{other} has no Multi-Krum selection phase"),
        }
    }
}

impl ShardedAggregator {
    /// Shared body of both [`Gar`] aggregation entry points: when `distances`
    /// is supplied (the streaming engine's pre-accumulated global matrix) the
    /// selection phase reads it instead of re-running the distance pipeline;
    /// everything downstream — and every coordinate-wise arm — is the same
    /// code either way, which is what keeps streaming == batch bit-identical.
    fn aggregate_batch_inner(
        &self,
        batch: &GradientBatch,
        distances: Option<&DistanceMatrix>,
    ) -> Result<Vector> {
        // Each arm restates its rule's preconditions and error policy (the
        // twin sites live in the rule modules: trimmed_mean.rs, meamed.rs,
        // selective.rs, multi_krum.rs, bulyan.rs) because the sharded
        // evaluation interleaves them with the decomposition. Any drift
        // between a rule and its arm here is caught by the
        // tests/shard_equivalence.rs proptests, which pin Ok/Err agreement
        // and the aggregate for every rule at several shard counts.
        let rule = self.inner.properties().name;
        let n = ensure_batch_nonempty(rule, batch)?;
        let f = self.config.f;
        match self.config.kind {
            GarKind::Average => {
                self.coordinate_sharded(batch, |cols, dst| Ok(cols.mean_into(None, dst)?))
            }
            GarKind::SelectiveAverage => {
                let out =
                    self.coordinate_sharded(batch, |cols, dst| Ok(cols.nan_mean_into(dst)?))?;
                if batch.rows().all(|row| row.iter().all(|x| !x.is_finite())) {
                    return Err(AggregationError::AllGradientsCorrupt("selective-average"));
                }
                Ok(out)
            }
            GarKind::Median => {
                resilience::check_median("median", n, f)?;
                self.coordinate_sharded(batch, |cols, dst| Ok(cols.median_into(None, dst)?))
            }
            GarKind::TrimmedMean => {
                resilience::check_median("trimmed-mean", n, f)?;
                if n <= 2 * f {
                    return Err(AggregationError::NotEnoughWorkers {
                        rule: "trimmed-mean",
                        f,
                        required: 2 * f + 1,
                        actual: n,
                    });
                }
                self.coordinate_sharded(batch, |cols, dst| Ok(cols.trimmed_mean_into(f, dst)?))
            }
            GarKind::MeaMed => {
                resilience::check_median("meamed", n, f)?;
                let keep = (n - f).max(1);
                self.coordinate_sharded(batch, |cols, dst| {
                    Ok(cols.mean_around_median_into(None, keep, dst)?)
                })
            }
            // Weiszfeld's fixed-point iteration needs the full-dimension
            // distances at every step; running it unsharded is the exact
            // decomposition (there is nothing to fuse per shard).
            GarKind::GeometricMedian => self.inner.aggregate_batch(batch),
            GarKind::Krum | GarKind::MultiKrum => {
                let selected = match distances {
                    Some(d) => self.selected_rows_with_distances(batch, d)?,
                    None => self.selected_rows(batch)?,
                }
                .expect("krum/multi-krum always have a selection phase");
                if selected.iter().all(|&i| batch.row(i).iter().any(|x| !x.is_finite())) {
                    return Err(AggregationError::AllGradientsCorrupt("multi-krum"));
                }
                self.coordinate_sharded(
                    batch,
                    |cols, dst| Ok(cols.mean_into(Some(&selected), dst)?),
                )
            }
            GarKind::Bulyan => {
                let selected = match distances {
                    Some(d) => self.selected_rows_with_distances(batch, d)?,
                    None => self.selected_rows(batch)?,
                }
                .expect("bulyan always has a selection phase");
                let beta = resilience::bulyan_beta(n, f)?;
                if selected.iter().all(|&i| batch.row(i).iter().any(|x| !x.is_finite())) {
                    return Err(AggregationError::AllGradientsCorrupt("bulyan"));
                }
                self.coordinate_sharded(batch, |cols, dst| {
                    cols.mean_around_median_into(Some(&selected), beta, dst).map_err(|e| match e {
                        TensorError::EmptyInput(_) => {
                            AggregationError::AllGradientsCorrupt("bulyan")
                        }
                        other => other.into(),
                    })
                })
            }
        }
    }
}

impl Gar for ShardedAggregator {
    fn properties(&self) -> GarProperties {
        self.inner.properties()
    }

    fn aggregate_batch(&self, batch: &GradientBatch) -> Result<Vector> {
        self.aggregate_batch_inner(batch, None)
    }

    fn aggregate_batch_with_distances(
        &self,
        batch: &GradientBatch,
        distances: &DistanceMatrix,
    ) -> Result<Vector> {
        self.aggregate_batch_inner(batch, Some(distances))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_tensor::rng::{gaussian_vector, seeded_rng};

    fn random_batch(n: usize, d: usize, seed: u64) -> GradientBatch {
        let mut rng = seeded_rng(seed);
        let vs: Vec<Vector> = (0..n).map(|_| gaussian_vector(&mut rng, d, 0.0, 1.0)).collect();
        GradientBatch::from_vectors(&vs).unwrap()
    }

    #[test]
    fn zero_shards_is_rejected() {
        assert!(ShardedAggregator::new(GarConfig::new(GarKind::Average, 0), 0).is_err());
    }

    #[test]
    fn properties_delegate_to_the_wrapped_rule() {
        let sharded = ShardedAggregator::new(GarConfig::new(GarKind::Bulyan, 2), 4).unwrap();
        assert_eq!(sharded.name(), "bulyan");
        assert_eq!(sharded.shards(), 4);
        assert_eq!(sharded.config().f, 2);
    }

    #[test]
    fn sharded_distances_match_the_unsharded_matrix() {
        let batch = random_batch(9, 257, 3);
        let sharded = ShardedAggregator::new(GarConfig::new(GarKind::MultiKrum, 2), 5).unwrap();
        let global = sharded.global_distances(&batch);
        let reference = batch.pairwise_squared_distances();
        for i in 0..9 {
            for j in 0..9 {
                let a = global.get(i, j);
                let e = reference.get(i, j);
                assert!((a - e).abs() <= 1e-4 * e.abs().max(1.0), "({i},{j}): {a} vs {e}");
            }
        }
    }

    #[test]
    fn selection_matches_the_unsharded_rule() {
        let mut batch = random_batch(12, 65, 7);
        batch.push_row(&vec![1e6; 65]).unwrap();
        let config = GarConfig::new(GarKind::MultiKrum, 2);
        let sharded = ShardedAggregator::new(config, 4).unwrap();
        let selected = sharded.selected_rows(&batch).unwrap().unwrap();
        let unsharded = MultiKrum::new(2).unwrap().select_batch(&batch).unwrap();
        assert_eq!(selected, unsharded);
        assert!(!selected.contains(&12), "the outlier must not be selected");
    }

    #[test]
    fn coordinate_rules_have_no_selection_phase() {
        let batch = random_batch(5, 16, 1);
        let sharded = ShardedAggregator::new(GarConfig::new(GarKind::Median, 1), 3).unwrap();
        assert_eq!(sharded.selected_rows(&batch).unwrap(), None);
    }

    #[test]
    fn parallel_and_sequential_shards_agree_bitwise() {
        // Large enough that d·n clears the parallel gate.
        let batch = random_batch(13, 40_000, 11);
        for kind in [GarKind::MultiKrum, GarKind::Median, GarKind::Bulyan] {
            let mut sharded = ShardedAggregator::new(GarConfig::new(kind, 2), 4).unwrap();
            let parallel = sharded.aggregate_batch(&batch).unwrap();
            sharded.set_parallel(false);
            let sequential = sharded.aggregate_batch(&batch).unwrap();
            assert_eq!(
                parallel.as_slice(),
                sequential.as_slice(),
                "{kind}: shard-parallel aggregation must be bit-identical to shard order"
            );
        }
    }

    #[test]
    fn streamed_distances_aggregate_is_bit_identical_to_the_batch_path() {
        // The streaming accumulator replays the sharded partial pipeline, so
        // handing its matrix to `aggregate_batch_with_distances` must return
        // the same bits as the batch entry point for every distance rule.
        let batch = random_batch(9, 1500, 17);
        for (kind, f) in [(GarKind::Krum, 2), (GarKind::MultiKrum, 2), (GarKind::Bulyan, 1)] {
            let sharded = ShardedAggregator::new(GarConfig::new(kind, f), 4).unwrap();
            let mut acc = agg_tensor::StreamingDistances::sharded(9, 1500, 4).unwrap();
            for slot in [6, 0, 8, 2, 4, 1, 7, 5, 3] {
                acc.row_arrived(&batch, slot);
            }
            let keep: Vec<usize> = (0..9).collect();
            let streamed =
                sharded.aggregate_batch_with_distances(&batch, &acc.matrix(&keep)).unwrap();
            let reference = sharded.aggregate_batch(&batch).unwrap();
            assert_eq!(streamed.as_slice(), reference.as_slice(), "{kind}");
        }
    }

    #[test]
    fn with_distances_rejects_a_mismatched_matrix() {
        let batch = random_batch(9, 64, 2);
        let sharded = ShardedAggregator::new(GarConfig::new(GarKind::MultiKrum, 2), 2).unwrap();
        let wrong = DistanceMatrix::zeros(8);
        assert!(sharded.aggregate_batch_with_distances(&batch, &wrong).is_err());
    }

    #[test]
    fn coordinate_rules_ignore_a_supplied_matrix() {
        let batch = random_batch(7, 48, 4);
        let sharded = ShardedAggregator::new(GarConfig::new(GarKind::Median, 1), 3).unwrap();
        let matrix = sharded.global_distances(&batch);
        let with = sharded.aggregate_batch_with_distances(&batch, &matrix).unwrap();
        let without = sharded.aggregate_batch(&batch).unwrap();
        assert_eq!(with.as_slice(), without.as_slice());
    }

    #[test]
    fn empty_batch_is_rejected_like_the_plain_rule() {
        let sharded = ShardedAggregator::new(GarConfig::new(GarKind::Average, 0), 2).unwrap();
        let empty = GradientBatch::new(4);
        assert!(matches!(
            sharded.aggregate_batch(&empty).unwrap_err(),
            AggregationError::NoGradients(_)
        ));
    }

    #[test]
    fn more_shards_than_coordinates_still_aggregates() {
        let batch = random_batch(9, 3, 5);
        let sharded = ShardedAggregator::new(GarConfig::new(GarKind::MultiKrum, 2), 7).unwrap();
        let out = sharded.aggregate_batch(&batch).unwrap();
        let reference =
            GarConfig::new(GarKind::MultiKrum, 2).build().unwrap().aggregate_batch(&batch).unwrap();
        for c in 0..3 {
            assert!((out[c] - reference[c]).abs() <= 1e-6 * reference[c].abs().max(1.0));
        }
    }
}
