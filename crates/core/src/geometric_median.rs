//! Approximate geometric median via the Weiszfeld iteration.
//!
//! The geometric median (the point minimising the sum of Euclidean distances
//! to the submitted gradients) is the classical robust aggregator that
//! Krum-style rules approximate cheaply; it is the backbone of several of the
//! weakly Byzantine-resilient approaches the paper cites (e.g. the
//! median-of-means constructions). It is included as an additional baseline
//! GAR: robust to a minority of outliers, but more expensive per round than
//! Multi-Krum for the same dimension because of its iterative refinement.

use crate::gar::{ensure_batch_nonempty, Gar, GarProperties, Resilience};
use crate::{resilience, AggregationError, Result};
use agg_tensor::{ops, GradientBatch, Vector};

/// Weiszfeld-iteration approximation of the geometric median.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometricMedian {
    f: usize,
    iterations: usize,
    tolerance: f32,
}

impl GeometricMedian {
    /// Creates the rule with the default 8 Weiszfeld iterations.
    pub fn new(f: usize) -> Self {
        GeometricMedian { f, iterations: 8, tolerance: 1e-6 }
    }

    /// Overrides the number of refinement iterations.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::InvalidArgument`] when `iterations == 0`.
    pub fn with_iterations(f: usize, iterations: usize) -> Result<Self> {
        if iterations == 0 {
            return Err(AggregationError::InvalidArgument {
                rule: "geometric-median".into(),
                message: "iterations must be positive".into(),
            });
        }
        Ok(GeometricMedian { f, iterations, tolerance: 1e-6 })
    }

    /// Declared number of Byzantine workers.
    pub fn f(&self) -> usize {
        self.f
    }
}

impl Default for GeometricMedian {
    fn default() -> Self {
        GeometricMedian::new(0)
    }
}

impl Gar for GeometricMedian {
    fn properties(&self) -> GarProperties {
        GarProperties {
            name: "geometric-median",
            resilience: Resilience::Weak,
            f: self.f,
            minimum_workers: resilience::median_min_workers(self.f),
            tolerates_non_finite: true,
        }
    }

    fn aggregate_batch(&self, batch: &GradientBatch) -> Result<Vector> {
        let n = ensure_batch_nonempty("geometric-median", batch)?;
        resilience::check_median("geometric-median", n, self.f)?;
        // Non-finite gradients cannot participate in distance computations;
        // they are excluded up front (equivalent to being infinitely far).
        // Rows are borrowed from the arena — no clones.
        let finite: Vec<usize> =
            (0..n).filter(|&i| batch.row(i).iter().all(|x| x.is_finite())).collect();
        if finite.is_empty() {
            return Err(AggregationError::AllGradientsCorrupt("geometric-median"));
        }
        // Start from the coordinate-wise median — already a robust point.
        let mut estimate = batch.coordinate_median_of_rows(&finite)?;
        for _ in 0..self.iterations {
            let mut weight_sum = 0.0f32;
            let mut next = Vector::zeros(estimate.len());
            let mut coincides = false;
            for &r in &finite {
                let row = batch.row(r);
                let distance = ops::squared_distance(estimate.as_slice(), row).sqrt().max(1e-12);
                if distance <= self.tolerance {
                    coincides = true;
                    break;
                }
                let w = 1.0 / distance;
                weight_sum += w;
                for (a, &b) in next.iter_mut().zip(row) {
                    *a += w * b;
                }
            }
            if coincides || weight_sum == 0.0 {
                break;
            }
            next.scale(1.0 / weight_sum);
            let shift = estimate.distance(&next);
            estimate = next;
            if shift <= self.tolerance {
                break;
            }
        }
        Ok(estimate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_symmetric_points_is_the_centre() {
        let gar = GeometricMedian::new(0);
        let gs = vec![
            Vector::from(vec![1.0, 0.0]),
            Vector::from(vec![-1.0, 0.0]),
            Vector::from(vec![0.0, 1.0]),
            Vector::from(vec![0.0, -1.0]),
        ];
        let out = gar.aggregate(&gs).unwrap();
        assert!(out[0].abs() < 1e-3 && out[1].abs() < 1e-3, "{out:?}");
    }

    #[test]
    fn resists_a_large_outlier() {
        let gar = GeometricMedian::new(1);
        let mut gs: Vec<Vector> = (0..6).map(|_| Vector::from(vec![1.0, 2.0])).collect();
        gs.push(Vector::from(vec![1e9, -1e9]));
        let out = gar.aggregate(&gs).unwrap();
        assert!((out[0] - 1.0).abs() < 0.1, "{out:?}");
        assert!((out[1] - 2.0).abs() < 0.1, "{out:?}");
    }

    #[test]
    fn excludes_non_finite_gradients() {
        let gar = GeometricMedian::new(1);
        let gs =
            vec![Vector::from(vec![1.0]), Vector::from(vec![1.2]), Vector::from(vec![f32::NAN])];
        let out = gar.aggregate(&gs).unwrap();
        assert!(out.is_finite());
        assert!(out[0] >= 1.0 && out[0] <= 1.2);
        let all_bad = vec![Vector::from(vec![f32::NAN]); 3];
        assert!(matches!(
            gar.aggregate(&all_bad).unwrap_err(),
            AggregationError::AllGradientsCorrupt(_)
        ));
    }

    #[test]
    fn single_gradient_is_returned_as_is() {
        let gar = GeometricMedian::new(0);
        let gs = vec![Vector::from(vec![3.0, -4.0])];
        assert_eq!(gar.aggregate(&gs).unwrap().as_slice(), &[3.0, -4.0]);
    }

    #[test]
    fn configuration_validation() {
        assert!(GeometricMedian::with_iterations(1, 0).is_err());
        assert!(GeometricMedian::with_iterations(1, 4).is_ok());
        assert_eq!(GeometricMedian::default().f(), 0);
        let gar = GeometricMedian::new(2);
        assert!(gar.aggregate(&vec![Vector::zeros(1); 4]).is_err());
    }

    #[test]
    fn more_iterations_do_not_move_the_estimate_far() {
        let gs: Vec<Vector> =
            (0..9).map(|i| Vector::from(vec![(i % 3) as f32, (i / 3) as f32])).collect();
        let coarse = GeometricMedian::with_iterations(1, 2).unwrap().aggregate(&gs).unwrap();
        let fine = GeometricMedian::with_iterations(1, 32).unwrap().aggregate(&gs).unwrap();
        assert!(coarse.distance(&fine) < 0.5);
    }
}
