//! # agg-core — Byzantine-resilient gradient aggregation rules
//!
//! This crate is the heart of the AggregaThor reproduction: the Gradient
//! Aggregation Rules (GARs) that the parameter server applies to the `n`
//! gradients submitted by the workers each synchronous step, of which up to
//! `f` may be Byzantine (arbitrary, possibly adversarial).
//!
//! Implemented rules:
//!
//! | Rule | Resilience | Requirement | Paper section |
//! |---|---|---|---|
//! | [`Average`] | none | — | baseline (`tf.train.SyncReplicasOptimizer`) |
//! | [`SelectiveAverage`] | none (loss-tolerant) | — | §3.3 |
//! | [`CoordinateMedian`] | weak | `n ≥ 2f + 1` | §4.2 (Xie et al.) |
//! | [`TrimmedMean`] | weak | `n ≥ 2f + 1` | related work (Yin et al.) |
//! | [`Krum`] | weak | `n ≥ 2f + 3` | §2.3 |
//! | [`MultiKrum`] | weak | `n ≥ 2f + 3`, `m ≤ n − f − 2` | §2.3, Appendix B.2 |
//! | [`Bulyan`] | strong | `n ≥ 4f + 3`, `m ≤ n − 2f − 2` | §2.3, Appendix B.3 |
//!
//! All rules tolerate non-finite (`NaN`, `±∞`) coordinates — the paper calls
//! this "a crucial feature when facing actual malicious workers" — either by
//! construction (distance-based rules never select a non-finite gradient when
//! enough finite ones exist) or through an explicit policy
//! ([`sanitize::SanitizePolicy`]).
//!
//! ```
//! use agg_core::{Gar, MultiKrum};
//! use agg_tensor::Vector;
//!
//! # fn main() -> Result<(), agg_core::AggregationError> {
//! // 7 workers, 1 of them Byzantine.
//! let gradients: Vec<Vector> = (0..6)
//!     .map(|i| Vector::from(vec![1.0 + 0.01 * i as f32, -1.0]))
//!     .chain(std::iter::once(Vector::from(vec![1e9, 1e9])))
//!     .collect();
//! let gar = MultiKrum::new(1)?;
//! let aggregate = gar.aggregate(&gradients)?;
//! assert!(aggregate[0] < 2.0); // the outlier was excluded
//! # Ok(())
//! # }
//! ```

pub mod average;
pub mod bulyan;
pub mod error;
pub mod gar;
pub mod geometric_median;
pub mod krum;
pub mod meamed;
pub mod median;
pub mod multi_krum;
pub mod reference;
pub mod registry;
pub mod resilience;
pub mod sanitize;
pub mod selective;
pub mod sharded;
pub mod tree;
pub mod trimmed_mean;

pub use agg_tensor::{DistanceMatrix, GradientBatch};
pub use average::Average;
pub use bulyan::Bulyan;
pub use error::AggregationError;
pub use gar::{Gar, GarProperties, Resilience};
pub use geometric_median::GeometricMedian;
pub use krum::Krum;
pub use meamed::MeaMed;
pub use median::CoordinateMedian;
pub use multi_krum::MultiKrum;
pub use registry::{GarConfig, GarKind};
pub use selective::SelectiveAverage;
pub use sharded::ShardedAggregator;
pub use tree::{GroupOutput, TreeAggregator, TreeConfig, TreeRound};
pub use trimmed_mean::TrimmedMean;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, AggregationError>;
