//! Multi-Krum: the paper's weakly Byzantine-resilient workhorse GAR.
//!
//! Given `n` gradients of which at most `f` are Byzantine, each gradient `i`
//! receives a score equal to the sum of its squared distances to its
//! `n − f − 2` closest neighbours. The `m` lowest-scoring gradients are
//! selected and averaged (Equation 5 of the paper). The appendix proves weak
//! Byzantine resilience for any `m ≤ n − f − 2`; `m = 1` is the original Krum
//! of Blanchard et al.
//!
//! The implementation mirrors the paper's "fast, memory scarce" description:
//! gradients live in a contiguous [`GradientBatch`] arena, the O(n²·d)
//! pairwise-distance kernel computes each unordered pair exactly once (flat
//! upper triangle, rayon-parallel when the work warrants it), scores are
//! obtained by partial selection over a reusable scratch buffer instead of
//! allocate-and-sort, and the [`DistanceMatrix`] is shared with
//! [`crate::Bulyan`], which re-ranks scores across its iterations instead of
//! recomputing distances.

use crate::gar::{ensure_batch_nonempty, validate_batch, Gar, GarProperties, Resilience};
use crate::{resilience, AggregationError, Result};
use agg_tensor::batch::PARALLEL_MIN_WORK;
use agg_tensor::{stats, TensorError, Vector};
use rayon::prelude::*;

pub use agg_tensor::batch::{DistanceMatrix, GradientBatch};

/// Pairwise squared-distance matrix for a slice of vectors.
///
/// Compatibility adapter over the single canonical kernel,
/// [`GradientBatch::pairwise_squared_distances`]: each unordered pair is
/// computed exactly once into the flat upper triangle. Distances involving
/// non-finite coordinates are mapped to `+∞` so corrupt gradients are never
/// preferred by any score built on top of the matrix.
///
/// # Panics
///
/// Panics when the vectors disagree on length (distance computation is on
/// the hot path; callers validate dimensions first).
pub fn distance_matrix(gradients: &[Vector]) -> DistanceMatrix {
    match GradientBatch::from_vectors(gradients) {
        Ok(batch) => batch.pairwise_squared_distances(),
        Err(TensorError::EmptyInput(_)) => GradientBatch::new(0).pairwise_squared_distances(),
        Err(e) => panic!("distance_matrix requires equally sized gradients: {e}"),
    }
}

/// Krum score of gradient `index` restricted to the `active` set: the sum of
/// its `neighbours` smallest distances to other active gradients.
pub fn krum_score(
    distances: &DistanceMatrix,
    active: &[usize],
    index: usize,
    neighbours: usize,
) -> f32 {
    let mut scratch = Vec::with_capacity(active.len());
    krum_score_into(distances, active, index, neighbours, &mut scratch)
}

/// [`krum_score`] over a caller-provided scratch buffer: partial selection
/// (`select_nth_unstable`) of the `neighbours` smallest distances, no
/// allocation and no full sort.
fn krum_score_into(
    distances: &DistanceMatrix,
    active: &[usize],
    index: usize,
    neighbours: usize,
    scratch: &mut Vec<f32>,
) -> f32 {
    scratch.clear();
    scratch.extend(active.iter().filter(|&&j| j != index).map(|&j| distances.get(index, j)));
    let k = neighbours.min(scratch.len());
    if k == 0 {
        return 0.0;
    }
    if k < scratch.len() {
        scratch.select_nth_unstable_by(k - 1, |a, b| a.total_cmp(b));
    }
    scratch[..k].iter().sum()
}

/// Krum scores for every member of `active`, in the same order as `active`.
pub fn krum_scores(distances: &DistanceMatrix, active: &[usize], neighbours: usize) -> Vec<f32> {
    // Gate on the actual work being dispatched: scoring gathers and
    // partially selects |active| distances for each of the |active| members,
    // i.e. |active|² element operations in total. PARALLEL_MIN_WORK is
    // calibrated in exactly those units (element ops versus rayon's fixed
    // dispatch overhead), so the same constant serves every kernel.
    if active.len() * active.len() < PARALLEL_MIN_WORK {
        let mut scratch = Vec::with_capacity(active.len());
        active
            .iter()
            .map(|&i| krum_score_into(distances, active, i, neighbours, &mut scratch))
            .collect()
    } else {
        // Chunked dispatch so each parallel task reuses one scratch buffer
        // across its members instead of allocating per scored gradient.
        let parts: Vec<Vec<f32>> = active
            .chunks(64)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|chunk| {
                let mut scratch = Vec::with_capacity(active.len());
                chunk
                    .iter()
                    .map(|&i| krum_score_into(distances, active, i, neighbours, &mut scratch))
                    .collect()
            })
            .collect();
        parts.into_iter().flatten().collect()
    }
}

/// The Multi-Krum gradient aggregation rule.
///
/// ```
/// use agg_core::{Gar, MultiKrum};
/// use agg_tensor::Vector;
/// # fn main() -> Result<(), agg_core::AggregationError> {
/// let gar = MultiKrum::new(1)?; // tolerate one Byzantine worker, m = n - f - 2
/// let honest = (0..6).map(|_| Vector::from(vec![1.0, 1.0]));
/// let byzantine = std::iter::once(Vector::from(vec![-1e6, 1e6]));
/// let gradients: Vec<_> = honest.chain(byzantine).collect();
/// let update = gar.aggregate(&gradients)?;
/// assert!((update[0] - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiKrum {
    f: usize,
    /// Explicit selection size; `None` means "use the largest admissible
    /// value `m̃ = n − f − 2` for the submitted `n`".
    m: Option<usize>,
}

impl MultiKrum {
    /// Creates Multi-Krum with the slowdown-optimal selection size
    /// `m̃ = n − f − 2` (decided per batch).
    ///
    /// # Errors
    ///
    /// Never fails today; returns `Result` so the constructor signature
    /// matches [`MultiKrum::with_selection`], which does validate.
    pub fn new(f: usize) -> Result<Self> {
        Ok(MultiKrum { f, m: None })
    }

    /// Creates Multi-Krum with an explicit selection size `m`.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::InvalidSelectionSize`] when `m == 0`.
    /// The upper bound `m ≤ n − f − 2` depends on the batch size and is
    /// enforced at aggregation time.
    pub fn with_selection(f: usize, m: usize) -> Result<Self> {
        if m == 0 {
            return Err(AggregationError::InvalidSelectionSize {
                rule: "multi-krum",
                m,
                max: usize::MAX,
            });
        }
        Ok(MultiKrum { f, m: Some(m) })
    }

    /// Declared number of Byzantine workers.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Configured selection size, if explicitly set.
    pub fn selection_size(&self) -> Option<usize> {
        self.m
    }

    /// Resolves the selection size for a batch of `n` gradients.
    fn resolve_m(&self, n: usize) -> Result<usize> {
        let max_m = resilience::multi_krum_max_m(n, self.f)?;
        match self.m {
            None => Ok(max_m),
            Some(m) if m <= max_m => Ok(m),
            Some(m) => {
                Err(AggregationError::InvalidSelectionSize { rule: "multi-krum", m, max: max_m })
            }
        }
    }

    /// Returns the indices Multi-Krum would select for this batch, lowest
    /// score first. Exposed for tests, for the Bulyan implementation, and for
    /// experiment instrumentation (e.g. counting how often a Byzantine
    /// gradient sneaks into the selection).
    ///
    /// # Errors
    ///
    /// Same conditions as [`MultiKrum::aggregate`].
    pub fn select(&self, gradients: &[Vector]) -> Result<Vec<usize>> {
        validate_batch("multi-krum", gradients)?;
        let batch = GradientBatch::from_vectors(gradients)
            .expect("validate_batch guarantees a non-empty, consistent batch");
        self.select_batch(&batch)
    }

    /// Arena variant of [`MultiKrum::select`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`MultiKrum::aggregate`].
    pub fn select_batch(&self, batch: &GradientBatch) -> Result<Vec<usize>> {
        let n = ensure_batch_nonempty("multi-krum", batch)?;
        // Preconditions are checked before paying for the O(n²·d) kernel.
        self.resolve_m(n)?;
        let distances = batch.pairwise_squared_distances();
        self.select_with_distances(&distances)
    }

    /// Runs the selection on an already-computed distance matrix.
    ///
    /// This is the entry point of the sharded aggregation layer: squared L2
    /// distances decompose into per-shard partial sums, so a sharded
    /// deployment reduces one partial matrix per shard into the global
    /// matrix and selects here exactly once — the selection (and therefore
    /// the resilience guarantee) is identical to the unsharded rule.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MultiKrum::aggregate`], with `n` taken from the
    /// matrix.
    pub fn select_with_distances(&self, distances: &DistanceMatrix) -> Result<Vec<usize>> {
        let n = distances.n();
        let m = self.resolve_m(n)?;
        let neighbours = resilience::krum_neighbour_count(n, self.f)?;
        let active: Vec<usize> = (0..n).collect();
        let scores = krum_scores(distances, &active, neighbours);
        let ranked = stats::k_smallest_indices(&scores, m)?;
        Ok(ranked)
    }
}

impl Gar for MultiKrum {
    fn properties(&self) -> GarProperties {
        GarProperties {
            name: "multi-krum",
            resilience: Resilience::Weak,
            f: self.f,
            minimum_workers: resilience::multi_krum_min_workers(self.f),
            tolerates_non_finite: true,
        }
    }

    fn aggregate_batch(&self, batch: &GradientBatch) -> Result<Vector> {
        let n = ensure_batch_nonempty("multi-krum", batch)?;
        // Preconditions are checked before paying for the O(n²·d) kernel.
        self.resolve_m(n)?;
        let distances = batch.pairwise_squared_distances();
        self.aggregate_batch_with_distances(batch, &distances)
    }

    fn aggregate_batch_with_distances(
        &self,
        batch: &GradientBatch,
        distances: &DistanceMatrix,
    ) -> Result<Vector> {
        ensure_batch_nonempty("multi-krum", batch)?;
        if distances.n() != batch.n() {
            return Err(agg_tensor::TensorError::dim(batch.n(), distances.n()).into());
        }
        let selected = self.select_with_distances(distances)?;
        // Clone-free selection averaging: the selected rows are averaged
        // straight out of the arena.
        if selected.iter().all(|&i| batch.row(i).iter().any(|x| !x.is_finite())) {
            return Err(AggregationError::AllGradientsCorrupt("multi-krum"));
        }
        Ok(batch.mean_of_rows(&selected)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_tensor::rng::{gaussian_vector, seeded_rng};

    /// Builds a batch of `honest` gradients around `center` plus `byz` copies
    /// of `attack`.
    fn batch(honest: usize, center: f32, byz: usize, attack: &[f32]) -> Vec<Vector> {
        let mut rng = seeded_rng(7);
        let d = attack.len();
        let mut out: Vec<Vector> = (0..honest)
            .map(|_| {
                let noise = gaussian_vector(&mut rng, d, 0.0, 0.01);
                let mut v = Vector::filled(d, center);
                v.axpy(1.0, &noise).unwrap();
                v
            })
            .collect();
        out.extend((0..byz).map(|_| Vector::from(attack)));
        out
    }

    #[test]
    fn excludes_an_obvious_outlier() {
        let gs = batch(6, 1.0, 1, &[1e9, -1e9]);
        let gar = MultiKrum::new(1).unwrap();
        let out = gar.aggregate(&gs).unwrap();
        assert!((out[0] - 1.0).abs() < 0.1);
        assert!((out[1] - 1.0).abs() < 0.1);
    }

    #[test]
    fn selection_never_includes_byzantine_outliers() {
        let gs = batch(11, 2.0, 4, &[500.0, 500.0, 500.0]);
        let gar = MultiKrum::new(4).unwrap();
        let selected = gar.select(&gs).unwrap();
        assert_eq!(selected.len(), 15 - 4 - 2);
        assert!(selected.iter().all(|&i| i < 11), "selected = {selected:?}");
    }

    #[test]
    fn nan_gradients_are_never_selected() {
        let mut gs = batch(7, 0.5, 0, &[0.0]);
        gs.push(Vector::from(vec![f32::NAN]));
        gs.push(Vector::from(vec![f32::INFINITY]));
        let gar = MultiKrum::new(2).unwrap();
        let selected = gar.select(&gs).unwrap();
        assert!(selected.iter().all(|&i| i < 7));
        assert!(gar.aggregate(&gs).unwrap().is_finite());
    }

    #[test]
    fn m_equal_one_returns_a_single_input_gradient() {
        let gs = batch(6, 1.0, 1, &[100.0]);
        let gar = MultiKrum::with_selection(1, 1).unwrap();
        let out = gar.aggregate(&gs).unwrap();
        // With m = 1 the output is exactly one of the honest gradients.
        assert!(gs[..6].iter().any(|g| g == &out));
    }

    #[test]
    fn default_m_is_n_minus_f_minus_2() {
        let gs = batch(9, 1.0, 2, &[9.0]);
        let gar = MultiKrum::new(2).unwrap();
        assert_eq!(gar.select(&gs).unwrap().len(), 11 - 2 - 2);
    }

    #[test]
    fn rejects_undersized_clusters_and_oversized_m() {
        let gar = MultiKrum::new(4).unwrap();
        let gs = vec![Vector::zeros(2); 10]; // needs 11
        assert!(matches!(
            gar.aggregate(&gs).unwrap_err(),
            AggregationError::NotEnoughWorkers { .. }
        ));
        let gar = MultiKrum::with_selection(1, 10).unwrap();
        let gs = vec![Vector::zeros(2); 7]; // max m = 4
        assert!(matches!(
            gar.aggregate(&gs).unwrap_err(),
            AggregationError::InvalidSelectionSize { m: 10, max: 4, .. }
        ));
        assert!(MultiKrum::with_selection(1, 0).is_err());
    }

    #[test]
    fn no_byzantine_workers_behaves_like_a_partial_average() {
        // With identical honest gradients the output equals that gradient.
        let gs = vec![Vector::from(vec![3.0, -1.0]); 9];
        let gar = MultiKrum::new(2).unwrap();
        let out = gar.aggregate(&gs).unwrap();
        assert_eq!(out.as_slice(), &[3.0, -1.0]);
    }

    #[test]
    fn scores_are_permutation_consistent() {
        let gs = batch(8, 1.0, 2, &[50.0, -50.0]);
        let gar = MultiKrum::new(2).unwrap();
        let out1 = gar.aggregate(&gs).unwrap();
        let mut reversed = gs.clone();
        reversed.reverse();
        let out2 = gar.aggregate(&reversed).unwrap();
        for c in 0..out1.len() {
            assert!((out1[c] - out2[c]).abs() < 1e-4);
        }
    }

    #[test]
    fn distance_matrix_maps_nan_to_infinity() {
        let gs = vec![Vector::from(vec![f32::NAN]), Vector::from(vec![1.0])];
        let d = distance_matrix(&gs);
        assert_eq!(d.get(0, 1), f32::INFINITY);
        assert_eq!(d.get(0, 0), 0.0);
        assert_eq!(distance_matrix(&[]).n(), 0);
    }

    #[test]
    fn krum_score_uses_only_nearest_neighbours() {
        // Three points on a line: 0, 1, 10. With 1 neighbour the score of the
        // middle point is the distance to its closest neighbour only.
        let gs = vec![Vector::from(vec![0.0]), Vector::from(vec![1.0]), Vector::from(vec![10.0])];
        let d = distance_matrix(&gs);
        let active = vec![0, 1, 2];
        assert_eq!(krum_score(&d, &active, 1, 1), 1.0);
        assert_eq!(krum_score(&d, &active, 0, 1), 1.0);
        assert_eq!(krum_score(&d, &active, 2, 1), 81.0);
        let scores = krum_scores(&d, &active, 1);
        assert_eq!(scores, vec![1.0, 1.0, 81.0]);
    }

    #[test]
    fn scores_match_the_reference_implementation() {
        let gs = batch(9, 1.0, 2, &[40.0, -40.0]);
        let d = distance_matrix(&gs);
        let dense = crate::reference::distance_matrix(&gs);
        let active: Vec<usize> = (0..gs.len()).collect();
        let fast = krum_scores(&d, &active, 7);
        let slow = crate::reference::krum_scores(&dense, &active, 7);
        for (a, b) in fast.iter().zip(slow.iter()) {
            assert!((a - b).abs() <= 1e-3 * b.abs().max(1.0), "{a} vs {b}");
        }
    }
}
