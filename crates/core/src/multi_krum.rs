//! Multi-Krum: the paper's weakly Byzantine-resilient workhorse GAR.
//!
//! Given `n` gradients of which at most `f` are Byzantine, each gradient `i`
//! receives a score equal to the sum of its squared distances to its
//! `n − f − 2` closest neighbours. The `m` lowest-scoring gradients are
//! selected and averaged (Equation 5 of the paper). The appendix proves weak
//! Byzantine resilience for any `m ≤ n − f − 2`; `m = 1` is the original Krum
//! of Blanchard et al.
//!
//! The implementation mirrors the paper's "fast, memory scarce" description:
//! the O(n²·d) pairwise-distance computation is parallelised (rayon), the
//! score computation reuses the distance matrix, and the distance matrix is
//! exposed so that [`crate::Bulyan`] can reuse it across its iterations
//! instead of recomputing it.

use crate::gar::{validate_batch, Gar, GarProperties, Resilience};
use crate::{resilience, AggregationError, Result};
use agg_tensor::{stats, Vector};
use rayon::prelude::*;

/// Below this many total elements (`n · d`) the kernels run sequentially:
/// rayon's fixed dispatch overhead would otherwise dominate the measurement
/// and distort the time model's linear-in-`d` rescaling.
const PARALLEL_THRESHOLD: usize = 200_000;

/// Pairwise squared-distance matrix, computed in parallel over rows for
/// large inputs.
///
/// Distances involving non-finite coordinates are mapped to `+∞` so corrupt
/// gradients are never preferred by any score built on top of the matrix.
pub fn distance_matrix(gradients: &[Vector]) -> Vec<Vec<f32>> {
    let n = gradients.len();
    let d = gradients.first().map(Vector::len).unwrap_or(0);
    let row = |i: usize| -> Vec<f32> {
        (0..n)
            .map(|j| {
                if i == j {
                    0.0
                } else {
                    let dist = gradients[i].squared_distance(&gradients[j]);
                    if dist.is_finite() {
                        dist
                    } else {
                        f32::INFINITY
                    }
                }
            })
            .collect()
    };
    if n * d < PARALLEL_THRESHOLD {
        (0..n).map(row).collect()
    } else {
        (0..n).into_par_iter().map(row).collect()
    }
}

/// Krum score of gradient `index` restricted to the `active` set: the sum of
/// its `neighbours` smallest distances to other active gradients.
///
/// `distances` must be the full matrix returned by [`distance_matrix`].
pub fn krum_score(
    distances: &[Vec<f32>],
    active: &[usize],
    index: usize,
    neighbours: usize,
) -> f32 {
    let mut row: Vec<f32> =
        active.iter().filter(|&&j| j != index).map(|&j| distances[index][j]).collect();
    row.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    row.iter().take(neighbours).sum()
}

/// Krum scores for every member of `active`, in the same order as `active`.
pub fn krum_scores(distances: &[Vec<f32>], active: &[usize], neighbours: usize) -> Vec<f32> {
    if active.len() * active.len() < PARALLEL_THRESHOLD {
        active.iter().map(|&i| krum_score(distances, active, i, neighbours)).collect()
    } else {
        active.par_iter().map(|&i| krum_score(distances, active, i, neighbours)).collect()
    }
}

/// The Multi-Krum gradient aggregation rule.
///
/// ```
/// use agg_core::{Gar, MultiKrum};
/// use agg_tensor::Vector;
/// # fn main() -> Result<(), agg_core::AggregationError> {
/// let gar = MultiKrum::new(1)?; // tolerate one Byzantine worker, m = n - f - 2
/// let honest = (0..6).map(|_| Vector::from(vec![1.0, 1.0]));
/// let byzantine = std::iter::once(Vector::from(vec![-1e6, 1e6]));
/// let gradients: Vec<_> = honest.chain(byzantine).collect();
/// let update = gar.aggregate(&gradients)?;
/// assert!((update[0] - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiKrum {
    f: usize,
    /// Explicit selection size; `None` means "use the largest admissible
    /// value `m̃ = n − f − 2` for the submitted `n`".
    m: Option<usize>,
}

impl MultiKrum {
    /// Creates Multi-Krum with the slowdown-optimal selection size
    /// `m̃ = n − f − 2` (decided per batch).
    ///
    /// # Errors
    ///
    /// Never fails today; returns `Result` so the constructor signature
    /// matches [`MultiKrum::with_selection`], which does validate.
    pub fn new(f: usize) -> Result<Self> {
        Ok(MultiKrum { f, m: None })
    }

    /// Creates Multi-Krum with an explicit selection size `m`.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::InvalidSelectionSize`] when `m == 0`.
    /// The upper bound `m ≤ n − f − 2` depends on the batch size and is
    /// enforced at aggregation time.
    pub fn with_selection(f: usize, m: usize) -> Result<Self> {
        if m == 0 {
            return Err(AggregationError::InvalidSelectionSize {
                rule: "multi-krum",
                m,
                max: usize::MAX,
            });
        }
        Ok(MultiKrum { f, m: Some(m) })
    }

    /// Declared number of Byzantine workers.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Configured selection size, if explicitly set.
    pub fn selection_size(&self) -> Option<usize> {
        self.m
    }

    /// Resolves the selection size for a batch of `n` gradients.
    fn resolve_m(&self, n: usize) -> Result<usize> {
        let max_m = resilience::multi_krum_max_m(n, self.f)?;
        match self.m {
            None => Ok(max_m),
            Some(m) if m <= max_m => Ok(m),
            Some(m) => {
                Err(AggregationError::InvalidSelectionSize { rule: "multi-krum", m, max: max_m })
            }
        }
    }

    /// Returns the indices Multi-Krum would select for this batch, lowest
    /// score first. Exposed for tests, for the Bulyan implementation, and for
    /// experiment instrumentation (e.g. counting how often a Byzantine
    /// gradient sneaks into the selection).
    ///
    /// # Errors
    ///
    /// Same conditions as [`MultiKrum::aggregate`].
    pub fn select(&self, gradients: &[Vector]) -> Result<Vec<usize>> {
        validate_batch("multi-krum", gradients)?;
        let n = gradients.len();
        let m = self.resolve_m(n)?;
        let neighbours = resilience::krum_neighbour_count(n, self.f)?;
        let distances = distance_matrix(gradients);
        let active: Vec<usize> = (0..n).collect();
        let scores = krum_scores(&distances, &active, neighbours);
        let ranked = stats::k_smallest_indices(&scores, m)?;
        Ok(ranked)
    }
}

impl Gar for MultiKrum {
    fn properties(&self) -> GarProperties {
        GarProperties {
            name: "multi-krum",
            resilience: Resilience::Weak,
            f: self.f,
            minimum_workers: resilience::multi_krum_min_workers(self.f),
            tolerates_non_finite: true,
        }
    }

    fn aggregate(&self, gradients: &[Vector]) -> Result<Vector> {
        let selected = self.select(gradients)?;
        let chosen: Vec<Vector> = selected.iter().map(|&i| gradients[i].clone()).collect();
        if chosen.iter().all(|g| !g.is_finite()) {
            return Err(AggregationError::AllGradientsCorrupt("multi-krum"));
        }
        Ok(stats::coordinate_mean(&chosen)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_tensor::rng::{gaussian_vector, seeded_rng};

    /// Builds a batch of `honest` gradients around `center` plus `byz` copies
    /// of `attack`.
    fn batch(honest: usize, center: f32, byz: usize, attack: &[f32]) -> Vec<Vector> {
        let mut rng = seeded_rng(7);
        let d = attack.len();
        let mut out: Vec<Vector> = (0..honest)
            .map(|_| {
                let noise = gaussian_vector(&mut rng, d, 0.0, 0.01);
                let mut v = Vector::filled(d, center);
                v.axpy(1.0, &noise).unwrap();
                v
            })
            .collect();
        out.extend((0..byz).map(|_| Vector::from(attack)));
        out
    }

    #[test]
    fn excludes_an_obvious_outlier() {
        let gs = batch(6, 1.0, 1, &[1e9, -1e9]);
        let gar = MultiKrum::new(1).unwrap();
        let out = gar.aggregate(&gs).unwrap();
        assert!((out[0] - 1.0).abs() < 0.1);
        assert!((out[1] - 1.0).abs() < 0.1);
    }

    #[test]
    fn selection_never_includes_byzantine_outliers() {
        let gs = batch(11, 2.0, 4, &[500.0, 500.0, 500.0]);
        let gar = MultiKrum::new(4).unwrap();
        let selected = gar.select(&gs).unwrap();
        assert_eq!(selected.len(), 15 - 4 - 2);
        assert!(selected.iter().all(|&i| i < 11), "selected = {selected:?}");
    }

    #[test]
    fn nan_gradients_are_never_selected() {
        let mut gs = batch(7, 0.5, 0, &[0.0]);
        gs.push(Vector::from(vec![f32::NAN]));
        gs.push(Vector::from(vec![f32::INFINITY]));
        let gar = MultiKrum::new(2).unwrap();
        let selected = gar.select(&gs).unwrap();
        assert!(selected.iter().all(|&i| i < 7));
        assert!(gar.aggregate(&gs).unwrap().is_finite());
    }

    #[test]
    fn m_equal_one_returns_a_single_input_gradient() {
        let gs = batch(6, 1.0, 1, &[100.0]);
        let gar = MultiKrum::with_selection(1, 1).unwrap();
        let out = gar.aggregate(&gs).unwrap();
        // With m = 1 the output is exactly one of the honest gradients.
        assert!(gs[..6].iter().any(|g| g == &out));
    }

    #[test]
    fn default_m_is_n_minus_f_minus_2() {
        let gs = batch(9, 1.0, 2, &[9.0]);
        let gar = MultiKrum::new(2).unwrap();
        assert_eq!(gar.select(&gs).unwrap().len(), 11 - 2 - 2);
    }

    #[test]
    fn rejects_undersized_clusters_and_oversized_m() {
        let gar = MultiKrum::new(4).unwrap();
        let gs = vec![Vector::zeros(2); 10]; // needs 11
        assert!(matches!(
            gar.aggregate(&gs).unwrap_err(),
            AggregationError::NotEnoughWorkers { .. }
        ));
        let gar = MultiKrum::with_selection(1, 10).unwrap();
        let gs = vec![Vector::zeros(2); 7]; // max m = 4
        assert!(matches!(
            gar.aggregate(&gs).unwrap_err(),
            AggregationError::InvalidSelectionSize { m: 10, max: 4, .. }
        ));
        assert!(MultiKrum::with_selection(1, 0).is_err());
    }

    #[test]
    fn no_byzantine_workers_behaves_like_a_partial_average() {
        // With identical honest gradients the output equals that gradient.
        let gs = vec![Vector::from(vec![3.0, -1.0]); 9];
        let gar = MultiKrum::new(2).unwrap();
        let out = gar.aggregate(&gs).unwrap();
        assert_eq!(out.as_slice(), &[3.0, -1.0]);
    }

    #[test]
    fn scores_are_permutation_consistent() {
        let gs = batch(8, 1.0, 2, &[50.0, -50.0]);
        let gar = MultiKrum::new(2).unwrap();
        let out1 = gar.aggregate(&gs).unwrap();
        let mut reversed = gs.clone();
        reversed.reverse();
        let out2 = gar.aggregate(&reversed).unwrap();
        for c in 0..out1.len() {
            assert!((out1[c] - out2[c]).abs() < 1e-4);
        }
    }

    #[test]
    fn distance_matrix_maps_nan_to_infinity() {
        let gs = vec![Vector::from(vec![f32::NAN]), Vector::from(vec![1.0])];
        let d = distance_matrix(&gs);
        assert_eq!(d[0][1], f32::INFINITY);
        assert_eq!(d[0][0], 0.0);
    }

    #[test]
    fn krum_score_uses_only_nearest_neighbours() {
        // Three points on a line: 0, 1, 10. With 1 neighbour the score of the
        // middle point is the distance to its closest neighbour only.
        let gs = vec![Vector::from(vec![0.0]), Vector::from(vec![1.0]), Vector::from(vec![10.0])];
        let d = distance_matrix(&gs);
        let active = vec![0, 1, 2];
        assert_eq!(krum_score(&d, &active, 1, 1), 1.0);
        assert_eq!(krum_score(&d, &active, 0, 1), 1.0);
        assert_eq!(krum_score(&d, &active, 2, 1), 81.0);
        let scores = krum_scores(&d, &active, 1);
        assert_eq!(scores, vec![1.0, 1.0, 81.0]);
    }
}
