//! Error type shared by all gradient aggregation rules.

use thiserror::Error;

/// Errors produced by gradient aggregation rules and their configuration.
#[derive(Debug, Error, Clone, PartialEq, Eq)]
pub enum AggregationError {
    /// Not enough workers for the requested resilience level.
    ///
    /// Multi-Krum requires `n ≥ 2f + 3`, Bulyan requires `n ≥ 4f + 3`.
    #[error("{rule} with f = {f} requires at least {required} workers, got {actual}")]
    NotEnoughWorkers {
        /// Name of the rule whose precondition failed.
        rule: &'static str,
        /// Declared number of Byzantine workers.
        f: usize,
        /// Minimum number of workers required.
        required: usize,
        /// Number of gradients actually provided.
        actual: usize,
    },

    /// The selection size `m` violates the rule's admissible range.
    #[error("{rule}: selection size m = {m} is outside the admissible range 1..={max}")]
    InvalidSelectionSize {
        /// Name of the rule.
        rule: &'static str,
        /// Requested selection size.
        m: usize,
        /// Maximum admissible selection size for the configuration.
        max: usize,
    },

    /// No gradients were submitted.
    #[error("no gradients submitted to {0}")]
    NoGradients(&'static str),

    /// Gradients disagree on dimensionality.
    #[error("gradient {index} has dimension {actual}, expected {expected}")]
    DimensionMismatch {
        /// Index of the offending gradient in the submission order.
        index: usize,
        /// Expected dimension (taken from the first gradient).
        expected: usize,
        /// Actual dimension of the offending gradient.
        actual: usize,
    },

    /// All candidate gradients were non-finite and the rule cannot produce a
    /// meaningful output.
    #[error("{0}: every candidate gradient contains non-finite coordinates")]
    AllGradientsCorrupt(&'static str),

    /// A numeric kernel failed (propagated from `agg-tensor`).
    #[error("numeric kernel failure: {0}")]
    Numeric(String),

    /// Unknown aggregation rule name passed to the registry.
    #[error("unknown aggregation rule '{0}'")]
    UnknownRule(String),

    /// An invalid argument was passed to the registry.
    #[error("invalid argument for rule '{rule}': {message}")]
    InvalidArgument {
        /// Rule the argument was meant for.
        rule: String,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl From<agg_tensor::TensorError> for AggregationError {
    fn from(e: agg_tensor::TensorError) -> Self {
        AggregationError::Numeric(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_rule_and_numbers() {
        let e = AggregationError::NotEnoughWorkers {
            rule: "multi-krum",
            f: 4,
            required: 11,
            actual: 7,
        };
        let s = e.to_string();
        assert!(s.contains("multi-krum") && s.contains("11") && s.contains('7'));
    }

    #[test]
    fn tensor_errors_convert() {
        let e: AggregationError = agg_tensor::TensorError::dim(1, 2).into();
        assert!(matches!(e, AggregationError::Numeric(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AggregationError>();
    }
}
