//! Coordinate-wise trimmed mean (the mean-based rule of Yin et al., 2018,
//! cited in the paper's related work), included as an additional weak
//! baseline GAR.

use crate::gar::{ensure_batch_nonempty, Gar, GarProperties, Resilience};
use crate::{resilience, AggregationError, Result};
use agg_tensor::{GradientBatch, Vector};

/// Coordinate-wise `f`-trimmed mean.
///
/// In every coordinate the `f` largest and `f` smallest values are discarded
/// and the remaining `n − 2f` values are averaged. Weakly Byzantine-resilient
/// for `f < n/2`: after trimming, every surviving value is bracketed by
/// honest values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrimmedMean {
    f: usize,
}

impl TrimmedMean {
    /// Creates a trimmed-mean rule that trims `f` values from each tail.
    pub fn new(f: usize) -> Self {
        TrimmedMean { f }
    }

    /// Declared number of Byzantine workers (= per-tail trim count).
    pub fn f(&self) -> usize {
        self.f
    }
}

impl Default for TrimmedMean {
    fn default() -> Self {
        TrimmedMean::new(0)
    }
}

impl Gar for TrimmedMean {
    fn properties(&self) -> GarProperties {
        GarProperties {
            name: "trimmed-mean",
            resilience: Resilience::Weak,
            f: self.f,
            minimum_workers: resilience::median_min_workers(self.f),
            tolerates_non_finite: true,
        }
    }

    fn aggregate_batch(&self, batch: &GradientBatch) -> Result<Vector> {
        let n = ensure_batch_nonempty("trimmed-mean", batch)?;
        resilience::check_median("trimmed-mean", n, self.f)?;
        if n <= 2 * self.f {
            return Err(AggregationError::NotEnoughWorkers {
                rule: "trimmed-mean",
                f: self.f,
                required: 2 * self.f + 1,
                actual: n,
            });
        }
        // NaN values are dropped by the fused kernel before trimming (the
        // network path canonicalises them past the kept window); a column
        // left with too few values falls back to the median of whatever
        // finite values remain.
        Ok(batch.coordinate_trimmed_mean(self.f)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trims_extremes_per_coordinate() {
        let gar = TrimmedMean::new(1);
        let gs = vec![
            Vector::from(vec![100.0]),
            Vector::from(vec![1.0]),
            Vector::from(vec![2.0]),
            Vector::from(vec![3.0]),
            Vector::from(vec![-50.0]),
        ];
        assert_eq!(gar.aggregate(&gs).unwrap().as_slice(), &[2.0]);
    }

    #[test]
    fn zero_trim_equals_average() {
        let gar = TrimmedMean::new(0);
        let gs = vec![Vector::from(vec![1.0, 2.0]), Vector::from(vec![3.0, 4.0])];
        assert_eq!(gar.aggregate(&gs).unwrap().as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn outlier_effect_is_bounded_by_honest_range() {
        let gar = TrimmedMean::new(1);
        let gs = vec![
            Vector::from(vec![1.0]),
            Vector::from(vec![1.2]),
            Vector::from(vec![0.8]),
            Vector::from(vec![1e12]),
        ];
        let out = gar.aggregate(&gs).unwrap();
        assert!(out[0] >= 0.8 && out[0] <= 1.2);
    }

    #[test]
    fn requires_enough_workers() {
        let gar = TrimmedMean::new(2);
        assert!(gar.aggregate(&vec![Vector::zeros(1); 4]).is_err());
        assert!(gar.aggregate(&vec![Vector::zeros(1); 5]).is_ok());
    }

    #[test]
    fn nan_heavy_column_falls_back_to_median() {
        let gar = TrimmedMean::new(1);
        let gs = vec![
            Vector::from(vec![f32::NAN]),
            Vector::from(vec![f32::NAN]),
            Vector::from(vec![3.0]),
        ];
        assert_eq!(gar.aggregate(&gs).unwrap().as_slice(), &[3.0]);
    }
}
