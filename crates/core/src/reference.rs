//! Frozen pre-arena implementations of the aggregation rules.
//!
//! These are the original per-`Vector` code paths that predate the
//! contiguous [`agg_tensor::GradientBatch`] arena: dense `Vec<Vec<f32>>`
//! distance matrices that compute both triangles, allocate-and-sort Krum
//! scoring, and per-coordinate gather loops over scattered vectors. They are
//! deliberately kept (and deliberately **not** optimised) for two reasons:
//!
//! 1. **Correctness oracle** — the property tests in
//!    `tests/batch_matches_reference.rs` assert that every fused batch
//!    kernel reproduces these reference implementations within 1e-5,
//!    including NaN/±∞ handling.
//! 2. **Performance baseline** — the `gar_perf` bench binary reports the
//!    arena kernels' speedup over these implementations, giving the repo a
//!    stable before/after perf trajectory (`BENCH_gar.json`).

use crate::gar::validate_batch;
use crate::registry::GarKind;
use crate::{resilience, AggregationError, Result};
use agg_tensor::{stats, Vector};
use rayon::prelude::*;

/// The original parallel gate: compared against `n·d` for the distance
/// matrix but (incorrectly) against `|active|²` for score re-ranking. Kept
/// verbatim so the baseline measures exactly the pre-arena behaviour.
const PARALLEL_THRESHOLD: usize = 200_000;

/// Dense pairwise squared-distance matrix, computing both triangles.
///
/// Distances involving non-finite coordinates map to `+∞`.
pub fn distance_matrix(gradients: &[Vector]) -> Vec<Vec<f32>> {
    let n = gradients.len();
    let d = gradients.first().map(Vector::len).unwrap_or(0);
    let row = |i: usize| -> Vec<f32> {
        (0..n)
            .map(|j| {
                if i == j {
                    0.0
                } else {
                    let dist = gradients[i].squared_distance(&gradients[j]);
                    if dist.is_finite() {
                        dist
                    } else {
                        f32::INFINITY
                    }
                }
            })
            .collect()
    };
    if n * d < PARALLEL_THRESHOLD {
        (0..n).map(row).collect()
    } else {
        (0..n).into_par_iter().map(row).collect()
    }
}

/// Allocate-and-fully-sort Krum score of gradient `index` within `active`.
pub fn krum_score(
    distances: &[Vec<f32>],
    active: &[usize],
    index: usize,
    neighbours: usize,
) -> f32 {
    let mut row: Vec<f32> =
        active.iter().filter(|&&j| j != index).map(|&j| distances[index][j]).collect();
    row.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    row.iter().take(neighbours).sum()
}

/// Krum scores for every member of `active`, with the original gating.
pub fn krum_scores(distances: &[Vec<f32>], active: &[usize], neighbours: usize) -> Vec<f32> {
    if active.len() * active.len() < PARALLEL_THRESHOLD {
        active.iter().map(|&i| krum_score(distances, active, i, neighbours)).collect()
    } else {
        active.par_iter().map(|&i| krum_score(distances, active, i, neighbours)).collect()
    }
}

/// Pre-arena plain averaging.
pub fn average(gradients: &[Vector]) -> Result<Vector> {
    validate_batch("average", gradients)?;
    Ok(stats::coordinate_mean(gradients)?)
}

/// Pre-arena selective averaging (per-coordinate gather + `nan_mean`).
pub fn selective_average(gradients: &[Vector]) -> Result<Vector> {
    let d = validate_batch("selective-average", gradients)?;
    let mut out = Vec::with_capacity(d);
    let mut column = Vec::with_capacity(gradients.len());
    for c in 0..d {
        column.clear();
        column.extend(gradients.iter().map(|g| g[c]));
        match stats::nan_mean(&column) {
            Some(mean) => out.push(mean),
            None => out.push(0.0),
        }
    }
    let out = Vector::from(out);
    if gradients.iter().all(|g| g.count_non_finite() == g.len()) {
        return Err(AggregationError::AllGradientsCorrupt("selective-average"));
    }
    Ok(out)
}

/// Pre-arena coordinate-wise median.
pub fn coordinate_median(f: usize, gradients: &[Vector]) -> Result<Vector> {
    validate_batch("median", gradients)?;
    resilience::check_median("median", gradients.len(), f)?;
    Ok(stats::coordinate_median(gradients)?)
}

/// Pre-arena coordinate-wise trimmed mean with the median fallback.
pub fn trimmed_mean(f: usize, gradients: &[Vector]) -> Result<Vector> {
    let d = validate_batch("trimmed-mean", gradients)?;
    resilience::check_median("trimmed-mean", gradients.len(), f)?;
    if gradients.len() <= 2 * f {
        return Err(AggregationError::NotEnoughWorkers {
            rule: "trimmed-mean",
            f,
            required: 2 * f + 1,
            actual: gradients.len(),
        });
    }
    let mut out = Vec::with_capacity(d);
    let mut column = Vec::with_capacity(gradients.len());
    for c in 0..d {
        column.clear();
        column.extend(gradients.iter().map(|g| g[c]));
        match stats::trimmed_mean(&column, f) {
            Ok(v) => out.push(v),
            Err(_) => out.push(stats::median(&column).map_err(AggregationError::from)?),
        }
    }
    Ok(Vector::from(out))
}

/// Pre-arena mean-around-median.
pub fn meamed(f: usize, gradients: &[Vector]) -> Result<Vector> {
    let d = validate_batch("meamed", gradients)?;
    resilience::check_median("meamed", gradients.len(), f)?;
    let n = gradients.len();
    let keep = (n - f).max(1);
    let mut out = Vec::with_capacity(d);
    let mut column = Vec::with_capacity(n);
    for c in 0..d {
        column.clear();
        column.extend(gradients.iter().map(|g| g[c]));
        let med = stats::median(&column).map_err(AggregationError::from)?;
        out.push(stats::mean_closest_to(&column, med, keep).map_err(AggregationError::from)?);
    }
    Ok(Vector::from(out))
}

/// Pre-arena Weiszfeld geometric median (8 iterations, tolerance 1e-6).
pub fn geometric_median(f: usize, gradients: &[Vector]) -> Result<Vector> {
    let iterations = 8;
    let tolerance = 1e-6f32;
    validate_batch("geometric-median", gradients)?;
    resilience::check_median("geometric-median", gradients.len(), f)?;
    let finite: Vec<&Vector> = gradients.iter().filter(|g| g.is_finite()).collect();
    if finite.is_empty() {
        return Err(AggregationError::AllGradientsCorrupt("geometric-median"));
    }
    let owned: Vec<Vector> = finite.iter().map(|g| (*g).clone()).collect();
    let mut estimate = stats::coordinate_median(&owned)?;
    for _ in 0..iterations {
        let mut weight_sum = 0.0f32;
        let mut next = Vector::zeros(estimate.len());
        let mut coincides = false;
        for g in &finite {
            let distance = estimate.distance(g).max(1e-12);
            if distance <= tolerance {
                coincides = true;
                break;
            }
            let w = 1.0 / distance;
            weight_sum += w;
            next.axpy(w, g)?;
        }
        if coincides || weight_sum == 0.0 {
            break;
        }
        next.scale(1.0 / weight_sum);
        let shift = estimate.distance(&next);
        estimate = next;
        if shift <= tolerance {
            break;
        }
    }
    Ok(estimate)
}

/// Pre-arena Multi-Krum selection (dense matrix, full-sort scores).
pub fn multi_krum_select(f: usize, m: Option<usize>, gradients: &[Vector]) -> Result<Vec<usize>> {
    validate_batch("multi-krum", gradients)?;
    let n = gradients.len();
    let max_m = resilience::multi_krum_max_m(n, f)?;
    let m = match m {
        None => max_m,
        Some(m) if m <= max_m => m,
        Some(m) => {
            return Err(AggregationError::InvalidSelectionSize {
                rule: "multi-krum",
                m,
                max: max_m,
            })
        }
    };
    let neighbours = resilience::krum_neighbour_count(n, f)?;
    let distances = distance_matrix(gradients);
    let active: Vec<usize> = (0..n).collect();
    let scores = krum_scores(&distances, &active, neighbours);
    Ok(stats::k_smallest_indices(&scores, m)?)
}

/// Pre-arena Multi-Krum aggregation (clones every selected gradient).
pub fn multi_krum(f: usize, m: Option<usize>, gradients: &[Vector]) -> Result<Vector> {
    let selected = multi_krum_select(f, m, gradients)?;
    let chosen: Vec<Vector> = selected.iter().map(|&i| gradients[i].clone()).collect();
    if chosen.iter().all(|g| !g.is_finite()) {
        return Err(AggregationError::AllGradientsCorrupt("multi-krum"));
    }
    Ok(stats::coordinate_mean(&chosen)?)
}

/// Pre-arena Bulyan (iterated Krum selection + per-coordinate second phase).
pub fn bulyan(f: usize, gradients: &[Vector]) -> Result<Vector> {
    validate_batch("bulyan", gradients)?;
    let n = gradients.len();
    resilience::check_bulyan(n, f)?;
    let theta = resilience::bulyan_selection_count(n, f)?;
    let distances = distance_matrix(gradients);
    let mut active: Vec<usize> = (0..n).collect();
    let mut selected_idx = Vec::with_capacity(theta);
    for _ in 0..theta {
        let neighbours = active.len().saturating_sub(f + 2).max(1);
        let scores = krum_scores(&distances, &active, neighbours);
        let best_pos = stats::k_smallest_indices(&scores, 1)?[0];
        selected_idx.push(active.remove(best_pos));
    }

    let beta = resilience::bulyan_beta(n, f)?;
    let selected: Vec<&Vector> = selected_idx.iter().map(|&i| &gradients[i]).collect();
    if selected.iter().all(|g| !g.is_finite()) {
        return Err(AggregationError::AllGradientsCorrupt("bulyan"));
    }

    let d = gradients[0].len();
    let mut out = Vec::with_capacity(d);
    let mut column: Vec<f32> = Vec::with_capacity(selected.len());
    let mut finite: Vec<f32> = Vec::with_capacity(selected.len());
    let mut keyed: Vec<(f32, f32)> = Vec::with_capacity(selected.len());
    let cmp = |a: &f32, b: &f32| a.partial_cmp(b).expect("NaN filtered before comparison");
    for c in 0..d {
        column.clear();
        column.extend(selected.iter().map(|g| g[c]));
        finite.clear();
        finite.extend(column.iter().copied().filter(|x| !x.is_nan()));
        let k = finite.len();
        if k == 0 {
            return Err(AggregationError::AllGradientsCorrupt("bulyan"));
        }
        let median = if k % 2 == 1 {
            *finite.select_nth_unstable_by(k / 2, cmp).1
        } else {
            let upper = *finite.select_nth_unstable_by(k / 2, cmp).1;
            let lower = finite[..k / 2].iter().copied().fold(f32::NEG_INFINITY, f32::max);
            0.5 * (lower + upper)
        };
        keyed.clear();
        keyed.extend(column.iter().map(|&v| {
            let key = if v.is_finite() { (v - median).abs() } else { f32::INFINITY };
            (key, v)
        }));
        let beta = beta.min(keyed.len()).max(1);
        keyed.select_nth_unstable_by(beta - 1, |a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
        });
        let sum: f32 = keyed[..beta].iter().map(|&(_, v)| v).sum();
        out.push(sum / beta as f32);
    }
    Ok(Vector::from(out))
}

/// Dispatches one round through the pre-arena implementation of `kind`.
///
/// # Errors
///
/// Same error conditions as the corresponding live rule.
pub fn aggregate(kind: GarKind, f: usize, gradients: &[Vector]) -> Result<Vector> {
    match kind {
        GarKind::Average => average(gradients),
        GarKind::SelectiveAverage => selective_average(gradients),
        GarKind::Median => coordinate_median(f, gradients),
        GarKind::TrimmedMean => trimmed_mean(f, gradients),
        GarKind::MeaMed => meamed(f, gradients),
        GarKind::GeometricMedian => geometric_median(f, gradients),
        GarKind::Krum => multi_krum(f, Some(1), gradients),
        GarKind::MultiKrum => multi_krum(f, None, gradients),
        GarKind::Bulyan => bulyan(f, gradients),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_dispatch_covers_every_kind() {
        let gradients: Vec<Vector> =
            (0..19).map(|i| Vector::from(vec![1.0 + 0.01 * i as f32, -1.0])).collect();
        for kind in GarKind::ALL {
            let out = aggregate(kind, 4, &gradients).unwrap();
            assert_eq!(out.len(), 2, "{kind} produced the wrong dimension");
            assert!(out.is_finite(), "{kind} produced a non-finite aggregate");
        }
    }

    #[test]
    fn reference_distance_matrix_computes_both_triangles() {
        let gs = vec![Vector::from(vec![0.0]), Vector::from(vec![2.0])];
        let d = distance_matrix(&gs);
        assert_eq!(d[0][1], 4.0);
        assert_eq!(d[1][0], 4.0);
    }
}
