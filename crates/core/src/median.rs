//! Coordinate-wise median GAR (the "Median" baseline of the evaluation,
//! following Xie et al., 2018).
//!
//! The per-coordinate reduction runs on the vertical selection-network
//! kernel of `agg_tensor::sortnet` for worker counts up to the network cap
//! (a pruned Batcher network placing only the median positions), falling
//! back to scalar quickselect beyond it.

use crate::gar::{ensure_batch_nonempty, Gar, GarProperties, Resilience};
use crate::{resilience, Result};
use agg_tensor::{GradientBatch, Vector};

/// Coordinate-wise median of the submitted gradients.
///
/// Weakly Byzantine-resilient for `f < n/2`: in every coordinate the median
/// lies between two honest values as long as honest workers form a majority.
/// The paper's evaluation shows it converges as fast as the baseline for
/// large mini-batches (b = 250) but fails to reach baseline accuracy for
/// small ones (b = 20) because it effectively uses a single gradient's worth
/// of information per coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoordinateMedian {
    f: usize,
}

impl CoordinateMedian {
    /// Creates a coordinate-wise median rule declared to tolerate `f`
    /// Byzantine workers.
    pub fn new(f: usize) -> Self {
        CoordinateMedian { f }
    }

    /// Declared number of Byzantine workers.
    pub fn f(&self) -> usize {
        self.f
    }
}

impl Default for CoordinateMedian {
    fn default() -> Self {
        CoordinateMedian::new(0)
    }
}

impl Gar for CoordinateMedian {
    fn properties(&self) -> GarProperties {
        GarProperties {
            name: "median",
            resilience: Resilience::Weak,
            f: self.f,
            minimum_workers: resilience::median_min_workers(self.f),
            tolerates_non_finite: true,
        }
    }

    fn aggregate_batch(&self, batch: &GradientBatch) -> Result<Vector> {
        let n = ensure_batch_nonempty("median", batch)?;
        resilience::check_median("median", n, self.f)?;
        Ok(batch.coordinate_median()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AggregationError;

    #[test]
    fn median_of_clean_gradients() {
        let gar = CoordinateMedian::new(0);
        let gs = vec![
            Vector::from(vec![1.0, 5.0]),
            Vector::from(vec![2.0, 6.0]),
            Vector::from(vec![3.0, 7.0]),
        ];
        assert_eq!(gar.aggregate(&gs).unwrap().as_slice(), &[2.0, 6.0]);
    }

    #[test]
    fn single_outlier_cannot_move_the_median_far() {
        let gar = CoordinateMedian::new(1);
        let gs = vec![Vector::from(vec![1.0]), Vector::from(vec![1.1]), Vector::from(vec![1e9])];
        let out = gar.aggregate(&gs).unwrap();
        assert!((out[0] - 1.1).abs() < 1e-6);
    }

    #[test]
    fn nan_coordinates_are_ignored() {
        let gar = CoordinateMedian::new(1);
        let gs =
            vec![Vector::from(vec![1.0]), Vector::from(vec![2.0]), Vector::from(vec![f32::NAN])];
        assert_eq!(gar.aggregate(&gs).unwrap().as_slice(), &[1.5]);
    }

    #[test]
    fn precondition_requires_honest_majority() {
        let gar = CoordinateMedian::new(2);
        let gs = vec![Vector::zeros(1); 4];
        assert!(matches!(
            gar.aggregate(&gs).unwrap_err(),
            AggregationError::NotEnoughWorkers { .. }
        ));
        let gs = vec![Vector::zeros(1); 5];
        assert!(gar.aggregate(&gs).is_ok());
    }

    #[test]
    fn properties_report_weak_resilience() {
        let p = CoordinateMedian::new(3).properties();
        assert_eq!(p.resilience, Resilience::Weak);
        assert_eq!(p.minimum_workers, 7);
    }
}
