//! In-memory labelled datasets.

use crate::{DataError, Result};
use agg_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Which portion of a dataset to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Split {
    /// The training portion.
    Train,
    /// The held-out test portion (used for the accuracy metric, as in the
    /// paper's "top-1 cross-accuracy").
    Test,
}

/// A labelled dataset held fully in memory.
///
/// Samples are stored as one tensor whose leading axis is the sample index;
/// per-sample shape is arbitrary (flat features for MLPs, `[C, H, W]` for
/// CNNs).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    samples: Tensor,
    labels: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Creates a dataset from a sample tensor (`[N, ...]`) and labels.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::LabelCountMismatch`] or [`DataError::Empty`] when
    /// the inputs are inconsistent, and [`DataError::InvalidConfig`] when a
    /// label is `>= classes`.
    pub fn new(samples: Tensor, labels: Vec<usize>, classes: usize) -> Result<Self> {
        if samples.shape().is_empty() || samples.shape()[0] == 0 {
            return Err(DataError::Empty("Dataset::new"));
        }
        let n = samples.shape()[0];
        if labels.len() != n {
            return Err(DataError::LabelCountMismatch { samples: n, labels: labels.len() });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
            return Err(DataError::InvalidConfig(format!(
                "label {bad} out of range for {classes} classes"
            )));
        }
        Ok(Dataset { samples, labels, classes })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` when the dataset holds no samples (never true for a
    /// successfully constructed dataset).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Per-sample shape (excluding the sample axis).
    pub fn sample_shape(&self) -> &[usize] {
        &self.samples.shape()[1..]
    }

    /// The full sample tensor.
    pub fn samples(&self) -> &Tensor {
        &self.samples
    }

    /// The label slice.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Builds the batch tensor and label vector for the given sample indices.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Empty`] for an empty index list and propagates
    /// indexing errors for out-of-range indices.
    pub fn batch(&self, indices: &[usize]) -> Result<(Tensor, Vec<usize>)> {
        if indices.is_empty() {
            return Err(DataError::Empty("Dataset::batch"));
        }
        let mut parts = Vec::with_capacity(indices.len());
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            parts.push(self.samples.index_axis0(i)?);
            labels.push(
                *self
                    .labels
                    .get(i)
                    .ok_or_else(|| DataError::InvalidConfig(format!("index {i} out of range")))?,
            );
        }
        Ok((Tensor::stack(&parts)?, labels))
    }

    /// The first `count` samples as one batch (deterministic; used for test
    /// evaluation).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Empty`] when `count == 0`.
    pub fn head_batch(&self, count: usize) -> Result<(Tensor, Vec<usize>)> {
        let count = count.min(self.len());
        let indices: Vec<usize> = (0..count).collect();
        self.batch(&indices)
    }

    /// Splits the dataset into a training and a test portion.
    ///
    /// `test_fraction` of the samples (rounded down, at least 1 when the
    /// fraction is positive) go to the test set, taken from the end — the
    /// synthetic generators already emit samples in random order.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] for fractions outside `[0, 1)` or
    /// splits that would leave either side empty.
    pub fn split(&self, test_fraction: f64) -> Result<(Dataset, Dataset)> {
        if !(0.0..1.0).contains(&test_fraction) {
            return Err(DataError::InvalidConfig(format!(
                "test fraction must be in [0, 1), got {test_fraction}"
            )));
        }
        let n = self.len();
        let test_n = ((n as f64 * test_fraction) as usize).max(1);
        let train_n = n.checked_sub(test_n).filter(|&t| t > 0).ok_or_else(|| {
            DataError::InvalidConfig(format!(
                "split leaves no training samples (n = {n}, test = {test_n})"
            ))
        })?;
        let train_idx: Vec<usize> = (0..train_n).collect();
        let test_idx: Vec<usize> = (train_n..n).collect();
        let (train_x, train_y) = self.batch(&train_idx)?;
        let (test_x, test_y) = self.batch(&test_idx)?;
        Ok((
            Dataset::new(train_x, train_y, self.classes)?,
            Dataset::new(test_x, test_y, self.classes)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let samples =
            Tensor::from_vec(&[4, 2], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]).unwrap();
        Dataset::new(samples, vec![0, 1, 0, 1], 2).unwrap()
    }

    #[test]
    fn construction_validates_inputs() {
        let samples = Tensor::zeros(&[3, 2]);
        assert!(Dataset::new(samples.clone(), vec![0, 1], 2).is_err());
        assert!(Dataset::new(samples.clone(), vec![0, 1, 5], 2).is_err());
        assert!(Dataset::new(Tensor::zeros(&[0, 2]), vec![], 2).is_err());
        assert!(Dataset::new(samples, vec![0, 1, 1], 2).is_ok());
    }

    #[test]
    fn batch_gathers_requested_samples() {
        let d = toy();
        let (x, y) = d.batch(&[2, 0]).unwrap();
        assert_eq!(x.shape(), &[2, 2]);
        assert_eq!(x.as_slice(), &[4.0, 5.0, 0.0, 1.0]);
        assert_eq!(y, vec![0, 0]);
        assert!(d.batch(&[]).is_err());
        assert!(d.batch(&[9]).is_err());
    }

    #[test]
    fn head_batch_truncates_to_len() {
        let d = toy();
        let (x, y) = d.head_batch(100).unwrap();
        assert_eq!(x.shape(), &[4, 2]);
        assert_eq!(y.len(), 4);
    }

    #[test]
    fn split_partitions_the_samples() {
        let d = toy();
        let (train, test) = d.split(0.25).unwrap();
        assert_eq!(train.len(), 3);
        assert_eq!(test.len(), 1);
        assert_eq!(train.classes(), 2);
        assert_eq!(test.sample_shape(), &[2]);
        assert!(d.split(1.5).is_err());
        assert!(d.split(-0.1).is_err());
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.labels(), &[0, 1, 0, 1]);
        assert_eq!(d.samples().shape(), &[4, 2]);
    }
}
