//! # agg-data — datasets and sampling
//!
//! The paper evaluates on CIFAR-10 and MNIST. Those datasets are not bundled
//! here; instead this crate generates **deterministic synthetic
//! classification datasets** with the same API surface (train/test split,
//! min-max scaling, mini-batch sampling) so every experiment is
//! self-contained and laptop-scale. The Byzantine-resilience results the
//! reproduction targets depend on gradient statistics (i.i.d., unbiased,
//! bounded variance) rather than on natural-image content, so the shape of
//! every comparison carries over. See DESIGN.md §2 for the substitution
//! rationale.
//!
//! * [`dataset::Dataset`] — an in-memory labelled dataset with train/test
//!   split.
//! * [`synthetic`] — Gaussian-blob feature datasets (for MLPs) and rendered
//!   class-pattern image datasets (for CNNs, CIFAR-10-shaped).
//! * [`sampler::MiniBatchSampler`] — per-worker i.i.d. mini-batch draws, the
//!   sampling model assumed by the paper's convergence analysis.
//! * [`corruption`] — label flipping and feature corruption used by the
//!   "corrupted data" Byzantine experiment (Figure 7).

pub mod corruption;
pub mod dataset;
pub mod error;
pub mod sampler;
pub mod synthetic;

pub use dataset::{Dataset, Split};
pub use error::DataError;
pub use sampler::MiniBatchSampler;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DataError>;
