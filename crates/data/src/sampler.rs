//! Mini-batch sampling.
//!
//! The paper's convergence analysis assumes every worker draws its mini-batch
//! i.i.d. from the training distribution ("AggregaThor only requires the
//! workers to be drawing data independently and identically distributed").
//! [`MiniBatchSampler`] implements exactly that: uniform sampling with
//! replacement from the worker's view of the training set, with a
//! per-worker RNG stream derived from the experiment seed.

use crate::dataset::Dataset;
use crate::{DataError, Result};
use agg_tensor::rng::{derive_seed, seeded_rng};
use agg_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::Rng;

/// Draws i.i.d. mini-batches from a dataset.
#[derive(Debug, Clone)]
pub struct MiniBatchSampler {
    batch_size: usize,
    rng: SmallRng,
}

impl MiniBatchSampler {
    /// Creates a sampler for one worker.
    ///
    /// `experiment_seed` is shared by the whole run; `worker_stream`
    /// decorrelates workers (pass the worker index).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] when `batch_size == 0`.
    pub fn new(batch_size: usize, experiment_seed: u64, worker_stream: u64) -> Result<Self> {
        if batch_size == 0 {
            return Err(DataError::InvalidConfig("batch size must be positive".to_string()));
        }
        Ok(MiniBatchSampler {
            batch_size,
            rng: seeded_rng(derive_seed(experiment_seed, worker_stream)),
        })
    }

    /// The configured mini-batch size (the `b` of the paper).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Draws the next mini-batch (uniform with replacement).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Empty`] when the dataset is empty.
    pub fn next_batch(&mut self, dataset: &Dataset) -> Result<(Tensor, Vec<usize>)> {
        if dataset.is_empty() {
            return Err(DataError::Empty("MiniBatchSampler::next_batch"));
        }
        let indices: Vec<usize> =
            (0..self.batch_size).map(|_| self.rng.gen_range(0..dataset.len())).collect();
        dataset.batch(&indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{gaussian_blobs, BlobConfig};

    fn data() -> Dataset {
        gaussian_blobs(&BlobConfig { classes: 3, dim: 4, samples: 90, ..Default::default() }, 1)
            .unwrap()
    }

    #[test]
    fn batch_size_is_respected() {
        let d = data();
        let mut sampler = MiniBatchSampler::new(7, 42, 0).unwrap();
        let (x, y) = sampler.next_batch(&d).unwrap();
        assert_eq!(x.shape()[0], 7);
        assert_eq!(y.len(), 7);
        assert_eq!(sampler.batch_size(), 7);
    }

    #[test]
    fn zero_batch_size_is_rejected() {
        assert!(MiniBatchSampler::new(0, 1, 0).is_err());
    }

    #[test]
    fn same_seed_and_stream_replay_the_same_batches() {
        let d = data();
        let mut a = MiniBatchSampler::new(5, 9, 2).unwrap();
        let mut b = MiniBatchSampler::new(5, 9, 2).unwrap();
        for _ in 0..3 {
            let (xa, ya) = a.next_batch(&d).unwrap();
            let (xb, yb) = b.next_batch(&d).unwrap();
            assert_eq!(xa, xb);
            assert_eq!(ya, yb);
        }
    }

    #[test]
    fn different_workers_draw_different_batches() {
        let d = data();
        let mut a = MiniBatchSampler::new(5, 9, 0).unwrap();
        let mut b = MiniBatchSampler::new(5, 9, 1).unwrap();
        let (xa, _) = a.next_batch(&d).unwrap();
        let (xb, _) = b.next_batch(&d).unwrap();
        assert_ne!(xa, xb);
    }

    #[test]
    fn successive_batches_differ() {
        let d = data();
        let mut sampler = MiniBatchSampler::new(5, 3, 0).unwrap();
        let (x1, _) = sampler.next_batch(&d).unwrap();
        let (x2, _) = sampler.next_batch(&d).unwrap();
        assert_ne!(x1, x2);
    }

    #[test]
    fn sampling_covers_the_dataset_over_time() {
        let d = data();
        let mut sampler = MiniBatchSampler::new(10, 5, 0).unwrap();
        let mut seen = vec![false; d.len()];
        for _ in 0..200 {
            let (_, labels) = sampler.next_batch(&d).unwrap();
            // Labels alone cannot tell indices apart; re-draw indices through
            // the dataset by matching is overkill, so instead just assert the
            // sampler keeps producing valid batches.
            assert_eq!(labels.len(), 10);
        }
        // Direct coverage check through a fresh sampler with access to
        // indices: sample many single-element batches.
        let mut single = MiniBatchSampler::new(1, 6, 0).unwrap();
        for _ in 0..2000 {
            let (x, _) = single.next_batch(&d).unwrap();
            // Find which index this sample corresponds to (exact match).
            for (i, seen_slot) in seen.iter_mut().enumerate() {
                if d.samples().index_axis0(i).unwrap() == x.index_axis0(0).unwrap() {
                    *seen_slot = true;
                    break;
                }
            }
        }
        let coverage = seen.iter().filter(|&&s| s).count();
        assert!(coverage > d.len() * 8 / 10, "coverage {coverage}/{}", d.len());
    }
}
