//! Error type for dataset construction and sampling.

use thiserror::Error;

/// Errors produced while building or sampling datasets.
#[derive(Debug, Error, Clone, PartialEq, Eq)]
pub enum DataError {
    /// Features and labels disagree in count.
    #[error("dataset has {samples} samples but {labels} labels")]
    LabelCountMismatch {
        /// Number of samples.
        samples: usize,
        /// Number of labels.
        labels: usize,
    },

    /// The dataset is empty where samples are required.
    #[error("empty dataset for {0}")]
    Empty(&'static str),

    /// Invalid configuration value (e.g. zero classes or batch size).
    #[error("invalid configuration: {0}")]
    InvalidConfig(String),

    /// A tensor operation failed.
    #[error("tensor operation failed: {0}")]
    Tensor(String),
}

impl From<agg_tensor::TensorError> for DataError {
    fn from(e: agg_tensor::TensorError) -> Self {
        DataError::Tensor(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = DataError::LabelCountMismatch { samples: 5, labels: 3 };
        assert!(e.to_string().contains('5'));
        let e: DataError = agg_tensor::TensorError::EmptyInput("x").into();
        assert!(matches!(e, DataError::Tensor(_)));
    }
}
