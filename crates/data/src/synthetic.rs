//! Deterministic synthetic dataset generators.
//!
//! Two families are provided:
//!
//! * [`gaussian_blobs`] — flat feature vectors drawn from per-class Gaussian
//!   clusters; the fast workhorse for the convergence experiments (used with
//!   the MLP models).
//! * [`synthetic_images`] — CIFAR-10-shaped `[C, H, W]` images where every
//!   class has a distinct spatial frequency/orientation pattern plus noise;
//!   exercises the convolutional pipeline end-to-end.
//!
//! Both are deterministic in their seed and perform the same min-max scaling
//! to `[0, 1]` the paper applies to CIFAR-10.

use crate::dataset::Dataset;
use crate::{DataError, Result};
use agg_tensor::rng::{derive_seed, seeded_rng};
use agg_tensor::Tensor;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Configuration for [`gaussian_blobs`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlobConfig {
    /// Number of classes.
    pub classes: usize,
    /// Feature dimension.
    pub dim: usize,
    /// Total number of samples.
    pub samples: usize,
    /// Distance between class centres (larger = easier).
    pub separation: f32,
    /// Per-class Gaussian noise standard deviation.
    pub noise: f32,
}

impl Default for BlobConfig {
    fn default() -> Self {
        BlobConfig { classes: 10, dim: 32, samples: 2000, separation: 2.0, noise: 1.0 }
    }
}

/// Generates a Gaussian-blob classification dataset.
///
/// Each class `c` gets a centre drawn deterministically from the seed; each
/// sample is its class centre plus isotropic Gaussian noise. Labels are
/// assigned round-robin so classes are balanced.
///
/// # Errors
///
/// Returns [`DataError::InvalidConfig`] for zero classes, dimension or
/// samples.
pub fn gaussian_blobs(config: &BlobConfig, seed: u64) -> Result<Dataset> {
    if config.classes == 0 || config.dim == 0 || config.samples == 0 {
        return Err(DataError::InvalidConfig(
            "classes, dim and samples must be positive".to_string(),
        ));
    }
    let mut center_rng = seeded_rng(derive_seed(seed, 0));
    let centers: Vec<Vec<f32>> = (0..config.classes)
        .map(|_| {
            (0..config.dim)
                .map(|_| center_rng.gen_range(-1.0f32..1.0) * config.separation)
                .collect()
        })
        .collect();
    let noise = Normal::new(0.0f32, config.noise.max(1e-6)).expect("std positive");
    let mut sample_rng = seeded_rng(derive_seed(seed, 1));
    let mut order_rng = seeded_rng(derive_seed(seed, 2));

    let mut data = Vec::with_capacity(config.samples * config.dim);
    let mut labels = Vec::with_capacity(config.samples);
    for i in 0..config.samples {
        let class = i % config.classes;
        labels.push(class);
        for &c in &centers[class] {
            data.push(c + noise.sample(&mut sample_rng));
        }
    }
    // Shuffle samples so train/test splits are class-balanced.
    let mut indices: Vec<usize> = (0..config.samples).collect();
    for i in (1..indices.len()).rev() {
        let j = order_rng.gen_range(0..=i);
        indices.swap(i, j);
    }
    let mut shuffled = Vec::with_capacity(data.len());
    let mut shuffled_labels = Vec::with_capacity(labels.len());
    for &i in &indices {
        shuffled.extend_from_slice(&data[i * config.dim..(i + 1) * config.dim]);
        shuffled_labels.push(labels[i]);
    }
    min_max_scale_flat(&mut shuffled);
    let samples = Tensor::from_vec(&[config.samples, config.dim], shuffled)?;
    Dataset::new(samples, shuffled_labels, config.classes)
}

/// Configuration for [`synthetic_images`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageConfig {
    /// Number of classes.
    pub classes: usize,
    /// Image channels (3 for the CIFAR-10 stand-in).
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Total number of samples.
    pub samples: usize,
    /// Additive noise standard deviation (in pattern units).
    pub noise: f32,
}

impl ImageConfig {
    /// CIFAR-10-shaped configuration (`3 × 32 × 32`, 10 classes), scaled to a
    /// requested sample count.
    pub fn cifar_like(samples: usize) -> Self {
        ImageConfig { classes: 10, channels: 3, height: 32, width: 32, samples, noise: 0.3 }
    }

    /// A small `1 × 8 × 8` configuration for fast end-to-end tests.
    pub fn tiny(samples: usize, classes: usize) -> Self {
        ImageConfig { classes, channels: 1, height: 8, width: 8, samples, noise: 0.2 }
    }
}

/// Generates an image-classification dataset where each class is a distinct
/// 2-D sinusoidal pattern (different frequency and orientation per class)
/// plus Gaussian noise, min-max scaled to `[0, 1]`.
///
/// # Errors
///
/// Returns [`DataError::InvalidConfig`] for zero-sized configurations.
pub fn synthetic_images(config: &ImageConfig, seed: u64) -> Result<Dataset> {
    if config.classes == 0
        || config.channels == 0
        || config.height == 0
        || config.width == 0
        || config.samples == 0
    {
        return Err(DataError::InvalidConfig(
            "classes, channels, height, width and samples must be positive".to_string(),
        ));
    }
    let noise = Normal::new(0.0f32, config.noise.max(1e-6)).expect("std positive");
    let mut rng = seeded_rng(derive_seed(seed, 10));
    let per_sample = config.channels * config.height * config.width;
    let mut data = Vec::with_capacity(config.samples * per_sample);
    let mut labels = Vec::with_capacity(config.samples);
    for i in 0..config.samples {
        let class = i % config.classes;
        labels.push(class);
        // Class-specific frequency and orientation.
        let freq = 1.0 + class as f32 * 0.5;
        let angle = class as f32 * std::f32::consts::PI / config.classes as f32;
        let (sin_a, cos_a) = angle.sin_cos();
        let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
        for c in 0..config.channels {
            let channel_shift = c as f32 * 0.7;
            for y in 0..config.height {
                for x in 0..config.width {
                    let u = x as f32 / config.width as f32;
                    let v = y as f32 / config.height as f32;
                    let t = freq * std::f32::consts::TAU * (u * cos_a + v * sin_a);
                    let value = (t + phase + channel_shift).sin() + noise.sample(&mut rng);
                    data.push(value);
                }
            }
        }
    }
    min_max_scale_flat(&mut data);
    let samples =
        Tensor::from_vec(&[config.samples, config.channels, config.height, config.width], data)?;
    Dataset::new(samples, labels, config.classes)
}

/// Min-max scales a flat buffer to `[0, 1]` in place (the paper's CIFAR-10
/// preprocessing step).
fn min_max_scale_flat(data: &mut [f32]) {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &x in data.iter() {
        if x.is_finite() {
            lo = lo.min(x);
            hi = hi.max(x);
        }
    }
    let range = hi - lo;
    if range > 0.0 && range.is_finite() {
        for x in data.iter_mut() {
            *x = (*x - lo) / range;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_are_deterministic_and_balanced() {
        let config = BlobConfig { classes: 4, dim: 8, samples: 400, ..Default::default() };
        let a = gaussian_blobs(&config, 42).unwrap();
        let b = gaussian_blobs(&config, 42).unwrap();
        assert_eq!(a, b);
        let c = gaussian_blobs(&config, 43).unwrap();
        assert_ne!(a, c);
        // Balanced classes.
        for class in 0..4 {
            let count = a.labels().iter().filter(|&&l| l == class).count();
            assert_eq!(count, 100);
        }
    }

    #[test]
    fn blobs_are_min_max_scaled() {
        let d = gaussian_blobs(&BlobConfig::default(), 1).unwrap();
        let data = d.samples().as_slice();
        let lo = data.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = data.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!(lo >= 0.0 && hi <= 1.0 + 1e-6);
        assert!(hi > 0.9, "scaling should use the full range");
    }

    #[test]
    fn blobs_reject_degenerate_configs() {
        assert!(gaussian_blobs(&BlobConfig { classes: 0, ..Default::default() }, 0).is_err());
        assert!(gaussian_blobs(&BlobConfig { samples: 0, ..Default::default() }, 0).is_err());
        assert!(gaussian_blobs(&BlobConfig { dim: 0, ..Default::default() }, 0).is_err());
    }

    #[test]
    fn images_have_the_requested_shape() {
        let config = ImageConfig::tiny(30, 3);
        let d = synthetic_images(&config, 7).unwrap();
        assert_eq!(d.len(), 30);
        assert_eq!(d.sample_shape(), &[1, 8, 8]);
        assert_eq!(d.classes(), 3);
        // Scaled to [0, 1].
        let data = d.samples().as_slice();
        assert!(data.iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
    }

    #[test]
    fn cifar_like_images_match_cifar_shape() {
        let d = synthetic_images(&ImageConfig::cifar_like(20), 3).unwrap();
        assert_eq!(d.sample_shape(), &[3, 32, 32]);
        assert_eq!(d.classes(), 10);
    }

    #[test]
    fn images_are_deterministic_per_seed() {
        let config = ImageConfig::tiny(10, 2);
        assert_eq!(synthetic_images(&config, 5).unwrap(), synthetic_images(&config, 5).unwrap());
        assert_ne!(synthetic_images(&config, 5).unwrap(), synthetic_images(&config, 6).unwrap());
    }

    #[test]
    fn classes_have_distinct_patterns() {
        // The per-class mean images must differ substantially, otherwise the
        // dataset would be unlearnable.
        let config = ImageConfig { noise: 0.05, ..ImageConfig::tiny(40, 2) };
        let d = synthetic_images(&config, 9).unwrap();
        let per = 64;
        let mut means = vec![vec![0.0f32; per]; 2];
        let mut counts = [0usize; 2];
        for i in 0..d.len() {
            let label = d.labels()[i];
            counts[label] += 1;
            let sample = d.samples().index_axis0(i).unwrap();
            for (j, &v) in sample.as_slice().iter().enumerate() {
                means[label][j] += v;
            }
        }
        for (label, mean) in means.iter_mut().enumerate() {
            for v in mean.iter_mut() {
                *v /= counts[label] as f32;
            }
        }
        let diff: f32 =
            means[0].iter().zip(means[1].iter()).map(|(a, b)| (a - b).abs()).sum::<f32>()
                / per as f32;
        assert!(diff > 0.05, "class mean images too similar: {diff}");
    }
}
