//! Dataset-level corruption: the "corrupted data" Byzantine behaviour of the
//! Figure 7 experiment, where one worker trains on poisoned data rather than
//! actively crafting adversarial gradients.

use crate::dataset::Dataset;
use crate::{DataError, Result};
use agg_tensor::rng::{derive_seed, seeded_rng};
use agg_tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a Byzantine worker's local data is corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Corruption {
    /// Every label `y` is replaced by `(y + 1) mod classes` (systematic label
    /// flipping — the classic poisoning behaviour).
    LabelShift,
    /// Labels are replaced by uniformly random labels.
    RandomLabels,
    /// Features are replaced by uniform noise in `[0, 1]` (garbage inputs).
    NoiseFeatures,
    /// A fraction of feature values is zeroed (simulates unreadable/corrupt
    /// records).
    ZeroFraction(f32),
    /// Features are replaced by astronomically large magnitudes (malformed
    /// input records). Gradients computed on such data overflow to non-finite
    /// values — the behaviour "to which TensorFlow is intolerant" in the
    /// paper's Figure 7 experiment.
    HugeValues,
}

/// Applies a corruption to a copy of the dataset.
///
/// # Errors
///
/// Returns [`DataError::InvalidConfig`] for invalid corruption parameters
/// (e.g. a zero fraction outside `[0, 1]`).
pub fn corrupt(dataset: &Dataset, corruption: Corruption, seed: u64) -> Result<Dataset> {
    let classes = dataset.classes();
    let mut rng = seeded_rng(derive_seed(seed, 99));
    match corruption {
        Corruption::LabelShift => {
            let labels = dataset.labels().iter().map(|&l| (l + 1) % classes).collect();
            Dataset::new(dataset.samples().clone(), labels, classes)
        }
        Corruption::RandomLabels => {
            let labels = dataset.labels().iter().map(|_| rng.gen_range(0..classes)).collect();
            Dataset::new(dataset.samples().clone(), labels, classes)
        }
        Corruption::NoiseFeatures => {
            let data: Vec<f32> =
                dataset.samples().as_slice().iter().map(|_| rng.gen_range(0.0..1.0)).collect();
            let samples = Tensor::from_vec(dataset.samples().shape(), data)?;
            Dataset::new(samples, dataset.labels().to_vec(), classes)
        }
        Corruption::HugeValues => {
            let data: Vec<f32> = dataset
                .samples()
                .as_slice()
                .iter()
                .map(|_| if rng.gen::<bool>() { 1e30 } else { -1e30 })
                .collect();
            let samples = Tensor::from_vec(dataset.samples().shape(), data)?;
            Dataset::new(samples, dataset.labels().to_vec(), classes)
        }
        Corruption::ZeroFraction(fraction) => {
            if !(0.0..=1.0).contains(&fraction) {
                return Err(DataError::InvalidConfig(format!(
                    "zero fraction must be in [0, 1], got {fraction}"
                )));
            }
            let data: Vec<f32> = dataset
                .samples()
                .as_slice()
                .iter()
                .map(|&x| if rng.gen::<f32>() < fraction { 0.0 } else { x })
                .collect();
            let samples = Tensor::from_vec(dataset.samples().shape(), data)?;
            Dataset::new(samples, dataset.labels().to_vec(), classes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{gaussian_blobs, BlobConfig};

    fn data() -> Dataset {
        gaussian_blobs(&BlobConfig { classes: 4, dim: 6, samples: 80, ..Default::default() }, 2)
            .unwrap()
    }

    #[test]
    fn label_shift_rotates_every_label() {
        let d = data();
        let c = corrupt(&d, Corruption::LabelShift, 0).unwrap();
        for (orig, new) in d.labels().iter().zip(c.labels()) {
            assert_eq!(*new, (orig + 1) % 4);
        }
        // Features untouched.
        assert_eq!(d.samples(), c.samples());
    }

    #[test]
    fn random_labels_change_a_substantial_fraction() {
        let d = data();
        let c = corrupt(&d, Corruption::RandomLabels, 1).unwrap();
        let changed = d.labels().iter().zip(c.labels()).filter(|(a, b)| a != b).count();
        assert!(changed > d.len() / 2);
    }

    #[test]
    fn noise_features_keep_labels() {
        let d = data();
        let c = corrupt(&d, Corruption::NoiseFeatures, 2).unwrap();
        assert_eq!(d.labels(), c.labels());
        assert_ne!(d.samples(), c.samples());
    }

    #[test]
    fn zero_fraction_zeroes_about_the_right_amount() {
        let d = data();
        let c = corrupt(&d, Corruption::ZeroFraction(0.5), 3).unwrap();
        let zeros = c.samples().as_slice().iter().filter(|&&x| x == 0.0).count();
        let total = c.samples().len();
        let fraction = zeros as f32 / total as f32;
        assert!((fraction - 0.5).abs() < 0.1, "zeroed fraction {fraction}");
        assert!(corrupt(&d, Corruption::ZeroFraction(1.5), 3).is_err());
    }

    #[test]
    fn huge_values_produce_malformed_features() {
        let d = data();
        let c = corrupt(&d, Corruption::HugeValues, 4).unwrap();
        assert!(c.samples().as_slice().iter().all(|&x| x.abs() == 1e30));
        assert_eq!(d.labels(), c.labels());
    }

    #[test]
    fn corruption_is_deterministic() {
        let d = data();
        assert_eq!(
            corrupt(&d, Corruption::RandomLabels, 7).unwrap(),
            corrupt(&d, Corruption::RandomLabels, 7).unwrap()
        );
    }
}
