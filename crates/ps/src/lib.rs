//! # agg-ps — the parameter-server runtime
//!
//! This crate is the reproduction's counterpart of the AggregaThor framework
//! itself (§3 of the paper): a synchronous parameter-server training engine
//! with Byzantine workers, a cluster/device-allocation model, and the
//! configuration surface of the original `runner.py`.
//!
//! The original system distributes real TensorFlow graphs over a Grid5000
//! cluster; the reproduction simulates the cluster with a discrete-event
//! clock while running the *numerics* (gradients, aggregation, model updates)
//! for real:
//!
//! * [`cluster`] — nodes, jobs (`ps` / `worker` / `eval`) and the policy-based
//!   device allocation the paper advertises.
//! * [`config`] — [`config::RunnerConfig`], mirroring the command-line surface
//!   of `runner.py` (`--aggregator`, `--optimizer`, `--learning-rate`,
//!   `--nb-workers`, …).
//! * [`cost`] — the time model: analytic gradient-computation and
//!   communication costs, measured (and dimension-scaled) aggregation cost.
//! * [`membership`] — elastic membership: epoch-fenced views over a churning
//!   worker set, deterministic fault plans, and the resilience-floor refusal
//!   policy.
//! * [`worker`] — honest, data-poisoned and actively adversarial workers.
//! * [`server`] — the trusted parameter server: GAR + optimizer + the
//!   access-control patch that keeps Byzantine workers from overwriting the
//!   shared model directly.
//! * [`streaming`] — the event-driven round pipeline: double-buffered
//!   submission arenas, per-row distance accumulation and the quorum policy
//!   that lets the server aggregate at `n − f` arrivals.
//! * [`reputation`] — the cross-round suspicion ledger: decayed per-worker
//!   scores folded from the engine's evidence streams, automatic quarantine
//!   with probationary readmission, and the containment reshuffle policy of
//!   the tree tier.
//! * [`engine`] — the synchronous training loop (Equation 4) and the
//!   throughput simulator used by the scalability experiments.
//! * [`report`] — the structured result of a run (traces, throughput,
//!   latency breakdown).

pub mod cluster;
pub mod config;
pub mod cost;
pub mod engine;
pub mod error;
pub mod membership;
pub mod report;
pub mod reputation;
pub mod server;
pub mod streaming;
pub mod worker;

pub use cluster::{ClusterSpec, DeviceKind, Job, Node, PlacementPolicy};
pub use config::{ExperimentKind, RunnerConfig, TransportKind};
pub use cost::{CostModel, VirtualModelCost};
pub use engine::{SyncTrainingEngine, ThroughputSimulation};
pub use error::PsError;
pub use membership::{
    FaultAction, FaultEvent, FaultPlan, MembershipView, RefusalPolicy, WorkerHealth,
};
pub use report::{TrainingReport, WorkerReport};
pub use reputation::{
    QuarantineEvent, ReputationConfig, ReputationLedger, RoundEvidence, StandingChange,
    WorkerStanding,
};
pub use server::ParameterServer;
pub use streaming::{QuorumPolicy, RoundPipeline, StreamingConfig};
pub use worker::{Worker, WorkerRole};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PsError>;
