//! Error type for the parameter-server runtime.

use thiserror::Error;

/// Errors produced while configuring or running distributed training.
#[derive(Debug, Error, Clone, PartialEq)]
pub enum PsError {
    /// The run configuration is inconsistent (e.g. more Byzantine workers
    /// than workers, or a GAR whose precondition the cluster cannot satisfy).
    #[error("invalid configuration: {0}")]
    InvalidConfig(String),

    /// A gradient aggregation error that the engine could not recover from.
    #[error("aggregation failed: {0}")]
    Aggregation(String),

    /// A model/optimizer error.
    #[error("model failure: {0}")]
    Model(String),

    /// A dataset error.
    #[error("data failure: {0}")]
    Data(String),

    /// A transport error.
    #[error("network failure: {0}")]
    Network(String),

    /// A worker attempted an operation the security patch forbids (e.g.
    /// writing the shared parameters directly).
    #[error("access denied: worker {worker} attempted to {action}")]
    AccessDenied {
        /// Offending worker id.
        worker: usize,
        /// Description of the rejected action.
        action: String,
    },
}

impl From<agg_core::AggregationError> for PsError {
    fn from(e: agg_core::AggregationError) -> Self {
        PsError::Aggregation(e.to_string())
    }
}

impl From<agg_tensor::TensorError> for PsError {
    fn from(e: agg_tensor::TensorError) -> Self {
        PsError::Aggregation(e.to_string())
    }
}

impl From<agg_nn::NnError> for PsError {
    fn from(e: agg_nn::NnError) -> Self {
        PsError::Model(e.to_string())
    }
}

impl From<agg_data::DataError> for PsError {
    fn from(e: agg_data::DataError) -> Self {
        PsError::Data(e.to_string())
    }
}

impl From<agg_net::NetError> for PsError {
    fn from(e: agg_net::NetError) -> Self {
        PsError::Network(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_messages() {
        let e: PsError = agg_core::AggregationError::NoGradients("krum").into();
        assert!(e.to_string().contains("krum"));
        let e: PsError = agg_data::DataError::Empty("x").into();
        assert!(matches!(e, PsError::Data(_)));
        let e: PsError = agg_net::NetError::InvalidConfig("bad".into()).into();
        assert!(matches!(e, PsError::Network(_)));
    }

    #[test]
    fn access_denied_names_the_worker() {
        let e = PsError::AccessDenied { worker: 3, action: "overwrite parameters".into() };
        assert!(e.to_string().contains('3'));
    }
}
