//! Cluster description and policy-based device allocation.
//!
//! The paper highlights that AggregaThor "simplifies the experimentation on
//! large and possibly heterogeneous server farms by providing automatic,
//! policy-based device selection and cluster-wide allocation". This module is
//! the simulated counterpart: a cluster is a list of nodes with devices and
//! relative speeds, jobs (`ps`, `worker`, `eval`) are mapped onto nodes by a
//! placement policy, and the resulting assignment feeds the cost model.

use crate::{PsError, Result};
use serde::{Deserialize, Serialize};

/// The kind of compute device a node offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// General-purpose CPU cores.
    Cpu,
    /// A CUDA-class accelerator.
    Gpu,
}

/// The role a process plays in the TensorFlow-style cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Job {
    /// The (trusted) parameter server.
    ParameterServer,
    /// A gradient-computing worker.
    Worker,
    /// The evaluation node that measures test accuracy out of band.
    Evaluator,
}

/// One machine in the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Host name (informational).
    pub name: String,
    /// Device kind the node contributes.
    pub device: DeviceKind,
    /// Sustained throughput of the node in FLOP/s for the gradient
    /// computation (the cost model divides model FLOPs by this).
    pub flops_per_sec: f64,
}

impl Node {
    /// A node modelled after the paper's Grid5000 machines (2× Xeon E5-2630,
    /// treated as ~50 GFLOP/s sustained for this workload).
    pub fn grid5000_cpu(index: usize) -> Self {
        Node { name: format!("g5k-node-{index}"), device: DeviceKind::Cpu, flops_per_sec: 5.0e10 }
    }

    /// A GPU node (used by the heterogeneous-cluster tests).
    pub fn gpu(index: usize) -> Self {
        Node { name: format!("gpu-node-{index}"), device: DeviceKind::Gpu, flops_per_sec: 5.0e11 }
    }
}

/// How jobs are assigned to nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PlacementPolicy {
    /// One job per node, round-robin, parameter server first (the paper's
    /// deployment: 1 PS + 19 workers on 20 nodes).
    #[default]
    OneJobPerNode,
    /// Pack everything onto the first node (the "local deployment" of the
    /// artifact appendix, used for quick checks).
    Collocated,
    /// Prefer GPU nodes for workers, CPU nodes for the parameter server.
    GpuWorkers,
}

/// A cluster: nodes plus the placement of the parameter server, the workers
/// and the evaluator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    nodes: Vec<Node>,
    /// `assignments[i] = (job, node index)` for every process, in creation
    /// order: PS shards 0..S, workers 0..n, evaluator.
    assignments: Vec<(Job, usize)>,
    workers: usize,
    /// Number of parameter-server shard processes (1 = monolithic server).
    ps_shards: usize,
}

impl ClusterSpec {
    /// Builds a cluster of `node_count` identical Grid5000-like CPU nodes and
    /// places 1 parameter server, `workers` workers and 1 evaluator according
    /// to the policy.
    ///
    /// # Errors
    ///
    /// Returns [`PsError::InvalidConfig`] when there are zero nodes or zero
    /// workers, or when `OneJobPerNode` does not have enough nodes.
    pub fn homogeneous(node_count: usize, workers: usize, policy: PlacementPolicy) -> Result<Self> {
        let nodes: Vec<Node> = (0..node_count).map(Node::grid5000_cpu).collect();
        ClusterSpec::with_nodes(nodes, workers, policy)
    }

    /// Like [`ClusterSpec::homogeneous`], but with the parameter-server tier
    /// split into `ps_shards` shard processes (the paper's multi-server
    /// deployment). Under `OneJobPerNode` every shard gets its own node.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClusterSpec::with_nodes`], plus
    /// [`PsError::InvalidConfig`] when `ps_shards` is zero.
    pub fn homogeneous_sharded(
        node_count: usize,
        workers: usize,
        ps_shards: usize,
        policy: PlacementPolicy,
    ) -> Result<Self> {
        let nodes: Vec<Node> = (0..node_count).map(Node::grid5000_cpu).collect();
        ClusterSpec::with_nodes_sharded(nodes, workers, ps_shards, policy)
    }

    /// Hierarchical-aggregation placement: one aggregator job per worker
    /// group plus a root aggregator. The root is aggregator job 0 (so
    /// [`ClusterSpec::parameter_server_node`] and
    /// [`ClusterSpec::root_aggregator_node`] agree) and group `k`'s
    /// aggregator is job `k + 1`; under `OneJobPerNode` every aggregator gets
    /// its own node, ahead of the workers.
    ///
    /// # Errors
    ///
    /// Returns [`PsError::InvalidConfig`] when `groups` is zero, or under the
    /// same conditions as [`ClusterSpec::with_nodes_sharded`].
    pub fn homogeneous_tree(
        node_count: usize,
        workers: usize,
        groups: usize,
        policy: PlacementPolicy,
    ) -> Result<Self> {
        if groups == 0 {
            return Err(PsError::InvalidConfig(
                "a tree placement needs at least one worker group".into(),
            ));
        }
        ClusterSpec::homogeneous_sharded(node_count, workers, groups + 1, policy)
    }

    /// The node running the root aggregator of a tree placement.
    pub fn root_aggregator_node(&self) -> &Node {
        self.parameter_server_node()
    }

    /// The node running group `k`'s aggregator in a tree placement.
    ///
    /// # Errors
    ///
    /// Returns [`PsError::InvalidConfig`] when `k` is not a placed group
    /// (including when the cluster was not built by
    /// [`ClusterSpec::homogeneous_tree`]).
    pub fn group_aggregator_node(&self, k: usize) -> Result<&Node> {
        self.parameter_server_shard_node(k + 1)
    }

    /// The paper's evaluation platform: 20 nodes, 19 workers, 1 PS (the
    /// evaluator shares the PS node, as the original in-graph deployment
    /// does).
    pub fn paper_default() -> Self {
        ClusterSpec::homogeneous(20, 19, PlacementPolicy::OneJobPerNode)
            .expect("the paper configuration is valid")
    }

    /// Builds a cluster from explicit nodes.
    ///
    /// # Errors
    ///
    /// Returns [`PsError::InvalidConfig`] for empty node lists, zero workers,
    /// or a `OneJobPerNode` placement without enough nodes.
    pub fn with_nodes(nodes: Vec<Node>, workers: usize, policy: PlacementPolicy) -> Result<Self> {
        ClusterSpec::with_nodes_sharded(nodes, workers, 1, policy)
    }

    /// Builds a cluster from explicit nodes with `ps_shards` parameter-server
    /// shard processes. Shard `s` serves the `s`-th contiguous coordinate
    /// range of the model; under `OneJobPerNode` each shard occupies its own
    /// node (nodes `0..ps_shards`), under the packing policies the shards
    /// collocate with the first parameter-server placement.
    ///
    /// # Errors
    ///
    /// Returns [`PsError::InvalidConfig`] for empty node lists, zero workers,
    /// zero shards, or a `OneJobPerNode` placement without enough nodes.
    pub fn with_nodes_sharded(
        nodes: Vec<Node>,
        workers: usize,
        ps_shards: usize,
        policy: PlacementPolicy,
    ) -> Result<Self> {
        if nodes.is_empty() {
            return Err(PsError::InvalidConfig("cluster needs at least one node".into()));
        }
        if workers == 0 {
            return Err(PsError::InvalidConfig("cluster needs at least one worker".into()));
        }
        if ps_shards == 0 {
            return Err(PsError::InvalidConfig(
                "cluster needs at least one parameter-server shard".into(),
            ));
        }
        let mut assignments = Vec::with_capacity(workers + ps_shards + 1);
        match policy {
            PlacementPolicy::Collocated => {
                for _ in 0..ps_shards {
                    assignments.push((Job::ParameterServer, 0));
                }
                for _ in 0..workers {
                    assignments.push((Job::Worker, 0));
                }
                assignments.push((Job::Evaluator, 0));
            }
            PlacementPolicy::OneJobPerNode => {
                if nodes.len() < workers + ps_shards {
                    return Err(PsError::InvalidConfig(format!(
                        "one-job-per-node placement needs {} nodes, cluster has {}",
                        workers + ps_shards,
                        nodes.len()
                    )));
                }
                for s in 0..ps_shards {
                    assignments.push((Job::ParameterServer, s));
                }
                for w in 0..workers {
                    assignments.push((Job::Worker, ps_shards + w));
                }
                // The evaluator shares the first PS node (out-of-band
                // evaluation).
                assignments.push((Job::Evaluator, 0));
            }
            PlacementPolicy::GpuWorkers => {
                let gpu_nodes: Vec<usize> = nodes
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| n.device == DeviceKind::Gpu)
                    .map(|(i, _)| i)
                    .collect();
                let cpu_nodes: Vec<usize> = nodes
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| n.device == DeviceKind::Cpu)
                    .map(|(i, _)| i)
                    .collect();
                let ps_node = *cpu_nodes.first().unwrap_or(&0);
                for s in 0..ps_shards {
                    // Shards spread round-robin over the CPU nodes so a big
                    // shard tier is not pinned to one box.
                    let node = cpu_nodes.get(s % cpu_nodes.len().max(1)).copied().unwrap_or(0);
                    assignments.push((Job::ParameterServer, node));
                }
                let preferred: Vec<usize> =
                    if gpu_nodes.is_empty() { (0..nodes.len()).collect() } else { gpu_nodes };
                for w in 0..workers {
                    assignments.push((Job::Worker, preferred[w % preferred.len()]));
                }
                assignments.push((Job::Evaluator, ps_node));
            }
        }
        Ok(ClusterSpec { nodes, assignments, workers, ps_shards })
    }

    /// Number of workers.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Number of parameter-server shard processes (1 = monolithic server).
    pub fn parameter_server_count(&self) -> usize {
        self.ps_shards
    }

    /// The node running parameter-server shard `s`.
    ///
    /// # Errors
    ///
    /// Returns [`PsError::InvalidConfig`] when `s` is out of range.
    pub fn parameter_server_shard_node(&self, s: usize) -> Result<&Node> {
        self.assignments
            .iter()
            .filter(|(job, _)| *job == Job::ParameterServer)
            .nth(s)
            .map(|&(_, i)| &self.nodes[i])
            .ok_or_else(|| {
                PsError::InvalidConfig(format!("parameter-server shard {s} is not placed"))
            })
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node running the parameter server.
    pub fn parameter_server_node(&self) -> &Node {
        let idx = self
            .assignments
            .iter()
            .find(|(job, _)| *job == Job::ParameterServer)
            .map(|&(_, i)| i)
            .unwrap_or(0);
        &self.nodes[idx]
    }

    /// The node running worker `w`.
    ///
    /// # Errors
    ///
    /// Returns [`PsError::InvalidConfig`] when `w` is out of range.
    pub fn worker_node(&self, w: usize) -> Result<&Node> {
        self.assignments
            .iter()
            .filter(|(job, _)| *job == Job::Worker)
            .nth(w)
            .map(|&(_, i)| &self.nodes[i])
            .ok_or_else(|| PsError::InvalidConfig(format!("worker {w} is not placed")))
    }

    /// Full placement listing (job, node name) for reporting.
    pub fn placement(&self) -> Vec<(Job, &str)> {
        self.assignments.iter().map(|&(job, i)| (job, self.nodes[i].name.as_str())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_the_evaluation_setup() {
        let cluster = ClusterSpec::paper_default();
        assert_eq!(cluster.worker_count(), 19);
        assert_eq!(cluster.nodes().len(), 20);
        // Every worker gets its own node, distinct from the PS node.
        let ps_name = cluster.parameter_server_node().name.clone();
        for w in 0..19 {
            assert_ne!(cluster.worker_node(w).unwrap().name, ps_name);
        }
    }

    #[test]
    fn one_job_per_node_requires_enough_nodes() {
        assert!(ClusterSpec::homogeneous(5, 10, PlacementPolicy::OneJobPerNode).is_err());
        assert!(ClusterSpec::homogeneous(11, 10, PlacementPolicy::OneJobPerNode).is_ok());
    }

    #[test]
    fn collocated_placement_packs_one_node() {
        let cluster = ClusterSpec::homogeneous(1, 4, PlacementPolicy::Collocated).unwrap();
        assert_eq!(cluster.worker_count(), 4);
        for w in 0..4 {
            assert_eq!(cluster.worker_node(w).unwrap().name, "g5k-node-0");
        }
    }

    #[test]
    fn gpu_policy_prefers_gpu_nodes_for_workers() {
        let nodes = vec![Node::grid5000_cpu(0), Node::gpu(1), Node::gpu(2)];
        let cluster = ClusterSpec::with_nodes(nodes, 4, PlacementPolicy::GpuWorkers).unwrap();
        assert_eq!(cluster.parameter_server_node().device, DeviceKind::Cpu);
        for w in 0..4 {
            assert_eq!(cluster.worker_node(w).unwrap().device, DeviceKind::Gpu);
        }
    }

    #[test]
    fn gpu_policy_falls_back_to_cpu_only_clusters() {
        let nodes = vec![Node::grid5000_cpu(0), Node::grid5000_cpu(1)];
        let cluster = ClusterSpec::with_nodes(nodes, 3, PlacementPolicy::GpuWorkers).unwrap();
        assert_eq!(cluster.worker_count(), 3);
        assert!(cluster.worker_node(0).is_ok());
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(ClusterSpec::with_nodes(vec![], 1, PlacementPolicy::Collocated).is_err());
        assert!(ClusterSpec::homogeneous(2, 0, PlacementPolicy::Collocated).is_err());
        let cluster = ClusterSpec::homogeneous(2, 1, PlacementPolicy::Collocated).unwrap();
        assert!(cluster.worker_node(5).is_err());
    }

    #[test]
    fn sharded_ps_placement_gives_every_shard_its_own_node() {
        let cluster =
            ClusterSpec::homogeneous_sharded(10, 6, 4, PlacementPolicy::OneJobPerNode).unwrap();
        assert_eq!(cluster.parameter_server_count(), 4);
        assert_eq!(cluster.worker_count(), 6);
        let mut seen = std::collections::HashSet::new();
        for s in 0..4 {
            seen.insert(cluster.parameter_server_shard_node(s).unwrap().name.clone());
        }
        assert_eq!(seen.len(), 4, "each shard on a distinct node");
        for w in 0..6 {
            let name = cluster.worker_node(w).unwrap().name.clone();
            assert!(!seen.contains(&name), "workers never share a shard node");
        }
        assert!(cluster.parameter_server_shard_node(4).is_err());
        // Not enough nodes for shards + workers.
        assert!(ClusterSpec::homogeneous_sharded(9, 6, 4, PlacementPolicy::OneJobPerNode).is_err());
        assert!(ClusterSpec::homogeneous_sharded(9, 6, 0, PlacementPolicy::Collocated).is_err());
    }

    #[test]
    fn tree_placement_gives_every_group_aggregator_a_node() {
        // 8 workers in 2 groups: root + 2 group aggregators + 8 workers = 11
        // nodes under one-job-per-node.
        let cluster =
            ClusterSpec::homogeneous_tree(11, 8, 2, PlacementPolicy::OneJobPerNode).unwrap();
        assert_eq!(cluster.parameter_server_count(), 3);
        let root = cluster.root_aggregator_node().name.clone();
        let g0 = cluster.group_aggregator_node(0).unwrap().name.clone();
        let g1 = cluster.group_aggregator_node(1).unwrap().name.clone();
        assert_ne!(root, g0);
        assert_ne!(root, g1);
        assert_ne!(g0, g1);
        assert!(cluster.group_aggregator_node(2).is_err());
        for w in 0..8 {
            let name = cluster.worker_node(w).unwrap().name.clone();
            assert!(name != root && name != g0 && name != g1);
        }
        assert!(ClusterSpec::homogeneous_tree(10, 8, 2, PlacementPolicy::OneJobPerNode).is_err());
        assert!(ClusterSpec::homogeneous_tree(11, 8, 0, PlacementPolicy::OneJobPerNode).is_err());
    }

    #[test]
    fn placement_listing_contains_every_job() {
        let cluster = ClusterSpec::homogeneous(3, 2, PlacementPolicy::OneJobPerNode).unwrap();
        let placement = cluster.placement();
        assert_eq!(placement.len(), 4); // PS + 2 workers + evaluator
        assert!(placement.iter().any(|(j, _)| *j == Job::ParameterServer));
        assert!(placement.iter().any(|(j, _)| *j == Job::Evaluator));
    }
}
