//! The synchronous training engine (Equation 4 of the paper) and the
//! throughput simulator behind the scalability experiments.

use crate::cluster::{ClusterSpec, PlacementPolicy};
use crate::config::{RunnerConfig, TransportKind};
use crate::cost::CostModel;
use crate::membership::{FaultAction, MembershipView, RefusalPolicy, WorkerHealth};
use crate::report::{TrainingReport, WorkerReport};
use crate::reputation::{self, ReputationLedger, RoundEvidence};
use crate::server::ParameterServer;
use crate::streaming::RoundPipeline;
use crate::worker::{Worker, WorkerRole};
use crate::{PsError, Result};
use agg_attacks::{Attack, AttackContext, AttackKind, ChurnDirective};
use agg_core::{resilience, GarConfig};
use agg_data::corruption::corrupt;
use agg_data::{Dataset, MiniBatchSampler};
use agg_metrics::{LatencyBreakdown, ThroughputMeter, TracePoint, TrainingTrace};
use agg_net::{ChaosPlan, GradientCodec, LinkConfig, LossyTransport, ReliableTransport, Transport};
use agg_nn::Sequential;
use agg_tensor::rng::{derive_seed, gaussian_fill, seeded_rng};
use agg_tensor::{GradientBatch, GroupPlan, Vector};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// The synchronous parameter-server training loop.
///
/// One round:
/// 1. the server broadcasts the model to every worker;
/// 2. every honest (and data-poisoned) worker computes a mini-batch gradient;
/// 3. the adversary crafts the Byzantine submissions, knowing every honest
///    gradient (omniscient attacker, §3.1);
/// 4. gradients travel over each worker's transport (possibly lossy);
/// 5. the server aggregates with the configured GAR and applies the
///    optimizer step.
///
/// Simulated time advances by the broadcast time plus the slowest worker's
/// compute+transfer time (synchronous training: the server waits for all)
/// plus the measured-and-rescaled aggregation time.
///
/// Phase 1 fans the honest workers out over rayon: every worker owns its
/// model, sampler and transport (each with its own derived RNG stream) and
/// delivers its gradient into its own pre-assigned row of one reused
/// submissions arena, so the round is bit-for-bit identical to the
/// sequential ordering regardless of thread schedule.
#[derive(Debug)]
pub struct SyncTrainingEngine {
    config: RunnerConfig,
    cluster: ClusterSpec,
    server: ParameterServer,
    workers: Vec<Worker>,
    attack: Box<dyn Attack>,
    eval_model: Sequential,
    test_set: Dataset,
    actual_dimension: usize,
    model_flops: u64,
    /// Per-round aggregation time calibrated by running the GAR for real at
    /// (close to) the virtual model's dimension; `None` when no virtual model
    /// is configured, in which case the per-round measurement is used
    /// directly.
    calibrated_aggregation_sec: Option<f64>,
    clock_sec: f64,
    /// The round pipeline: two submission arenas flipped every round (worker
    /// `i` owns row `i`; undelivered rows are compacted away before
    /// aggregation) plus, when streaming is enabled for a distance-based
    /// rule, the incremental pairwise-distance accumulator fed per arriving
    /// row. No per-round `n × d` allocation either way.
    pipeline: RoundPipeline,
    /// The server's membership view: epoch number plus per-worker health,
    /// advanced at the start of every round from the configured fault plan.
    /// With an empty plan it stays at epoch 0 / all-live — static
    /// membership, the seed behaviour bit for bit.
    membership: MembershipView,
    /// The worker-to-group partition of the hierarchical tier; `None` on the
    /// flat path. Groups are contiguous worker-id ranges of
    /// `tree.group_size`, the last one ragged when `n` is not divisible.
    tree_plan: Option<GroupPlan>,
    /// One transport per group for the group-aggregator → root leg of the
    /// hierarchical round. Groups whose worker range overlaps the degraded
    /// links inherit the lossy/chaos/retransmit wire (each with its own
    /// chaos stream past the worker streams); the rest stay reliable.
    tree_links: Vec<Box<dyn Transport>>,
    /// Per-group membership epochs of the hierarchical tier: a crash or
    /// rejoin bumps only the epoch of the group it happened in, so the
    /// epoch fence stays local — workers in untouched groups are never
    /// re-stamped. Empty on the flat path, which fences at the global
    /// view epoch as before.
    group_epochs: Vec<u32>,
    /// The cross-round suspicion ledger driving automatic quarantine,
    /// probationary readmission and the tree tier's containment reshuffles.
    /// `None` keeps the memoryless seed behaviour bit for bit.
    reputation: Option<ReputationLedger>,
    /// The seeded coordinate sample the collusion-affinity sketches read
    /// (every coordinate for small models, a capped sample for large ones).
    /// Empty without a ledger.
    affinity_sample: Vec<usize>,
    /// `false` forces Phase 1 through the plain sequential iterator (the
    /// seed ordering). The determinism test runs both modes and asserts
    /// identical reports.
    phase1_parallel: bool,
}

/// What one worker contributed to a round (collected in worker-id order, so
/// the parallel fan-out reduces deterministically).
#[derive(Debug)]
struct WorkerRound {
    /// The pre-wire gradient of an honest worker (the omniscient adversary
    /// sees these); `None` for attackers and data-poisoned workers.
    honest_gradient: Option<Vector>,
    /// Whether the transport delivered the submission into the worker's
    /// arena row.
    delivered: bool,
    /// Simulated compute + transfer seconds.
    worker_time: f64,
    /// Packets of this submission rejected by the epoch fence (a stale-epoch
    /// rejoiner or an evicted worker's stragglers).
    stale_rejects: usize,
    /// Packets of this submission rejected by the wire-integrity check (chaos
    /// damage caught by the CRC32 envelope).
    corrupt_rejects: usize,
    /// Whether this submission's retransmit recovery ran out of budget or
    /// deadline with the row still incomplete — a distinct evidence stream
    /// from a plain transport loss.
    retransmit_exhausted: bool,
}

impl SyncTrainingEngine {
    /// Builds the engine from a runner configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PsError::InvalidConfig`] when the configuration is
    /// inconsistent, and propagates model/data construction failures.
    pub fn new(config: RunnerConfig) -> Result<Self> {
        config.validate()?;
        let (model, train, test) = config.experiment.build(config.seed)?;
        let actual_dimension = model.param_count();
        let model_flops = model.flops_per_sample();

        // The hierarchical tier partitions the roster into contiguous groups
        // of `tree.group_size` (validated against the sortnet sweet spot).
        let tree_plan = match &config.tree {
            Some(tree) => {
                Some(GroupPlan::new(config.workers, tree.group_size).map_err(PsError::from)?)
            }
            None => None,
        };

        // One node per worker plus one per parameter-server shard, matching
        // the paper's one-job-per-node deployment. In tree mode the
        // aggregator tier is one job per group plus a root instead.
        let cluster = match &tree_plan {
            Some(plan) => ClusterSpec::homogeneous_tree(
                config.workers + plan.group_count() + 1,
                config.workers,
                plan.group_count(),
                PlacementPolicy::OneJobPerNode,
            )?,
            None => ClusterSpec::homogeneous_sharded(
                config.workers + config.shards,
                config.workers,
                config.shards,
                PlacementPolicy::OneJobPerNode,
            )?,
        };

        let mut server = ParameterServer::new(
            model.parameters(),
            config.gar,
            config.optimizer,
            config.learning_rate,
            config.regularization,
        )?;
        server.set_shards(config.shards)?;
        server.set_tree(config.tree)?;

        let clean = Arc::new(train);
        let poisoned: Option<Arc<Dataset>> = match &config.data_poisoning {
            Some(c) => Some(Arc::new(
                corrupt(&clean, *c, derive_seed(config.seed, 777)).map_err(PsError::from)?,
            )),
            None => None,
        };

        let honest_count = config.workers - config.byzantine_count;
        let mut workers = Vec::with_capacity(config.workers);
        for id in 0..config.workers {
            let role = if id < honest_count {
                WorkerRole::Honest
            } else if poisoned.is_some() {
                WorkerRole::DataPoisoned
            } else {
                WorkerRole::Attacker
            };
            let dataset = match role {
                WorkerRole::DataPoisoned => Arc::clone(poisoned.as_ref().expect("checked above")),
                _ => Arc::clone(&clean),
            };
            let sampler = MiniBatchSampler::new(config.batch_size, config.seed, id as u64)
                .map_err(PsError::from)?;
            let transport = Self::build_transport(&config, id)?;
            let node = cluster.worker_node(id)?;
            let worker_model = config.experiment.build_model(derive_seed(config.seed, id as u64));
            workers.push(Worker::new(
                id,
                role,
                worker_model,
                dataset,
                sampler,
                transport,
                node.flops_per_sec,
            ));
        }

        // The group-aggregator → root legs of the hierarchical round. A
        // group's leg is degraded exactly when the group contains a degraded
        // worker link (the trailing `lossy_links` ids), so the chaos-afflicted
        // region of the cluster stays contiguous across both levels; each leg
        // draws its chaos from its own stream past the worker streams.
        let tree_links: Vec<Box<dyn Transport>> = match &tree_plan {
            Some(plan) => (0..plan.group_count())
                .map(|gid| {
                    let degraded =
                        plan.range(gid).end > config.workers.saturating_sub(config.lossy_links);
                    Self::build_link(&config, (config.workers + gid) as u64, degraded)
                })
                .collect::<Result<_>>()?,
            None => Vec::new(),
        };
        let group_epochs =
            tree_plan.as_ref().map_or_else(Vec::new, |plan| vec![0; plan.group_count()]);

        let attack = config.attack.build();
        let calibrated_aggregation_sec = Self::calibrate_aggregation(&config, config.workers)?;
        let mut pipeline = RoundPipeline::new(actual_dimension, config.workers);
        // Distance streaming accumulates the *flat* pairwise matrix, which
        // the per-group rules of the tree tier never read — the flag is a
        // no-op there rather than an error, so the determinism matrix can
        // still cross it with tree runs.
        if config.streaming.enabled && config.gar.kind.uses_distances() && config.tree.is_none() {
            pipeline.enable_distance_streaming(config.workers, actual_dimension, config.shards)?;
        }
        let membership = MembershipView::new(config.workers);
        let ledger = config.reputation.map(|cfg| ReputationLedger::new(cfg, config.workers));
        let affinity_sample = match &config.reputation {
            Some(cfg) => reputation::affinity_sample_indices(
                config.seed,
                actual_dimension,
                cfg.affinity_max_coords,
            ),
            None => Vec::new(),
        };
        Ok(SyncTrainingEngine {
            config,
            cluster,
            server,
            workers,
            attack,
            eval_model: model,
            test_set: test,
            actual_dimension,
            model_flops,
            calibrated_aggregation_sec,
            clock_sec: 0.0,
            pipeline,
            membership,
            tree_plan,
            tree_links,
            group_epochs,
            reputation: ledger,
            affinity_sample,
            phase1_parallel: true,
        })
    }

    /// The current membership view (epoch and per-worker health).
    pub fn membership(&self) -> &MembershipView {
        &self.membership
    }

    /// The reputation ledger driving quarantine decisions, when configured.
    pub fn reputation(&self) -> Option<&ReputationLedger> {
        self.reputation.as_ref()
    }

    /// Forces Phase 1 through the sequential iterator (the seed ordering)
    /// instead of the rayon fan-out. The two modes must produce bit-identical
    /// reports — the determinism test asserts exactly that.
    pub fn set_phase1_parallel(&mut self, parallel: bool) {
        self.phase1_parallel = parallel;
    }

    /// Forces the sharded aggregation tier through the sequential shard
    /// ordering instead of the rayon fan-out (no-op for a monolithic
    /// server). Like [`SyncTrainingEngine::set_phase1_parallel`], the two
    /// modes must produce bit-identical reports — the shard determinism test
    /// asserts exactly that.
    pub fn set_shard_parallel(&mut self, parallel: bool) {
        self.server.set_shard_parallel(parallel);
    }

    /// Forces the tree tier's group stage through the sequential group
    /// ordering instead of the rayon fan-out (no-op on the flat path). The
    /// two modes must produce bit-identical reports — the tree determinism
    /// test asserts exactly that.
    pub fn set_tree_parallel(&mut self, parallel: bool) {
        self.server.set_tree_parallel(parallel);
    }

    /// Measures the configured GAR for real at (close to) the virtual model's
    /// dimension and rescales linearly, so the simulated aggregation time is
    /// faithful to the large model the experiment pretends to train (see
    /// DESIGN.md §6). Without a virtual model no calibration is needed.
    fn calibrate_aggregation(config: &RunnerConfig, workers: usize) -> Result<Option<f64>> {
        let Some(virtual_model) = config.cost.virtual_model else {
            return Ok(None);
        };
        let calibration_dim = virtual_model.dimension.min(200_000);
        // Calibrate the same aggregation path the rounds will run: the
        // shard-parallel evaluation when the tier is sharded.
        let gar: Box<dyn agg_core::Gar> = if config.shards > 1 {
            Box::new(
                agg_core::ShardedAggregator::new(config.gar, config.shards)
                    .map_err(PsError::from)?,
            )
        } else {
            config.gar.build().map_err(PsError::from)?
        };
        let mut rng = seeded_rng(derive_seed(config.seed, 0xCA11));
        // The calibration batch is packed into the arena once, outside the
        // timed region, mirroring how the training loop hands rounds to the
        // server.
        let mut gradients = GradientBatch::with_capacity(calibration_dim, workers);
        for _ in 0..workers {
            gradients.push_row_with(|dst| gaussian_fill(&mut rng, dst, 0.0, 1.0));
        }
        // Best of two runs: the first may pay one-time warm-up costs.
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            let start = Instant::now();
            if gar.aggregate_batch(&gradients).is_err() {
                // Preconditions not met (e.g. too few workers for f): the
                // run will skip every round anyway, so no calibration.
                return Ok(None);
            }
            best = best.min(start.elapsed().as_secs_f64());
        }
        Ok(Some(best * virtual_model.dimension as f64 / calibration_dim as f64))
    }

    fn build_transport(config: &RunnerConfig, worker_id: usize) -> Result<Box<dyn Transport>> {
        // The last `lossy_links` worker↔server links are the ones subject to
        // the configured packet-loss rate (the paper injects its artificial
        // drops with `tc` on the links it studies); the remaining links see a
        // clean network. Whether the degraded links run the lossy UDP-like
        // transport or a reliable TCP-like one is decided by
        // `config.transport`, which is exactly the comparison of Figure 8(b).
        let degraded = worker_id >= config.workers.saturating_sub(config.lossy_links);
        Self::build_link(config, worker_id as u64, degraded)
    }

    /// Builds one link of the configured wire: a worker↔server link (stream
    /// `0..workers`) or a group-aggregator → root leg of the tree tier
    /// (stream `workers + gid`). Each stream draws its own chaos from the
    /// shared seeded plan.
    fn build_link(
        config: &RunnerConfig,
        stream: u64,
        degraded: bool,
    ) -> Result<Box<dyn Transport>> {
        let link =
            if degraded { config.link } else { LinkConfig { drop_rate: 0.0, ..config.link } };
        let codec = GradientCodec::default_mtu();
        match config.transport {
            TransportKind::Lossy { policy } if degraded => {
                let mut transport = LossyTransport::new(link, codec, policy, config.seed, stream)
                    .map_err(PsError::from)?;
                // The chaos schedule and the retransmit recovery live on the
                // degraded links only — the same links the paper injects its
                // artificial faults on. Each worker draws its chaos from its
                // own stream of the shared seeded plan.
                if let Some(chaos) = config.chaos {
                    transport.set_chaos(Some(
                        ChaosPlan::new(chaos, config.seed).map_err(PsError::from)?,
                    ));
                }
                if config.retransmit.is_some() {
                    transport.set_retransmit(config.retransmit);
                }
                Ok(Box::new(transport))
            }
            _ => Ok(Box::new(ReliableTransport::new(link, codec).map_err(PsError::from)?)),
        }
    }

    /// The cluster this engine simulates.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The gradient dimension of the (proxy) model actually trained.
    pub fn model_dimension(&self) -> usize {
        self.actual_dimension
    }

    /// Forward FLOPs per sample of the (proxy) model actually trained.
    pub fn model_flops(&self) -> u64 {
        self.model_flops
    }

    /// Per-worker role assignment (for reports and tests).
    pub fn worker_roles(&self) -> Vec<WorkerRole> {
        self.workers.iter().map(Worker::role).collect()
    }

    /// Runs the configured number of steps and returns the report.
    ///
    /// # Errors
    ///
    /// Returns [`PsError`] for unrecoverable failures (model errors,
    /// structural transport failures). GAR rejections and dropped gradients
    /// are recorded in the report, not raised.
    pub fn run(&mut self) -> Result<TrainingReport> {
        let label = format!(
            "{} f={} b={} n={}{}{}",
            self.server.gar_name(),
            self.config.gar.f,
            self.config.batch_size,
            self.config.workers,
            match self.config.tree {
                Some(tree) => format!(" tree(g={})", tree.group_size),
                None => String::new(),
            },
            match self.config.transport {
                TransportKind::Reliable => String::new(),
                TransportKind::Lossy { .. } => format!(" lossy({} links)", self.config.lossy_links),
            }
        );
        let mut trace = TrainingTrace::new(label.clone());
        let mut throughput = ThroughputMeter::new();
        let mut latency = LatencyBreakdown::new();
        let mut skipped = 0u64;
        let mut refused = 0u64;
        let mut stale_epoch_rejects = 0u64;
        let mut corrupt_rejects = 0u64;
        let mut byzantine_selected_rounds = 0u64;
        let mut retransmit_exhaustions = 0u64;
        // Per-worker wire/ledger counters, accumulated alongside the globals.
        let mut worker_stats: Vec<WorkerReport> = (0..self.workers.len())
            .map(|worker| WorkerReport { worker, ..Default::default() })
            .collect();
        // The previous round's selection, as *worker slots* — the adaptive
        // adversary's feedback channel and the Byzantine-selection counter.
        let mut previous_selection: Option<Vec<usize>> = None;
        // Which workers the previous aggregated round's selection left out —
        // the ledger's selection-exclusion evidence stream (one round of
        // history, consumed by the next fold).
        let mut prev_excluded = vec![false; self.workers.len()];

        self.evaluate(&mut trace, 0)?;

        let cost = self.config.cost;
        let dim_scale = cost.effective_dimension(self.actual_dimension) as f64
            / self.actual_dimension.max(1) as f64;

        // Elastic membership engages only when a fault plan is configured;
        // with an empty plan the loop below is the static-membership seed
        // path, bit for bit (epoch stays 0, nothing is fenced or refused).
        let fault_plan = self.config.fault_plan.clone();
        // Attacker-controlled churn timing: the adversary chooses crash and
        // rejoin rounds for its own workers from selection feedback instead
        // of following a pre-declared schedule. Engages the same epoch-fenced
        // elastic machinery as a fault plan.
        let adaptive_churn = self.config.adaptive_churn && self.config.byzantine_count > 0;
        // A reputation ledger needs the epoch-fenced elastic machinery even
        // without a fault plan: its quarantines and readmissions are
        // engine-synthesized membership transitions.
        let elastic = !fault_plan.is_empty() || adaptive_churn || self.reputation.is_some();
        // What the run actually tolerates: the flat rule's declared `f`, or
        // the composed bound `(f_group + 1)(f_root + 1) − 1` of the tree
        // tier. Quorum accounting and the adversary's declared-f knowledge
        // both see this figure.
        let declared_f = self.config.tree.map_or(self.config.gar.f, |tree| tree.composed_max_f());
        // Selection feedback costs one selection pass per round (free when
        // the streaming matrix is available); run it only when someone reads
        // it: the Byzantine-selection counter or the adaptive adversary.
        let wants_selection = self.config.gar.kind.uses_distances()
            && (elastic
                || self.config.byzantine_count > 0
                || matches!(self.config.attack, AttackKind::Adaptive));

        for step in 0..self.config.max_steps {
            let model_bytes = cost.payload_bytes(self.actual_dimension);
            let broadcast_time = self.config.link.transfer_time(model_bytes);

            // Workers the ledger readmits *this* round: their fenced
            // first-round packets are by design, not stale-epoch evidence.
            let mut readmitted_now = vec![false; self.workers.len()];
            if elastic {
                // The ledger's synthesized transitions and the adversary's
                // churn directives join this round's scheduled events: all
                // run through the same MembershipView transition rules, so
                // none can do more than a fault plan could have scheduled
                // (redundant directives are no-ops, rejoiners are fenced for
                // one round).
                let needs_merge = adaptive_churn || self.reputation.is_some();
                let merged_plan = if needs_merge {
                    let mut plan = fault_plan.clone();
                    if let Some(ledger) = &mut self.reputation {
                        // Readmissions first: a lapsed quarantine rejoins on
                        // probation this round (epoch-fenced like any other
                        // rejoiner), so its stale first-round packets are by
                        // design, not fresh evidence against it.
                        for worker in ledger.due_for_readmission(step) {
                            plan = plan.with(step, worker, FaultAction::Rejoin);
                            ledger.readmit(step, worker);
                            readmitted_now[worker] = true;
                            worker_stats[worker].readmissions += 1;
                        }
                        // Quarantine evictions: rank by suspicion, cap
                        // concurrent quarantines at the declared-f budget,
                        // and gate every eviction on the post-eviction
                        // resilience floor — an eviction the floor cannot
                        // absorb yet is deferred, never dropped.
                        let budget = match ledger.config().max_quarantined {
                            0 => declared_f,
                            cap => cap,
                        };
                        let mut live_sim: Vec<bool> = (0..self.workers.len())
                            .map(|w| self.membership.health(w).is_live() || readmitted_now[w])
                            .collect();
                        for candidate in ledger.quarantine_candidates() {
                            if ledger.quarantined_count() >= budget {
                                break;
                            }
                            let was_live = live_sim[candidate];
                            live_sim[candidate] = false;
                            let floor_ok = match (&self.tree_plan, &self.config.tree) {
                                (Some(tree_plan), Some(tree)) => {
                                    let mut live_sizes = vec![0usize; tree_plan.group_count()];
                                    for (w, &live) in live_sim.iter().enumerate() {
                                        if live {
                                            live_sizes[tree_plan.group_of(w)] += 1;
                                        }
                                    }
                                    resilience::check_tree(
                                        tree.group.kind,
                                        tree.group.f,
                                        tree.root.kind,
                                        tree.root.f,
                                        live_sizes,
                                    )
                                    .is_ok()
                                }
                                _ => {
                                    // A quarantined slot no longer counts
                                    // against the adversary's budget, so the
                                    // floor re-derives from the suspicion-
                                    // aware effective f.
                                    let f_eff = self
                                        .config
                                        .gar
                                        .f
                                        .saturating_sub(ledger.quarantined_count() + 1);
                                    let live_after = live_sim.iter().filter(|&&l| l).count();
                                    live_after
                                        >= resilience::resilience_floor(self.config.gar.kind, f_eff)
                                }
                            };
                            if !floor_ok {
                                live_sim[candidate] = was_live;
                                continue;
                            }
                            plan = plan.with(step, candidate, FaultAction::Crash);
                            ledger.begin_quarantine(step, candidate);
                            worker_stats[candidate].quarantines += 1;
                        }
                    }
                    if adaptive_churn {
                        let ctx = AttackContext {
                            honest_gradients: &[],
                            model: self.server.parameters(),
                            byzantine_count: self.config.byzantine_count,
                            declared_f,
                            step,
                            seed: self.config.seed,
                            total_workers: self.workers.len(),
                            previous_selection: previous_selection.as_deref(),
                        };
                        for directive in self.attack.plan_churn(&ctx) {
                            let (worker, action) = match directive {
                                ChurnDirective::Crash(w) => (w, FaultAction::Crash),
                                ChurnDirective::Rejoin(w) => (w, FaultAction::Rejoin),
                            };
                            // The adversary only controls its own workers —
                            // a directive naming an honest slot is ignored —
                            // and a quarantined slot stays evicted: the
                            // ledger's Crash outranks the adversary's Rejoin.
                            let quarantined = self
                                .reputation
                                .as_ref()
                                .is_some_and(|ledger| ledger.is_quarantined(worker));
                            if !quarantined
                                && self
                                    .workers
                                    .get(worker)
                                    .is_some_and(|w| w.role() == WorkerRole::Attacker)
                            {
                                plan = plan.with(step, worker, action);
                            }
                        }
                    }
                    Some(plan)
                } else {
                    None
                };
                let round_plan = merged_plan.as_ref().unwrap_or(&fault_plan);
                let transitions = self.membership.apply_round(round_plan, step);
                if let Some(plan) = &self.tree_plan {
                    // Tree mode fences per group: a crash or rejoin bumps
                    // only the epoch of the group it happened in, and every
                    // worker is stamped against its *group's* epoch, so view
                    // changes never invalidate in-flight rounds of untouched
                    // groups.
                    for &w in transitions.crashed.iter().chain(&transitions.rejoined) {
                        self.group_epochs[plan.group_of(w)] += 1;
                    }
                    for worker in &mut self.workers {
                        let id = worker.id();
                        let group_epoch = self.group_epochs[plan.group_of(id)];
                        worker.set_transport_expected_epoch(Some(group_epoch));
                        if self.membership.health(id).is_live()
                            && !transitions.rejoined.contains(&id)
                        {
                            worker.set_transport_epoch(group_epoch);
                        }
                    }
                } else {
                    let epoch = self.membership.epoch();
                    for worker in &mut self.workers {
                        // The server side of every link fences at the current
                        // view's epoch.
                        worker.set_transport_expected_epoch(Some(epoch));
                        // Live workers that did not just rejoin have taken
                        // part in the view change and stamp the new epoch; a
                        // rejoiner still carries the epoch it crashed with,
                        // so its first round back is fenced, and it syncs at
                        // the next round's broadcast.
                        let id = worker.id();
                        if self.membership.health(id).is_live()
                            && !transitions.rejoined.contains(&id)
                        {
                            worker.set_transport_epoch(epoch);
                        }
                    }
                }
                // Every transition re-derives the active rule's floor: a
                // live set below `g(f)` — or, in tree mode, a live partition
                // that cannot seat the composed two-level bound — voids the
                // resilience proof, so the server refuses the round and
                // degrades per policy instead of aggregating on borrowed
                // assumptions.
                let floor_ok = match (&self.tree_plan, &self.config.tree) {
                    (Some(plan), Some(tree)) => {
                        let mut live_sizes = vec![0usize; plan.group_count()];
                        for w in 0..self.workers.len() {
                            if self.membership.health(w).is_live() {
                                live_sizes[plan.group_of(w)] += 1;
                            }
                        }
                        resilience::check_tree(
                            tree.group.kind,
                            tree.group.f,
                            tree.root.kind,
                            tree.root.f,
                            live_sizes,
                        )
                        .is_ok()
                    }
                    _ => {
                        // Quarantined slots no longer count against the
                        // adversary's budget: the floor re-derives each
                        // transition from the suspicion-aware effective f.
                        let f_eff = match &self.reputation {
                            Some(ledger) => {
                                self.config.gar.f.saturating_sub(ledger.quarantined_count())
                            }
                            None => self.config.gar.f,
                        };
                        self.membership.satisfies_floor(self.config.gar.kind, f_eff)
                    }
                };
                if !floor_ok {
                    refused += 1;
                    if self.config.refusal == RefusalPolicy::HoldLastRound {
                        // The held model is still broadcast, so the clock
                        // pays for the round; a paused server stays silent.
                        self.clock_sec += broadcast_time;
                        latency.record_round(broadcast_time, 0.0);
                        throughput.record_round(0, broadcast_time);
                    }
                    if (step + 1) % self.config.eval_every == 0 || step + 1 == self.config.max_steps
                    {
                        self.evaluate(&mut trace, self.server.step())?;
                    }
                    continue;
                }
            }
            let health: Vec<WorkerHealth> =
                (0..self.workers.len()).map(|i| self.membership.health(i)).collect();
            let live_n = health.iter().filter(|h| h.is_live()).count();

            let params = self.server.parameters().clone();

            // Phase 1: honest (and data-poisoned) workers compute and send,
            // fanned out over rayon. Worker `i` delivers straight into arena
            // row `i` (disjoint mutable slices), results are collected in
            // worker-id order, and every worker draws only from its own RNG
            // streams — so the round is deterministic under any schedule.
            // `begin_round` flips the double buffer: this round's ingest
            // lands in the arena the previous round's aggregation was not
            // reading.
            self.pipeline.begin_round(self.workers.len());
            let run_worker = |(worker, dst): (&mut Worker, &mut [f32])| -> Result<WorkerRound> {
                if !health[worker.id()].is_live() || worker.role() == WorkerRole::Attacker {
                    // Crashed workers compute and submit nothing; attackers
                    // are crafted centrally in Phase 2 (their channels are
                    // "arbitrarily fast" and never extend the round).
                    return Ok(WorkerRound {
                        honest_gradient: None,
                        delivered: false,
                        worker_time: 0.0,
                        stale_rejects: 0,
                        corrupt_rejects: 0,
                        retransmit_exhausted: false,
                    });
                }
                let node_flops = worker.node_flops_per_sec();
                let computation = worker.compute_gradient(&params, |model, batch| {
                    cost.gradient_time(model.flops_per_sample(), batch, node_flops)
                })?;
                let transfer =
                    worker.send_gradient_into(step, computation.gradient.as_slice(), dst)?;
                Ok(WorkerRound {
                    honest_gradient: (worker.role() == WorkerRole::Honest)
                        .then_some(computation.gradient),
                    delivered: transfer.delivered,
                    worker_time: computation.compute_time_sec + transfer.time_sec * dim_scale,
                    stale_rejects: transfer.stale_epoch_rejects,
                    corrupt_rejects: transfer.corrupt_rejects,
                    retransmit_exhausted: transfer.retransmit_exhausted,
                })
            };
            let jobs: Vec<(&mut Worker, &mut [f32])> =
                self.workers.iter_mut().zip(self.pipeline.arena_mut().rows_mut()).collect();
            let results: Vec<Result<WorkerRound>> = if self.phase1_parallel {
                jobs.into_par_iter().map(run_worker).collect()
            } else {
                jobs.into_iter().map(run_worker).collect()
            };
            let mut rounds = Vec::with_capacity(results.len());
            for result in results {
                rounds.push(result?);
            }
            // The straggler knob: configured per-worker delays stretch the
            // simulated arrival times (Byzantine submissions included —
            // their channels are only "arbitrarily fast" by default).
            if !self.config.worker_extra_delay_sec.is_empty() {
                for (round, &delay) in rounds.iter_mut().zip(&self.config.worker_extra_delay_sec) {
                    round.worker_time += delay;
                }
            }
            // Slow-by demotions from the fault plan stretch the affected
            // workers' arrivals exactly like the static straggler knob.
            if elastic {
                for (round, h) in rounds.iter_mut().zip(&health) {
                    if let WorkerHealth::Slowed { delay_sec } = *h {
                        round.worker_time += delay_sec;
                    }
                }
            }
            let mut dropped_gradients = rounds
                .iter()
                .zip(&self.workers)
                .filter(|(r, w)| {
                    w.role() != WorkerRole::Attacker && health[w.id()].is_live() && !r.delivered
                })
                .count() as u64;
            let max_worker_time = rounds.iter().map(|r| r.worker_time).fold(0.0f64, f64::max);

            // Phase 2: the adversary crafts the Byzantine submissions,
            // seeing every honest gradient as a borrowed row view (§3.1's
            // omniscient attacker, without cloning a coordinate).
            let attacker_ids: Vec<usize> = self
                .workers
                .iter()
                .filter(|w| w.role() == WorkerRole::Attacker && health[w.id()].is_live())
                .map(Worker::id)
                .collect();
            if !attacker_ids.is_empty() {
                let honest_views: Vec<&[f32]> = rounds
                    .iter()
                    .filter_map(|r| r.honest_gradient.as_ref().map(Vector::as_slice))
                    .collect();
                let ctx = AttackContext {
                    honest_gradients: &honest_views,
                    model: &params,
                    byzantine_count: attacker_ids.len(),
                    declared_f,
                    step,
                    seed: self.config.seed,
                    total_workers: self.workers.len(),
                    previous_selection: previous_selection.as_deref(),
                };
                let crafted = self.attack.craft(&ctx);
                for (&slot, gradient) in attacker_ids.iter().zip(&crafted) {
                    let worker = &mut self.workers[slot];
                    let transfer = worker.send_gradient_into(
                        step,
                        gradient.as_slice(),
                        self.pipeline.arena_mut().row_mut(slot),
                    )?;
                    rounds[slot].delivered = transfer.delivered;
                    rounds[slot].stale_rejects = transfer.stale_epoch_rejects;
                    rounds[slot].corrupt_rejects = transfer.corrupt_rejects;
                    rounds[slot].retransmit_exhausted = transfer.retransmit_exhausted;
                    if !transfer.delivered {
                        dropped_gradients += 1;
                    }
                }
            }
            stale_epoch_rejects += rounds.iter().map(|r| r.stale_rejects as u64).sum::<u64>();
            corrupt_rejects += rounds.iter().map(|r| r.corrupt_rejects as u64).sum::<u64>();
            for (worker, round) in rounds.iter().enumerate() {
                worker_stats[worker].stale_epoch_rejects += round.stale_rejects as u64;
                worker_stats[worker].corrupt_rejects += round.corrupt_rejects as u64;
                if round.retransmit_exhausted {
                    worker_stats[worker].retransmit_exhaustions += 1;
                    retransmit_exhaustions += 1;
                }
            }

            // Phase 3: aggregation and model update at the server. The
            // quorum policy decides how many arrivals the round waits for:
            // delivered submissions are ordered by simulated arrival time
            // (worker id breaking ties) and everything past the quorum is
            // dropped exactly like a transport loss. Under the default
            // `All` policy every delivered row is accepted and the round
            // waits for the slowest worker — the seed accounting,
            // unchanged bit for bit.
            // The quorum is computed on the *live* worker count: under
            // churn, `n − f` means "all but f of the workers actually in
            // the view", not of the configured roster. With static
            // membership the two coincide.
            let quorum = self.config.streaming.quorum.accept_count(live_n, declared_f);
            let mut arrivals: Vec<usize> =
                (0..rounds.len()).filter(|&i| rounds[i].delivered).collect();
            arrivals.sort_by(|&a, &b| {
                rounds[a].worker_time.total_cmp(&rounds[b].worker_time).then(a.cmp(&b))
            });
            let accepted = &arrivals[..quorum.min(arrivals.len())];
            dropped_gradients += (arrivals.len() - accepted.len()) as u64;
            let round_wait = if accepted.len() == arrivals.len() {
                // Full synchronous round: the server waits for the slowest
                // worker, delivered or not.
                broadcast_time + max_worker_time
            } else {
                // Quorum round: the clock stops at the last accepted
                // arrival; the stragglers' remaining time is the round's
                // saving.
                broadcast_time
                    + accepted.iter().map(|&i| rounds[i].worker_time).fold(0.0f64, f64::max)
            };

            // Streaming: each accepted row's distance contributions fold in
            // at its (simulated) arrival — the per-row completion event —
            // so the matrix is ready the moment the quorum is. The batch
            // path recomputes it from the compacted arena instead; both are
            // pinned bit-identical at the tensor layer.
            if self.pipeline.distance_streaming() {
                for &slot in accepted {
                    self.pipeline.row_done(slot);
                }
            }
            let mut keep = vec![false; rounds.len()];
            for &slot in accepted {
                keep[slot] = true;
            }
            let kept_slots: Vec<usize> = (0..rounds.len()).filter(|&i| keep[i]).collect();
            // The reputation fold runs *before* aggregation: every evidence
            // stream of this round is already decided at the quorum cut, and
            // folding here lets the containment reshuffle below re-seat a
            // colluding clique before the round's tree is even formed — so a
            // readmitted colluder is re-contained with zero exposure.
            if let Some(ledger_cfg) = self.reputation.as_ref().map(|l| *l.config()) {
                // Collusion-affinity sketches over the delivered arena rows
                // (worker-indexed — the arena is compacted only after this).
                let colluding = {
                    let arena = self.pipeline.arena();
                    let row_views: Vec<Option<&[f32]>> = rounds
                        .iter()
                        .enumerate()
                        .map(|(w, r)| r.delivered.then(|| arena.row(w)))
                        .collect();
                    reputation::collusion_flags(
                        &row_views,
                        &self.affinity_sample,
                        ledger_cfg.affinity_epsilon,
                        ledger_cfg.affinity_min_cluster,
                    )
                };
                let evidence: Vec<RoundEvidence> = rounds
                    .iter()
                    .enumerate()
                    .map(|(w, r)| RoundEvidence {
                        corrupt: r.corrupt_rejects > 0,
                        stale: r.stale_rejects > 0 && !readmitted_now[w],
                        exhausted: r.retransmit_exhausted,
                        straggled: r.delivered && !keep[w],
                        excluded: prev_excluded[w],
                        colluding: colluding[w],
                    })
                    .collect();
                let ledger = self.reputation.as_mut().expect("checked above");
                ledger.observe(step, &evidence);
                // One round of exclusion history: consumed by this fold,
                // rebuilt by this round's selection feedback below.
                prev_excluded.fill(false);
                // Epoch-boundary containment reshuffle of the tree tier:
                // re-seat the most-suspect workers into sacrificial groups
                // whose per-level f budget covers them, then bump every
                // group's epoch — a view change for the whole tier.
                if ledger_cfg.reshuffle_every > 0 && step % ledger_cfg.reshuffle_every == 0 {
                    if let Some(plan) = &mut self.tree_plan {
                        let sizes: Vec<usize> = plan.sizes().collect();
                        // Quarantined/crashed slots deliver nothing; the
                        // placement must know, or it will starve a group
                        // below its floor by piling dead seats into it.
                        let live: Vec<bool> = (0..self.workers.len())
                            .map(|w| self.membership.health(w).is_live())
                            .collect();
                        let next = reputation::containment_assignment(
                            ledger.scores(),
                            &live,
                            &sizes,
                            ledger_cfg.suspect_cutoff,
                            self.config.seed,
                            step,
                        );
                        let current: Vec<usize> =
                            (0..self.workers.len()).map(|w| plan.group_of(w)).collect();
                        if next != current {
                            plan.set_assignment(next).map_err(PsError::from)?;
                            for epoch in &mut self.group_epochs {
                                *epoch += 1;
                            }
                        }
                    }
                }
            }
            // The group id of every surviving row, in arena order — the tree
            // tier's counterpart of the distance matrix.
            let tree_groups: Option<Vec<usize>> = self
                .tree_plan
                .as_ref()
                .map(|plan| kept_slots.iter().map(|&slot| plan.group_of(slot)).collect());
            let distances = self.pipeline.matrix(&kept_slots);
            self.pipeline.arena_mut().retain_rows(&keep);
            let submitted = self.pipeline.arena().n() as u64;
            let mut aggregation_time = 0.0;
            // Simulated wall time of the group-aggregator → root legs (tree
            // mode only): the legs run in parallel, so the round pays the
            // slowest one.
            let mut tree_wire_wait = 0.0f64;
            let round_result = if self.pipeline.arena().is_empty() {
                Err(PsError::Aggregation("no submissions survived the transport".into()))
            } else if let Some(groups) = &tree_groups {
                self.apply_tree_round(step, groups, dim_scale, &mut tree_wire_wait)
            } else {
                match &distances {
                    Some(distances) => self
                        .server
                        .apply_round_batch_with_distances(self.pipeline.arena(), distances),
                    None => self.server.apply_round_batch(self.pipeline.arena()),
                }
            };
            let round_wait = round_wait + tree_wire_wait;
            match round_result {
                Ok(outcome) => {
                    let kernel_sec = match self.calibrated_aggregation_sec {
                        Some(calibrated) => calibrated,
                        None => cost.scale_aggregation_time(
                            outcome.aggregation_wall_sec,
                            self.actual_dimension,
                        ),
                    };
                    aggregation_time = kernel_sec + cost.update_time(self.actual_dimension);
                    if wants_selection {
                        let selection = match &tree_groups {
                            Some(groups) => {
                                self.server.tree_selected_rows(self.pipeline.arena(), groups)?
                            }
                            None => self
                                .server
                                .selected_rows(self.pipeline.arena(), distances.as_ref())?,
                        };
                        if let Some(rows) = selection {
                            if rows
                                .iter()
                                .any(|&r| self.workers[kept_slots[r]].role().is_byzantine())
                            {
                                byzantine_selected_rounds += 1;
                            }
                            // The adversary's feedback channel sees worker
                            // identities, so map compacted rows back to
                            // their slots.
                            if self.reputation.is_some() {
                                // Exclusion history for the next fold: every
                                // kept row the selection passed over.
                                for &slot in &kept_slots {
                                    prev_excluded[slot] = true;
                                }
                                for &r in &rows {
                                    prev_excluded[kept_slots[r]] = false;
                                }
                            }
                            previous_selection =
                                Some(rows.iter().map(|&r| kept_slots[r]).collect());
                        }
                    }
                }
                Err(PsError::Aggregation(_)) => {
                    skipped += 1;
                }
                Err(other) => return Err(other),
            }

            self.clock_sec += round_wait + aggregation_time;
            latency.record_round(round_wait, aggregation_time);
            throughput.record_round(submitted + dropped_gradients, round_wait + aggregation_time);

            if (step + 1) % self.config.eval_every == 0 || step + 1 == self.config.max_steps {
                self.evaluate(&mut trace, self.server.step())?;
            }
        }

        if let Some(ledger) = &self.reputation {
            for stat in &mut worker_stats {
                stat.final_suspicion = ledger.score(stat.worker);
            }
        }
        Ok(TrainingReport {
            label,
            trace,
            throughput,
            latency,
            steps_completed: self.server.step(),
            skipped_updates: skipped,
            refused_rounds: refused,
            stale_epoch_rejects,
            corrupt_rejects,
            byzantine_selected_rounds,
            retransmit_exhaustions,
            per_worker: worker_stats,
            quarantine_events: self
                .reputation
                .as_ref()
                .map_or_else(Vec::new, |ledger| ledger.events().to_vec()),
            simulated_time_sec: self.clock_sec,
        })
    }

    /// One hierarchical aggregation round: the group stage on the compacted
    /// arena, the group outputs shipped root-ward over the per-group links
    /// (chaos, retransmit and all — a dropped output simply leaves the root
    /// with one fewer input), then the root rule and the optimizer step.
    /// `wire_wait` receives the slowest leg's simulated transfer time; the
    /// measured aggregation wall time covers both kernel stages.
    fn apply_tree_round(
        &mut self,
        step: u64,
        groups: &[usize],
        dim_scale: f64,
        wire_wait: &mut f64,
    ) -> Result<crate::server::RoundOutcome> {
        let group_stage = Instant::now();
        let round = self.server.tree_group_outputs(self.pipeline.arena(), groups)?;
        let group_wall_sec = group_stage.elapsed().as_secs_f64();
        let total_workers = self.workers.len();
        let mut delivered = Vec::with_capacity(round.outputs.len());
        for output in &round.outputs {
            let link = &mut self.tree_links[output.group];
            let outcome = link
                .transfer((total_workers + output.group) as u32, step, &output.output)
                .map_err(PsError::from)?;
            *wire_wait = wire_wait.max(outcome.time_sec * dim_scale);
            if let Some(gradient) = outcome.gradient {
                delivered.push(gradient);
            }
        }
        let mut outcome = self.server.apply_round_tree_outputs(&delivered)?;
        outcome.aggregation_wall_sec += group_wall_sec;
        Ok(outcome)
    }

    /// Evaluates test accuracy at the current parameters and records a trace
    /// point. Evaluation runs on the dedicated evaluator node, out of band,
    /// so it does not advance the simulated clock (matching the paper's
    /// `/job:eval` design).
    fn evaluate(&mut self, trace: &mut TrainingTrace, step: u64) -> Result<()> {
        self.eval_model.set_parameters(self.server.parameters()).map_err(PsError::from)?;
        let (batch, labels) =
            self.test_set.head_batch(self.config.eval_samples).map_err(PsError::from)?;
        let out = self.eval_model.evaluate_loss(&batch, &labels).map_err(PsError::from)?;
        let accuracy = out.correct_predictions as f64 / labels.len().max(1) as f64;
        trace.record(TracePoint {
            step,
            time_sec: self.clock_sec,
            accuracy,
            loss: out.loss as f64,
        });
        Ok(())
    }
}

/// Cost-only simulation of aggregator throughput (Figure 5): no model is
/// trained; random gradients of a proxy dimension are aggregated for real
/// (wall-clock measured) while computation and communication are charged
/// analytically from the cost model.
#[derive(Debug, Clone)]
pub struct ThroughputSimulation {
    /// Number of workers `n`.
    pub workers: usize,
    /// GAR under test.
    pub gar: GarConfig,
    /// Mini-batch size per worker.
    pub batch_size: usize,
    /// Cost model (set a virtual model to emulate the CNN or ResNet50).
    pub cost: CostModel,
    /// Link characteristics.
    pub link: LinkConfig,
    /// Dimension of the random gradients actually aggregated (the measured
    /// kernel time is rescaled to the virtual dimension).
    pub proxy_dimension: usize,
    /// Number of rounds to average over.
    pub rounds: usize,
    /// Seed for the random gradients.
    pub seed: u64,
}

/// Result of a throughput simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputResult {
    /// Gradients (mini-batches) processed per second of simulated time.
    pub batches_per_sec: f64,
    /// Mean simulated round time in seconds.
    pub round_time_sec: f64,
    /// Mean (rescaled) aggregation time per round in seconds.
    pub aggregation_time_sec: f64,
    /// Mean per-worker computation + communication time per round.
    pub compute_comm_time_sec: f64,
}

impl ThroughputSimulation {
    /// Runs the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`PsError`] when the GAR configuration is invalid or its
    /// preconditions cannot be met with the configured worker count.
    pub fn run(&self) -> Result<ThroughputResult> {
        if self.workers == 0 || self.rounds == 0 || self.proxy_dimension == 0 {
            return Err(PsError::InvalidConfig(
                "workers, rounds and proxy_dimension must be positive".into(),
            ));
        }
        let gar = self.gar.build().map_err(PsError::from)?;
        let mut rng = seeded_rng(derive_seed(self.seed, 0xF16));
        let node = crate::cluster::Node::grid5000_cpu(0);

        // One proxy arena reused for every round: cleared and refilled in
        // place, so the simulation measures the kernel, not the allocator.
        let mut gradients = GradientBatch::with_capacity(self.proxy_dimension, self.workers);
        let mut total_aggregation = 0.0;
        for round in 0..self.rounds {
            gradients.clear();
            for _ in 0..self.workers {
                gradients.push_row_with(|dst| gaussian_fill(&mut rng, dst, 0.0, 1.0));
            }
            let start = Instant::now();
            gar.aggregate_batch(&gradients).map_err(PsError::from)?;
            let wall = start.elapsed().as_secs_f64();
            // Skip the first (warm-up) round if there is more than one.
            if round > 0 || self.rounds == 1 {
                total_aggregation += self.cost.scale_aggregation_time(wall, self.proxy_dimension);
            }
        }
        let measured_rounds = if self.rounds == 1 { 1 } else { self.rounds - 1 };
        let aggregation_time = total_aggregation / measured_rounds as f64
            + self.cost.update_time(self.proxy_dimension);

        let compute = self.cost.gradient_time(1, self.batch_size, node.flops_per_sec);
        let gradient_bytes = self.cost.payload_bytes(self.proxy_dimension);
        let comm = 2.0 * self.link.transfer_time(gradient_bytes);
        let compute_comm = compute + comm;
        let round_time = compute_comm + aggregation_time;
        Ok(ThroughputResult {
            batches_per_sec: self.workers as f64 / round_time,
            round_time_sec: round_time,
            aggregation_time_sec: aggregation_time,
            compute_comm_time_sec: compute_comm,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentKind;
    use crate::cost::VirtualModelCost;
    use agg_attacks::AttackKind;
    use agg_core::GarKind;
    use agg_net::LossPolicy;

    fn quick_config(gar: GarKind, f: usize, workers: usize) -> RunnerConfig {
        RunnerConfig {
            experiment: ExperimentKind::MlpBlobs {
                input_dim: 16,
                hidden: 24,
                classes: 4,
                samples: 600,
            },
            gar: GarConfig::new(gar, f),
            workers,
            max_steps: 60,
            eval_every: 15,
            eval_samples: 120,
            batch_size: 16,
            learning_rate: agg_nn::schedule::LearningRate::Fixed { rate: 0.01 },
            seed: 5,
            ..RunnerConfig::quick_default()
        }
    }

    #[test]
    fn engine_trains_to_good_accuracy_without_byzantine_workers() {
        let mut engine = SyncTrainingEngine::new(quick_config(GarKind::Average, 0, 5)).unwrap();
        let report = engine.run().unwrap();
        assert_eq!(report.steps_completed, 60);
        assert_eq!(report.skipped_updates, 0);
        assert!(report.simulated_time_sec > 0.0);
        assert!(
            report.final_accuracy() > 0.6,
            "expected learning progress, got {}",
            report.final_accuracy()
        );
        assert!(report.trace.len() >= 4);
    }

    #[test]
    fn multi_krum_resists_an_attack_that_ruins_averaging() {
        let mut byzantine_avg = quick_config(GarKind::Average, 0, 9);
        byzantine_avg.byzantine_count = 2;
        byzantine_avg.attack = AttackKind::Reversed { scale: 50.0 };
        let avg_report = SyncTrainingEngine::new(byzantine_avg).unwrap().run().unwrap();

        let mut byzantine_mk = quick_config(GarKind::MultiKrum, 2, 9);
        byzantine_mk.byzantine_count = 2;
        byzantine_mk.attack = AttackKind::Reversed { scale: 50.0 };
        let mk_report = SyncTrainingEngine::new(byzantine_mk).unwrap().run().unwrap();

        assert!(
            mk_report.final_accuracy() > avg_report.final_accuracy() + 0.15,
            "Multi-Krum ({:.3}) should clearly beat averaging ({:.3}) under attack",
            mk_report.final_accuracy(),
            avg_report.final_accuracy()
        );
    }

    #[test]
    fn worker_roles_follow_the_configuration() {
        let mut config = quick_config(GarKind::MultiKrum, 2, 7);
        config.byzantine_count = 2;
        config.attack = AttackKind::Random { magnitude: 10.0 };
        let engine = SyncTrainingEngine::new(config).unwrap();
        let roles = engine.worker_roles();
        assert_eq!(roles.iter().filter(|r| r.is_byzantine()).count(), 2);
        assert_eq!(roles[0], WorkerRole::Honest);
        assert_eq!(roles[6], WorkerRole::Attacker);
        assert_eq!(engine.cluster().worker_count(), 7);
        assert!(engine.model_dimension() > 0);
    }

    #[test]
    fn data_poisoning_creates_data_poisoned_workers() {
        let mut config = quick_config(GarKind::MultiKrum, 1, 7);
        config.byzantine_count = 1;
        config.data_poisoning = Some(agg_data::corruption::Corruption::LabelShift);
        let engine = SyncTrainingEngine::new(config).unwrap();
        assert_eq!(
            engine.worker_roles().iter().filter(|&&r| r == WorkerRole::DataPoisoned).count(),
            1
        );
    }

    #[test]
    fn invalid_configurations_are_rejected_at_construction() {
        let mut config = quick_config(GarKind::Average, 0, 3);
        config.byzantine_count = 5;
        assert!(SyncTrainingEngine::new(config).is_err());
    }

    #[test]
    fn lossy_transport_assigns_lossy_links_to_the_last_workers() {
        let mut config = quick_config(GarKind::MultiKrum, 2, 7);
        config.transport = TransportKind::Lossy { policy: LossPolicy::RandomFill };
        config.lossy_links = 2;
        config.link = LinkConfig::datacenter().with_drop_rate(0.1);
        let mut engine = SyncTrainingEngine::new(config).unwrap();
        let report = engine.run().unwrap();
        // Training must still make progress despite the lossy links.
        assert!(report.final_accuracy() > 0.5, "accuracy {}", report.final_accuracy());
    }

    #[test]
    fn gar_precondition_failures_become_skipped_updates() {
        // Multi-Krum with f = 4 needs 11 workers; give it only 5, so every
        // round is rejected and skipped rather than crashing the run.
        let mut config = quick_config(GarKind::MultiKrum, 4, 5);
        config.max_steps = 5;
        let mut engine = SyncTrainingEngine::new(config).unwrap();
        let report = engine.run().unwrap();
        assert_eq!(report.steps_completed, 0);
        assert_eq!(report.skipped_updates, 5);
    }

    #[test]
    fn sharded_engine_trains_like_the_monolithic_engine() {
        let mut config = quick_config(GarKind::MultiKrum, 2, 9);
        config.byzantine_count = 2;
        config.attack = AttackKind::Reversed { scale: 50.0 };
        let monolithic = SyncTrainingEngine::new(config.clone()).unwrap().run().unwrap();
        config.shards = 4;
        let mut sharded_engine = SyncTrainingEngine::new(config).unwrap();
        assert_eq!(sharded_engine.cluster().parameter_server_count(), 4);
        let sharded = sharded_engine.run().unwrap();
        assert_eq!(sharded.steps_completed, monolithic.steps_completed);
        assert_eq!(sharded.skipped_updates, monolithic.skipped_updates);
        // The decomposition is exact up to floating-point reassociation in
        // the distance sums, so the learning outcome must agree closely.
        assert!(
            (sharded.final_accuracy() - monolithic.final_accuracy()).abs() < 0.05,
            "sharded {} vs monolithic {}",
            sharded.final_accuracy(),
            monolithic.final_accuracy()
        );
    }

    #[test]
    fn streaming_engine_matches_the_barrier_engine_bit_for_bit() {
        // Flipping streaming on changes only when the distance work runs
        // (per arriving row instead of batch-at-barrier), never the result:
        // the incremental accumulator is pinned bit-identical to the batch
        // kernels for both the flat and the sharded tier.
        for shards in [1usize, 4] {
            let mut config = quick_config(GarKind::MultiKrum, 2, 9);
            config.byzantine_count = 2;
            config.attack = AttackKind::Reversed { scale: 50.0 };
            config.shards = shards;
            config.max_steps = 20;
            config.eval_every = 5;
            let barrier = SyncTrainingEngine::new(config.clone()).unwrap().run().unwrap();
            config.streaming.enabled = true;
            let streaming = SyncTrainingEngine::new(config).unwrap().run().unwrap();
            assert_eq!(barrier.trace.len(), streaming.trace.len());
            for (b, s) in barrier.trace.points().iter().zip(streaming.trace.points()) {
                assert_eq!(
                    b.accuracy.to_bits(),
                    s.accuracy.to_bits(),
                    "accuracy diverged with {shards} shard(s) at step {}",
                    b.step
                );
                assert_eq!(
                    b.loss.to_bits(),
                    s.loss.to_bits(),
                    "loss diverged with {shards} shard(s) at step {}",
                    b.step
                );
            }
        }
    }

    #[test]
    fn quorum_rounds_stop_waiting_for_stragglers() {
        let mut config = quick_config(GarKind::MultiKrum, 2, 9);
        config.max_steps = 10;
        // Workers 7 and 8 are honest stragglers: a full synchronous round
        // waits out their 5-second delay; an n − f quorum round does not.
        let mut delays = vec![0.0; 9];
        delays[7] = 5.0;
        delays[8] = 5.0;
        config.worker_extra_delay_sec = delays;
        let full = SyncTrainingEngine::new(config.clone()).unwrap().run().unwrap();
        config.streaming.quorum = crate::streaming::QuorumPolicy::NMinusF;
        let quorum = SyncTrainingEngine::new(config).unwrap().run().unwrap();
        assert_eq!(quorum.steps_completed, 10);
        assert!(
            quorum.simulated_time_sec < full.simulated_time_sec - 40.0,
            "ten rounds of 5-second straggler wait should vanish: quorum {} vs full {}",
            quorum.simulated_time_sec,
            full.simulated_time_sec
        );
        // Aggregating over the 7 fastest of 9 still trains.
        assert!(quorum.final_accuracy() > 0.6, "accuracy {}", quorum.final_accuracy());
    }

    #[test]
    fn crash_rejoin_schedule_fences_the_rejoiner_and_recovers() {
        use crate::membership::{FaultAction, FaultPlan};
        let mut config = quick_config(GarKind::MultiKrum, 2, 9);
        config.max_steps = 10;
        config.fault_plan =
            FaultPlan::empty().with(3, 2, FaultAction::Crash).with(6, 2, FaultAction::Rejoin);
        let mut engine = SyncTrainingEngine::new(config).unwrap();
        let report = engine.run().unwrap();
        // Multi-Krum f=2 needs 11-2=9... floor is 2f+3=7 ≤ 8 live, so no
        // round is refused; rounds 3..6 simply run with 8 submissions.
        assert_eq!(report.refused_rounds, 0);
        assert_eq!(report.steps_completed, 10);
        assert_eq!(report.skipped_updates, 0);
        // Two live-set changes: crash and rejoin.
        assert_eq!(engine.membership().epoch(), 2);
        // The rejoiner's first round back is fenced as stale (one gradient's
        // worth of packets), then it syncs and delivers again.
        assert!(report.stale_epoch_rejects > 0, "the rejoin round must be fenced");
        // The GAR never selected a Byzantine row (there are none).
        assert_eq!(report.byzantine_selected_rounds, 0);
    }

    #[test]
    fn rounds_below_the_resilience_floor_are_refused_not_aggregated() {
        use crate::membership::{FaultAction, FaultPlan, RefusalPolicy};
        // Bulyan f=4 has floor 4f+3 = 19: one crash among 19 workers drops
        // the live set below it until the rejoin.
        let mut config = quick_config(GarKind::Bulyan, 4, 19);
        config.max_steps = 8;
        config.fault_plan =
            FaultPlan::empty().with(2, 5, FaultAction::Crash).with(5, 5, FaultAction::Rejoin);
        let held = SyncTrainingEngine::new(config.clone()).unwrap().run().unwrap();
        // Rounds 2, 3, 4 are refused (18 < 19). Round 5 passes the floor
        // again but the rejoiner is fenced, so Bulyan sees 18 rows and the
        // round is skipped by the GAR precondition — the two degradations
        // stay distinguishable in the report.
        assert_eq!(held.refused_rounds, 3);
        assert_eq!(held.skipped_updates, 1);
        assert_eq!(held.steps_completed, 8 - 3 - 1);
        assert!(held.stale_epoch_rejects > 0);

        // Hold-last-round still broadcasts the held model, so the refused
        // rounds appear in the latency accounting.
        assert_eq!(held.latency.rounds(), 8 - 3 + 3);

        // Pause refuses the same rounds but records nothing for them: no
        // broadcast, no clock charge.
        config.refusal = RefusalPolicy::Pause;
        let paused = SyncTrainingEngine::new(config).unwrap().run().unwrap();
        assert_eq!(paused.refused_rounds, 3);
        assert_eq!(paused.steps_completed, held.steps_completed);
        assert_eq!(paused.latency.rounds(), 8 - 3);
    }

    #[test]
    fn slow_by_demotions_feed_the_quorum_policy() {
        use crate::membership::{FaultAction, FaultPlan};
        let mut config = quick_config(GarKind::MultiKrum, 2, 9);
        config.max_steps = 10;
        config.fault_plan = FaultPlan::empty()
            .with(0, 7, FaultAction::SlowBy { delay_sec: 5.0 })
            .with(0, 8, FaultAction::SlowBy { delay_sec: 5.0 });
        let full = SyncTrainingEngine::new(config.clone()).unwrap().run().unwrap();
        config.streaming.quorum = crate::streaming::QuorumPolicy::NMinusF;
        let quorum = SyncTrainingEngine::new(config).unwrap().run().unwrap();
        assert_eq!(quorum.steps_completed, 10);
        // Slow-by never changes the live set: no epoch bump, nothing fenced.
        assert_eq!(quorum.refused_rounds, 0);
        assert_eq!(quorum.stale_epoch_rejects, 0);
        assert!(
            quorum.simulated_time_sec < full.simulated_time_sec - 40.0,
            "the n − f quorum should stop waiting for the demoted stragglers: {} vs {}",
            quorum.simulated_time_sec,
            full.simulated_time_sec
        );
    }

    #[test]
    fn tree_engine_trains_and_places_one_aggregator_per_group() {
        use agg_core::TreeConfig;
        // 12 workers in 3 groups of 4, Median at both levels.
        let tree = TreeConfig::uniform(GarKind::Median, 1, 1, 4);
        let mut config = quick_config(GarKind::Median, 1, 12);
        config.tree = Some(tree);
        config.gar = tree.root;
        let mut engine = SyncTrainingEngine::new(config).unwrap();
        // 3 group aggregators + 1 root.
        assert_eq!(engine.cluster().parameter_server_count(), 4);
        let report = engine.run().unwrap();
        assert_eq!(report.steps_completed, 60);
        assert_eq!(report.skipped_updates, 0);
        assert!(report.label.contains("tree(g=4)"));
        assert!(
            report.final_accuracy() > 0.6,
            "expected learning progress, got {}",
            report.final_accuracy()
        );
    }

    #[test]
    fn tree_rounds_below_the_composed_floor_are_refused() {
        use crate::membership::{FaultAction, FaultPlan};
        use agg_core::TreeConfig;
        // 12 workers, Median f=1 at both levels: the root needs 3
        // contributing groups and a group needs 3 live members. Crashing two
        // workers of group 1 drops it below its floor, leaving 2 < 3
        // contributing groups — refusal, not a panic or an under-counted
        // aggregate.
        let tree = TreeConfig::uniform(GarKind::Median, 1, 1, 4);
        let mut config = quick_config(GarKind::Median, 1, 12);
        config.tree = Some(tree);
        config.gar = tree.root;
        config.max_steps = 10;
        config.fault_plan = FaultPlan::empty()
            .with(3, 4, FaultAction::Crash)
            .with(3, 5, FaultAction::Crash)
            .with(6, 4, FaultAction::Rejoin)
            .with(6, 5, FaultAction::Rejoin);
        let mut engine = SyncTrainingEngine::new(config).unwrap();
        let report = engine.run().unwrap();
        assert_eq!(report.refused_rounds, 3, "rounds 3, 4, 5 are below the composed floor");
        // The rejoiners are fenced at their group's epoch for one round; the
        // other groups' workers were never re-stamped.
        assert!(report.stale_epoch_rejects > 0);
        // Round 6 clears the composed floor again but the two rejoiners are
        // still fenced, so group 1 contributes 2 < 3 rows and the root sees
        // 2 < 3 groups: skipped by the GAR precondition — the refusal and
        // the skip stay distinguishable, exactly like the flat tier.
        assert_eq!(report.skipped_updates, 1);
        assert_eq!(report.steps_completed, 10 - 3 - 1);
    }

    #[test]
    fn throughput_simulation_reports_sane_numbers() {
        let sim = ThroughputSimulation {
            workers: 10,
            gar: GarConfig::new(GarKind::MultiKrum, 1),
            batch_size: 100,
            cost: CostModel::paper_like().with_virtual_model(VirtualModelCost::paper_cnn()),
            link: LinkConfig::datacenter(),
            proxy_dimension: 20_000,
            rounds: 3,
            seed: 0,
        };
        let result = sim.run().unwrap();
        assert!(result.batches_per_sec > 0.0);
        assert!(result.round_time_sec > 0.0);
        assert!(result.aggregation_time_sec > 0.0);
        assert!(result.compute_comm_time_sec > 0.0);
        // Sanity: the simulated CNN throughput is in the tens of batches/sec,
        // the regime Figure 5(a) reports.
        assert!(result.batches_per_sec > 1.0 && result.batches_per_sec < 500.0);
    }

    #[test]
    fn throughput_simulation_validates_inputs() {
        let sim = ThroughputSimulation {
            workers: 0,
            gar: GarConfig::new(GarKind::Average, 0),
            batch_size: 10,
            cost: CostModel::paper_like(),
            link: LinkConfig::datacenter(),
            proxy_dimension: 100,
            rounds: 1,
            seed: 0,
        };
        assert!(sim.run().is_err());
    }
}
