//! The trusted parameter server.
//!
//! Holds the global model, applies the configured gradient aggregation rule
//! and optimizer (Equation 4 of the paper), and enforces the access-control
//! behaviour the paper adds to TensorFlow: vanilla TensorFlow lets any node
//! execute arbitrary operations anywhere in the cluster, so a single
//! Byzantine worker could overwrite the shared parameters; the paper's code
//! patch makes the `ps` job "discard remote graph definitions and
//! executions". [`ParameterServer::handle_remote_write`] models that patch.

use crate::{PsError, Result};
use agg_core::{
    Bulyan, Gar, GarConfig, GarKind, MultiKrum, ShardedAggregator, TreeAggregator, TreeConfig,
    TreeRound,
};
use agg_nn::optim::{Optimizer, OptimizerKind, Regularization};
use agg_nn::schedule::LearningRate;
use agg_tensor::{DistanceMatrix, GradientBatch, Vector};
use std::time::Instant;

/// Result of one aggregation + update round at the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundOutcome {
    /// Wall-clock seconds the aggregation kernel took (measured for real).
    pub aggregation_wall_sec: f64,
    /// Learning rate applied this step.
    pub learning_rate: f32,
    /// Model-update step index after the update.
    pub step: u64,
}

/// The synchronous parameter server.
#[derive(Debug)]
pub struct ParameterServer {
    params: Vector,
    gar: Box<dyn Gar>,
    gar_config: GarConfig,
    /// When the parameter-server tier is sharded (`shards > 1`), rounds run
    /// through this shard-parallel evaluation of the same rule instead of
    /// `gar`. The two are exactly equivalent (global selection over the
    /// shard-reduced distance matrix), so swapping one for the other is a
    /// deployment decision, never a robustness change.
    sharded: Option<ShardedAggregator>,
    /// When the hierarchical tier is active, grouped rounds run through this
    /// two-level tree — a full GAR per group, then the root rule over the
    /// group outputs. Unlike `sharded` this is *not* equivalent to the flat
    /// rule in general (the resilience bound composes:
    /// `f_total = (f_group + 1)(f_root + 1) − 1`), which is why it is driven
    /// only by the explicitly grouped entry points; `apply_round_batch`
    /// stays flat.
    tree: Option<TreeAggregator>,
    optimizer: Box<dyn Optimizer>,
    learning_rate: LearningRate,
    regularization: Regularization,
    step: u64,
    /// Whether the TensorFlow-style vulnerability patch is active. It is on
    /// by default; tests switch it off to demonstrate the vulnerability the
    /// paper describes.
    reject_remote_writes: bool,
}

impl ParameterServer {
    /// Creates a parameter server with initial parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PsError`] when the GAR configuration is invalid.
    pub fn new(
        initial_params: Vector,
        gar_config: GarConfig,
        optimizer: OptimizerKind,
        learning_rate: LearningRate,
        regularization: Regularization,
    ) -> Result<Self> {
        let gar = gar_config.build().map_err(PsError::from)?;
        Ok(ParameterServer {
            params: initial_params,
            gar,
            gar_config,
            sharded: None,
            tree: None,
            optimizer: optimizer.build(),
            learning_rate,
            regularization,
            step: 0,
            reject_remote_writes: true,
        })
    }

    /// The current global model parameters.
    pub fn parameters(&self) -> &Vector {
        &self.params
    }

    /// The number of model updates applied so far.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// The configured GAR.
    pub fn gar_config(&self) -> GarConfig {
        self.gar_config
    }

    /// Splits (or un-splits) the parameter-server tier into `shards`
    /// contiguous coordinate shards. Aggregation stays exactly equivalent to
    /// the unsharded rule; `shards = 1` restores the monolithic path.
    ///
    /// # Errors
    ///
    /// Returns [`PsError`] when `shards` is zero or the rule cannot be
    /// rebuilt.
    pub fn set_shards(&mut self, shards: usize) -> Result<()> {
        self.sharded = if shards > 1 {
            if self.tree.is_some() {
                return Err(PsError::InvalidConfig(
                    "the tree tier and coordinate sharding are mutually exclusive".into(),
                ));
            }
            Some(ShardedAggregator::new(self.gar_config, shards).map_err(PsError::from)?)
        } else if shards == 1 {
            None
        } else {
            return Err(PsError::InvalidConfig(
                "the parameter-server tier needs at least one shard".into(),
            ));
        };
        Ok(())
    }

    /// Number of parameter-server shards (1 for the monolithic server).
    pub fn shards(&self) -> usize {
        self.sharded.as_ref().map_or(1, ShardedAggregator::shards)
    }

    /// Forces sharded aggregation through the sequential shard ordering (the
    /// determinism tests compare this against the rayon fan-out bit for
    /// bit). A no-op on the monolithic server.
    pub fn set_shard_parallel(&mut self, parallel: bool) {
        if let Some(sharded) = self.sharded.as_mut() {
            sharded.set_parallel(parallel);
        }
    }

    /// Name of the active aggregation rule.
    pub fn gar_name(&self) -> &'static str {
        self.gar.name()
    }

    /// Installs (or removes) the hierarchical aggregation tier. `None`
    /// restores the flat path.
    ///
    /// # Errors
    ///
    /// Returns [`PsError`] when the tree configuration is invalid (zero or
    /// oversized groups, unbuildable rules) or when the coordinate-sharded
    /// tier is already active — the two tiers are mutually exclusive.
    pub fn set_tree(&mut self, config: Option<TreeConfig>) -> Result<()> {
        self.tree = match config {
            Some(config) => {
                if self.sharded.is_some() {
                    return Err(PsError::InvalidConfig(
                        "the tree tier and coordinate sharding are mutually exclusive".into(),
                    ));
                }
                Some(TreeAggregator::new(config).map_err(PsError::from)?)
            }
            None => None,
        };
        Ok(())
    }

    /// The active hierarchical tier, if any.
    pub fn tree(&self) -> Option<&TreeAggregator> {
        self.tree.as_ref()
    }

    /// Forces the tree tier's group stage through the sequential ordering
    /// (the determinism tests compare this against the rayon fan-out bit for
    /// bit). A no-op on the flat server.
    pub fn set_tree_parallel(&mut self, parallel: bool) {
        if let Some(tree) = self.tree.as_mut() {
            tree.set_parallel(parallel);
        }
    }

    /// Stage 1 of a hierarchical round: aggregates each group of the batch
    /// (rows labelled by `groups`, one group id per row) with the group rule,
    /// skipping groups below their resilience floor. A pure read; the engine
    /// ships the returned outputs over the inter-group links before the root
    /// stage.
    ///
    /// # Errors
    ///
    /// Returns [`PsError::InvalidConfig`] when no tree tier is installed, and
    /// [`PsError::Aggregation`] when the composed bound already rules the
    /// round out or a contributing group's rule fails.
    pub fn tree_group_outputs(&self, batch: &GradientBatch, groups: &[usize]) -> Result<TreeRound> {
        let tree = self.tree.as_ref().ok_or_else(|| {
            PsError::InvalidConfig("tree_group_outputs requires an installed tree tier".into())
        })?;
        let config = tree.config();
        let round = tree.group_outputs(batch, groups).map_err(PsError::from)?;
        // Refuse before the wire stage when even full delivery could not
        // seat a root round — same check the one-shot grouped path applies.
        agg_core::resilience::check_tree(
            config.group.kind,
            config.group.f,
            config.root.kind,
            config.root.f,
            round
                .outputs
                .iter()
                .map(|o| o.members.len())
                .chain(round.skipped.iter().map(|&(_, size)| size)),
        )
        .map_err(PsError::from)?;
        Ok(round)
    }

    /// Stage 2 of a hierarchical round: runs the root rule over the group
    /// outputs that survived the wire and applies the optimizer step.
    ///
    /// # Errors
    ///
    /// Returns [`PsError::InvalidConfig`] when no tree tier is installed,
    /// [`PsError::Aggregation`] when fewer outputs arrived than the root
    /// rule's floor (dropped inter-group packets degrade into a refused
    /// round, never an unsound aggregate), and [`PsError::Model`] when the
    /// optimizer step fails.
    pub fn apply_round_tree_outputs(&mut self, outputs: &[Vector]) -> Result<RoundOutcome> {
        let start = Instant::now();
        let tree = self.tree.as_ref().ok_or_else(|| {
            PsError::InvalidConfig(
                "apply_round_tree_outputs requires an installed tree tier".into(),
            )
        })?;
        let aggregated = tree.root_aggregate(outputs).map_err(PsError::from)?;
        self.finish_round(aggregated, start)
    }

    /// One-shot hierarchical round: both tree stages back to back on a
    /// loss-free interconnect (group aggregation, then the root rule over
    /// every group output), plus the optimizer step.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ParameterServer::tree_group_outputs`] and
    /// [`ParameterServer::apply_round_tree_outputs`].
    pub fn apply_round_tree(
        &mut self,
        batch: &GradientBatch,
        groups: &[usize],
    ) -> Result<RoundOutcome> {
        let start = Instant::now();
        let tree = self.tree.as_ref().ok_or_else(|| {
            PsError::InvalidConfig("apply_round_tree requires an installed tree tier".into())
        })?;
        let aggregated = tree.aggregate_batch_grouped(batch, groups).map_err(PsError::from)?;
        self.finish_round(aggregated, start)
    }

    /// Tree-tier counterpart of [`ParameterServer::selected_rows`]: the batch
    /// rows whose *groups* the root rule's selection phase picks (`None` when
    /// the root rule has no selection phase). A pure read.
    ///
    /// # Errors
    ///
    /// Returns [`PsError::InvalidConfig`] when no tree tier is installed, and
    /// [`PsError::Aggregation`] when the composed bound fails for this batch.
    pub fn tree_selected_rows(
        &self,
        batch: &GradientBatch,
        groups: &[usize],
    ) -> Result<Option<Vec<usize>>> {
        let tree = self.tree.as_ref().ok_or_else(|| {
            PsError::InvalidConfig("tree_selected_rows requires an installed tree tier".into())
        })?;
        tree.selected_rows(batch, groups).map_err(PsError::from)
    }

    /// Disables the TensorFlow vulnerability patch (test/demonstration only).
    pub fn allow_remote_writes_for_testing(&mut self) {
        self.reject_remote_writes = false;
    }

    /// A worker attempts to overwrite the shared parameters directly — the
    /// attack vector the paper's TensorFlow patch closes.
    ///
    /// # Errors
    ///
    /// Returns [`PsError::AccessDenied`] while the patch is active (the
    /// default). When the patch is disabled the write succeeds, demonstrating
    /// why the patch is necessary.
    pub fn handle_remote_write(&mut self, worker: usize, values: &Vector) -> Result<()> {
        if self.reject_remote_writes {
            return Err(PsError::AccessDenied {
                worker,
                action: "overwrite the shared parameters via a remote graph execution".into(),
            });
        }
        self.params = values.clone();
        Ok(())
    }

    /// Aggregates one round of submitted gradients and applies the optimizer
    /// step. Returns the measured aggregation time.
    ///
    /// # Errors
    ///
    /// Returns [`PsError::Aggregation`] when the GAR rejects the submission
    /// (e.g. not enough gradients for the declared `f`), and [`PsError::Model`]
    /// when the optimizer step fails.
    pub fn apply_round(&mut self, gradients: &[Vector]) -> Result<RoundOutcome> {
        let start = Instant::now();
        let aggregated = self.gar.aggregate(gradients).map_err(PsError::from)?;
        self.finish_round(aggregated, start)
    }

    /// Arena variant of [`ParameterServer::apply_round`]: the gradients are
    /// already packed into a contiguous [`GradientBatch`], so aggregation
    /// runs straight on the arena with no further copies. This is the path
    /// the training engine uses — it packs each round's submissions once.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ParameterServer::apply_round`].
    pub fn apply_round_batch(&mut self, gradients: &GradientBatch) -> Result<RoundOutcome> {
        let start = Instant::now();
        // A sharded tier routes the round through the shard-parallel
        // evaluation of the same rule; the monolithic path is unchanged.
        let aggregated = match &self.sharded {
            Some(sharded) => sharded.aggregate_batch(gradients),
            None => self.gar.aggregate_batch(gradients),
        }
        .map_err(PsError::from)?;
        self.finish_round(aggregated, start)
    }

    /// Distance-primed variant of [`ParameterServer::apply_round_batch`]: the
    /// pairwise distance matrix was accumulated incrementally while the
    /// round's rows arrived (the streaming pipeline), so distance-based
    /// rules select straight on it instead of recomputing the O(n²·d) batch
    /// kernel. Rules that do not use distances ignore the matrix; either
    /// way the round's result is bit-identical to the batch path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ParameterServer::apply_round_batch`], plus an
    /// aggregation error when the matrix does not match the batch.
    pub fn apply_round_batch_with_distances(
        &mut self,
        gradients: &GradientBatch,
        distances: &DistanceMatrix,
    ) -> Result<RoundOutcome> {
        let start = Instant::now();
        let aggregated = match &self.sharded {
            Some(sharded) => sharded.aggregate_batch_with_distances(gradients, distances),
            None => self.gar.aggregate_batch_with_distances(gradients, distances),
        }
        .map_err(PsError::from)?;
        self.finish_round(aggregated, start)
    }

    /// The row indices the active rule's selection phase would pick for this
    /// batch (`None` for rules without a selection phase). Works on both the
    /// monolithic and the sharded tier, and reads a pre-accumulated distance
    /// matrix when the streaming pipeline supplies one — the engine's
    /// selection-feedback path (adaptive attacks, Byzantine-selection
    /// accounting) and a pure read: no model state changes.
    ///
    /// # Errors
    ///
    /// Returns [`PsError::Aggregation`] when the rule's preconditions fail
    /// for this batch (the round itself would fail the same way).
    pub fn selected_rows(
        &self,
        batch: &GradientBatch,
        distances: Option<&DistanceMatrix>,
    ) -> Result<Option<Vec<usize>>> {
        if let Some(sharded) = &self.sharded {
            return match distances {
                Some(d) => sharded.selected_rows_with_distances(batch, d),
                None => sharded.selected_rows(batch),
            }
            .map_err(PsError::from);
        }
        match self.gar_config.kind {
            GarKind::Krum | GarKind::MultiKrum => {
                let rule = match (self.gar_config.kind, self.gar_config.m) {
                    (GarKind::Krum, _) => MultiKrum::with_selection(self.gar_config.f, 1),
                    (_, Some(m)) => MultiKrum::with_selection(self.gar_config.f, m),
                    (_, None) => MultiKrum::new(self.gar_config.f),
                }
                .map_err(PsError::from)?;
                match distances {
                    Some(d) => rule.select_with_distances(d),
                    None => rule.select_batch(batch),
                }
                .map(Some)
                .map_err(PsError::from)
            }
            GarKind::Bulyan => {
                let rule = Bulyan::new(self.gar_config.f).map_err(PsError::from)?;
                match distances {
                    Some(d) => rule.select_with_distances(d),
                    None => rule.select_batch(batch),
                }
                .map(Some)
                .map_err(PsError::from)
            }
            _ => Ok(None),
        }
    }

    fn finish_round(&mut self, mut aggregated: Vector, start: Instant) -> Result<RoundOutcome> {
        let aggregation_wall_sec = start.elapsed().as_secs_f64();
        self.regularization.apply(&mut aggregated, &self.params).map_err(PsError::from)?;
        let lr = self.learning_rate.at(self.step);
        self.optimizer.step(&mut self.params, &aggregated, lr).map_err(PsError::from)?;
        self.step += 1;
        Ok(RoundOutcome { aggregation_wall_sec, learning_rate: lr, step: self.step })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_core::GarKind;

    fn server(kind: GarKind, f: usize, d: usize) -> ParameterServer {
        ParameterServer::new(
            Vector::zeros(d),
            GarConfig::new(kind, f),
            OptimizerKind::Sgd,
            LearningRate::Fixed { rate: 0.1 },
            Regularization::none(),
        )
        .unwrap()
    }

    #[test]
    fn apply_round_moves_parameters_against_the_gradient() {
        let mut s = server(GarKind::Average, 0, 3);
        let gradients = vec![Vector::from(vec![1.0, 0.0, -1.0]); 4];
        let outcome = s.apply_round(&gradients).unwrap();
        assert_eq!(outcome.step, 1);
        assert_eq!(outcome.learning_rate, 0.1);
        assert!(outcome.aggregation_wall_sec >= 0.0);
        assert_eq!(s.parameters().as_slice(), &[-0.1, 0.0, 0.1]);
        assert_eq!(s.step(), 1);
    }

    #[test]
    fn batch_and_slice_rounds_agree() {
        let mut by_slice = server(GarKind::MultiKrum, 1, 3);
        let mut by_batch = server(GarKind::MultiKrum, 1, 3);
        let gradients: Vec<Vector> =
            (0..7).map(|i| Vector::from(vec![1.0 + 0.01 * i as f32, 0.0, -1.0])).collect();
        let batch = GradientBatch::from_vectors(&gradients).unwrap();
        by_slice.apply_round(&gradients).unwrap();
        let outcome = by_batch.apply_round_batch(&batch).unwrap();
        assert_eq!(outcome.step, 1);
        assert_eq!(by_slice.parameters().as_slice(), by_batch.parameters().as_slice());
    }

    #[test]
    fn gar_precondition_failures_surface_as_errors() {
        let mut s = server(GarKind::MultiKrum, 4, 2);
        // Multi-Krum with f = 4 needs 11 gradients.
        let gradients = vec![Vector::zeros(2); 5];
        assert!(matches!(s.apply_round(&gradients), Err(PsError::Aggregation(_))));
        assert_eq!(s.step(), 0, "a failed round must not advance the step");
    }

    #[test]
    fn remote_writes_are_rejected_by_default() {
        let mut s = server(GarKind::Average, 0, 2);
        let result = s.handle_remote_write(3, &Vector::from(vec![9.0, 9.0]));
        assert!(matches!(result, Err(PsError::AccessDenied { worker: 3, .. })));
        assert_eq!(s.parameters().as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn unpatched_server_is_vulnerable() {
        // This is the vulnerability of vanilla TensorFlow the paper fixes:
        // without the patch a single worker rewrites the model at will.
        let mut s = server(GarKind::Average, 0, 2);
        s.allow_remote_writes_for_testing();
        s.handle_remote_write(3, &Vector::from(vec![9.0, 9.0])).unwrap();
        assert_eq!(s.parameters().as_slice(), &[9.0, 9.0]);
    }

    #[test]
    fn regularization_is_applied() {
        let mut s = ParameterServer::new(
            Vector::from(vec![1.0, -1.0]),
            GarConfig::new(GarKind::Average, 0),
            OptimizerKind::Sgd,
            LearningRate::Fixed { rate: 1.0 },
            Regularization { l1: 0.0, l2: 0.1 },
        )
        .unwrap();
        // Zero data gradient: only the L2 pull towards zero acts.
        s.apply_round(&[Vector::zeros(2)]).unwrap();
        assert!(s.parameters()[0] < 1.0);
        assert!(s.parameters()[1] > -1.0);
    }

    #[test]
    fn sharded_and_monolithic_rounds_agree() {
        let gradients: Vec<Vector> =
            (0..9).map(|i| Vector::from(vec![1.0 + 0.01 * i as f32, -0.5, 2.0])).collect();
        let batch = GradientBatch::from_vectors(&gradients).unwrap();
        let mut monolithic = server(GarKind::MultiKrum, 2, 3);
        let mut sharded = server(GarKind::MultiKrum, 2, 3);
        sharded.set_shards(3).unwrap();
        assert_eq!(sharded.shards(), 3);
        monolithic.apply_round_batch(&batch).unwrap();
        sharded.apply_round_batch(&batch).unwrap();
        for c in 0..3 {
            let a = sharded.parameters()[c];
            let b = monolithic.parameters()[c];
            assert!((a - b).abs() <= 1e-6 * b.abs().max(1.0), "coordinate {c}: {a} vs {b}");
        }
        sharded.set_shards(1).unwrap();
        assert_eq!(sharded.shards(), 1);
        assert!(sharded.set_shards(0).is_err());
    }

    #[test]
    fn distance_primed_round_matches_the_batch_round() {
        let gradients: Vec<Vector> =
            (0..9).map(|i| Vector::from(vec![1.0 + 0.01 * i as f32, -0.5, 2.0])).collect();
        let batch = GradientBatch::from_vectors(&gradients).unwrap();
        let distances = batch.pairwise_squared_distances();
        let mut by_batch = server(GarKind::MultiKrum, 2, 3);
        let mut by_distances = server(GarKind::MultiKrum, 2, 3);
        by_batch.apply_round_batch(&batch).unwrap();
        by_distances.apply_round_batch_with_distances(&batch, &distances).unwrap();
        assert_eq!(by_batch.parameters().as_slice(), by_distances.parameters().as_slice());

        // A mismatched matrix is an aggregation error, not a silent misuse.
        let wrong = agg_tensor::DistanceMatrix::zeros(4);
        let mut s = server(GarKind::MultiKrum, 2, 3);
        assert!(matches!(
            s.apply_round_batch_with_distances(&batch, &wrong),
            Err(PsError::Aggregation(_))
        ));
    }

    #[test]
    fn selection_feedback_matches_the_rule_on_every_tier() {
        let mut batch_rows: Vec<Vector> =
            (0..9).map(|i| Vector::from(vec![1.0 + 0.01 * i as f32, -0.5, 2.0])).collect();
        batch_rows.push(Vector::from(vec![1e6, 1e6, 1e6]));
        let batch = GradientBatch::from_vectors(&batch_rows).unwrap();
        let expected = MultiKrum::new(2).unwrap().select_batch(&batch).unwrap();

        // Monolithic, batch path.
        let monolithic = server(GarKind::MultiKrum, 2, 3);
        let selected = monolithic.selected_rows(&batch, None).unwrap().unwrap();
        assert_eq!(selected, expected);
        assert!(!selected.contains(&9), "the outlier must not be selected");

        // Monolithic, distance-primed path.
        let distances = batch.pairwise_squared_distances();
        assert_eq!(monolithic.selected_rows(&batch, Some(&distances)).unwrap().unwrap(), expected);

        // Sharded tier agrees.
        let mut sharded = server(GarKind::MultiKrum, 2, 3);
        sharded.set_shards(3).unwrap();
        assert_eq!(sharded.selected_rows(&batch, None).unwrap().unwrap(), expected);

        // Krum selects exactly one row; coordinate rules have no selection.
        let krum = server(GarKind::Krum, 2, 3);
        assert_eq!(krum.selected_rows(&batch, None).unwrap().unwrap().len(), 1);
        let median = server(GarKind::Median, 2, 3);
        assert_eq!(median.selected_rows(&batch, None).unwrap(), None);
    }

    #[test]
    fn tree_rounds_flow_through_both_stages() {
        use agg_core::TreeConfig;

        // 12 workers in groups of 4, Median at both levels (root floor
        // 2f + 1 = 3 groups); the last group is pure garbage and must be
        // outvoted.
        let mut rows: Vec<Vector> =
            (0..8).map(|i| Vector::from(vec![1.0 + 0.01 * i as f32, -1.0])).collect();
        rows.extend((0..4).map(|_| Vector::from(vec![1e6, 1e6])));
        let batch = GradientBatch::from_vectors(&rows).unwrap();
        let groups: Vec<usize> = (0..12).map(|w| w / 4).collect();
        let tree = TreeConfig::uniform(GarKind::Median, 1, 1, 4);

        let mut one_shot = server(GarKind::Median, 1, 2);
        one_shot.set_tree(Some(tree)).unwrap();
        assert!(one_shot.tree().is_some());
        let outcome = one_shot.apply_round_tree(&batch, &groups).unwrap();
        assert_eq!(outcome.step, 1);
        assert!(one_shot.parameters()[0].abs() < 1.0, "the garbage group must not move the model");

        // The staged path (group outputs, then root) lands on the same model.
        let mut staged = server(GarKind::Median, 1, 2);
        staged.set_tree(Some(tree)).unwrap();
        let round = staged.tree_group_outputs(&batch, &groups).unwrap();
        assert_eq!(round.outputs.len(), 3);
        assert!(round.skipped.is_empty());
        let outputs: Vec<Vector> = round.outputs.iter().map(|o| o.output.clone()).collect();
        staged.apply_round_tree_outputs(&outputs).unwrap();
        assert_eq!(staged.parameters().as_slice(), one_shot.parameters().as_slice());

        // Dropping outputs below the root floor refuses the round and does
        // not advance the step.
        let mut starved = server(GarKind::Median, 1, 2);
        starved.set_tree(Some(tree)).unwrap();
        assert!(matches!(
            starved.apply_round_tree_outputs(&outputs[..1]),
            Err(PsError::Aggregation(_))
        ));
        assert_eq!(starved.step(), 0);

        // Root selection feedback maps back to member rows: a Multi-Krum
        // root over Median group outputs excludes the garbage group.
        let selector = {
            let mut s = server(GarKind::MultiKrum, 0, 2);
            let t = TreeConfig {
                group: GarConfig::new(GarKind::Median, 1),
                root: GarConfig::new(GarKind::MultiKrum, 0),
                group_size: 4,
            };
            s.set_tree(Some(t)).unwrap();
            s
        };
        let selected = selector.tree_selected_rows(&batch, &groups).unwrap().unwrap();
        assert!(!selected.iter().any(|&r| r >= 8), "garbage rows must not be selected");

        // The flat entry points stay flat, and the tiers stay exclusive.
        let mut s = server(GarKind::Median, 1, 2);
        assert!(matches!(s.apply_round_tree(&batch, &groups), Err(PsError::InvalidConfig(_))));
        s.set_tree(Some(tree)).unwrap();
        assert!(s.set_shards(3).is_err(), "tree + shards is rejected");
        s.set_tree(None).unwrap();
        s.set_shards(3).unwrap();
        let mut s2 = server(GarKind::Median, 1, 2);
        s2.set_shards(3).unwrap();
        assert!(s2.set_tree(Some(tree)).is_err(), "shards + tree is rejected");
    }

    #[test]
    fn gar_accessors() {
        let s = server(GarKind::Bulyan, 1, 4);
        assert_eq!(s.gar_name(), "bulyan");
        assert_eq!(s.gar_config().f, 1);
    }
}
