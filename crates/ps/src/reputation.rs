//! Cross-round worker reputation: a deterministic suspicion ledger driving
//! automatic quarantine, probationary readmission and collusion-breaking
//! group reshuffles.
//!
//! The paper's GARs are memoryless: every round tolerates `f` Byzantine
//! submissions and then forgets everything it observed. But the stack
//! already *counts* per-worker evidence of misbehaviour — wire corruption
//! caught by the CRC envelope, stale-epoch fencing, retransmit-budget
//! exhaustion, quorum straggling, Krum-family selection exclusion — and a
//! colluding clique betrays itself by submitting near-identical rows. This
//! module folds those streams into one decayed suspicion score per worker:
//!
//! ```text
//! score[w] ← decay · score[w] + Σ weight(evidence seen this round)
//! ```
//!
//! With decay `λ ∈ [0, 1)` a worker accruing at most `c` per round converges
//! to `c / (1 − λ)` — the honest ceiling. The weights are chosen so that
//! routine wire trouble (corruption, exhaustion, straggling, exclusion)
//! saturates *below* the quarantine threshold while the signatures of an
//! active adversary (repeated stale-epoch fencing from identity rotation,
//! near-duplicate collusion rows) cross it within a few rounds. That is the
//! false-positive guarantee `tests/reputation_quarantine.rs` pins: honest
//! workers under a moderate chaos plan are never quarantined.
//!
//! Standing walks a three-state machine:
//!
//! ```text
//!            score ≥ threshold            round ≥ until
//!   Active ───────────────────▶ Quarantined ─────────▶ Probation
//!      ▲                                                  │ │
//!      │         round ≥ until (clean probation)          │ │ score ≥ threshold
//!      └──────────────────────────────────────────────────┘ └──▶ Quarantined
//! ```
//!
//! Quarantine is an *engine-synthesized eviction*: the training engine turns
//! it into a `Crash` through the existing `MembershipView`/epoch machinery
//! (and bars the adversary's own rejoin directives for the slot), readmission
//! into a `Rejoin` whose first round back is epoch-fenced like any rejoiner.
//! During probation every accrual is multiplied up, so a readmitted worker
//! that resumes misbehaving is re-quarantined faster than it was caught.
//!
//! [`containment_assignment`] is the tree tier's reshuffle policy. A
//! Krum-family level of `n` rows falls to an identical-row clique of size
//! `c ≥ ⌈n/2⌉` (the clique's mutual distances vanish, so once it outnumbers
//! the honest rows among any row's `n − f − 2` neighbours its scores win) —
//! spreading suspects evenly is therefore *worse* than concentrating them.
//! Containment does the opposite of spreading: it sacrifices up to
//! `⌊(G−1)/2⌋` groups wholesale (the root's own survivable-clique budget)
//! and caps every remaining group at its survivable `⌊(size−1)/2⌋`, so
//! captured groups stay a root-level minority and every other group keeps an
//! honest majority clique-free.

use crate::{PsError, Result};
use agg_tensor::rng::{derive_seed, sample_without_replacement, seeded_rng};
use serde::{Deserialize, Serialize};

/// Tunable knobs of the reputation ledger. `Default` is the profile the
/// acceptance tests pin: honest chaos saturates at
/// `(corrupt + exhaustion + straggle + exclusion) / (1 − decay) ≈ 2.67`,
/// safely under the 3.2 threshold, while one collusion or stale signature
/// per round crosses it in two to three rounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReputationConfig {
    /// Geometric decay `λ` applied to every score at the start of each
    /// observed round. Must lie in `[0, 1)`.
    pub decay: f64,
    /// Accrual when the wire-integrity check rejected packets of the
    /// worker's submission (chaos damage, not necessarily the worker's
    /// fault — weighted low).
    pub corrupt_weight: f64,
    /// Accrual when the epoch fence rejected the submission. Outside the
    /// engine's own readmissions this is the signature of identity rotation
    /// (crash while exposed, rejoin with stale state) — weighted high.
    pub stale_weight: f64,
    /// Accrual when retransmit recovery ran out of budget or deadline on the
    /// submission (distinguishable from a plain loss since the transport
    /// reports it separately).
    pub exhaustion_weight: f64,
    /// Accrual when the submission was delivered but fell past the quorum
    /// cut.
    pub straggle_weight: f64,
    /// Accrual when the round's distance-based selection kept the worker's
    /// row out of the selected set (fed from the *previous* round's
    /// selection — the selection-exclusion history).
    pub exclusion_weight: f64,
    /// Accrual when the worker's row sat inside a near-duplicate affinity
    /// cluster (see [`collusion_flags`]) — the collusion signature, weighted
    /// high.
    pub collusion_weight: f64,
    /// Score at which an Active (or Probation) worker becomes a quarantine
    /// candidate.
    pub quarantine_threshold: f64,
    /// How many rounds an eviction lasts before the worker is due for
    /// readmission.
    pub quarantine_rounds: u64,
    /// Length of the probation window after readmission.
    pub probation_rounds: u64,
    /// Multiplier applied to every accrual while a worker is on probation
    /// (the "tightened fencing": relapse is punished faster than first
    /// offence).
    pub probation_multiplier: f64,
    /// Relative distance (to the larger sampled norm of the pair) below
    /// which two sampled rows count as affinity neighbours.
    pub affinity_epsilon: f64,
    /// Minimum affinity-component size that counts as collusion. Pairs of
    /// honest rows can collide by chance; cliques cannot.
    pub affinity_min_cluster: usize,
    /// Maximum number of coordinates sampled into each affinity sketch.
    /// The default (256) is chosen for the bench floor: colluding rows
    /// differ by deliberate jitter orders of magnitude below their scale,
    /// so even a small sample separates them from independent mini-batch
    /// gradients, while the per-round gather + pairwise pass stays within
    /// ~5% of a static round at d = 100k.
    pub affinity_max_coords: usize,
    /// Score above which a worker is treated as a suspect by
    /// [`containment_assignment`] (lower than the quarantine threshold:
    /// reshuffles react before evictions do).
    pub suspect_cutoff: f64,
    /// Recompute the tree tier's group assignment every this many rounds
    /// (0 disables reshuffles; ignored on the flat path).
    pub reshuffle_every: u64,
    /// Cap on concurrently quarantined workers; 0 means "the run's declared
    /// `f`" (flat `f` or the tree's composed bound).
    pub max_quarantined: usize,
}

impl Default for ReputationConfig {
    fn default() -> Self {
        ReputationConfig {
            decay: 0.7,
            corrupt_weight: 0.25,
            stale_weight: 2.5,
            exhaustion_weight: 0.25,
            straggle_weight: 0.15,
            exclusion_weight: 0.15,
            collusion_weight: 1.5,
            quarantine_threshold: 3.2,
            quarantine_rounds: 12,
            probation_rounds: 12,
            probation_multiplier: 2.0,
            affinity_epsilon: 0.05,
            affinity_min_cluster: 3,
            affinity_max_coords: 256,
            suspect_cutoff: 0.5,
            reshuffle_every: 0,
            max_quarantined: 0,
        }
    }
}

impl ReputationConfig {
    /// The worst-case steady-state score of a worker that accrues the four
    /// routine wire/selection streams (corruption, exhaustion, straggling,
    /// exclusion) every single round: the geometric-series limit
    /// `c / (1 − λ)`. The false-positive guarantee needs this to sit below
    /// [`ReputationConfig::quarantine_threshold`] — [`Self::validate`]
    /// enforces it structurally rather than leaving it to tuning luck.
    pub fn honest_ceiling(&self) -> f64 {
        (self.corrupt_weight
            + self.exhaustion_weight
            + self.straggle_weight
            + self.exclusion_weight)
            / (1.0 - self.decay)
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`PsError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..1.0).contains(&self.decay) {
            return Err(PsError::InvalidConfig(format!(
                "reputation decay must lie in [0, 1), got {}",
                self.decay
            )));
        }
        let weights = [
            ("corrupt_weight", self.corrupt_weight),
            ("stale_weight", self.stale_weight),
            ("exhaustion_weight", self.exhaustion_weight),
            ("straggle_weight", self.straggle_weight),
            ("exclusion_weight", self.exclusion_weight),
            ("collusion_weight", self.collusion_weight),
        ];
        for (name, w) in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(PsError::InvalidConfig(format!(
                    "reputation {name} must be finite and non-negative, got {w}"
                )));
            }
        }
        if !self.quarantine_threshold.is_finite() || self.quarantine_threshold <= 0.0 {
            return Err(PsError::InvalidConfig(
                "reputation quarantine_threshold must be positive".into(),
            ));
        }
        if self.honest_ceiling() >= self.quarantine_threshold {
            return Err(PsError::InvalidConfig(format!(
                "reputation weights break the false-positive guarantee: the honest steady-state \
                 ceiling {:.3} reaches the quarantine threshold {:.3}",
                self.honest_ceiling(),
                self.quarantine_threshold
            )));
        }
        if self.quarantine_rounds == 0 {
            return Err(PsError::InvalidConfig(
                "reputation quarantine_rounds must be positive".into(),
            ));
        }
        if !self.probation_multiplier.is_finite() || self.probation_multiplier < 1.0 {
            return Err(PsError::InvalidConfig(
                "reputation probation_multiplier must be ≥ 1".into(),
            ));
        }
        if !self.affinity_epsilon.is_finite() || self.affinity_epsilon <= 0.0 {
            return Err(PsError::InvalidConfig(
                "reputation affinity_epsilon must be positive".into(),
            ));
        }
        if self.affinity_min_cluster < 2 {
            return Err(PsError::InvalidConfig(
                "reputation affinity_min_cluster must be at least 2".into(),
            ));
        }
        if self.affinity_max_coords == 0 {
            return Err(PsError::InvalidConfig(
                "reputation affinity_max_coords must be positive".into(),
            ));
        }
        if !self.suspect_cutoff.is_finite() || self.suspect_cutoff < 0.0 {
            return Err(PsError::InvalidConfig(
                "reputation suspect_cutoff must be finite and non-negative".into(),
            ));
        }
        Ok(())
    }
}

/// The evidence one worker produced in one round, as booleans: the ledger
/// weighs *that* a stream fired, not how many packets it touched, so one
/// badly-chaosed round cannot outweigh a clean history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundEvidence {
    /// Wire-integrity rejections on the submission.
    pub corrupt: bool,
    /// Epoch-fence rejections on the submission (engine-synthesized
    /// readmission fences are *not* counted — the engine knows it caused
    /// them).
    pub stale: bool,
    /// Retransmit recovery exhausted its budget or deadline.
    pub exhausted: bool,
    /// Delivered but cut by the quorum policy.
    pub straggled: bool,
    /// Kept by the quorum but excluded by the previous round's
    /// distance-based selection.
    pub excluded: bool,
    /// Sat in a near-duplicate affinity cluster this round.
    pub colluding: bool,
}

/// Where a worker currently stands with the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerStanding {
    /// In good standing: eligible for rounds, accrues at weight 1.
    Active,
    /// Evicted by the ledger; the engine holds it out of the view (and
    /// suppresses adversarial rejoins) until the round below.
    Quarantined {
        /// First round at which the worker is due for readmission.
        until: u64,
    },
    /// Readmitted under tightened fencing: accruals are multiplied by
    /// [`ReputationConfig::probation_multiplier`] until the round below.
    Probation {
        /// First round at which a clean probation lapses back to Active.
        until: u64,
    },
}

/// What happened to a worker's standing, for the report's event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StandingChange {
    /// The ledger evicted the worker.
    Quarantined,
    /// The ledger readmitted the worker on probation.
    Readmitted,
}

/// One quarantine/readmission transition, as recorded in the run's report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineEvent {
    /// Engine step at whose start the transition applied.
    pub round: u64,
    /// Worker id.
    pub worker: usize,
    /// What changed.
    pub change: StandingChange,
}

/// The per-worker suspicion ledger. Purely deterministic: scores are a fold
/// of the evidence stream, standings a function of scores and round numbers,
/// so replays under any thread schedule are bit-identical.
#[derive(Debug, Clone)]
pub struct ReputationLedger {
    config: ReputationConfig,
    scores: Vec<f64>,
    standing: Vec<WorkerStanding>,
    events: Vec<QuarantineEvent>,
}

impl ReputationLedger {
    /// A fresh ledger: every worker Active at score 0.
    pub fn new(config: ReputationConfig, workers: usize) -> Self {
        ReputationLedger {
            config,
            scores: vec![0.0; workers],
            standing: vec![WorkerStanding::Active; workers],
            events: Vec::new(),
        }
    }

    /// The configuration this ledger runs under.
    pub fn config(&self) -> &ReputationConfig {
        &self.config
    }

    /// Folds one round of evidence: lapse expired probations, decay every
    /// score, then accrue the weighted evidence (probation-multiplied for
    /// workers still inside their window). Worker order is the slice order —
    /// deterministic by construction.
    pub fn observe(&mut self, round: u64, evidence: &[RoundEvidence]) {
        debug_assert_eq!(evidence.len(), self.scores.len());
        for w in 0..self.scores.len() {
            if let WorkerStanding::Probation { until } = self.standing[w] {
                if round >= until {
                    self.standing[w] = WorkerStanding::Active;
                }
            }
            let e = evidence.get(w).copied().unwrap_or_default();
            let mut accrual = 0.0;
            if e.corrupt {
                accrual += self.config.corrupt_weight;
            }
            if e.stale {
                accrual += self.config.stale_weight;
            }
            if e.exhausted {
                accrual += self.config.exhaustion_weight;
            }
            if e.straggled {
                accrual += self.config.straggle_weight;
            }
            if e.excluded {
                accrual += self.config.exclusion_weight;
            }
            if e.colluding {
                accrual += self.config.collusion_weight;
            }
            if matches!(self.standing[w], WorkerStanding::Probation { .. }) {
                accrual *= self.config.probation_multiplier;
            }
            self.scores[w] = self.scores[w] * self.config.decay + accrual;
        }
    }

    /// Workers whose score has reached the quarantine threshold and who are
    /// not already quarantined, ranked most-suspect first (score descending,
    /// id ascending on exact ties — `total_cmp`, so the ranking is total and
    /// deterministic).
    pub fn quarantine_candidates(&self) -> Vec<usize> {
        let mut out: Vec<usize> = (0..self.scores.len())
            .filter(|&w| {
                !matches!(self.standing[w], WorkerStanding::Quarantined { .. })
                    && self.scores[w] >= self.config.quarantine_threshold
            })
            .collect();
        out.sort_by(|&a, &b| self.scores[b].total_cmp(&self.scores[a]).then(a.cmp(&b)));
        out
    }

    /// Marks a worker quarantined as of `round` and logs the event.
    pub fn begin_quarantine(&mut self, round: u64, worker: usize) {
        self.standing[worker] =
            WorkerStanding::Quarantined { until: round + self.config.quarantine_rounds };
        self.events.push(QuarantineEvent { round, worker, change: StandingChange::Quarantined });
    }

    /// Quarantined workers whose sentence has run out by `round`, in id
    /// order.
    pub fn due_for_readmission(&self, round: u64) -> Vec<usize> {
        (0..self.standing.len())
            .filter(|&w| matches!(self.standing[w], WorkerStanding::Quarantined { until } if round >= until))
            .collect()
    }

    /// Readmits a worker on probation as of `round` and logs the event. The
    /// score is whatever the quarantine's decay left of it.
    pub fn readmit(&mut self, round: u64, worker: usize) {
        self.standing[worker] =
            WorkerStanding::Probation { until: round + self.config.probation_rounds };
        self.events.push(QuarantineEvent { round, worker, change: StandingChange::Readmitted });
    }

    /// Whether the worker is currently quarantined.
    pub fn is_quarantined(&self, worker: usize) -> bool {
        matches!(self.standing.get(worker), Some(WorkerStanding::Quarantined { .. }))
    }

    /// Number of currently quarantined workers.
    pub fn quarantined_count(&self) -> usize {
        self.standing.iter().filter(|s| matches!(s, WorkerStanding::Quarantined { .. })).count()
    }

    /// Current standing of a worker.
    pub fn standing(&self, worker: usize) -> WorkerStanding {
        self.standing.get(worker).copied().unwrap_or(WorkerStanding::Active)
    }

    /// Current suspicion score of a worker.
    pub fn score(&self, worker: usize) -> f64 {
        self.scores.get(worker).copied().unwrap_or(0.0)
    }

    /// All current suspicion scores, indexed by worker id.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Every quarantine/readmission transition so far, in the order they
    /// happened.
    pub fn events(&self) -> &[QuarantineEvent] {
        &self.events
    }
}

/// The deterministic coordinate sample every affinity sketch reads: all of
/// `0..dimension` when it fits the budget, otherwise `max_coords` indices
/// drawn without replacement from a seed-derived stream. Sampled once per
/// run and reused every round, so sketch distances are comparable across
/// rounds — and the adversary cannot know which coordinates are watched.
pub fn affinity_sample_indices(seed: u64, dimension: usize, max_coords: usize) -> Vec<usize> {
    if dimension <= max_coords {
        (0..dimension).collect()
    } else {
        let mut rng = seeded_rng(derive_seed(seed, 0xAFF1_517E));
        let mut picked = sample_without_replacement(&mut rng, dimension, max_coords);
        picked.sort_unstable();
        picked
    }
}

/// Flags the rows sitting in near-duplicate clusters. Two present rows are
/// affinity neighbours when their sampled Euclidean distance is within
/// `epsilon ×` the larger of their sampled norms (colluding submissions
/// differ by deliberate jitter orders of magnitude below their scale, while
/// independent mini-batch gradients differ at the scale of the gradients
/// themselves); connected components of size ≥ `min_cluster` are flagged.
/// Zero-norm pairs never form an edge — two silent rows are not evidence.
///
/// Cost is `O(n·m + n²·m)` over the `m` sampled coordinates, computed
/// sequentially — cheap enough for the bench floor and bit-deterministic
/// under any thread schedule.
pub fn collusion_flags(
    rows: &[Option<&[f32]>],
    sample: &[usize],
    epsilon: f64,
    min_cluster: usize,
) -> Vec<bool> {
    let n = rows.len();
    let sketches: Vec<Option<Vec<f64>>> = rows
        .iter()
        .map(|row| row.map(|r| sample.iter().map(|&i| f64::from(r[i])).collect()))
        .collect();
    let norms: Vec<f64> = sketches
        .iter()
        .map(|s| s.as_ref().map_or(0.0, |v| v.iter().map(|x| x * x).sum::<f64>().sqrt()))
        .collect();

    // Union-find over the affinity edges; a clique of colluders is a single
    // component however its pairwise edges land.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for i in 0..n {
        let Some(a) = &sketches[i] else { continue };
        for j in (i + 1)..n {
            let Some(b) = &sketches[j] else { continue };
            let scale = norms[i].max(norms[j]);
            if scale <= 0.0 {
                continue;
            }
            let dist_sq: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
            if dist_sq.sqrt() <= epsilon * scale {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    let mut component_size = vec![0usize; n];
    for (i, sketch) in sketches.iter().enumerate() {
        if sketch.is_some() {
            let root = find(&mut parent, i);
            component_size[root] += 1;
        }
    }
    (0..n)
        .map(|i| sketches[i].is_some() && component_size[find(&mut parent, i)] >= min_cluster)
        .collect()
}

/// The suspicion-ranked containment placement of workers into groups of the
/// given capacities (a permutation [`agg_tensor::GroupPlan`] accepts as an
/// assignment).
///
/// Suspects — workers scoring above `suspect_cutoff`, ranked score
/// descending then id ascending — are placed to keep every Krum-family
/// level below its clique-capture point `⌈size/2⌉`:
///
/// 1. **Sacrifice.** Up to `⌊(G−1)/2⌋` groups (largest capacity first) are
///    filled *entirely* with the top suspects: a fully captured group is a
///    root-level minority the root rule excludes, whereas the same suspects
///    spread around would capture everything.
/// 2. **Deal.** Remaining suspects go round-robin over the other groups,
///    capped at each group's survivable `⌊(size−1)/2⌋`; the starting group
///    rotates with `derive_seed(seed, epoch)` so repeated reshuffles do not
///    pin the same honest groups against the same suspects.
/// 3. **Overflow.** Suspects beyond every budget sacrifice further groups,
///    one at a time — containment degrades group by group instead of
///    poisoning all of them at once.
/// 4. **Fill.** Honest workers take the remaining seats in id order.
///
/// Dead workers (`live[w] == false` — quarantined or crashed slots) are
/// seated *before* anyone else, one per group round-robin from the
/// non-sacrificed end of the order: they deliver nothing, so piling them
/// into one group would starve it below the group rule's resilience floor,
/// and their wasted seats must not consume the sacrificial capacity that
/// contains the live suspects.
///
/// With no suspects and no dead workers the contiguous identity layout
/// comes back, so an evidence-free run never installs a gratuitous
/// permutation.
pub fn containment_assignment(
    scores: &[f64],
    live: &[bool],
    sizes: &[usize],
    suspect_cutoff: f64,
    seed: u64,
    epoch: u64,
) -> Vec<usize> {
    let n = scores.len();
    debug_assert_eq!(live.len(), n, "one liveness flag per worker");
    debug_assert_eq!(sizes.iter().sum::<usize>(), n, "group capacities must seat every worker");
    let group_count = sizes.len();

    let mut suspects: Vec<usize> =
        (0..n).filter(|&w| live[w] && scores[w] > suspect_cutoff).collect();
    suspects.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    let dead: Vec<usize> = (0..n).filter(|&w| !live[w]).collect();

    if suspects.is_empty() && dead.is_empty() {
        // Contiguous identity: worker w sits in the group whose capacity
        // range covers it.
        let mut assignment = Vec::with_capacity(n);
        for (g, &size) in sizes.iter().enumerate() {
            assignment.extend(std::iter::repeat(g).take(size));
        }
        return assignment;
    }

    let mut assignment = vec![usize::MAX; n];
    let mut remaining: Vec<usize> = sizes.to_vec();
    // Largest groups first (id ascending on ties): sacrificing a big group
    // absorbs the most suspects per root-level capture spent.
    let mut sacrifice_order: Vec<usize> = (0..group_count).collect();
    sacrifice_order.sort_by_key(|&g| (std::cmp::Reverse(sizes[g]), g));
    let sacrificial_budget = (group_count.saturating_sub(1)) / 2;

    // Phase 0: spread the dead evenly, starting from the groups that will
    // NOT be sacrificed (the end of the order) so the sacrificial seats
    // stay available for live suspects.
    let mut dead_cursor = 0usize;
    for &w in &dead {
        loop {
            let g = sacrifice_order[group_count - 1 - (dead_cursor % group_count)];
            dead_cursor += 1;
            if remaining[g] > 0 {
                assignment[w] = g;
                remaining[g] -= 1;
                break;
            }
        }
    }

    let mut next_suspect = 0usize;
    // Phase 1: fill up to the sacrificial budget of groups completely.
    for &g in sacrifice_order.iter().take(sacrificial_budget) {
        while remaining[g] > 0 && next_suspect < suspects.len() {
            assignment[suspects[next_suspect]] = g;
            remaining[g] -= 1;
            next_suspect += 1;
        }
    }

    // Phase 2: deal the rest round-robin over the non-sacrificed groups,
    // capped at each group's survivable-clique budget.
    let dealt: Vec<usize> = sacrifice_order.iter().skip(sacrificial_budget).copied().collect();
    if !dealt.is_empty() && next_suspect < suspects.len() {
        let mut budget: Vec<usize> =
            dealt.iter().map(|&g| (sizes[g].saturating_sub(1)) / 2).collect();
        let start = (derive_seed(seed, epoch) % dealt.len() as u64) as usize;
        let mut cursor = start;
        let mut stuck = 0usize;
        while next_suspect < suspects.len() && stuck < dealt.len() {
            let slot = cursor % dealt.len();
            let g = dealt[slot];
            if budget[slot] > 0 && remaining[g] > 0 {
                assignment[suspects[next_suspect]] = g;
                remaining[g] -= 1;
                budget[slot] -= 1;
                next_suspect += 1;
                stuck = 0;
            } else {
                stuck += 1;
            }
            cursor += 1;
        }
    }

    // Phase 3: overflow sacrifices further groups, one at a time.
    for &g in sacrifice_order.iter().skip(sacrificial_budget) {
        if next_suspect >= suspects.len() {
            break;
        }
        while remaining[g] > 0 && next_suspect < suspects.len() {
            assignment[suspects[next_suspect]] = g;
            remaining[g] -= 1;
            next_suspect += 1;
        }
    }

    // Phase 4: honest workers first-fit the remaining seats in id order.
    let mut fill_group = 0usize;
    for seat in assignment.iter_mut() {
        if *seat != usize::MAX {
            continue;
        }
        while remaining[fill_group] == 0 {
            fill_group += 1;
        }
        *seat = fill_group;
        remaining[fill_group] -= 1;
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evidence(colluding: bool, stale: bool) -> RoundEvidence {
        RoundEvidence { colluding, stale, ..Default::default() }
    }

    #[test]
    fn default_config_is_valid_and_keeps_the_honest_ceiling_below_threshold() {
        let c = ReputationConfig::default();
        assert!(c.validate().is_ok());
        assert!(c.honest_ceiling() < c.quarantine_threshold);
        // The adversarial signatures do cross: one stale event per three
        // rounds (the rotation cadence) peaks at stale/(1 − λ³).
        let rotation_peak = c.stale_weight / (1.0 - c.decay.powi(3));
        assert!(rotation_peak > c.quarantine_threshold);
        // So does one collusion flag every round.
        assert!(c.collusion_weight / (1.0 - c.decay) > c.quarantine_threshold);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let mut c = ReputationConfig { decay: 1.0, ..Default::default() };
        assert!(c.validate().is_err(), "decay of 1 never forgets");
        c = ReputationConfig { stale_weight: -1.0, ..Default::default() };
        assert!(c.validate().is_err(), "negative weights are rejected");
        c = ReputationConfig { quarantine_threshold: 0.0, ..Default::default() };
        assert!(c.validate().is_err(), "zero threshold quarantines everyone");
        c = ReputationConfig { quarantine_rounds: 0, ..Default::default() };
        assert!(c.validate().is_err(), "zero-length quarantine is a no-op");
        c = ReputationConfig { probation_multiplier: 0.5, ..Default::default() };
        assert!(c.validate().is_err(), "probation must not loosen accrual");
        c = ReputationConfig { affinity_min_cluster: 1, ..Default::default() };
        assert!(c.validate().is_err(), "a single row is not a cluster");
        // The structural false-positive guard: routine evidence saturating
        // at or above the threshold is rejected up front.
        c = ReputationConfig { corrupt_weight: 2.0, ..Default::default() };
        assert!(c.validate().is_err(), "honest ceiling must stay below the threshold");
    }

    #[test]
    fn scores_decay_geometrically_and_accrue_weighted_evidence() {
        let config = ReputationConfig::default();
        let mut ledger = ReputationLedger::new(config, 2);
        ledger.observe(0, &[evidence(true, false), RoundEvidence::default()]);
        assert_eq!(ledger.score(0), config.collusion_weight);
        assert_eq!(ledger.score(1), 0.0);
        for round in 1..=8 {
            ledger.observe(round, &[RoundEvidence::default(); 2]);
        }
        let expected = config.collusion_weight * config.decay.powi(8);
        assert!((ledger.score(0) - expected).abs() < 1e-12);
    }

    #[test]
    fn honest_chaos_evidence_never_reaches_the_threshold() {
        let config = ReputationConfig::default();
        let mut ledger = ReputationLedger::new(config, 1);
        // Worst case: every routine stream fires every round, forever.
        let worst = RoundEvidence {
            corrupt: true,
            exhausted: true,
            straggled: true,
            excluded: true,
            ..Default::default()
        };
        for round in 0..10_000 {
            ledger.observe(round, &[worst]);
            assert!(
                ledger.score(0) < config.quarantine_threshold,
                "round {round}: honest worst-case score {} crossed the threshold",
                ledger.score(0)
            );
        }
        assert!(ledger.score(0) <= config.honest_ceiling() + 1e-9);
    }

    #[test]
    fn rotation_stale_evidence_crosses_within_bounded_rounds() {
        let config = ReputationConfig::default();
        let mut ledger = ReputationLedger::new(config, 1);
        let mut crossed_at = None;
        for round in 0..30 {
            // The identity-rotation cadence: fenced every third round.
            ledger.observe(round, &[evidence(false, round % 3 == 0)]);
            if crossed_at.is_none() && !ledger.quarantine_candidates().is_empty() {
                crossed_at = Some(round);
            }
        }
        let crossed_at = crossed_at.expect("rotation must cross the threshold");
        assert!(crossed_at <= 9, "crossed only at round {crossed_at}");
    }

    #[test]
    fn quarantine_walks_the_standing_machine_and_logs_events() {
        let config =
            ReputationConfig { quarantine_rounds: 4, probation_rounds: 3, ..Default::default() };
        let mut ledger = ReputationLedger::new(config, 3);
        assert_eq!(ledger.standing(1), WorkerStanding::Active);

        ledger.begin_quarantine(10, 1);
        assert!(ledger.is_quarantined(1));
        assert_eq!(ledger.quarantined_count(), 1);
        assert_eq!(ledger.standing(1), WorkerStanding::Quarantined { until: 14 });
        assert!(ledger.due_for_readmission(13).is_empty());
        assert_eq!(ledger.due_for_readmission(14), vec![1]);

        ledger.readmit(14, 1);
        assert_eq!(ledger.standing(1), WorkerStanding::Probation { until: 17 });
        assert!(!ledger.is_quarantined(1));

        // Probation multiplies accrual; a clean window lapses back to Active.
        ledger.observe(
            14,
            &[RoundEvidence::default(), evidence(true, false), RoundEvidence::default()],
        );
        assert_eq!(ledger.score(1), config.collusion_weight * config.probation_multiplier);
        ledger.observe(17, &[RoundEvidence::default(); 3]);
        assert_eq!(ledger.standing(1), WorkerStanding::Active);

        let events = ledger.events();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0],
            QuarantineEvent { round: 10, worker: 1, change: StandingChange::Quarantined }
        );
        assert_eq!(
            events[1],
            QuarantineEvent { round: 14, worker: 1, change: StandingChange::Readmitted }
        );
    }

    #[test]
    fn candidates_rank_by_score_then_id_and_skip_the_quarantined() {
        let config = ReputationConfig { quarantine_threshold: 1.0, ..Default::default() };
        let mut ledger = ReputationLedger::new(config, 4);
        ledger.scores = vec![2.0, 3.0, 2.0, 0.5];
        assert_eq!(ledger.quarantine_candidates(), vec![1, 0, 2]);
        ledger.begin_quarantine(0, 1);
        assert_eq!(ledger.quarantine_candidates(), vec![0, 2]);
    }

    #[test]
    fn affinity_sample_covers_small_dimensions_and_subsamples_large_ones() {
        assert_eq!(affinity_sample_indices(7, 10, 2048), (0..10).collect::<Vec<_>>());
        let sampled = affinity_sample_indices(7, 100_000, 2048);
        assert_eq!(sampled.len(), 2048);
        assert!(sampled.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        assert!(sampled.iter().all(|&i| i < 100_000));
        assert_eq!(sampled, affinity_sample_indices(7, 100_000, 2048), "seed-deterministic");
        assert_ne!(sampled, affinity_sample_indices(8, 100_000, 2048));
    }

    #[test]
    fn collusion_flags_nail_the_clique_and_spare_independent_rows() {
        let d = 64usize;
        let sample: Vec<usize> = (0..d).collect();
        let mut rng = seeded_rng(42);
        // Three colluders: one base row plus tiny jitter. Three honest rows:
        // independent draws at the same scale. One absent row.
        let base: Vec<f32> = (0..d).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut rows_data: Vec<Vec<f32>> = Vec::new();
        for k in 0..3 {
            rows_data.push(base.iter().map(|&x| x + 1e-4 * (k as f32 + 1.0)).collect());
        }
        for _ in 0..3 {
            rows_data
                .push(agg_tensor::rng::gaussian_vector(&mut rng, d, 0.0, 1.0).as_slice().to_vec());
        }
        let rows: Vec<Option<&[f32]>> =
            rows_data.iter().map(|r| Some(r.as_slice())).chain(std::iter::once(None)).collect();
        let flags = collusion_flags(&rows, &sample, 0.05, 3);
        assert_eq!(flags, vec![true, true, true, false, false, false, false]);
    }

    #[test]
    fn collusion_needs_the_minimum_cluster_and_nonzero_norms() {
        let d = 16usize;
        let sample: Vec<usize> = (0..d).collect();
        let a = vec![1.0f32; d];
        let b = vec![1.0001f32; d];
        let zero = vec![0.0f32; d];
        // A pair below the cluster minimum is not collusion.
        let rows: Vec<Option<&[f32]>> = vec![Some(&a), Some(&b)];
        assert_eq!(collusion_flags(&rows, &sample, 0.05, 3), vec![false, false]);
        // Two identical zero rows never form an edge.
        let rows: Vec<Option<&[f32]>> = vec![Some(&zero), Some(&zero), Some(&zero)];
        assert_eq!(collusion_flags(&rows, &sample, 0.05, 2), vec![false, false, false]);
    }

    #[test]
    fn containment_with_no_suspects_is_the_contiguous_identity() {
        let scores = vec![0.0; 7];
        let sizes = vec![3usize, 3, 1];
        assert_eq!(
            containment_assignment(&scores, &[true; 7], &sizes, 0.5, 9, 0),
            vec![0, 0, 0, 1, 1, 1, 2]
        );
    }

    #[test]
    fn containment_sacrifices_groups_and_caps_the_rest() {
        // The GroupCollusion acceptance shape: 30 workers in 5 groups of 6,
        // the trailing 15 all suspect at the same score.
        let mut scores = vec![0.0; 30];
        for s in scores.iter_mut().skip(15) {
            *s = 1.5;
        }
        let sizes = vec![6usize; 5];
        let assignment = containment_assignment(&scores, &[true; 30], &sizes, 0.5, 21, 0);
        // Capacities preserved.
        let mut counts = vec![0usize; 5];
        for &g in &assignment {
            counts[g] += 1;
        }
        assert_eq!(counts, sizes);
        // Per-group suspect counts: two sacrificed groups of 6, one suspect
        // dealt to each remaining group — every non-sacrificed group stays
        // below its capture point ⌈6/2⌉ = 3.
        let mut suspect_counts = vec![0usize; 5];
        for w in 15..30 {
            suspect_counts[assignment[w]] += 1;
        }
        suspect_counts.sort_unstable();
        assert_eq!(suspect_counts, vec![1, 1, 1, 6, 6]);
        // Deterministic in (seed, epoch).
        assert_eq!(assignment, containment_assignment(&scores, &[true; 30], &sizes, 0.5, 21, 0));
    }

    #[test]
    fn containment_overflow_degrades_one_group_at_a_time() {
        // 12 workers in 3 groups of 4 with 8 suspects: the sacrifice budget
        // ⌊(3−1)/2⌋ = 1 group plus survivable budgets of ⌊3/2⌋ = 1 each can
        // only contain 6, so overflow is inevitable — it must pile into the
        // *next* group in sacrifice order rather than spread evenly.
        let mut scores = vec![0.0; 12];
        for s in scores.iter_mut().take(8) {
            *s = 2.0;
        }
        let sizes = vec![4usize; 3];
        let assignment = containment_assignment(&scores, &[true; 12], &sizes, 0.5, 3, 5);
        let mut suspect_counts = vec![0usize; 3];
        for w in 0..8 {
            suspect_counts[assignment[w]] += 1;
        }
        suspect_counts.sort_unstable();
        assert_eq!(
            suspect_counts,
            vec![1, 3, 4],
            "overflow concentrates in one further group, leaving the last survivable"
        );
        let mut counts = vec![0usize; 3];
        for &g in &assignment {
            counts[g] += 1;
        }
        assert_eq!(counts, sizes);
    }

    #[test]
    fn containment_seats_everyone_for_ragged_partitions() {
        // Fuzz-ish sweep over shapes and suspect mixes: every worker seated,
        // every capacity respected, suspects never exceed a survivable
        // budget in more groups than the sacrifice can explain.
        for (n, sizes) in [(7usize, vec![3usize, 3, 1]), (10, vec![4, 4, 2]), (9, vec![9])] {
            for suspect_count in 0..=n {
                let mut scores = vec![0.0; n];
                for s in scores.iter_mut().take(suspect_count) {
                    *s = 1.0 + suspect_count as f64;
                }
                let assignment =
                    containment_assignment(&scores, &vec![true; n], &sizes, 0.5, 11, 2);
                let mut counts = vec![0usize; sizes.len()];
                for &g in &assignment {
                    assert!(g < sizes.len());
                    counts[g] += 1;
                }
                assert_eq!(counts, sizes, "n={n} suspects={suspect_count}");
            }
        }
    }

    #[test]
    fn containment_spreads_dead_workers_one_per_group_from_the_unsacrificed_end() {
        // 3 quarantined workers across 5 groups of 6: each lands in a
        // different group, none in the sacrificial ones (which must keep
        // their full capacity for live suspects), so no group drops more
        // than one live seat — the floor-starvation mode this guards.
        let mut scores = vec![0.0; 30];
        for s in scores.iter_mut().skip(15) {
            *s = 5.0;
        }
        let mut live = [true; 30];
        live[15] = false;
        live[21] = false;
        live[27] = false;
        let sizes = vec![6usize; 5];
        let assignment = containment_assignment(&scores, &live, &sizes, 0.5, 21, 3);
        let mut dead_per_group = [0usize; 5];
        for w in [15, 21, 27] {
            dead_per_group[assignment[w]] += 1;
        }
        assert_eq!(dead_per_group.iter().max(), Some(&1), "dead workers piled up: {assignment:?}");
        // 12 live suspects fit exactly in the two sacrificial groups, so no
        // live suspect shares a group with a dead seat or an honest worker.
        let mut live_suspects_per_group = vec![0usize; 5];
        for w in 15..30 {
            if live[w] {
                live_suspects_per_group[assignment[w]] += 1;
            }
        }
        for w in [15, 21, 27] {
            assert_eq!(live_suspects_per_group[assignment[w]], 0, "dead seated with live suspects");
        }
        live_suspects_per_group.sort_unstable();
        assert_eq!(live_suspects_per_group, vec![0, 0, 0, 6, 6]);
    }
}
