//! The run configuration: the reproduction's counterpart of the original
//! `runner.py` command line.
//!
//! | `runner.py` flag | Field here |
//! |---|---|
//! | `--experiment` | [`ExperimentKind`] |
//! | `--aggregator` / `--aggregator-args` | [`RunnerConfig::gar`] |
//! | `--optimizer` / `--optimizer-args` | [`RunnerConfig::optimizer`] |
//! | `--learning-rate` / args | [`RunnerConfig::learning_rate`] |
//! | `--nb-workers` | [`RunnerConfig::workers`] |
//! | `--max-step` | [`RunnerConfig::max_steps`] |
//! | `--evaluation-delta` | [`RunnerConfig::eval_every`] |
//! | `--l1-regularize` / `--l2-regularize` | [`RunnerConfig::regularization`] |
//! | (attack experiments) | [`RunnerConfig::attack`], [`RunnerConfig::byzantine_count`], [`RunnerConfig::data_poisoning`] |
//! | (communication backend) | [`RunnerConfig::transport`], [`RunnerConfig::lossy_links`], [`RunnerConfig::link`] |

use crate::cost::CostModel;
use crate::membership::{self, FaultPlan, RefusalPolicy};
use crate::reputation::ReputationConfig;
use crate::streaming::StreamingConfig;
use crate::{PsError, Result};
use agg_attacks::AttackKind;
use agg_core::{resilience, GarConfig, TreeAggregator, TreeConfig};
use agg_data::corruption::Corruption;
use agg_data::synthetic::{gaussian_blobs, synthetic_images, BlobConfig, ImageConfig};
use agg_data::Dataset;
use agg_net::{ChaosConfig, LinkConfig, LossPolicy, RetransmitConfig};
use agg_nn::models;
use agg_nn::optim::{OptimizerKind, Regularization};
use agg_nn::schedule::LearningRate;
use agg_nn::Sequential;
use agg_tensor::GroupPlan;
use serde::{Deserialize, Serialize};

/// Which model + dataset combination to train (the `--experiment` flag).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ExperimentKind {
    /// A multi-layer perceptron over Gaussian-blob features — the fast proxy
    /// used by the convergence experiments.
    MlpBlobs {
        /// Feature dimension.
        input_dim: usize,
        /// Hidden width (single hidden layer).
        hidden: usize,
        /// Number of classes.
        classes: usize,
        /// Total number of samples generated.
        samples: usize,
    },
    /// A small CNN over `1 × 8 × 8` synthetic images — exercises the
    /// convolutional pipeline end to end.
    TinyImages {
        /// Number of classes.
        classes: usize,
        /// Total number of samples generated.
        samples: usize,
    },
    /// The paper's Table 1 CNN over CIFAR-10-shaped synthetic images.
    /// Expensive; used by parameter-count checks and micro-benchmarks, not by
    /// the convergence sweeps.
    PaperCnn {
        /// Total number of samples generated.
        samples: usize,
    },
}

impl ExperimentKind {
    /// The default proxy experiment used throughout the figure reproductions.
    pub fn default_proxy() -> Self {
        ExperimentKind::MlpBlobs { input_dim: 32, hidden: 64, classes: 10, samples: 4000 }
    }

    /// Builds only the model for this experiment (used to give every worker
    /// its own model replica without regenerating the dataset).
    pub fn build_model(&self, seed: u64) -> Sequential {
        match *self {
            ExperimentKind::MlpBlobs { input_dim, hidden, classes, .. } => {
                models::synthetic_mlp(input_dim, &[hidden], classes, seed)
            }
            ExperimentKind::TinyImages { classes, .. } => models::small_cnn(1, classes, seed),
            ExperimentKind::PaperCnn { .. } => models::paper_cnn(seed),
        }
    }

    /// Builds the model and the train/test datasets for this experiment.
    ///
    /// # Errors
    ///
    /// Returns [`PsError`] when the synthetic dataset cannot be generated.
    pub fn build(&self, seed: u64) -> Result<(Sequential, Dataset, Dataset)> {
        match *self {
            ExperimentKind::MlpBlobs { input_dim, hidden, classes, samples } => {
                let model = models::synthetic_mlp(input_dim, &[hidden], classes, seed);
                let data = gaussian_blobs(
                    &BlobConfig { classes, dim: input_dim, samples, separation: 2.5, noise: 0.6 },
                    seed,
                )?;
                let (train, test) = data.split(0.2)?;
                Ok((model, train, test))
            }
            ExperimentKind::TinyImages { classes, samples } => {
                let model = models::small_cnn(1, classes, seed);
                let data = synthetic_images(&ImageConfig::tiny(samples, classes), seed)?;
                let (train, test) = data.split(0.2)?;
                Ok((model, train, test))
            }
            ExperimentKind::PaperCnn { samples } => {
                let model = models::paper_cnn(seed);
                let data = synthetic_images(&ImageConfig::cifar_like(samples), seed)?;
                let (train, test) = data.split(0.2)?;
                Ok((model, train, test))
            }
        }
    }
}

/// Which transport carries gradients from workers to the server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TransportKind {
    /// Reliable TCP/gRPC-like transport on every link (including the degraded
    /// ones, which then pay the congestion-collapse penalty).
    Reliable,
    /// The lossy UDP-like transport (`lossyMPI`) with the given loss policy
    /// on the degraded links designated by [`RunnerConfig::lossy_links`]; the
    /// remaining links stay reliable, matching the paper's deployment where
    /// unreliable communication is used "only at (up to) f links".
    Lossy {
        /// How lost coordinates are handled at the receiving endpoint.
        policy: LossPolicy,
    },
}

/// Full configuration of one distributed training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunnerConfig {
    /// Model + dataset.
    pub experiment: ExperimentKind,
    /// Gradient aggregation rule.
    pub gar: GarConfig,
    /// Total number of workers `n`.
    pub workers: usize,
    /// Number of actually Byzantine workers in this run (≤ `workers`). Their
    /// behaviour is [`RunnerConfig::attack`] or, if set,
    /// [`RunnerConfig::data_poisoning`].
    pub byzantine_count: usize,
    /// The behaviour of the Byzantine workers.
    pub attack: AttackKind,
    /// When set, Byzantine workers honestly train on a corrupted copy of the
    /// dataset instead of running `attack` (the Figure 7 experiment).
    pub data_poisoning: Option<Corruption>,
    /// Optimizer applied by the parameter server.
    pub optimizer: OptimizerKind,
    /// Learning-rate schedule.
    pub learning_rate: LearningRate,
    /// Optional L1/L2 regularisation.
    pub regularization: Regularization,
    /// Mini-batch size `b` per worker.
    pub batch_size: usize,
    /// Number of synchronous model updates to run.
    pub max_steps: u64,
    /// Evaluate test accuracy every this many steps.
    pub eval_every: u64,
    /// Number of test samples used per evaluation.
    pub eval_samples: usize,
    /// Gradient transport used on the degraded links.
    pub transport: TransportKind,
    /// How many worker↔server links (taken from the highest worker ids) are
    /// subject to the [`RunnerConfig::link`] packet-drop rate. The remaining
    /// links see a clean network. This models the paper's Figure 8 setup,
    /// where artificial drops are injected on the links under study.
    pub lossy_links: usize,
    /// Link characteristics (bandwidth, latency, loss) of the degraded links;
    /// clean links share the bandwidth/latency but drop nothing.
    pub link: LinkConfig,
    /// Optional chaos schedule on the degraded links: seeded bit flips,
    /// truncations, mutated duplicates, reorder bursts, delay spikes and
    /// transient partitions, replayable bit for bit from
    /// [`RunnerConfig::seed`]. `None` keeps the wire exactly as clean (or as
    /// merely lossy) as before.
    pub chaos: Option<ChaosConfig>,
    /// Optional NACK/retransmit recovery on the degraded links: bounded
    /// retries with exponential backoff under a per-round deadline. `None`
    /// keeps the seed single-shot delivery.
    pub retransmit: Option<RetransmitConfig>,
    /// When true, an adaptive attack additionally *times churn*: the attacker
    /// crashes or rejoins its own workers based on the previous round's
    /// selection feedback (attacker-controlled churn timing). Requires an
    /// attack that plans churn to have any effect; honest runs ignore it.
    pub adaptive_churn: bool,
    /// Number of contiguous coordinate shards the parameter-server tier is
    /// split into (1 = the single monolithic server). Sharded aggregation is
    /// exactly equivalent to the unsharded rule — distance-based GARs reduce
    /// per-shard partial distance matrices and select globally — so this is
    /// purely a scale knob, never a robustness trade-off.
    pub shards: usize,
    /// Hierarchical (two-level) aggregation: partition the workers into
    /// groups of `tree.group_size ≤ 32`, run a full GAR per group at the
    /// sortnet sweet spot, then run a GAR over the group outputs at the
    /// root. `None` keeps the flat tier — the seed behaviour, bit for bit.
    /// When set, [`RunnerConfig::gar`] must equal `tree.root` (the root rule
    /// is what labels, quorum and selection feedback observe) and the tier is
    /// mutually exclusive with coordinate sharding (`shards > 1`). Unlike
    /// sharding, the tree *changes the asymptotics* — O(n²d) becomes
    /// O(n·g·d + (n/g)²d) — at the cost of the composed resilience bound
    /// `f_total = (f_group + 1)(f_root + 1) − 1` instead of a flat `f`.
    pub tree: Option<TreeConfig>,
    /// Simulation cost model.
    pub cost: CostModel,
    /// Streaming round knobs: per-row distance accumulation (off by
    /// default, bit-identical to the barrier path either way) and the
    /// quorum policy deciding when the server stops waiting for stragglers.
    pub streaming: StreamingConfig,
    /// Optional per-worker extra arrival delay in simulated seconds, added
    /// to each worker's compute + transfer time (Byzantine workers
    /// included, whose submissions are otherwise instantaneous). Empty for
    /// no extra delay; otherwise one entry per worker. This is the straggler
    /// knob of the quorum experiments.
    pub worker_extra_delay_sec: Vec<f64>,
    /// The elastic-membership churn schedule: crashes, rejoins and slow-by
    /// demotions applied at the start of the scheduled rounds. Empty for
    /// static membership — the seed behaviour, bit for bit. A non-empty plan
    /// switches the engine into epoch-fenced elastic mode.
    pub fault_plan: FaultPlan,
    /// How the engine degrades when churn drops the live worker set below
    /// the active rule's resilience floor.
    pub refusal: RefusalPolicy,
    /// Optional cross-round reputation ledger: decayed per-worker suspicion
    /// scores folded from the engine's evidence streams, driving automatic
    /// quarantine, probationary readmission and (in tree mode) the
    /// containment group reshuffles. `None` keeps the memoryless seed
    /// behaviour, bit for bit. Enabling it switches the engine into the
    /// epoch-fenced elastic mode even without a fault plan, since quarantine
    /// evictions travel through the same membership machinery.
    pub reputation: Option<ReputationConfig>,
    /// Experiment seed; everything (data, init, sampling, attacks, links)
    /// derives from it.
    pub seed: u64,
}

impl RunnerConfig {
    /// A small, fast configuration with sensible defaults: 11 workers, no
    /// Byzantine behaviour, averaging GAR, RMSProp with the paper's fixed
    /// learning rate.
    pub fn quick_default() -> Self {
        RunnerConfig {
            experiment: ExperimentKind::default_proxy(),
            gar: GarConfig::new(agg_core::GarKind::Average, 0),
            workers: 11,
            byzantine_count: 0,
            attack: AttackKind::None,
            data_poisoning: None,
            optimizer: OptimizerKind::RmsProp,
            learning_rate: LearningRate::paper_default(),
            regularization: Regularization::none(),
            batch_size: 25,
            max_steps: 100,
            eval_every: 10,
            eval_samples: 256,
            transport: TransportKind::Reliable,
            lossy_links: 0,
            link: LinkConfig::datacenter(),
            chaos: None,
            retransmit: None,
            adaptive_churn: false,
            shards: 1,
            tree: None,
            cost: CostModel::paper_like(),
            streaming: StreamingConfig::default(),
            worker_extra_delay_sec: Vec::new(),
            fault_plan: FaultPlan::empty(),
            refusal: RefusalPolicy::default(),
            reputation: None,
            seed: 1,
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`PsError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<()> {
        if self.workers == 0 {
            return Err(PsError::InvalidConfig("at least one worker is required".into()));
        }
        if self.byzantine_count > self.workers {
            return Err(PsError::InvalidConfig(format!(
                "byzantine_count {} exceeds worker count {}",
                self.byzantine_count, self.workers
            )));
        }
        if self.batch_size == 0 {
            return Err(PsError::InvalidConfig("batch size must be positive".into()));
        }
        if self.max_steps == 0 {
            return Err(PsError::InvalidConfig("max_steps must be positive".into()));
        }
        if self.eval_every == 0 {
            return Err(PsError::InvalidConfig("eval_every must be positive".into()));
        }
        if self.lossy_links > self.workers {
            return Err(PsError::InvalidConfig(format!(
                "lossy_links {} exceeds worker count {}",
                self.lossy_links, self.workers
            )));
        }
        if self.shards == 0 {
            return Err(PsError::InvalidConfig(
                "the parameter-server tier needs at least one shard".into(),
            ));
        }
        if !self.worker_extra_delay_sec.is_empty()
            && self.worker_extra_delay_sec.len() != self.workers
        {
            return Err(PsError::InvalidConfig(format!(
                "worker_extra_delay_sec has {} entries for {} workers (empty or one per worker)",
                self.worker_extra_delay_sec.len(),
                self.workers
            )));
        }
        if self.worker_extra_delay_sec.iter().any(|d| !d.is_finite() || *d < 0.0) {
            return Err(PsError::InvalidConfig(
                "worker_extra_delay_sec entries must be finite and non-negative".into(),
            ));
        }
        membership::validate_plan(&self.fault_plan, self.workers, self.max_steps)?;
        if let Some(reputation) = &self.reputation {
            reputation.validate()?;
        }
        self.link.validate().map_err(PsError::from)?;
        if let Some(chaos) = &self.chaos {
            chaos.validate().map_err(PsError::from)?;
        }
        if let Some(retransmit) = &self.retransmit {
            retransmit.validate().map_err(PsError::from)?;
        }
        // Build the GAR once to surface configuration errors early.
        self.gar.build().map_err(PsError::from)?;
        if let Some(tree) = &self.tree {
            if self.shards > 1 {
                return Err(PsError::InvalidConfig(
                    "the tree tier and coordinate sharding are mutually exclusive".into(),
                ));
            }
            if self.gar != tree.root {
                return Err(PsError::InvalidConfig(format!(
                    "in tree mode `gar` must equal the root rule (gar = {}, tree.root = {}): \
                     labels, quorum and selection feedback all observe the root",
                    self.gar, tree.root
                )));
            }
            // Surface group-size / rule errors early, exactly like `gar`.
            TreeAggregator::new(*tree).map_err(PsError::from)?;
            // The full roster must clear the composed floor: a run that would
            // refuse every round is a configuration error, not a runtime one.
            let plan = GroupPlan::new(self.workers, tree.group_size).map_err(PsError::from)?;
            resilience::check_tree(
                tree.group.kind,
                tree.group.f,
                tree.root.kind,
                tree.root.f,
                plan.sizes(),
            )
            .map_err(PsError::from)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_default_is_valid() {
        assert!(RunnerConfig::quick_default().validate().is_ok());
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut c = RunnerConfig::quick_default();
        c.workers = 0;
        assert!(c.validate().is_err());

        let mut c = RunnerConfig::quick_default();
        c.byzantine_count = 20;
        assert!(c.validate().is_err());

        let mut c = RunnerConfig::quick_default();
        c.batch_size = 0;
        assert!(c.validate().is_err());

        let mut c = RunnerConfig::quick_default();
        c.max_steps = 0;
        assert!(c.validate().is_err());

        let mut c = RunnerConfig::quick_default();
        c.eval_every = 0;
        assert!(c.validate().is_err());

        let mut c = RunnerConfig::quick_default();
        c.lossy_links = 100;
        assert!(c.validate().is_err());

        let mut c = RunnerConfig::quick_default();
        c.link = LinkConfig::datacenter().with_drop_rate(2.0);
        assert!(c.validate().is_err());

        let mut c = RunnerConfig::quick_default();
        c.shards = 0;
        assert!(c.validate().is_err());

        let mut c = RunnerConfig::quick_default();
        c.worker_extra_delay_sec = vec![0.1; 3];
        assert!(c.validate().is_err(), "delay list must match the worker count");

        let mut c = RunnerConfig::quick_default();
        c.worker_extra_delay_sec = vec![0.0; c.workers];
        c.worker_extra_delay_sec[2] = -1.0;
        assert!(c.validate().is_err(), "negative delays are rejected");

        let mut c = RunnerConfig::quick_default();
        c.worker_extra_delay_sec = vec![0.01; c.workers];
        assert!(c.validate().is_ok());
    }

    #[test]
    fn fault_plan_validation_mirrors_the_delay_checks() {
        use crate::membership::{FaultAction, FaultPlan};

        // An event naming a worker the run does not have.
        let mut c = RunnerConfig::quick_default();
        c.fault_plan = FaultPlan::empty().with(2, c.workers, FaultAction::Crash);
        assert!(c.validate().is_err(), "unknown worker ids are rejected");

        // An event scheduled past the end of the run.
        let mut c = RunnerConfig::quick_default();
        c.fault_plan = FaultPlan::empty().with(c.max_steps, 0, FaultAction::Crash);
        assert!(c.validate().is_err(), "rounds past max_steps are rejected");

        // A slow-by demotion with a nonsense delay.
        let mut c = RunnerConfig::quick_default();
        c.fault_plan = FaultPlan::empty().with(1, 0, FaultAction::SlowBy { delay_sec: -2.0 });
        assert!(c.validate().is_err(), "negative slow-by delays are rejected");

        // A well-formed crash→rejoin schedule passes.
        let mut c = RunnerConfig::quick_default();
        c.fault_plan = FaultPlan::empty()
            .with(2, 1, FaultAction::Crash)
            .with(5, 1, FaultAction::Rejoin)
            .with(3, 0, FaultAction::SlowBy { delay_sec: 1.5 });
        assert!(c.validate().is_ok());
    }

    #[test]
    fn fault_plan_and_refusal_round_trip_through_json() {
        use crate::membership::{FaultAction, FaultPlan, RefusalPolicy};
        let mut c = RunnerConfig::quick_default();
        c.fault_plan =
            FaultPlan::empty().with(2, 1, FaultAction::Crash).with(5, 1, FaultAction::Rejoin);
        c.refusal = RefusalPolicy::Pause;
        let json = serde_json::to_string(&c).unwrap();
        let back: RunnerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.fault_plan, c.fault_plan);
        assert_eq!(back.refusal, RefusalPolicy::Pause);
    }

    #[test]
    fn streaming_fields_round_trip_through_json() {
        let mut c = RunnerConfig::quick_default();
        c.streaming.enabled = true;
        c.streaming.quorum = crate::streaming::QuorumPolicy::NMinusF;
        c.worker_extra_delay_sec = vec![0.25; c.workers];
        let json = serde_json::to_string(&c).unwrap();
        let back: RunnerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.streaming, c.streaming);
        assert_eq!(back.worker_extra_delay_sec, c.worker_extra_delay_sec);

        let mut c = RunnerConfig::quick_default();
        c.streaming.quorum = crate::streaming::QuorumPolicy::Count(7);
        let json = serde_json::to_string(&c).unwrap();
        let back: RunnerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.streaming.quorum, crate::streaming::QuorumPolicy::Count(7));
    }

    #[test]
    fn chaos_and_retransmit_round_trip_through_json() {
        let mut c = RunnerConfig::quick_default();
        c.chaos = Some(ChaosConfig::moderate());
        c.retransmit = Some(RetransmitConfig::default());
        c.adaptive_churn = true;
        let json = serde_json::to_string(&c).unwrap();
        let back: RunnerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.chaos, c.chaos);
        assert_eq!(back.retransmit, c.retransmit);
        assert!(back.adaptive_churn);

        // Invalid chaos/retransmit settings are caught by validate().
        let mut c = RunnerConfig::quick_default();
        c.chaos = Some(ChaosConfig { bit_flip_rate: 1.5, ..Default::default() });
        assert!(c.validate().is_err(), "out-of-range chaos rates are rejected");

        let mut c = RunnerConfig::quick_default();
        c.retransmit = Some(RetransmitConfig { backoff_factor: 0.0, ..Default::default() });
        assert!(c.validate().is_err(), "nonsense backoff factors are rejected");
    }

    #[test]
    fn reputation_config_round_trips_and_is_validated() {
        let mut c = RunnerConfig::quick_default();
        c.reputation = Some(ReputationConfig { reshuffle_every: 3, ..Default::default() });
        assert!(c.validate().is_ok());
        let json = serde_json::to_string(&c).unwrap();
        let back: RunnerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.reputation, c.reputation);

        // Invalid ledger settings are caught by validate().
        let mut bad = RunnerConfig::quick_default();
        bad.reputation = Some(ReputationConfig { decay: 1.5, ..Default::default() });
        assert!(bad.validate().is_err(), "out-of-range decay is rejected");
    }

    #[test]
    fn tree_tier_validation_and_round_trip() {
        use agg_core::{GarKind, TreeConfig};

        // A well-formed tree run: 64 workers, groups of 16, Multi-Krum at
        // both levels, with `gar` mirroring the root rule.
        let mut c = RunnerConfig::quick_default();
        c.workers = 64;
        let tree = TreeConfig::uniform(GarKind::MultiKrum, 2, 0, 16);
        c.tree = Some(tree);
        c.gar = tree.root;
        assert!(c.validate().is_ok());

        let json = serde_json::to_string(&c).unwrap();
        let back: RunnerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.tree, Some(tree));

        // `gar` must mirror the root rule.
        let mut bad = c.clone();
        bad.gar = tree.group;
        bad.gar.f = 7;
        assert!(bad.validate().is_err(), "gar != tree.root is rejected");

        // Mutually exclusive with coordinate sharding.
        let mut bad = c.clone();
        bad.shards = 4;
        assert!(bad.validate().is_err(), "tree + shards > 1 is rejected");

        // Group size beyond the sortnet sweet spot is rejected.
        let mut bad = c.clone();
        let wide = TreeConfig::uniform(GarKind::MultiKrum, 2, 0, 64);
        bad.tree = Some(wide);
        bad.gar = wide.root;
        assert!(bad.validate().is_err(), "group_size > 32 is rejected");

        // A roster that cannot clear the composed floor is a config error:
        // Multi-Krum root with f = 2 needs 7 contributing groups, but 64
        // workers in groups of 16 only form 4.
        let mut bad = c.clone();
        let starved = TreeConfig::uniform(GarKind::MultiKrum, 2, 2, 16);
        bad.tree = Some(starved);
        bad.gar = starved.root;
        assert!(bad.validate().is_err(), "roster below the composed floor is rejected");
    }

    #[test]
    fn experiments_build_model_and_data() {
        let (model, train, test) = ExperimentKind::default_proxy().build(3).unwrap();
        assert!(model.param_count() > 0);
        assert!(train.len() > test.len());
        assert_eq!(train.classes(), 10);

        let (model, train, _) =
            ExperimentKind::TinyImages { classes: 4, samples: 100 }.build(3).unwrap();
        assert_eq!(model.input_shape(), &[1, 8, 8]);
        assert_eq!(train.sample_shape(), &[1, 8, 8]);
    }

    #[test]
    fn experiment_build_is_deterministic() {
        let a = ExperimentKind::default_proxy().build(7).unwrap();
        let b = ExperimentKind::default_proxy().build(7).unwrap();
        assert_eq!(a.0.parameters(), b.0.parameters());
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn config_serialises_to_json() {
        let c = RunnerConfig::quick_default();
        let json = serde_json::to_string(&c).unwrap();
        let back: RunnerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.workers, c.workers);
        assert_eq!(back.gar, c.gar);
    }
}
