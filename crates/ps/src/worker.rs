//! Workers: honest gradient estimators, data-poisoned workers and actively
//! adversarial workers.

use crate::{PsError, Result};
use agg_data::{Dataset, MiniBatchSampler};
use agg_net::{RowTransfer, TransferOutcome, Transport};
use agg_nn::Sequential;
use agg_tensor::Vector;
use std::sync::Arc;

/// The behaviour of one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerRole {
    /// Computes honest gradients on clean data.
    Honest,
    /// Computes real gradients, but on a corrupted local dataset (the
    /// "corrupted data" Byzantine behaviour of Figure 7).
    DataPoisoned,
    /// Does not compute gradients at all; the adversary crafts its submission
    /// centrally (omniscient attack).
    Attacker,
}

impl WorkerRole {
    /// `true` for every non-honest role.
    pub fn is_byzantine(&self) -> bool {
        !matches!(self, WorkerRole::Honest)
    }
}

/// The result of one worker's local step.
#[derive(Debug, Clone)]
pub struct WorkerComputation {
    /// The gradient estimate the worker submits.
    pub gradient: Vector,
    /// Training loss observed on the worker's mini-batch.
    pub loss: f32,
    /// Seconds of simulated compute time the gradient cost.
    pub compute_time_sec: f64,
}

/// One simulated worker process.
///
/// Each worker owns a private copy of the model (as a TensorFlow worker owns
/// its sub-graph), an i.i.d. mini-batch sampler over its local dataset view,
/// and the transport its gradients travel over.
#[derive(Debug)]
pub struct Worker {
    id: usize,
    role: WorkerRole,
    model: Sequential,
    dataset: Arc<Dataset>,
    sampler: MiniBatchSampler,
    transport: Box<dyn Transport>,
    node_flops_per_sec: f64,
}

impl Worker {
    /// Creates a worker.
    pub fn new(
        id: usize,
        role: WorkerRole,
        model: Sequential,
        dataset: Arc<Dataset>,
        sampler: MiniBatchSampler,
        transport: Box<dyn Transport>,
        node_flops_per_sec: f64,
    ) -> Self {
        Worker { id, role, model, dataset, sampler, transport, node_flops_per_sec }
    }

    /// Worker index within the cluster.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The worker's behaviour.
    pub fn role(&self) -> WorkerRole {
        self.role
    }

    /// Sustained FLOP/s of the node this worker runs on.
    pub fn node_flops_per_sec(&self) -> f64 {
        self.node_flops_per_sec
    }

    /// Computes one mini-batch gradient at the given model parameters.
    ///
    /// The returned compute time uses the provided closure so the engine's
    /// cost model stays in one place.
    ///
    /// # Errors
    ///
    /// Returns [`PsError`] when the model rejects the parameters or batch.
    pub fn compute_gradient(
        &mut self,
        params: &Vector,
        compute_time: impl FnOnce(&Sequential, usize) -> f64,
    ) -> Result<WorkerComputation> {
        self.model.set_parameters(params).map_err(PsError::from)?;
        let (batch, labels) = self.sampler.next_batch(&self.dataset).map_err(PsError::from)?;
        let evaluation = self.model.gradient(&batch, &labels).map_err(PsError::from)?;
        let time = compute_time(&self.model, labels.len());
        Ok(WorkerComputation {
            gradient: evaluation.gradient,
            loss: evaluation.loss,
            compute_time_sec: time,
        })
    }

    /// Sends a gradient to the parameter server over this worker's transport.
    ///
    /// # Errors
    ///
    /// Returns [`PsError::Network`] for structural transport failures (loss is
    /// not an error).
    pub fn send_gradient(&mut self, step: u64, gradient: &Vector) -> Result<TransferOutcome> {
        self.transport.transfer(self.id as u32, step, gradient).map_err(PsError::from)
    }

    /// Sends a gradient straight into the server's arena row for this worker
    /// (the zero-copy round path: the receiver's view is written into `dst`,
    /// no intermediate `Vector`).
    ///
    /// # Errors
    ///
    /// Returns [`PsError::Network`] for structural transport failures (loss is
    /// not an error).
    pub fn send_gradient_into(
        &mut self,
        step: u64,
        gradient: &[f32],
        dst: &mut [f32],
    ) -> Result<RowTransfer> {
        self.transport.transfer_into(self.id as u32, step, gradient, dst).map_err(PsError::from)
    }

    /// Name of the transport this worker uses (for reports).
    pub fn transport_name(&self) -> &'static str {
        self.transport.name()
    }

    /// Stamps the membership epoch this worker believes is current into its
    /// transport's outgoing packets. The engine calls this when the worker
    /// learns a new view; a rejoining worker keeps its stale epoch for one
    /// round and gets fenced.
    pub fn set_transport_epoch(&mut self, epoch: u32) {
        self.transport.set_epoch(epoch);
    }

    /// Sets the server-side epoch fence on this worker's link: packets
    /// stamped with any other epoch are rejected at the assembler instead of
    /// filling a row. `None` disables fencing (static membership).
    pub fn set_transport_expected_epoch(&mut self, epoch: Option<u32>) {
        self.transport.set_expected_epoch(epoch);
    }
}

// Workers fan out across threads in the engine's parallel Phase 1; every
// field (model, Arc<Dataset>, sampler, boxed transport) must stay `Send`.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Worker>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use agg_data::synthetic::{gaussian_blobs, BlobConfig};
    use agg_net::{GradientCodec, LinkConfig, ReliableTransport};
    use agg_nn::models;

    fn make_worker(role: WorkerRole) -> Worker {
        let model = models::synthetic_mlp(8, &[16], 4, 0);
        let dataset = Arc::new(
            gaussian_blobs(
                &BlobConfig { classes: 4, dim: 8, samples: 64, ..Default::default() },
                1,
            )
            .unwrap(),
        );
        let sampler = MiniBatchSampler::new(8, 1, 0).unwrap();
        let transport = Box::new(
            ReliableTransport::new(LinkConfig::datacenter(), GradientCodec::default_mtu()).unwrap(),
        );
        Worker::new(0, role, model, dataset, sampler, transport, 5e10)
    }

    #[test]
    fn roles_classify_byzantine_behaviour() {
        assert!(!WorkerRole::Honest.is_byzantine());
        assert!(WorkerRole::DataPoisoned.is_byzantine());
        assert!(WorkerRole::Attacker.is_byzantine());
    }

    #[test]
    fn honest_worker_computes_a_gradient_of_model_dimension() {
        let mut worker = make_worker(WorkerRole::Honest);
        let params = worker.model.parameters();
        let result = worker.compute_gradient(&params, |_, b| b as f64 * 0.01).unwrap();
        assert_eq!(result.gradient.len(), params.len());
        assert!(result.loss.is_finite());
        assert!((result.compute_time_sec - 0.08).abs() < 1e-9);
    }

    #[test]
    fn gradient_rejects_wrong_parameter_size() {
        let mut worker = make_worker(WorkerRole::Honest);
        assert!(worker.compute_gradient(&Vector::zeros(3), |_, _| 0.0).is_err());
    }

    #[test]
    fn epoch_passthroughs_reach_the_transport() {
        let mut worker = make_worker(WorkerRole::Honest);
        let g = vec![1.0f32; 64];
        let mut dst = vec![0.0f32; 64];
        // Server fences at epoch 3; the worker still stamps epoch 0.
        worker.set_transport_expected_epoch(Some(3));
        let fenced = worker.send_gradient_into(0, &g, &mut dst).unwrap();
        assert!(!fenced.delivered);
        assert!(fenced.stale_epoch_rejects > 0);
        // Once the worker learns the view, delivery resumes.
        worker.set_transport_epoch(3);
        let ok = worker.send_gradient_into(1, &g, &mut dst).unwrap();
        assert!(ok.delivered);
        assert_eq!(ok.stale_epoch_rejects, 0);
        assert_eq!(dst, g);
    }

    #[test]
    fn send_gradient_goes_through_the_transport() {
        let mut worker = make_worker(WorkerRole::Honest);
        let g = Vector::from(vec![1.0; 100]);
        let outcome = worker.send_gradient(0, &g).unwrap();
        assert_eq!(outcome.gradient.unwrap(), g);
        assert_eq!(worker.transport_name(), "tcp");
        assert_eq!(worker.id(), 0);
        assert_eq!(worker.node_flops_per_sec(), 5e10);
    }
}
