//! Structured results of a training run.

use crate::reputation::{QuarantineEvent, StandingChange};
use agg_metrics::{LatencyBreakdown, ThroughputMeter, TrainingTrace};
use serde::{Deserialize, Serialize};

/// Per-worker breakdown of the wire and control-plane counters the run
/// aggregates globally — the operator's view of *which* worker produced the
/// evidence, and what the reputation ledger made of it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerReport {
    /// Worker id (the index into [`TrainingReport::per_worker`], repeated
    /// here so serialized rows stay self-describing).
    pub worker: usize,
    /// Packets of this worker's submissions rejected by the epoch fence.
    pub stale_epoch_rejects: u64,
    /// Packets of this worker's submissions rejected by the wire-integrity
    /// check.
    pub corrupt_rejects: u64,
    /// Rounds in which this worker's retransmit recovery exhausted its
    /// budget or deadline without completing the row.
    pub retransmit_exhaustions: u64,
    /// Times the reputation ledger quarantined this worker.
    pub quarantines: u64,
    /// Times the reputation ledger readmitted this worker on probation.
    pub readmissions: u64,
    /// The worker's suspicion score when the run ended (0 without a ledger).
    pub final_suspicion: f64,
}

/// Everything a training run produced, ready for the experiment harness to
/// turn into the paper's tables and figures.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Human-readable label of the run (GAR, `f`, batch size, transport).
    pub label: String,
    /// Accuracy/loss versus simulated time and model updates.
    pub trace: TrainingTrace,
    /// Aggregator throughput.
    pub throughput: ThroughputMeter,
    /// Per-round latency breakdown (Figure 4).
    pub latency: LatencyBreakdown,
    /// Model updates actually applied.
    pub steps_completed: u64,
    /// Rounds skipped because the GAR rejected the submission (e.g. every
    /// gradient was dropped by the transport).
    pub skipped_updates: u64,
    /// Rounds the server *refused* to aggregate because churn dropped the
    /// live worker set below the active rule's resilience floor (elastic
    /// membership). A refusal is a graceful degradation, not an error: the
    /// configured [`crate::membership::RefusalPolicy`] decides whether the
    /// last model is held or the round pauses.
    pub refused_rounds: u64,
    /// Packets rejected by the epoch fence across the run: late packets from
    /// evicted workers and first-round submissions of stale-epoch rejoiners.
    pub stale_epoch_rejects: u64,
    /// Packets rejected by the wire-integrity check (CRC32 mismatch,
    /// truncation, unknown wire version) across the run. Every fault the
    /// chaos plan injects lands here — a corrupted packet never reaches an
    /// arena row; its coordinates are either retransmitted or degrade like a
    /// transport loss.
    pub corrupt_rejects: u64,
    /// Rounds in which the GAR's selection set contained at least one row
    /// submitted by a Byzantine worker (0 means the selected set stayed
    /// honest every round). Only counted when the engine computes selection
    /// feedback — distance-based rules with Byzantine workers, an adaptive
    /// attack, or a fault plan.
    pub byzantine_selected_rounds: u64,
    /// Rounds in which some worker's retransmit recovery ran out of budget
    /// or deadline with the row still incomplete — previously
    /// indistinguishable from a plain transport loss; counted separately so
    /// the reputation ledger (and operators) can see it.
    pub retransmit_exhaustions: u64,
    /// Per-worker breakdown of the wire counters and ledger outcomes, one
    /// entry per worker slot. Empty when the engine ran without the
    /// breakdown (e.g. the throughput simulator).
    pub per_worker: Vec<WorkerReport>,
    /// Every quarantine/readmission transition the reputation ledger made,
    /// in the order it made them. Empty without a ledger.
    pub quarantine_events: Vec<QuarantineEvent>,
    /// Total simulated wall-clock time of the run, in seconds.
    pub simulated_time_sec: f64,
}

impl TrainingReport {
    /// Final test accuracy (0 when nothing was evaluated).
    pub fn final_accuracy(&self) -> f64 {
        self.trace.final_accuracy()
    }

    /// Best test accuracy seen during the run.
    pub fn best_accuracy(&self) -> f64 {
        self.trace.best_accuracy()
    }

    /// Simulated time to reach the given accuracy, if ever reached.
    pub fn time_to_accuracy(&self, target: f64) -> Option<f64> {
        self.trace.time_to_accuracy(target)
    }

    /// Number of quarantine evictions the reputation ledger made.
    pub fn quarantine_count(&self) -> u64 {
        self.quarantine_events.iter().filter(|e| e.change == StandingChange::Quarantined).count()
            as u64
    }

    /// Number of probationary readmissions the reputation ledger made.
    pub fn readmission_count(&self) -> u64 {
        self.quarantine_events.iter().filter(|e| e.change == StandingChange::Readmitted).count()
            as u64
    }

    /// One-line summary for experiment logs.
    pub fn summary(&self) -> String {
        let refusals = if self.refused_rounds > 0 {
            format!(" + {} refused below the resilience floor", self.refused_rounds)
        } else {
            String::new()
        };
        let quarantines = if self.quarantine_events.is_empty() {
            String::new()
        } else {
            format!(
                ", {} quarantined / {} readmitted by the reputation ledger",
                self.quarantine_count(),
                self.readmission_count()
            )
        };
        format!(
            "{}: {} steps ({} skipped{refusals}), {:.1}s simulated, final accuracy {:.3}, throughput {:.2} grad/s, aggregation share {:.1}%{quarantines}",
            self.label,
            self.steps_completed,
            self.skipped_updates,
            self.simulated_time_sec,
            self.final_accuracy(),
            self.throughput.gradients_per_sec(),
            100.0 * self.latency.aggregation_share(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_metrics::TracePoint;

    #[test]
    fn summary_mentions_the_label_and_accuracy() {
        let mut report = TrainingReport { label: "multi-krum f=4".into(), ..Default::default() };
        report.trace.record(TracePoint { step: 10, time_sec: 1.0, accuracy: 0.5, loss: 1.0 });
        report.steps_completed = 10;
        let s = report.summary();
        assert!(s.contains("multi-krum f=4"));
        assert!(s.contains("0.500"));
        assert_eq!(report.final_accuracy(), 0.5);
        assert_eq!(report.best_accuracy(), 0.5);
        assert_eq!(report.time_to_accuracy(0.4), Some(1.0));
        assert_eq!(report.time_to_accuracy(0.9), None);
    }

    #[test]
    fn default_report_is_empty() {
        let report = TrainingReport::default();
        assert_eq!(report.final_accuracy(), 0.0);
        assert_eq!(report.steps_completed, 0);
        assert_eq!(report.refused_rounds, 0);
        assert_eq!(report.stale_epoch_rejects, 0);
        assert_eq!(report.corrupt_rejects, 0);
        assert_eq!(report.byzantine_selected_rounds, 0);
        assert_eq!(report.retransmit_exhaustions, 0);
        assert!(report.per_worker.is_empty());
        assert!(report.quarantine_events.is_empty());
        assert_eq!(report.quarantine_count(), 0);
        assert_eq!(report.readmission_count(), 0);
    }

    #[test]
    fn summary_surfaces_quarantine_events() {
        use crate::reputation::{QuarantineEvent, StandingChange};
        let mut report = TrainingReport { label: "multi-krum f=4".into(), ..Default::default() };
        assert!(!report.summary().contains("quarantined"));
        report.quarantine_events = vec![
            QuarantineEvent { round: 4, worker: 17, change: StandingChange::Quarantined },
            QuarantineEvent { round: 9, worker: 18, change: StandingChange::Quarantined },
            QuarantineEvent { round: 16, worker: 17, change: StandingChange::Readmitted },
        ];
        assert_eq!(report.quarantine_count(), 2);
        assert_eq!(report.readmission_count(), 1);
        assert!(report.summary().contains("2 quarantined / 1 readmitted by the reputation ledger"));
    }

    #[test]
    fn per_worker_breakdown_round_trips_through_json() {
        let mut report = TrainingReport {
            per_worker: vec![
                WorkerReport { worker: 0, ..Default::default() },
                WorkerReport {
                    worker: 1,
                    stale_epoch_rejects: 3,
                    corrupt_rejects: 2,
                    retransmit_exhaustions: 1,
                    quarantines: 1,
                    readmissions: 1,
                    final_suspicion: 0.75,
                },
            ],
            ..Default::default()
        };
        report.retransmit_exhaustions = 1;
        let json = serde_json::to_string(&report).unwrap();
        let back: TrainingReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.per_worker, report.per_worker);
        assert_eq!(back.retransmit_exhaustions, 1);
    }

    #[test]
    fn summary_surfaces_refused_rounds() {
        let mut report = TrainingReport { label: "bulyan f=4".into(), ..Default::default() };
        assert!(!report.summary().contains("refused"));
        report.refused_rounds = 3;
        assert!(report.summary().contains("3 refused below the resilience floor"));
    }
}
