//! Structured results of a training run.

use agg_metrics::{LatencyBreakdown, ThroughputMeter, TrainingTrace};
use serde::{Deserialize, Serialize};

/// Everything a training run produced, ready for the experiment harness to
/// turn into the paper's tables and figures.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Human-readable label of the run (GAR, `f`, batch size, transport).
    pub label: String,
    /// Accuracy/loss versus simulated time and model updates.
    pub trace: TrainingTrace,
    /// Aggregator throughput.
    pub throughput: ThroughputMeter,
    /// Per-round latency breakdown (Figure 4).
    pub latency: LatencyBreakdown,
    /// Model updates actually applied.
    pub steps_completed: u64,
    /// Rounds skipped because the GAR rejected the submission (e.g. every
    /// gradient was dropped by the transport).
    pub skipped_updates: u64,
    /// Rounds the server *refused* to aggregate because churn dropped the
    /// live worker set below the active rule's resilience floor (elastic
    /// membership). A refusal is a graceful degradation, not an error: the
    /// configured [`crate::membership::RefusalPolicy`] decides whether the
    /// last model is held or the round pauses.
    pub refused_rounds: u64,
    /// Packets rejected by the epoch fence across the run: late packets from
    /// evicted workers and first-round submissions of stale-epoch rejoiners.
    pub stale_epoch_rejects: u64,
    /// Packets rejected by the wire-integrity check (CRC32 mismatch,
    /// truncation, unknown wire version) across the run. Every fault the
    /// chaos plan injects lands here — a corrupted packet never reaches an
    /// arena row; its coordinates are either retransmitted or degrade like a
    /// transport loss.
    pub corrupt_rejects: u64,
    /// Rounds in which the GAR's selection set contained at least one row
    /// submitted by a Byzantine worker (0 means the selected set stayed
    /// honest every round). Only counted when the engine computes selection
    /// feedback — distance-based rules with Byzantine workers, an adaptive
    /// attack, or a fault plan.
    pub byzantine_selected_rounds: u64,
    /// Total simulated wall-clock time of the run, in seconds.
    pub simulated_time_sec: f64,
}

impl TrainingReport {
    /// Final test accuracy (0 when nothing was evaluated).
    pub fn final_accuracy(&self) -> f64 {
        self.trace.final_accuracy()
    }

    /// Best test accuracy seen during the run.
    pub fn best_accuracy(&self) -> f64 {
        self.trace.best_accuracy()
    }

    /// Simulated time to reach the given accuracy, if ever reached.
    pub fn time_to_accuracy(&self, target: f64) -> Option<f64> {
        self.trace.time_to_accuracy(target)
    }

    /// One-line summary for experiment logs.
    pub fn summary(&self) -> String {
        let refusals = if self.refused_rounds > 0 {
            format!(" + {} refused below the resilience floor", self.refused_rounds)
        } else {
            String::new()
        };
        format!(
            "{}: {} steps ({} skipped{refusals}), {:.1}s simulated, final accuracy {:.3}, throughput {:.2} grad/s, aggregation share {:.1}%",
            self.label,
            self.steps_completed,
            self.skipped_updates,
            self.simulated_time_sec,
            self.final_accuracy(),
            self.throughput.gradients_per_sec(),
            100.0 * self.latency.aggregation_share(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_metrics::TracePoint;

    #[test]
    fn summary_mentions_the_label_and_accuracy() {
        let mut report = TrainingReport { label: "multi-krum f=4".into(), ..Default::default() };
        report.trace.record(TracePoint { step: 10, time_sec: 1.0, accuracy: 0.5, loss: 1.0 });
        report.steps_completed = 10;
        let s = report.summary();
        assert!(s.contains("multi-krum f=4"));
        assert!(s.contains("0.500"));
        assert_eq!(report.final_accuracy(), 0.5);
        assert_eq!(report.best_accuracy(), 0.5);
        assert_eq!(report.time_to_accuracy(0.4), Some(1.0));
        assert_eq!(report.time_to_accuracy(0.9), None);
    }

    #[test]
    fn default_report_is_empty() {
        let report = TrainingReport::default();
        assert_eq!(report.final_accuracy(), 0.0);
        assert_eq!(report.steps_completed, 0);
        assert_eq!(report.refused_rounds, 0);
        assert_eq!(report.stale_epoch_rejects, 0);
        assert_eq!(report.corrupt_rejects, 0);
        assert_eq!(report.byzantine_selected_rounds, 0);
    }

    #[test]
    fn summary_surfaces_refused_rounds() {
        let mut report = TrainingReport { label: "bulyan f=4".into(), ..Default::default() };
        assert!(!report.summary().contains("refused"));
        report.refused_rounds = 3;
        assert!(report.summary().contains("3 refused below the resilience floor"));
    }
}
