//! The streaming round pipeline: double-buffered submission arenas plus the
//! incremental distance accumulator.
//!
//! The barrier round loop waits for every submission, then starts the
//! O(n²·d) distance work from scratch. The streaming loop inverts that
//! around per-row completion events:
//!
//! * **Per-row distance work.** When a worker's row completes, its distance
//!   contributions against every previously arrived row fold into
//!   [`agg_tensor::StreamingDistances`] immediately, so by the time the
//!   quorum is reached the matrix is one cheap cross-shard fold away.
//!   Bit-identity with the batch kernels is pinned at the tensor layer, so
//!   flipping streaming on or off never changes a round's result.
//! * **Double-buffered arenas.** The pipeline owns two submission arenas and
//!   flips them every round: round `t + 1`'s ingest lands in one arena while
//!   round `t`'s aggregation can still read the other, so the wire never
//!   waits on the GAR kernel.
//! * **Quorum.** [`QuorumPolicy`] decides when the server stops waiting:
//!   after every worker (the paper's synchronous baseline), after the first
//!   `n − f` arrivals (stragglers are indistinguishable from Byzantine
//!   workers, so a GAR tolerating `f` of them may simply not wait), or after
//!   an explicit count. Late rows are dropped exactly like transport losses
//!   — the round compacts them away — which keeps the quorum semantics
//!   identical whether streaming is on or off.

use crate::{PsError, Result};
use agg_tensor::{DistanceMatrix, GradientBatch, StreamingDistances};
use serde::{Deserialize, Serialize};

/// When the server stops waiting for stragglers and aggregates the round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum QuorumPolicy {
    /// Wait for every worker — the paper's synchronous baseline and the
    /// default.
    #[default]
    All,
    /// Aggregate at the first `n − f` arrivals. A GAR declared to tolerate
    /// `f` Byzantine workers tolerates `f` missing ones just the same, so
    /// the round never waits for the `f` slowest submissions.
    NMinusF,
    /// Aggregate at the first `k` arrivals (clamped to `1..=n`).
    Count(usize),
}

impl QuorumPolicy {
    /// How many arrivals the round waits for under this policy.
    pub fn accept_count(&self, workers: usize, f: usize) -> usize {
        match *self {
            QuorumPolicy::All => workers,
            QuorumPolicy::NMinusF => workers.saturating_sub(f).max(1),
            QuorumPolicy::Count(k) => k.clamp(1, workers),
        }
    }
}

/// Streaming knobs of the round engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct StreamingConfig {
    /// Run distance work per arriving row instead of batch-at-barrier. Off
    /// by default; results are bit-identical either way.
    pub enabled: bool,
    /// When the round stops waiting for stragglers. Applies in both modes —
    /// the quorum semantic is independent of the streaming mechanism.
    pub quorum: QuorumPolicy,
}

/// Double-buffered submission arenas plus (optionally) the incremental
/// distance accumulator — the server-side state of a streaming round.
#[derive(Debug)]
pub struct RoundPipeline {
    arenas: [GradientBatch; 2],
    front: usize,
    distances: Option<StreamingDistances>,
}

impl RoundPipeline {
    /// Two empty arenas sized for `workers` rows of dimension `dim`.
    pub fn new(dim: usize, workers: usize) -> Self {
        RoundPipeline {
            arenas: [
                GradientBatch::with_capacity(dim, workers),
                GradientBatch::with_capacity(dim, workers),
            ],
            front: 0,
            distances: None,
        }
    }

    /// Enables per-row distance accumulation matching the server tier:
    /// `shards == 1` replays the flat pairwise kernel, `shards > 1` the
    /// column-blocked partial pipeline of the sharded aggregator — both
    /// bit-identical to the batch path they replace.
    ///
    /// # Errors
    ///
    /// Returns [`PsError`] when the shard plan cannot be built.
    pub fn enable_distance_streaming(
        &mut self,
        slots: usize,
        dim: usize,
        shards: usize,
    ) -> Result<()> {
        self.distances = Some(if shards > 1 {
            StreamingDistances::sharded(slots, dim, shards).map_err(PsError::from)?
        } else {
            StreamingDistances::flat(slots, dim)
        });
        Ok(())
    }

    /// Whether per-row distance accumulation is active.
    pub fn distance_streaming(&self) -> bool {
        self.distances.is_some()
    }

    /// Flips the buffers and prepares the new front arena for `rows`
    /// submissions. The previous round's arena is left untouched in the back
    /// buffer, so an in-flight aggregation can keep reading it while this
    /// round's ingest proceeds.
    pub fn begin_round(&mut self, rows: usize) {
        self.front ^= 1;
        self.arenas[self.front].resize_rows(rows);
        if let Some(distances) = self.distances.as_mut() {
            distances.reset();
        }
    }

    /// The current round's submission arena.
    pub fn arena(&self) -> &GradientBatch {
        &self.arenas[self.front]
    }

    /// Mutable view of the current round's submission arena (workers deliver
    /// into disjoint rows of it).
    pub fn arena_mut(&mut self) -> &mut GradientBatch {
        &mut self.arenas[self.front]
    }

    /// Per-row completion event: folds the freshly completed arena row into
    /// the distance state against every previously arrived row. A no-op when
    /// distance streaming is disabled.
    ///
    /// # Panics
    ///
    /// Panics when `slot` is out of range or already completed this round
    /// (upstream deduplication is the caller's contract).
    pub fn row_done(&mut self, slot: usize) {
        if let Some(distances) = self.distances.as_mut() {
            distances.row_arrived(&self.arenas[self.front], slot);
        }
    }

    /// Extracts the distance matrix over the compacted slot set `keep`
    /// (strictly ascending worker slots, all completed). `None` when
    /// distance streaming is disabled — the caller falls back to the batch
    /// kernels.
    pub fn matrix(&self, keep: &[usize]) -> Option<DistanceMatrix> {
        self.distances.as_ref().map(|distances| distances.matrix(keep))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_tensor::rng::{gaussian_fill, seeded_rng};

    #[test]
    fn quorum_accept_counts() {
        assert_eq!(QuorumPolicy::All.accept_count(19, 4), 19);
        assert_eq!(QuorumPolicy::NMinusF.accept_count(19, 4), 15);
        assert_eq!(QuorumPolicy::NMinusF.accept_count(3, 5), 1);
        assert_eq!(QuorumPolicy::Count(7).accept_count(19, 4), 7);
        assert_eq!(QuorumPolicy::Count(0).accept_count(19, 4), 1);
        assert_eq!(QuorumPolicy::Count(50).accept_count(19, 4), 19);
        assert_eq!(QuorumPolicy::default(), QuorumPolicy::All);
    }

    #[test]
    fn buffers_flip_and_the_back_round_survives() {
        let mut pipeline = RoundPipeline::new(4, 3);
        pipeline.begin_round(3);
        pipeline.arena_mut().row_mut(0).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let first_round_row = pipeline.arena().row(0).to_vec();
        pipeline.begin_round(3);
        pipeline.arena_mut().row_mut(0).copy_from_slice(&[9.0; 4]);
        // The previous round's arena is in the back buffer, untouched.
        pipeline.begin_round(3);
        assert_eq!(pipeline.arena().row(0), first_round_row.as_slice());
    }

    #[test]
    fn streamed_matrix_matches_the_batch_kernel() {
        let mut pipeline = RoundPipeline::new(257, 6);
        pipeline.enable_distance_streaming(6, 257, 1).unwrap();
        assert!(pipeline.distance_streaming());
        let mut rng = seeded_rng(41);
        pipeline.begin_round(6);
        for slot in 0..6 {
            gaussian_fill(&mut rng, pipeline.arena_mut().row_mut(slot), 0.0, 1.0);
        }
        for slot in [4, 1, 5, 0, 3, 2] {
            pipeline.row_done(slot);
        }
        let keep: Vec<usize> = (0..6).collect();
        let streamed = pipeline.matrix(&keep).unwrap();
        let batch = pipeline.arena().pairwise_squared_distances();
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(streamed.get(i, j).to_bits(), batch.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn matrix_is_none_without_distance_streaming() {
        let mut pipeline = RoundPipeline::new(8, 2);
        pipeline.begin_round(2);
        pipeline.row_done(0); // no-op
        assert!(pipeline.matrix(&[0]).is_none());
    }
}
