//! The simulation time model.
//!
//! The reproduction runs gradient numerics for real but does not own a 20-node
//! Grid5000 cluster, so wall-clock time is *simulated*:
//!
//! * **Gradient computation** — `flops(model) · batch / node_flops_per_sec`
//!   plus a fixed per-batch overhead (framework/launch cost).
//! * **Communication** — handled by `agg-net`'s transports (bytes over a
//!   bandwidth/latency link, with the TCP congestion model under loss).
//! * **Aggregation** — the GAR kernel is executed and *measured* for real,
//!   then linearly rescaled when the experiment asks to model a larger
//!   gradient dimension than the proxy model actually has (all implemented
//!   GARs are `O(n²·d)`, i.e. linear in `d` for a fixed worker count).
//!
//! The optional [`VirtualModelCost`] is the knob for that rescaling: the
//! Figure 3–8 experiments train a small proxy model for accuracy while
//! charging time as if the model were the paper's 1.75 M-parameter CNN (or
//! the ResNet50 stand-in), which preserves the compute/communication/
//! aggregation ratios the figures depend on. DESIGN.md §6 documents this
//! substitution.

use serde::{Deserialize, Serialize};

/// Pretend-costs of a model larger than the proxy actually trained.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VirtualModelCost {
    /// Gradient dimension to charge for (e.g. 1.75 M for the paper CNN).
    pub dimension: usize,
    /// Forward FLOPs per sample to charge for.
    pub flops_per_sample: u64,
}

impl VirtualModelCost {
    /// The paper's Table 1 CNN (≈1.75 M parameters, ≈65 MFLOP forward per
    /// sample).
    pub fn paper_cnn() -> Self {
        VirtualModelCost { dimension: 1_756_426, flops_per_sample: 65_000_000 }
    }

    /// The ResNet50-class large model of Figure 5(b) (≈25 M parameters,
    /// ≈4 GFLOP forward per sample).
    pub fn resnet50() -> Self {
        VirtualModelCost { dimension: 25_000_000, flops_per_sample: 4_000_000_000 }
    }
}

/// The time model used by the training engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed overhead charged per gradient computation (framework dispatch,
    /// data loading), in seconds.
    pub gradient_overhead_sec: f64,
    /// Multiplier applied to forward FLOPs to account for the backward pass
    /// (≈2× forward) and optimizer bookkeeping.
    pub backward_multiplier: f64,
    /// Fixed time charged per server model update (optimizer step), per
    /// million parameters.
    pub update_sec_per_million_params: f64,
    /// Optional virtual model whose dimension/FLOPs are charged instead of
    /// the proxy model's.
    pub virtual_model: Option<VirtualModelCost>,
}

impl CostModel {
    /// Costs calibrated to the paper's platform (see module docs): with the
    /// Table 1 CNN and a mini-batch of 100 a worker takes ≈0.4 s per
    /// gradient, matching the ≈48 batches/s the paper reports for 18
    /// workers.
    pub fn paper_like() -> Self {
        CostModel {
            gradient_overhead_sec: 5e-3,
            backward_multiplier: 3.0,
            update_sec_per_million_params: 2e-3,
            virtual_model: None,
        }
    }

    /// Same cost constants but charging for a virtual (larger) model.
    pub fn with_virtual_model(mut self, virtual_model: VirtualModelCost) -> Self {
        self.virtual_model = Some(virtual_model);
        self
    }

    /// Effective gradient dimension to charge communication/aggregation for.
    pub fn effective_dimension(&self, actual_dimension: usize) -> usize {
        self.virtual_model.map(|v| v.dimension).unwrap_or(actual_dimension)
    }

    /// Effective forward FLOPs per sample to charge computation for.
    pub fn effective_flops(&self, actual_flops: u64) -> u64 {
        self.virtual_model.map(|v| v.flops_per_sample).unwrap_or(actual_flops)
    }

    /// Time for one worker to compute one mini-batch gradient.
    pub fn gradient_time(
        &self,
        model_forward_flops: u64,
        batch_size: usize,
        node_flops_per_sec: f64,
    ) -> f64 {
        let flops = self.effective_flops(model_forward_flops) as f64
            * batch_size as f64
            * self.backward_multiplier;
        self.gradient_overhead_sec + flops / node_flops_per_sec.max(1.0)
    }

    /// Time charged for the server's optimizer step.
    pub fn update_time(&self, actual_dimension: usize) -> f64 {
        let d = self.effective_dimension(actual_dimension) as f64;
        self.update_sec_per_million_params * d / 1e6
    }

    /// Rescales a measured aggregation wall-clock time from the proxy
    /// dimension to the effective dimension (linear in `d`).
    pub fn scale_aggregation_time(&self, measured_sec: f64, actual_dimension: usize) -> f64 {
        if actual_dimension == 0 {
            return measured_sec;
        }
        let factor = self.effective_dimension(actual_dimension) as f64 / actual_dimension as f64;
        measured_sec * factor
    }

    /// Number of bytes exchanged for one gradient or one model copy.
    pub fn payload_bytes(&self, actual_dimension: usize) -> usize {
        self.effective_dimension(actual_dimension) * std::mem::size_of::<f32>()
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cnn_gradient_time_is_sub_second() {
        // Table 1 CNN, b = 100, Grid5000-class node (~50 GFLOP/s).
        let cost = CostModel::paper_like().with_virtual_model(VirtualModelCost::paper_cnn());
        let t = cost.gradient_time(1, 100, 5.0e10);
        assert!(t > 0.1 && t < 1.5, "gradient time {t} out of the plausible range");
    }

    #[test]
    fn virtual_model_overrides_actual_costs() {
        let cost = CostModel::paper_like().with_virtual_model(VirtualModelCost::paper_cnn());
        assert_eq!(cost.effective_dimension(1000), 1_756_426);
        assert_eq!(cost.effective_flops(5), 65_000_000);
        let plain = CostModel::paper_like();
        assert_eq!(plain.effective_dimension(1000), 1000);
        assert_eq!(plain.effective_flops(5), 5);
    }

    #[test]
    fn gradient_time_scales_with_batch_and_node_speed() {
        let cost = CostModel::paper_like();
        let slow = cost.gradient_time(1_000_000, 10, 1e9);
        let fast = cost.gradient_time(1_000_000, 10, 1e10);
        assert!(slow > fast);
        let small_batch = cost.gradient_time(1_000_000, 10, 1e9);
        let big_batch = cost.gradient_time(1_000_000, 100, 1e9);
        assert!(big_batch > small_batch);
    }

    #[test]
    fn aggregation_scaling_is_linear_in_dimension() {
        let cost = CostModel::paper_like().with_virtual_model(VirtualModelCost::paper_cnn());
        let measured = 1e-3;
        let scaled = cost.scale_aggregation_time(measured, 1756);
        assert!((scaled / measured - 1000.0).abs() / 1000.0 < 0.01);
        // Without a virtual model the measurement passes through.
        assert_eq!(CostModel::paper_like().scale_aggregation_time(1e-3, 1756), 1e-3);
        // Degenerate dimension does not divide by zero.
        assert_eq!(cost.scale_aggregation_time(1e-3, 0), 1e-3);
    }

    #[test]
    fn payload_bytes_are_four_per_parameter() {
        let cost = CostModel::paper_like();
        assert_eq!(cost.payload_bytes(1000), 4000);
        let virt = cost.with_virtual_model(VirtualModelCost::resnet50());
        assert_eq!(virt.payload_bytes(1000), 100_000_000);
    }

    #[test]
    fn update_time_grows_with_dimension() {
        let cost = CostModel::paper_like();
        assert!(cost.update_time(10_000_000) > cost.update_time(1_000_000));
    }
}
