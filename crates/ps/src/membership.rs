//! Elastic membership: epoch-fenced views over a churning worker set.
//!
//! The paper deploys a *static* cluster — `n` workers declared up front, the
//! GAR's `f` bound checked once. Real deployments churn: workers crash,
//! rejoin with stale state, or degrade into stragglers. This module gives the
//! engine a [`MembershipView`] — the server's authoritative picture of who is
//! in the round — driven by a deterministic [`FaultPlan`]:
//!
//! * **Epochs.** Every change to the *live set* (a crash or a rejoin)
//!   increments the view's epoch. The epoch is stamped into every wire packet
//!   ([`agg_net::Packet::epoch`]) and fenced at the server's assemblers, so a
//!   late packet from an evicted worker — or a rejoiner that has not yet
//!   learned the new view — can never fill a row of the current round.
//! * **Resilience floor.** After every transition the engine re-derives the
//!   active rule's minimum worker count via
//!   [`agg_core::resilience::resilience_floor`] and *refuses to aggregate*
//!   while the live set is below it, degrading per [`RefusalPolicy`] instead
//!   of silently running a GAR whose `n ≥ g(f)` precondition no longer holds.
//! * **Determinism.** The view at round `r` is a pure function of the plan
//!   and `r` ([`MembershipView::at_round`]): replaying the same plan yields
//!   bit-identical runs under any thread schedule.

use crate::{PsError, Result};
use agg_core::{resilience, GarKind};
use agg_tensor::rng::{derive_seed, sample_without_replacement, seeded_rng};
use serde::{Deserialize, Serialize};

/// One scheduled membership transition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultAction {
    /// The worker crashes: it stops computing and submitting, and its live
    /// slot leaves the view (epoch bump).
    Crash,
    /// A crashed worker comes back. It rejoins the live set (epoch bump) but
    /// still carries the epoch it crashed with, so its first round's
    /// submission is fenced as stale; it learns the current view at the next
    /// round's broadcast. A `Rejoin` of a merely slowed worker clears the
    /// slowdown without an epoch bump (it never left the view).
    Rejoin,
    /// The worker degrades into a straggler: every subsequent round's arrival
    /// is delayed by this many simulated seconds. Feeds the quorum policy —
    /// under `n − f` quorum the slowed worker's rows simply stop making the
    /// cut. No epoch bump (the live set is unchanged).
    SlowBy {
        /// Extra arrival delay in simulated seconds.
        delay_sec: f64,
    },
}

/// A [`FaultAction`] bound to a round and a worker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Round (engine step) at whose start the action applies.
    pub round: u64,
    /// Worker id the action applies to.
    pub worker: usize,
    /// What happens.
    pub action: FaultAction,
}

/// A deterministic churn schedule: the full list of membership transitions a
/// run will experience. Empty by default — static membership, the seed
/// behaviour, bit for bit.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled transitions, in any order (the view applies them sorted
    /// by round, then worker id, so the plan's ordering never matters).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: static membership.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan schedules no transitions.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Convenience builder.
    pub fn with(mut self, round: u64, worker: usize, action: FaultAction) -> Self {
        self.events.push(FaultEvent { round, worker, action });
        self
    }

    /// A seeded crash→rejoin schedule: `crashes` workers (drawn without
    /// replacement from `0..workers`) each crash at a derived round and
    /// rejoin a few rounds later. Deterministic in
    /// `(seed, workers, rounds, crashes)`.
    pub fn seeded_churn(seed: u64, workers: usize, rounds: u64, crashes: usize) -> Self {
        let mut plan = FaultPlan::default();
        if workers == 0 || rounds < 3 {
            return plan;
        }
        let mut rng = seeded_rng(derive_seed(seed, 0xC4A5));
        let picked = sample_without_replacement(&mut rng, workers, crashes.min(workers));
        for (stream, worker) in picked.into_iter().enumerate() {
            // Crash somewhere in the first two thirds, rejoin 1-3 rounds on:
            // both events always land inside the run.
            let draw = derive_seed(derive_seed(seed, 0x5EED), stream as u64);
            let crash_at = 1 + draw % (rounds * 2 / 3).max(1);
            let rejoin_at = (crash_at + 1 + (draw >> 32) % 3).min(rounds - 1);
            plan = plan.with(crash_at, worker, FaultAction::Crash);
            if rejoin_at > crash_at {
                plan = plan.with(rejoin_at, worker, FaultAction::Rejoin);
            }
        }
        plan
    }

    /// The events scheduled for `round`, in deterministic (worker id) order.
    fn events_at(&self, round: u64) -> Vec<FaultEvent> {
        let mut events: Vec<FaultEvent> =
            self.events.iter().copied().filter(|e| e.round == round).collect();
        events.sort_by_key(|e| e.worker);
        events
    }
}

/// How the engine degrades when the live set falls below the active rule's
/// resilience floor (`n < g(f)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RefusalPolicy {
    /// The server refuses the aggregation but keeps serving the last model:
    /// the round's broadcast still happens (and is charged to the simulated
    /// clock), no update is applied. The default.
    #[default]
    HoldLastRound,
    /// The server pauses outright: no broadcast, no clock advance, no update
    /// — the round is a pure no-op until membership recovers.
    Pause,
}

/// Health of one worker slot in the current view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkerHealth {
    /// In the live set, arriving on time.
    Live,
    /// Out of the live set: computes nothing, submits nothing.
    Crashed,
    /// In the live set but demoted to straggler: every arrival is delayed.
    Slowed {
        /// Extra arrival delay in simulated seconds.
        delay_sec: f64,
    },
}

impl WorkerHealth {
    /// Whether this slot is part of the live set.
    pub fn is_live(&self) -> bool {
        !matches!(self, WorkerHealth::Crashed)
    }
}

/// What [`MembershipView::apply_round`] changed at the start of a round.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundTransitions {
    /// Workers that rejoined the live set this round. They still carry the
    /// epoch they crashed with: their first submission is fenced as stale
    /// and they sync at the next round's broadcast.
    pub rejoined: Vec<usize>,
    /// Workers that crashed this round.
    pub crashed: Vec<usize>,
    /// Whether the epoch advanced (any live-set change).
    pub epoch_changed: bool,
}

/// The server's authoritative picture of the worker set: an epoch number and
/// per-worker health, advanced round by round from a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct MembershipView {
    epoch: u32,
    health: Vec<WorkerHealth>,
}

impl MembershipView {
    /// The initial view: epoch 0, every worker live — indistinguishable from
    /// static membership until a plan event fires.
    pub fn new(workers: usize) -> Self {
        MembershipView { epoch: 0, health: vec![WorkerHealth::Live; workers] }
    }

    /// Current view epoch. Starts at 0 and increments on every live-set
    /// change; the engine stamps it into every packet and fences the
    /// assemblers at it.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Health of worker `id` (out-of-range ids read as crashed).
    pub fn health(&self, id: usize) -> WorkerHealth {
        self.health.get(id).copied().unwrap_or(WorkerHealth::Crashed)
    }

    /// Number of workers in the live set.
    pub fn live_count(&self) -> usize {
        self.health.iter().filter(|h| h.is_live()).count()
    }

    /// Whether the live set satisfies `rule`'s resilience floor for the
    /// declared `f` — the gate the engine checks after every transition.
    pub fn satisfies_floor(&self, rule: GarKind, f: usize) -> bool {
        self.live_count() >= resilience::resilience_floor(rule, f)
    }

    /// Applies the plan's events for `round` and returns what changed.
    /// Redundant events (crashing a crashed worker, rejoining a live one)
    /// are no-ops and never bump the epoch.
    pub fn apply_round(&mut self, plan: &FaultPlan, round: u64) -> RoundTransitions {
        let mut transitions = RoundTransitions::default();
        for event in plan.events_at(round) {
            let Some(slot) = self.health.get_mut(event.worker) else { continue };
            match (event.action, *slot) {
                (FaultAction::Crash, WorkerHealth::Live | WorkerHealth::Slowed { .. }) => {
                    *slot = WorkerHealth::Crashed;
                    transitions.crashed.push(event.worker);
                    transitions.epoch_changed = true;
                }
                (FaultAction::Rejoin, WorkerHealth::Crashed) => {
                    *slot = WorkerHealth::Live;
                    transitions.rejoined.push(event.worker);
                    transitions.epoch_changed = true;
                }
                // Clearing a slowdown keeps the live set intact: no bump.
                (FaultAction::Rejoin, WorkerHealth::Slowed { .. }) => *slot = WorkerHealth::Live,
                (
                    FaultAction::SlowBy { delay_sec },
                    WorkerHealth::Live | WorkerHealth::Slowed { .. },
                ) => {
                    *slot = WorkerHealth::Slowed { delay_sec };
                }
                _ => {}
            }
        }
        if transitions.epoch_changed {
            self.epoch += 1;
        }
        transitions
    }

    /// The view *after* the transitions of round `round` have been applied —
    /// a pure function of `(plan, round)`, used by tests to pin that the
    /// engine's incremental state matches an independent replay.
    pub fn at_round(workers: usize, plan: &FaultPlan, round: u64) -> Self {
        let mut view = MembershipView::new(workers);
        for r in 0..=round {
            view.apply_round(plan, r);
        }
        view
    }
}

/// Validates a plan against a run shape (worker count, round count): every
/// event must name a known worker, land inside the run, and carry a sane
/// delay. Mirrors the `worker_extra_delay_sec` checks in
/// [`crate::config::RunnerConfig::validate`].
///
/// # Errors
///
/// Returns [`PsError::InvalidConfig`] describing the first offending event.
pub fn validate_plan(plan: &FaultPlan, workers: usize, max_steps: u64) -> Result<()> {
    for event in &plan.events {
        if event.worker >= workers {
            return Err(PsError::InvalidConfig(format!(
                "fault plan references worker {} but the run has only {} workers",
                event.worker, workers
            )));
        }
        if event.round >= max_steps {
            return Err(PsError::InvalidConfig(format!(
                "fault plan schedules an event at round {} but the run stops after {} steps",
                event.round, max_steps
            )));
        }
        if let FaultAction::SlowBy { delay_sec } = event.action {
            if !delay_sec.is_finite() || delay_sec < 0.0 {
                return Err(PsError::InvalidConfig(format!(
                    "fault plan slows worker {} by a non-finite or negative delay",
                    event.worker
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_advances_only_on_live_set_changes() {
        let plan = FaultPlan::empty()
            .with(1, 2, FaultAction::Crash)
            .with(1, 4, FaultAction::SlowBy { delay_sec: 3.0 })
            .with(3, 2, FaultAction::Rejoin)
            .with(4, 4, FaultAction::Rejoin);
        let mut view = MembershipView::new(5);
        assert_eq!(view.epoch(), 0);
        assert_eq!(view.live_count(), 5);

        let t = view.apply_round(&plan, 0);
        assert_eq!(t, RoundTransitions::default());
        assert_eq!(view.epoch(), 0);

        let t = view.apply_round(&plan, 1);
        assert_eq!(t.crashed, vec![2]);
        assert!(t.epoch_changed);
        assert_eq!(view.epoch(), 1);
        assert_eq!(view.live_count(), 4);
        assert_eq!(view.health(2), WorkerHealth::Crashed);
        assert_eq!(view.health(4), WorkerHealth::Slowed { delay_sec: 3.0 });
        assert!(view.health(4).is_live());

        view.apply_round(&plan, 2);
        assert_eq!(view.epoch(), 1);

        let t = view.apply_round(&plan, 3);
        assert_eq!(t.rejoined, vec![2]);
        assert_eq!(view.epoch(), 2);
        assert_eq!(view.live_count(), 5);

        // Rejoin of a slowed worker clears the slowdown without a bump.
        view.apply_round(&plan, 4);
        assert_eq!(view.epoch(), 2);
        assert_eq!(view.health(4), WorkerHealth::Live);
    }

    #[test]
    fn redundant_events_are_no_ops() {
        let plan = FaultPlan::empty()
            .with(0, 1, FaultAction::Crash)
            .with(1, 1, FaultAction::Crash)
            .with(2, 0, FaultAction::Rejoin)
            .with(3, 9, FaultAction::Crash);
        let mut view = MembershipView::new(3);
        view.apply_round(&plan, 0);
        assert_eq!(view.epoch(), 1);
        view.apply_round(&plan, 1); // already crashed
        view.apply_round(&plan, 2); // already live
        view.apply_round(&plan, 3); // unknown worker
        assert_eq!(view.epoch(), 1);
        assert_eq!(view.health(9), WorkerHealth::Crashed, "out of range reads crashed");
    }

    #[test]
    fn at_round_replays_the_incremental_state() {
        let plan = FaultPlan::seeded_churn(7, 9, 40, 3);
        assert!(!plan.is_empty());
        let mut incremental = MembershipView::new(9);
        for round in 0..40 {
            incremental.apply_round(&plan, round);
            assert_eq!(incremental, MembershipView::at_round(9, &plan, round));
        }
        // Every crash either rejoins inside the run or stays down; either
        // way all events land in range.
        assert!(validate_plan(&plan, 9, 40).is_ok());
    }

    #[test]
    fn floor_check_follows_the_rule() {
        let mut view = MembershipView::new(19);
        assert!(view.satisfies_floor(GarKind::Bulyan, 4)); // floor 19
        let plan = FaultPlan::empty().with(0, 3, FaultAction::Crash);
        view.apply_round(&plan, 0);
        assert!(!view.satisfies_floor(GarKind::Bulyan, 4), "18 < 4f+3 = 19");
        assert!(view.satisfies_floor(GarKind::MultiKrum, 4), "18 ≥ 2f+3 = 11");
        assert!(view.satisfies_floor(GarKind::Average, 4), "averaging has no floor");
    }

    #[test]
    fn plan_validation_rejects_bad_events() {
        let plan = FaultPlan::empty().with(2, 7, FaultAction::Crash);
        assert!(validate_plan(&plan, 5, 10).is_err(), "unknown worker");
        assert!(validate_plan(&plan, 8, 10).is_ok());
        assert!(validate_plan(&plan, 8, 2).is_err(), "round past max_steps");
        let slow = FaultPlan::empty().with(0, 0, FaultAction::SlowBy { delay_sec: -1.0 });
        assert!(validate_plan(&slow, 1, 1).is_err(), "negative delay");
        let nan = FaultPlan::empty().with(0, 0, FaultAction::SlowBy { delay_sec: f64::NAN });
        assert!(validate_plan(&nan, 1, 1).is_err(), "non-finite delay");
    }

    #[test]
    fn plans_round_trip_through_json() {
        let plan = FaultPlan::empty()
            .with(3, 1, FaultAction::Crash)
            .with(5, 1, FaultAction::Rejoin)
            .with(2, 0, FaultAction::SlowBy { delay_sec: 0.5 });
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        let policy_json = serde_json::to_string(&RefusalPolicy::Pause).unwrap();
        let policy: RefusalPolicy = serde_json::from_str(&policy_json).unwrap();
        assert_eq!(policy, RefusalPolicy::Pause);
        assert_eq!(RefusalPolicy::default(), RefusalPolicy::HoldLastRound);
    }

    #[test]
    fn seeded_churn_is_deterministic_and_in_range() {
        let a = FaultPlan::seeded_churn(11, 12, 30, 4);
        let b = FaultPlan::seeded_churn(11, 12, 30, 4);
        assert_eq!(a, b);
        let c = FaultPlan::seeded_churn(12, 12, 30, 4);
        assert_ne!(a, c, "different seeds give different schedules");
        assert!(validate_plan(&a, 12, 30).is_ok());
        assert!(FaultPlan::seeded_churn(1, 0, 30, 4).is_empty());
        assert!(FaultPlan::seeded_churn(1, 5, 2, 4).is_empty());
    }
}
