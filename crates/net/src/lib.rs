//! # agg-net — the simulated communication layer
//!
//! The paper modifies TensorFlow's networking stack to add **lossyMPI**, a
//! UDP-based transport that trades reliability for speed, and relies on the
//! Byzantine-resilient GAR above it to absorb whatever the transport loses
//! (§3.3). This crate reproduces that layer as a discrete simulation:
//!
//! * [`packet`] — gradients are split into MTU-sized packets with sequence
//!   numbers and a small reliable metadata header, exactly the scheme the
//!   paper describes for packet ordering.
//! * [`link`] — a lossy link model: independent packet drops, reordering and
//!   duplication at configurable rates (the paper injects a 10 % drop rate
//!   with `tc`), plus [`link::ChaosPlan`] — a seeded schedule of dirtier
//!   wire faults (bit flips, truncation, mutated duplicates, reorder
//!   bursts, delay spikes, transient partitions) that the v2 wire format's
//!   CRC32 integrity envelope must catch.
//! * [`assembler`] — [`assembler::RoundAssembler`]: zero-copy reassembly of
//!   whatever arrived straight into a caller-provided arena row, tracking
//!   missing coordinates with a compact bitset.
//! * [`transport`] — the two transports compared in Figure 8:
//!   [`transport::ReliableTransport`] (TCP/gRPC-like: delivers everything,
//!   pays for it with retransmissions and congestion back-off under loss) and
//!   [`transport::LossyTransport`] (UDP/lossyMPI-like: constant speed, lost
//!   coordinates surface according to a [`transport::LossPolicy`]). Both
//!   deliver in place via [`transport::Transport::transfer_into`], so one
//!   training round goes wire → arena with no intermediate `Vector`.
//!
//! Nothing here opens real sockets: the parameter-server simulator in
//! `agg-ps` drives these models and charges the returned transfer times to
//! its discrete-event clock.

pub mod assembler;
pub mod error;
pub mod link;
pub mod packet;
pub mod transport;

pub use assembler::{FeedOutcome, RoundAssembler, ShardedRoundAssembler};
pub use error::NetError;
pub use link::{ChaosConfig, ChaosMode, ChaosPlan, ChaosStats, LinkConfig, LinkStats, LossyLink};
pub use packet::{
    crc32, get_f32_slice_le, put_f32_slice_le, reseal_packet_bytes, wire_integrity_error,
    GradientCodec, Packet, WIRE_VERSION,
};
pub use transport::{
    LossPolicy, LossyTransport, ReliableTransport, RetransmitConfig, RowTransfer, TransferOutcome,
    Transport,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NetError>;
