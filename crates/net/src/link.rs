//! The lossy link model: independent packet drops, reordering and
//! duplication, as injected in the paper's Figure 8 experiments with `tc` —
//! plus the seeded chaos layer ([`ChaosPlan`]) that damages the packets a
//! link *does* deliver: bit flips, truncation, duplication-with-mutation,
//! reorder bursts, delay spikes and transient partitions.

use crate::packet::Packet;
use crate::{NetError, Result};
use agg_tensor::rng::{derive_seed, seeded_rng};
use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Static characteristics of a (simulated) network link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Usable bandwidth in bytes per second (the paper's clusters use 10 Gbps
    /// Ethernet ≈ 1.25 GB/s).
    pub bandwidth_bytes_per_sec: f64,
    /// One-way propagation latency in seconds.
    pub latency_sec: f64,
    /// Independent probability that a packet is dropped.
    pub drop_rate: f64,
    /// Probability that a delivered packet is displaced in the arrival order.
    pub reorder_rate: f64,
    /// Probability that a delivered packet is duplicated.
    pub duplicate_rate: f64,
}

impl LinkConfig {
    /// A clean 10 Gbps data-centre link (the paper's baseline environment).
    pub fn datacenter() -> Self {
        LinkConfig {
            bandwidth_bytes_per_sec: 1.25e9,
            latency_sec: 100e-6,
            drop_rate: 0.0,
            reorder_rate: 0.0,
            duplicate_rate: 0.0,
        }
    }

    /// The same link with an artificially injected drop rate (the paper uses
    /// `tc` to add 10 % loss).
    pub fn with_drop_rate(mut self, drop_rate: f64) -> Self {
        self.drop_rate = drop_rate;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] for non-positive bandwidth or
    /// probabilities outside `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if self.bandwidth_bytes_per_sec <= 0.0 {
            return Err(NetError::InvalidConfig("bandwidth must be positive".to_string()));
        }
        if self.latency_sec < 0.0 {
            return Err(NetError::InvalidConfig("latency must be non-negative".to_string()));
        }
        for (name, p) in [
            ("drop_rate", self.drop_rate),
            ("reorder_rate", self.reorder_rate),
            ("duplicate_rate", self.duplicate_rate),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(NetError::InvalidConfig(format!("{name} must be in [0, 1], got {p}")));
            }
        }
        Ok(())
    }

    /// Time to push `bytes` through the link (serialisation + propagation).
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        bytes as f64 / self.bandwidth_bytes_per_sec + self.latency_sec
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::datacenter()
    }
}

/// What happened to one batch of packets pushed through a lossy link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LinkStats {
    /// Packets handed to the link.
    pub sent: usize,
    /// Packets delivered (including duplicates).
    pub delivered: usize,
    /// Packets dropped.
    pub dropped: usize,
    /// Packets duplicated.
    pub duplicated: usize,
    /// Packets displaced from their original position.
    pub reordered: usize,
}

/// A link that applies drops, duplication and reordering to packet batches.
#[derive(Debug, Clone)]
pub struct LossyLink {
    config: LinkConfig,
    rng: SmallRng,
}

impl LossyLink {
    /// Creates a lossy link with its own deterministic RNG stream.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] when the configuration is invalid.
    pub fn new(config: LinkConfig, seed: u64, stream: u64) -> Result<Self> {
        config.validate()?;
        Ok(LossyLink { config, rng: seeded_rng(derive_seed(seed, stream ^ 0x11AC)) })
    }

    /// The link's static configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Pushes a batch of packets through the link, returning the delivered
    /// packets (in arrival order) and the statistics of what happened.
    pub fn transmit(&mut self, packets: &[Packet]) -> (Vec<Packet>, LinkStats) {
        self.transmit_impl(packets)
    }

    /// [`LossyLink::transmit`] for encoded wire packets: `Bytes` views are
    /// reference-counted, so delivery (and duplication) clones a pointer, not
    /// a payload. Draws the exact same RNG sequence as the legacy path, so a
    /// given seed drops/duplicates/reorders the same packet indices on both.
    pub fn transmit_bytes(&mut self, packets: &[Bytes]) -> (Vec<Bytes>, LinkStats) {
        self.transmit_impl(packets)
    }

    fn transmit_impl<T: Clone>(&mut self, packets: &[T]) -> (Vec<T>, LinkStats) {
        let mut stats = LinkStats { sent: packets.len(), ..Default::default() };
        let mut delivered: Vec<T> = Vec::with_capacity(packets.len());
        for p in packets {
            if self.rng.gen::<f64>() < self.config.drop_rate {
                stats.dropped += 1;
                continue;
            }
            delivered.push(p.clone());
            if self.rng.gen::<f64>() < self.config.duplicate_rate {
                delivered.push(p.clone());
                stats.duplicated += 1;
            }
        }
        // Reordering: displace each selected packet to a random position.
        let len = delivered.len();
        for i in 0..len {
            if self.rng.gen::<f64>() < self.config.reorder_rate {
                let j = self.rng.gen_range(0..len);
                if i != j {
                    delivered.swap(i, j);
                    stats.reordered += 1;
                }
            }
        }
        stats.delivered = delivered.len();
        (delivered, stats)
    }
}

/// Per-fault-class rates of a [`ChaosPlan`]. All rates are independent
/// per-packet (or per-round, for bursts/partitions/spikes) probabilities in
/// `[0, 1]`; the all-zero default injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Per-packet probability of one flipped bit (header or payload).
    pub bit_flip_rate: f64,
    /// Per-packet probability of truncation to a strictly shorter prefix.
    pub truncate_rate: f64,
    /// Per-packet probability of an appended duplicate with one flipped bit
    /// (the original is delivered intact).
    pub mutate_duplicate_rate: f64,
    /// Per-round probability of a reorder burst: a contiguous window of the
    /// delivered batch arrives reversed.
    pub reorder_burst_rate: f64,
    /// Per-round probability of a delay spike of [`ChaosConfig::delay_spike_sec`].
    pub delay_spike_rate: f64,
    /// Extra one-way delay charged when a spike fires.
    pub delay_spike_sec: f64,
    /// Per-round probability of a transient partition: every packet of the
    /// round (including retransmissions) is lost.
    pub partition_rate: f64,
    /// How scheduled faults are realised (see [`ChaosMode`]); `Corrupt`
    /// unless a scenario explicitly wants the explicit-drop twin.
    pub mode: ChaosMode,
}

impl ChaosConfig {
    /// A moderate all-fault mix used by the chaos bench arm and tests:
    /// every fault class fires regularly, none dominates.
    pub fn moderate() -> Self {
        ChaosConfig {
            bit_flip_rate: 0.05,
            truncate_rate: 0.03,
            mutate_duplicate_rate: 0.03,
            reorder_burst_rate: 0.10,
            delay_spike_rate: 0.05,
            delay_spike_sec: 2e-3,
            partition_rate: 0.01,
            mode: ChaosMode::Corrupt,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] for probabilities outside
    /// `[0, 1]` or a non-finite/negative spike delay.
    pub fn validate(&self) -> Result<()> {
        for (name, p) in [
            ("bit_flip_rate", self.bit_flip_rate),
            ("truncate_rate", self.truncate_rate),
            ("mutate_duplicate_rate", self.mutate_duplicate_rate),
            ("reorder_burst_rate", self.reorder_burst_rate),
            ("delay_spike_rate", self.delay_spike_rate),
            ("partition_rate", self.partition_rate),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(NetError::InvalidConfig(format!("{name} must be in [0, 1], got {p}")));
            }
        }
        if !self.delay_spike_sec.is_finite() || self.delay_spike_sec < 0.0 {
            return Err(NetError::InvalidConfig(format!(
                "delay_spike_sec must be finite and non-negative, got {}",
                self.delay_spike_sec
            )));
        }
        Ok(())
    }
}

/// How a [`ChaosPlan`] realises the faults it schedules.
///
/// Both modes draw the *identical* random sequence for partition, spike and
/// per-packet fault selection, so a given `(seed, step, stream, attempt)`
/// damages the same packets either way. `Corrupt` delivers the damaged
/// bytes (the receiver's integrity envelope must reject them); `Drop`
/// removes the selected packets outright. A receiver that detects every
/// corruption therefore assembles bit-identical rows under either mode —
/// the property the chaos test suite pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ChaosMode {
    /// Deliver damaged bytes (default).
    #[default]
    Corrupt,
    /// Remove the packets the faults would have damaged.
    Drop,
}

/// What one [`ChaosPlan::apply`] call did to a batch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChaosStats {
    /// Packets with one flipped bit.
    pub bit_flips: usize,
    /// Packets truncated to a shorter prefix.
    pub truncations: usize,
    /// Mutated duplicates appended to the batch.
    pub mutated_duplicates: usize,
    /// Whether a reorder burst fired.
    pub reorder_bursts: usize,
    /// Whether the round hit a transient partition (everything lost).
    pub partitioned: bool,
    /// Extra delay charged by a spike (0 when none fired).
    pub delay_sec: f64,
}

impl ChaosStats {
    /// Corrupt packets this application injected — every one of them must
    /// surface as a `corrupt_rejects` at the receiver (never in a row).
    pub fn injected_corrupt(&self) -> usize {
        self.bit_flips + self.truncations + self.mutated_duplicates
    }
}

/// A seeded, replayable schedule of wire faults.
///
/// Where [`LossyLink`] models *clean* loss — a packet either arrives intact
/// or not at all — `ChaosPlan` models the dirtier failures of a real
/// datacenter fabric: bits flipped in flight, datagrams cut short by a
/// misbehaving NIC, duplicates that differ from their original, bursts of
/// reordering, latency spikes and short link partitions. Faults are drawn
/// from the plan's own RNG stream, derived from
/// `(seed, stream, step, attempt)` and nothing else:
///
/// * the plan never touches the [`LossyLink`] RNG, so enabling chaos leaves
///   every existing loss/duplication/reorder draw — and every determinism
///   pin built on them — unchanged;
/// * replaying the same `(seed, stream, step, attempt)` replays the same
///   faults bit-for-bit, composing with `FaultPlan` churn and `LossPolicy`
///   compaction into fully reproducible scenarios;
/// * the `attempt` axis gives every retransmission its own fault draw, so a
///   retry can succeed where the first send was damaged.
///
/// At most one corruption fault (flip **or** truncate) applies per packet,
/// and a mutated duplicate damages only the appended copy, so
/// [`ChaosStats::injected_corrupt`] counts the damaged packets exactly —
/// the accounting the zero-silent-corruption property test reconciles
/// against the receiver's `corrupt_rejects`.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    config: ChaosConfig,
    seed: u64,
    mode: ChaosMode,
}

impl ChaosPlan {
    /// Creates a plan injecting faults at the rates of `config`, drawn from
    /// an RNG stream derived from `seed`, realised in `config.mode`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] when `config` is invalid.
    pub fn new(config: ChaosConfig, seed: u64) -> Result<Self> {
        config.validate()?;
        let mode = config.mode;
        Ok(ChaosPlan { config, seed, mode })
    }

    /// The same plan realising its faults in a different mode.
    pub fn with_mode(mut self, mode: ChaosMode) -> Self {
        self.mode = mode;
        self
    }

    /// The plan's fault rates.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// The plan's mode.
    pub fn mode(&self) -> ChaosMode {
        self.mode
    }

    /// Applies the faults scheduled for `(step, stream, attempt)` to a batch
    /// of delivered packets, in place. `stream` identifies the sender (the
    /// same id the transport's [`LossyLink`] uses), `attempt` is 0 for the
    /// original transmission and increments per retransmission.
    pub fn apply(
        &self,
        step: u64,
        stream: u64,
        attempt: u32,
        packets: &mut Vec<Bytes>,
    ) -> ChaosStats {
        let per_send = derive_seed(derive_seed(self.seed, 0xC0A5 ^ stream), step);
        let mut rng = seeded_rng(derive_seed(per_send, attempt as u64));
        let mut stats = ChaosStats::default();
        if rng.gen::<f64>() < self.config.partition_rate {
            stats.partitioned = true;
            packets.clear();
            return stats;
        }
        if rng.gen::<f64>() < self.config.delay_spike_rate {
            stats.delay_sec = self.config.delay_spike_sec;
        }
        // Per-packet faults, drawn over the original batch only (appended
        // duplicates are never re-damaged). The classification draw and the
        // fault-parameter draws are identical in both modes; only the
        // realisation differs, so Corrupt and Drop select the same victims.
        let originals = packets.len();
        let mut doomed = vec![false; originals];
        let mut appended: Vec<Bytes> = Vec::new();
        let flip = self.config.bit_flip_rate;
        let truncate = flip + self.config.truncate_rate;
        let mutate = truncate + self.config.mutate_duplicate_rate;
        for (i, doom) in doomed.iter_mut().enumerate() {
            let draw = rng.gen::<f64>();
            let len = packets[i].len().max(1);
            if draw < flip {
                stats.bit_flips += 1;
                let bit = rng.gen_range(0..len * 8);
                match self.mode {
                    ChaosMode::Corrupt => {
                        if !packets[i].is_empty() {
                            let mut bytes = packets[i].to_vec();
                            bytes[bit / 8] ^= 1 << (bit % 8);
                            packets[i] = Bytes::from(bytes);
                        }
                    }
                    ChaosMode::Drop => *doom = true,
                }
            } else if draw < truncate {
                stats.truncations += 1;
                // Strictly shorter, so truncation is always detectable (a
                // short header or a checksum over fewer bytes than sealed).
                let keep = rng.gen_range(0..len);
                match self.mode {
                    ChaosMode::Corrupt => {
                        packets[i] = packets[i].slice(0..keep.min(packets[i].len()))
                    }
                    ChaosMode::Drop => *doom = true,
                }
            } else if draw < mutate {
                stats.mutated_duplicates += 1;
                let bit = rng.gen_range(0..len * 8);
                // In Drop mode the damaged copy simply never materialises —
                // rejecting a corrupt duplicate and not sending it are the
                // same thing to the assembler.
                if self.mode == ChaosMode::Corrupt && !packets[i].is_empty() {
                    let mut bytes = packets[i].to_vec();
                    bytes[bit / 8] ^= 1 << (bit % 8);
                    appended.push(Bytes::from(bytes));
                }
            }
        }
        if doomed.iter().any(|&d| d) {
            let mut keep = doomed.iter().map(|&d| !d);
            packets.retain(|_| keep.next().unwrap());
        }
        packets.extend(appended);
        // A reorder burst reverses a contiguous window of the batch. Window
        // draws depend on the current length, which may differ between
        // modes — harmless, because assembly is arrival-order insensitive.
        if rng.gen::<f64>() < self.config.reorder_burst_rate && packets.len() >= 2 {
            stats.reorder_bursts = 1;
            let start = rng.gen_range(0..packets.len() - 1);
            let end = rng.gen_range(start + 2..=packets.len());
            packets[start..end].reverse();
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::GradientCodec;
    use agg_tensor::Vector;

    fn packets(n_coords: usize) -> Vec<Packet> {
        GradientCodec::new(10).unwrap().split(
            0,
            0,
            &Vector::from_iter((0..n_coords).map(|i| i as f32)),
        )
    }

    #[test]
    fn config_validation() {
        assert!(LinkConfig::datacenter().validate().is_ok());
        assert!(LinkConfig { bandwidth_bytes_per_sec: 0.0, ..LinkConfig::datacenter() }
            .validate()
            .is_err());
        assert!(LinkConfig::datacenter().with_drop_rate(1.5).validate().is_err());
        assert!(LinkConfig { latency_sec: -1.0, ..LinkConfig::datacenter() }.validate().is_err());
    }

    #[test]
    fn transfer_time_has_bandwidth_and_latency_terms() {
        let link = LinkConfig {
            bandwidth_bytes_per_sec: 1000.0,
            latency_sec: 0.5,
            ..LinkConfig::datacenter()
        };
        assert!((link.transfer_time(1000) - 1.5).abs() < 1e-9);
        assert!((link.transfer_time(0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lossless_link_delivers_everything_in_order() {
        let mut link = LossyLink::new(LinkConfig::datacenter(), 1, 0).unwrap();
        let ps = packets(100);
        let (delivered, stats) = link.transmit(&ps);
        assert_eq!(delivered, ps);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.delivered, ps.len());
    }

    #[test]
    fn drop_rate_drops_about_the_right_fraction() {
        let config = LinkConfig::datacenter().with_drop_rate(0.3);
        let mut link = LossyLink::new(config, 2, 0).unwrap();
        let ps = packets(10_000);
        let (_, stats) = link.transmit(&ps);
        let rate = stats.dropped as f64 / stats.sent as f64;
        assert!((rate - 0.3).abs() < 0.05, "observed drop rate {rate}");
    }

    #[test]
    fn duplication_and_reordering_happen() {
        let config =
            LinkConfig { duplicate_rate: 0.2, reorder_rate: 0.5, ..LinkConfig::datacenter() };
        let mut link = LossyLink::new(config, 3, 0).unwrap();
        let ps = packets(1000);
        let (delivered, stats) = link.transmit(&ps);
        assert!(stats.duplicated > 0);
        assert!(stats.reordered > 0);
        assert_eq!(delivered.len(), stats.delivered);
        assert!(delivered.len() > ps.len());
    }

    #[test]
    fn link_is_deterministic_per_seed() {
        let config = LinkConfig::datacenter().with_drop_rate(0.2);
        let ps = packets(500);
        let (a, _) = LossyLink::new(config, 7, 1).unwrap().transmit(&ps);
        let (b, _) = LossyLink::new(config, 7, 1).unwrap().transmit(&ps);
        assert_eq!(a, b);
        let (c, _) = LossyLink::new(config, 8, 1).unwrap().transmit(&ps);
        assert_ne!(a, c);
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        assert!(LossyLink::new(LinkConfig::datacenter().with_drop_rate(2.0), 0, 0).is_err());
    }

    fn wire_packets(n_coords: usize, step: u64) -> Vec<Bytes> {
        GradientCodec::new(10).unwrap().split_bytes(
            0,
            step,
            &(0..n_coords).map(|i| i as f32).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn chaos_config_validation() {
        assert!(ChaosConfig::default().validate().is_ok());
        assert!(ChaosConfig::moderate().validate().is_ok());
        assert!(ChaosConfig { bit_flip_rate: 1.5, ..Default::default() }.validate().is_err());
        assert!(ChaosConfig { partition_rate: -0.1, ..Default::default() }.validate().is_err());
        assert!(ChaosConfig { delay_spike_sec: f64::NAN, ..Default::default() }
            .validate()
            .is_err());
        assert!(
            ChaosPlan::new(ChaosConfig { truncate_rate: 2.0, ..Default::default() }, 1).is_err()
        );
    }

    #[test]
    fn chaos_is_deterministic_per_seed_step_stream_and_attempt() {
        let plan = ChaosPlan::new(ChaosConfig::moderate(), 42).unwrap();
        let original = wire_packets(200, 3);
        let mut a = original.clone();
        let mut b = original.clone();
        let sa = plan.apply(3, 5, 0, &mut a);
        let sb = plan.apply(3, 5, 0, &mut b);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        // A different attempt draws fresh faults for the same send.
        let mut c = original.clone();
        let sc = plan.apply(3, 5, 1, &mut c);
        assert!(a != c || sa != sc, "attempt axis must vary the fault draw");
        // And a different seed differs too.
        let other = ChaosPlan::new(ChaosConfig::moderate(), 43).unwrap();
        let mut d = original.clone();
        let sd = other.apply(3, 5, 0, &mut d);
        assert!(a != d || sa != sd, "seed must vary the fault draw");
    }

    #[test]
    fn every_injected_corruption_is_detected_and_counted() {
        // Across many rounds of moderate chaos, the number of packets the
        // integrity envelope rejects equals injected_corrupt() exactly, and
        // every surviving packet decodes cleanly — no silent corruption, no
        // over-counting.
        let plan = ChaosPlan::new(ChaosConfig::moderate(), 7).unwrap();
        let mut saw_each = ChaosStats::default();
        for step in 0..200u64 {
            let mut batch = wire_packets(120, step);
            let sent = batch.len();
            let stats = plan.apply(step, 1, 0, &mut batch);
            if stats.partitioned {
                assert!(batch.is_empty(), "a partition loses the whole round");
                continue;
            }
            let corrupt =
                batch.iter().filter(|p| crate::packet::wire_integrity_error(p).is_some()).count();
            assert_eq!(corrupt, stats.injected_corrupt(), "step {step}");
            assert_eq!(
                batch.len(),
                sent + stats.mutated_duplicates,
                "only mutated duplicates change the batch size"
            );
            for p in &batch {
                if crate::packet::wire_integrity_error(p).is_none() {
                    crate::Packet::decode(p.clone()).expect("intact packets decode");
                }
            }
            saw_each.bit_flips += stats.bit_flips;
            saw_each.truncations += stats.truncations;
            saw_each.mutated_duplicates += stats.mutated_duplicates;
            saw_each.reorder_bursts += stats.reorder_bursts;
            saw_each.delay_sec += stats.delay_sec;
        }
        assert!(saw_each.bit_flips > 0, "expected some bit flips over 200 rounds");
        assert!(saw_each.truncations > 0);
        assert!(saw_each.mutated_duplicates > 0);
        assert!(saw_each.reorder_bursts > 0);
        assert!(saw_each.delay_sec > 0.0);
    }

    #[test]
    fn corrupt_and_drop_modes_select_the_same_victims() {
        let config = ChaosConfig::moderate();
        let corrupt_plan = ChaosPlan::new(config, 11).unwrap();
        let drop_plan = ChaosPlan::new(config, 11).unwrap().with_mode(ChaosMode::Drop);
        assert_eq!(drop_plan.mode(), ChaosMode::Drop);
        for step in 0..100u64 {
            let mut corrupted = wire_packets(90, step);
            let mut dropped = corrupted.clone();
            let sc = corrupt_plan.apply(step, 2, 0, &mut corrupted);
            let sd = drop_plan.apply(step, 2, 0, &mut dropped);
            assert_eq!(sc.bit_flips, sd.bit_flips);
            assert_eq!(sc.truncations, sd.truncations);
            assert_eq!(sc.mutated_duplicates, sd.mutated_duplicates);
            assert_eq!(sc.partitioned, sd.partitioned);
            assert_eq!(sc.delay_sec, sd.delay_sec);
            // The intact packets of the corrupt batch are exactly the drop
            // batch (as multisets — reorder windows may differ).
            let mut intact: Vec<&[u8]> = corrupted
                .iter()
                .filter(|p| crate::packet::wire_integrity_error(p).is_none())
                .map(|p| p.as_ref())
                .collect();
            let mut kept: Vec<&[u8]> = dropped.iter().map(|p| p.as_ref()).collect();
            intact.sort();
            kept.sort();
            assert_eq!(intact, kept, "step {step}");
        }
    }

    #[test]
    fn partition_loses_the_whole_round() {
        let plan =
            ChaosPlan::new(ChaosConfig { partition_rate: 1.0, ..Default::default() }, 5).unwrap();
        let mut batch = wire_packets(50, 0);
        let stats = plan.apply(0, 0, 0, &mut batch);
        assert!(stats.partitioned);
        assert!(batch.is_empty());
        assert_eq!(stats.injected_corrupt(), 0);
    }
}
