//! The lossy link model: independent packet drops, reordering and
//! duplication, as injected in the paper's Figure 8 experiments with `tc`.

use crate::packet::Packet;
use crate::{NetError, Result};
use agg_tensor::rng::{derive_seed, seeded_rng};
use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Static characteristics of a (simulated) network link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Usable bandwidth in bytes per second (the paper's clusters use 10 Gbps
    /// Ethernet ≈ 1.25 GB/s).
    pub bandwidth_bytes_per_sec: f64,
    /// One-way propagation latency in seconds.
    pub latency_sec: f64,
    /// Independent probability that a packet is dropped.
    pub drop_rate: f64,
    /// Probability that a delivered packet is displaced in the arrival order.
    pub reorder_rate: f64,
    /// Probability that a delivered packet is duplicated.
    pub duplicate_rate: f64,
}

impl LinkConfig {
    /// A clean 10 Gbps data-centre link (the paper's baseline environment).
    pub fn datacenter() -> Self {
        LinkConfig {
            bandwidth_bytes_per_sec: 1.25e9,
            latency_sec: 100e-6,
            drop_rate: 0.0,
            reorder_rate: 0.0,
            duplicate_rate: 0.0,
        }
    }

    /// The same link with an artificially injected drop rate (the paper uses
    /// `tc` to add 10 % loss).
    pub fn with_drop_rate(mut self, drop_rate: f64) -> Self {
        self.drop_rate = drop_rate;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] for non-positive bandwidth or
    /// probabilities outside `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if self.bandwidth_bytes_per_sec <= 0.0 {
            return Err(NetError::InvalidConfig("bandwidth must be positive".to_string()));
        }
        if self.latency_sec < 0.0 {
            return Err(NetError::InvalidConfig("latency must be non-negative".to_string()));
        }
        for (name, p) in [
            ("drop_rate", self.drop_rate),
            ("reorder_rate", self.reorder_rate),
            ("duplicate_rate", self.duplicate_rate),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(NetError::InvalidConfig(format!("{name} must be in [0, 1], got {p}")));
            }
        }
        Ok(())
    }

    /// Time to push `bytes` through the link (serialisation + propagation).
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        bytes as f64 / self.bandwidth_bytes_per_sec + self.latency_sec
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::datacenter()
    }
}

/// What happened to one batch of packets pushed through a lossy link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LinkStats {
    /// Packets handed to the link.
    pub sent: usize,
    /// Packets delivered (including duplicates).
    pub delivered: usize,
    /// Packets dropped.
    pub dropped: usize,
    /// Packets duplicated.
    pub duplicated: usize,
    /// Packets displaced from their original position.
    pub reordered: usize,
}

/// A link that applies drops, duplication and reordering to packet batches.
#[derive(Debug, Clone)]
pub struct LossyLink {
    config: LinkConfig,
    rng: SmallRng,
}

impl LossyLink {
    /// Creates a lossy link with its own deterministic RNG stream.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] when the configuration is invalid.
    pub fn new(config: LinkConfig, seed: u64, stream: u64) -> Result<Self> {
        config.validate()?;
        Ok(LossyLink { config, rng: seeded_rng(derive_seed(seed, stream ^ 0x11AC)) })
    }

    /// The link's static configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Pushes a batch of packets through the link, returning the delivered
    /// packets (in arrival order) and the statistics of what happened.
    pub fn transmit(&mut self, packets: &[Packet]) -> (Vec<Packet>, LinkStats) {
        self.transmit_impl(packets)
    }

    /// [`LossyLink::transmit`] for encoded wire packets: `Bytes` views are
    /// reference-counted, so delivery (and duplication) clones a pointer, not
    /// a payload. Draws the exact same RNG sequence as the legacy path, so a
    /// given seed drops/duplicates/reorders the same packet indices on both.
    pub fn transmit_bytes(&mut self, packets: &[Bytes]) -> (Vec<Bytes>, LinkStats) {
        self.transmit_impl(packets)
    }

    fn transmit_impl<T: Clone>(&mut self, packets: &[T]) -> (Vec<T>, LinkStats) {
        let mut stats = LinkStats { sent: packets.len(), ..Default::default() };
        let mut delivered: Vec<T> = Vec::with_capacity(packets.len());
        for p in packets {
            if self.rng.gen::<f64>() < self.config.drop_rate {
                stats.dropped += 1;
                continue;
            }
            delivered.push(p.clone());
            if self.rng.gen::<f64>() < self.config.duplicate_rate {
                delivered.push(p.clone());
                stats.duplicated += 1;
            }
        }
        // Reordering: displace each selected packet to a random position.
        let len = delivered.len();
        for i in 0..len {
            if self.rng.gen::<f64>() < self.config.reorder_rate {
                let j = self.rng.gen_range(0..len);
                if i != j {
                    delivered.swap(i, j);
                    stats.reordered += 1;
                }
            }
        }
        stats.delivered = delivered.len();
        (delivered, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::GradientCodec;
    use agg_tensor::Vector;

    fn packets(n_coords: usize) -> Vec<Packet> {
        GradientCodec::new(10).unwrap().split(
            0,
            0,
            &Vector::from_iter((0..n_coords).map(|i| i as f32)),
        )
    }

    #[test]
    fn config_validation() {
        assert!(LinkConfig::datacenter().validate().is_ok());
        assert!(LinkConfig { bandwidth_bytes_per_sec: 0.0, ..LinkConfig::datacenter() }
            .validate()
            .is_err());
        assert!(LinkConfig::datacenter().with_drop_rate(1.5).validate().is_err());
        assert!(LinkConfig { latency_sec: -1.0, ..LinkConfig::datacenter() }.validate().is_err());
    }

    #[test]
    fn transfer_time_has_bandwidth_and_latency_terms() {
        let link = LinkConfig {
            bandwidth_bytes_per_sec: 1000.0,
            latency_sec: 0.5,
            ..LinkConfig::datacenter()
        };
        assert!((link.transfer_time(1000) - 1.5).abs() < 1e-9);
        assert!((link.transfer_time(0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lossless_link_delivers_everything_in_order() {
        let mut link = LossyLink::new(LinkConfig::datacenter(), 1, 0).unwrap();
        let ps = packets(100);
        let (delivered, stats) = link.transmit(&ps);
        assert_eq!(delivered, ps);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.delivered, ps.len());
    }

    #[test]
    fn drop_rate_drops_about_the_right_fraction() {
        let config = LinkConfig::datacenter().with_drop_rate(0.3);
        let mut link = LossyLink::new(config, 2, 0).unwrap();
        let ps = packets(10_000);
        let (_, stats) = link.transmit(&ps);
        let rate = stats.dropped as f64 / stats.sent as f64;
        assert!((rate - 0.3).abs() < 0.05, "observed drop rate {rate}");
    }

    #[test]
    fn duplication_and_reordering_happen() {
        let config =
            LinkConfig { duplicate_rate: 0.2, reorder_rate: 0.5, ..LinkConfig::datacenter() };
        let mut link = LossyLink::new(config, 3, 0).unwrap();
        let ps = packets(1000);
        let (delivered, stats) = link.transmit(&ps);
        assert!(stats.duplicated > 0);
        assert!(stats.reordered > 0);
        assert_eq!(delivered.len(), stats.delivered);
        assert!(delivered.len() > ps.len());
    }

    #[test]
    fn link_is_deterministic_per_seed() {
        let config = LinkConfig::datacenter().with_drop_rate(0.2);
        let ps = packets(500);
        let (a, _) = LossyLink::new(config, 7, 1).unwrap().transmit(&ps);
        let (b, _) = LossyLink::new(config, 7, 1).unwrap().transmit(&ps);
        assert_eq!(a, b);
        let (c, _) = LossyLink::new(config, 8, 1).unwrap().transmit(&ps);
        assert_ne!(a, c);
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        assert!(LossyLink::new(LinkConfig::datacenter().with_drop_rate(2.0), 0, 0).is_err());
    }
}
