//! The two transports compared in the paper's Figure 8: a reliable TCP-like
//! channel and the lossy UDP-like `lossyMPI` channel, plus the policies for
//! handling whatever the lossy channel fails to deliver (§3.3).

use crate::assembler::RoundAssembler;
use crate::link::{ChaosPlan, LinkConfig, LinkStats, LossyLink};
use crate::packet::GradientCodec;
use crate::{NetError, Result};
use agg_tensor::Vector;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the receiving endpoint treats lost coordinates (§3.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LossPolicy {
    /// Drop the whole gradient if any coordinate is missing ("the most
    /// straightforward solution"). The caller receives `None` for that
    /// gradient.
    DropGradient,
    /// Keep missing coordinates as `NaN`; the selective-averaging GAR ignores
    /// them.
    SelectiveNan,
    /// Fill missing coordinates with pseudo-random values and let the
    /// Byzantine-resilient GAR on top absorb them — AggregaThor's approach.
    #[default]
    RandomFill,
}

/// Everything that happened while transferring one gradient.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferOutcome {
    /// The gradient as seen by the receiver; `None` when the loss policy
    /// dropped it entirely.
    pub gradient: Option<Vector>,
    /// Simulated wall-clock time the transfer took, in seconds.
    pub time_sec: f64,
    /// Bytes put on the wire (including retransmissions for the reliable
    /// transport).
    pub bytes_sent: usize,
    /// Number of coordinates that never arrived (before policy handling).
    pub missing_coordinates: usize,
    /// Raw link statistics.
    pub link_stats: LinkStats,
}

/// What one in-place transfer did — [`TransferOutcome`] minus the owned
/// gradient: the receiver's view was written straight into the caller's
/// arena row instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowTransfer {
    /// `false` when the loss policy dropped the gradient entirely (the row's
    /// contents are then unspecified and must not be aggregated).
    pub delivered: bool,
    /// Simulated wall-clock time the transfer took, in seconds.
    pub time_sec: f64,
    /// Bytes put on the wire (including retransmissions for the reliable
    /// transport).
    pub bytes_sent: usize,
    /// Number of coordinates that never arrived (before policy handling).
    pub missing_coordinates: usize,
    /// Packets the receiver's epoch fence rejected (late packets from an
    /// evicted membership epoch). When non-zero the gradient was fenced and
    /// `delivered` is `false`.
    pub stale_epoch_rejects: usize,
    /// Packets the receiver's integrity envelope rejected (bit-flipped,
    /// truncated or version-mismatched on the wire). Corrupt packets never
    /// reach the row; they count as losses for the loss policy.
    pub corrupt_rejects: usize,
    /// Retransmission rounds the recovery protocol ran (0 when disabled or
    /// when the first transmission completed the row).
    pub retransmits: usize,
    /// `true` when the recovery protocol was enabled but the row still ended
    /// the round incomplete — the retry budget or the round deadline ran out
    /// before every coordinate arrived. Distinguishes a *recovery failure*
    /// (the wire stayed bad through the whole budget) from a plain loss on a
    /// transport that never tried to recover.
    pub retransmit_exhausted: bool,
    /// Raw link statistics.
    pub link_stats: LinkStats,
}

/// Bounded NACK/retransmit recovery for the lossy transport: after the
/// initial transmission the receiver NACKs the pre-split packet ids it has
/// not accepted, the sender re-sends exactly those packets, and the exchange
/// repeats under an exponential backoff until the row completes, the retry
/// budget runs out, or the per-round deadline passes. Beyond the budget the
/// row degrades exactly like a plain transport loss — compacted by the loss
/// policy, absorbed by the `n − f` quorum, refused below the resilience
/// floor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetransmitConfig {
    /// Maximum retransmission rounds after the initial send.
    pub max_retries: u32,
    /// Backoff charged before the first retransmission.
    pub initial_backoff_sec: f64,
    /// Multiplier applied to the backoff after every retransmission.
    pub backoff_factor: f64,
    /// Hard per-round deadline: no retransmission starts once the transfer's
    /// accumulated simulated time (including the pending backoff) would
    /// exceed it.
    pub round_deadline_sec: f64,
}

impl RetransmitConfig {
    fn default_max_retries() -> u32 {
        3
    }

    fn default_initial_backoff_sec() -> f64 {
        1e-3
    }

    fn default_backoff_factor() -> f64 {
        2.0
    }

    fn default_round_deadline_sec() -> f64 {
        0.25
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] for non-finite or negative
    /// timings, a backoff factor below 1, or a non-positive deadline.
    pub fn validate(&self) -> Result<()> {
        if !self.initial_backoff_sec.is_finite() || self.initial_backoff_sec < 0.0 {
            return Err(NetError::InvalidConfig(format!(
                "initial_backoff_sec must be finite and non-negative, got {}",
                self.initial_backoff_sec
            )));
        }
        if !self.backoff_factor.is_finite() || self.backoff_factor < 1.0 {
            return Err(NetError::InvalidConfig(format!(
                "backoff_factor must be finite and at least 1, got {}",
                self.backoff_factor
            )));
        }
        if !self.round_deadline_sec.is_finite() || self.round_deadline_sec <= 0.0 {
            return Err(NetError::InvalidConfig(format!(
                "round_deadline_sec must be finite and positive, got {}",
                self.round_deadline_sec
            )));
        }
        Ok(())
    }
}

impl Default for RetransmitConfig {
    fn default() -> Self {
        RetransmitConfig {
            max_retries: Self::default_max_retries(),
            initial_backoff_sec: Self::default_initial_backoff_sec(),
            backoff_factor: Self::default_backoff_factor(),
            round_deadline_sec: Self::default_round_deadline_sec(),
        }
    }
}

/// A one-way gradient transfer channel from a worker to the parameter
/// server (the model transfer in the opposite direction reuses the same
/// models with the roles swapped).
pub trait Transport: Send + fmt::Debug {
    /// Short transport name (`"tcp"`, `"lossy-udp"`).
    fn name(&self) -> &'static str;

    /// Stamps every subsequent send with this membership epoch — the epoch
    /// the *sender* believes is current. Default: no-op (epoch 0, the
    /// static-membership wire default).
    fn set_epoch(&mut self, _epoch: u32) {}

    /// Fences the *receiving* side on an expected membership epoch: packets
    /// stamped with any other epoch are rejected before they can fill a
    /// row (`None` accepts any epoch). Default: no-op.
    fn set_expected_epoch(&mut self, _epoch: Option<u32>) {}

    /// Installs a seeded [`ChaosPlan`] damaging the wire between sender and
    /// receiver (`None` disables chaos). Default: no-op — the reliable
    /// transport's acknowledgement machinery already repairs wire damage,
    /// which its congestion model prices in.
    fn set_chaos(&mut self, _chaos: Option<ChaosPlan>) {}

    /// Enables the bounded NACK/retransmit recovery protocol (`None`
    /// disables it). Default: no-op — transports without a lossy wire have
    /// nothing to recover.
    fn set_retransmit(&mut self, _config: Option<RetransmitConfig>) {}

    /// Transfers one gradient straight into `dst` — the hot path. The
    /// receiver's view of the gradient (after loss and policy handling) is
    /// written into the caller-provided row, typically one slot of a reused
    /// `GradientBatch` arena, so a round moves wire → arena with no
    /// intermediate `Vector`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] only for structural failures (codec
    /// inconsistencies, mismatched row length); packet loss is not an error,
    /// it is the point.
    fn transfer_into(
        &mut self,
        worker: u32,
        step: u64,
        gradient: &[f32],
        dst: &mut [f32],
    ) -> Result<RowTransfer>;

    /// Transfers one gradient, returning what the receiver observes as an
    /// owned [`Vector`] (convenience wrapper over
    /// [`Transport::transfer_into`] for callers without an arena).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Transport::transfer_into`].
    fn transfer(&mut self, worker: u32, step: u64, gradient: &Vector) -> Result<TransferOutcome> {
        let mut row = vec![0.0f32; gradient.len()];
        let outcome = self.transfer_into(worker, step, gradient.as_slice(), &mut row)?;
        Ok(TransferOutcome {
            gradient: outcome.delivered.then(|| Vector::from(row)),
            time_sec: outcome.time_sec,
            bytes_sent: outcome.bytes_sent,
            missing_coordinates: outcome.missing_coordinates,
            link_stats: outcome.link_stats,
        })
    }
}

/// A reliable, in-order transport modelling TCP/gRPC.
///
/// Every byte is delivered. The cost of reliability under loss follows the
/// classic Mathis bound: the achievable throughput of a long-lived TCP flow
/// is `MSS / (RTT · √(2p/3))`, so a 10 % loss rate collapses throughput by
/// orders of magnitude — which is exactly the behaviour the paper observes
/// ("TCP reducing (halving) its transmission rate following packet losses").
/// Lost bytes are also retransmitted (`/(1 − p)`).
#[derive(Debug, Clone)]
pub struct ReliableTransport {
    link: LinkConfig,
    codec: GradientCodec,
    /// Round-trip time used by the congestion model.
    rtt_sec: f64,
    /// Membership epoch stamped on sends (sender side).
    epoch: u32,
    /// Epoch fence applied on receipt (server side); `None` accepts any.
    expected_epoch: Option<u32>,
}

impl ReliableTransport {
    /// Creates a reliable transport over the given link.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] when the link is invalid.
    pub fn new(link: LinkConfig, codec: GradientCodec) -> Result<Self> {
        link.validate()?;
        // Effective RTT floor of 1 ms: under the loss rates this model is
        // exercised with, queues build up and retransmission timers fire, so
        // the propagation latency alone undersells the recovery cost.
        Ok(ReliableTransport {
            link,
            codec,
            rtt_sec: (2.0 * link.latency_sec).max(1e-3),
            epoch: 0,
            expected_epoch: None,
        })
    }

    /// Effective throughput (bytes/sec) under the configured loss rate.
    pub fn effective_bandwidth(&self) -> f64 {
        let p = self.link.drop_rate;
        if p <= 0.0 {
            return self.link.bandwidth_bytes_per_sec;
        }
        // Mathis et al.: rate ≈ MSS / (RTT * sqrt(2p/3)).
        let mss = (self.codec.coords_per_packet() * 4) as f64;
        let congestion_limited = mss / (self.rtt_sec * (2.0 * p / 3.0).sqrt());
        congestion_limited.min(self.link.bandwidth_bytes_per_sec)
    }
}

impl Transport for ReliableTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn set_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }

    fn set_expected_epoch(&mut self, epoch: Option<u32>) {
        self.expected_epoch = epoch;
    }

    fn transfer_into(
        &mut self,
        _worker: u32,
        _step: u64,
        gradient: &[f32],
        dst: &mut [f32],
    ) -> Result<RowTransfer> {
        if dst.len() != gradient.len() {
            return Err(NetError::InvalidConfig(format!(
                "destination row has {} coordinates, gradient has {}",
                dst.len(),
                gradient.len()
            )));
        }
        // Reliable delivery means the receiver sees every byte; the cost
        // model only needs the wire byte count, which is analytic — no
        // packets are materialised at all.
        let packet_count = self.codec.packet_count(gradient.len());
        let payload_bytes = self.codec.wire_bytes_total(gradient.len());
        let p = self.link.drop_rate;
        // Retransmissions inflate the bytes actually sent.
        let bytes_sent = (payload_bytes as f64 / (1.0 - p).max(1e-3)).ceil() as usize;
        let time_sec = bytes_sent as f64 / self.effective_bandwidth() + self.link.latency_sec;
        // Reliability gets the bytes through, but the membership fence still
        // rejects a sender stamping the wrong epoch: the wire cost was paid
        // (the sender did not know), the row is not filled.
        if let Some(expected) = self.expected_epoch {
            if self.epoch != expected {
                return Ok(RowTransfer {
                    delivered: false,
                    time_sec,
                    bytes_sent,
                    missing_coordinates: gradient.len(),
                    stale_epoch_rejects: packet_count,
                    corrupt_rejects: 0,
                    retransmits: 0,
                    retransmit_exhausted: false,
                    link_stats: LinkStats {
                        sent: packet_count,
                        delivered: packet_count,
                        ..Default::default()
                    },
                });
            }
        }
        dst.copy_from_slice(gradient);
        Ok(RowTransfer {
            delivered: true,
            time_sec,
            bytes_sent,
            missing_coordinates: 0,
            stale_epoch_rejects: 0,
            corrupt_rejects: 0,
            retransmits: 0,
            retransmit_exhausted: false,
            link_stats: LinkStats {
                sent: packet_count,
                delivered: packet_count,
                ..Default::default()
            },
        })
    }
}

/// The lossy UDP-like transport (the paper's `lossyMPI`).
///
/// Packets travel at full link speed with no retransmission of gradient
/// payload; whatever is lost is handled by the configured [`LossPolicy`].
/// The wire path is zero-copy: the gradient is encoded into one contiguous
/// buffer, the link shuffles reference-counted views of it, and the
/// [`RoundAssembler`] scatters whatever arrives straight into the caller's
/// arena row.
#[derive(Debug)]
pub struct LossyTransport {
    link: LossyLink,
    link_config: LinkConfig,
    codec: GradientCodec,
    policy: LossPolicy,
    /// Reused across rounds; re-created only if the gradient dimension
    /// changes mid-stream (which real deployments never do).
    assembler: Option<RoundAssembler>,
    /// Membership epoch stamped into every packet header (sender side).
    epoch: u32,
    /// Epoch fence applied by the receiving assembler; `None` accepts any.
    expected_epoch: Option<u32>,
    /// Wire-fault injection; `None` leaves the wire clean (beyond the
    /// link's whole-packet loss model).
    chaos: Option<ChaosPlan>,
    /// Bounded NACK/retransmit recovery; `None` sends once and moves on.
    retransmit: Option<RetransmitConfig>,
    /// The link's stream id, reused as the chaos stream so a replay of the
    /// same `(seed, stream, step, attempt)` damages the same packets.
    stream: u64,
}

impl LossyTransport {
    /// Creates a lossy transport over the given link.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] when the link is invalid.
    pub fn new(
        link: LinkConfig,
        codec: GradientCodec,
        policy: LossPolicy,
        seed: u64,
        stream: u64,
    ) -> Result<Self> {
        Ok(LossyTransport {
            link: LossyLink::new(link, seed, stream)?,
            link_config: link,
            codec,
            policy,
            assembler: None,
            epoch: 0,
            expected_epoch: None,
            chaos: None,
            retransmit: None,
            stream,
        })
    }

    /// The configured loss policy.
    pub fn policy(&self) -> LossPolicy {
        self.policy
    }

    /// Deterministic pseudo-random fill for lost coordinates (mirrors the
    /// `RandomFill` sanitisation policy in `agg-core`).
    fn random_fill(index: usize) -> f32 {
        let mut z = (index as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ((z >> 41) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0
    }

    /// Applies the configured loss policy to an assembled row and decides
    /// whether the gradient counts as delivered.
    fn apply_policy(policy: LossPolicy, missing: usize, dst: &mut [f32]) -> bool {
        match policy {
            LossPolicy::DropGradient => missing == 0,
            LossPolicy::SelectiveNan => true,
            LossPolicy::RandomFill => {
                for (i, v) in dst.iter_mut().enumerate() {
                    if !v.is_finite() {
                        *v = Self::random_fill(i);
                    }
                }
                true
            }
        }
    }

    /// The chaos/recovery transfer path: streaming reassembly of the first
    /// transmission, then bounded NACK/retransmit rounds under exponential
    /// backoff and the per-round deadline. Only taken when chaos injection
    /// or retransmission is configured — the plain path below stays
    /// byte-and-draw identical to the pre-chaos transport.
    fn transfer_recovering(
        &mut self,
        worker: u32,
        step: u64,
        gradient: &[f32],
        dst: &mut [f32],
    ) -> Result<RowTransfer> {
        let packets = self.codec.split_bytes_epoch(worker, step, self.epoch, gradient);
        let total = packets.len();
        let mut bytes_sent: usize = packets.iter().map(Bytes::len).sum();
        let (mut delivered, mut link_stats) = self.link.transmit_bytes(&packets);
        let mut chaos_delay = 0.0f64;
        if let Some(plan) = &self.chaos {
            let stats = plan.apply(step, self.stream, 0, &mut delivered);
            chaos_delay += stats.delay_sec;
        }
        let dimension = gradient.len();
        let assembler = match &mut self.assembler {
            Some(a) if a.dimension() == dimension => a,
            slot => slot.insert(RoundAssembler::new(dimension)),
        };
        assembler.set_expected_epoch(self.expected_epoch);
        assembler.begin_round();
        for p in &delivered {
            assembler.feed(p, dst)?;
        }
        let metadata_overhead = link_stats.dropped * crate::packet::HEADER_BYTES;
        let mut time_sec =
            self.link_config.transfer_time(bytes_sent + metadata_overhead) + chaos_delay;
        let mut retransmits = 0usize;
        if let Some(config) = self.retransmit {
            let mut backoff = config.initial_backoff_sec;
            // A fenced round never retries: every packet shares the stale
            // epoch stamp, so re-sending it can only be fenced again.
            while retransmits < config.max_retries as usize
                && !assembler.is_complete()
                && assembler.stale_rejects() == 0
                && time_sec + backoff <= config.round_deadline_sec
            {
                // The NACK names exactly the pre-split packet ids the
                // assembler has not accepted; the sender re-sends those
                // packets unchanged (packet `s` of the split is sequence
                // `s`). Each retry pays its backoff, its wire time, and a
                // fresh fault draw on the chaos plan's `attempt` axis.
                let resend: Vec<Bytes> = (0..total)
                    .filter(|&s| !assembler.sequence_seen(s))
                    .map(|s| packets[s].clone())
                    .collect();
                retransmits += 1;
                time_sec += backoff;
                backoff *= config.backoff_factor;
                let resend_bytes: usize = resend.iter().map(Bytes::len).sum();
                bytes_sent += resend_bytes;
                let (mut redelivered, retry_stats) = self.link.transmit_bytes(&resend);
                if let Some(plan) = &self.chaos {
                    let stats = plan.apply(step, self.stream, retransmits as u32, &mut redelivered);
                    time_sec += stats.delay_sec;
                }
                link_stats.sent += retry_stats.sent;
                link_stats.delivered += retry_stats.delivered;
                link_stats.dropped += retry_stats.dropped;
                link_stats.duplicated += retry_stats.duplicated;
                link_stats.reordered += retry_stats.reordered;
                time_sec += self.link_config.transfer_time(
                    resend_bytes + retry_stats.dropped * crate::packet::HEADER_BYTES,
                );
                for p in &redelivered {
                    assembler.feed(p, dst)?;
                }
            }
        }
        let missing = assembler.finish_round(dst)?;
        let stale_epoch_rejects = assembler.stale_rejects();
        let corrupt_rejects = assembler.corrupt_rejects();
        if stale_epoch_rejects > 0 {
            // A fenced round never retried, so its budget was not exhausted —
            // the fence, not the wire, stopped the row.
            return Ok(RowTransfer {
                delivered: false,
                time_sec,
                bytes_sent,
                missing_coordinates: missing,
                stale_epoch_rejects,
                corrupt_rejects,
                retransmits,
                retransmit_exhausted: false,
                link_stats,
            });
        }
        // The recovery protocol was on and the row still ended incomplete:
        // the retry budget / round deadline ran out with coordinates missing.
        let retransmit_exhausted = self.retransmit.is_some() && missing > 0;
        let delivered = Self::apply_policy(self.policy, missing, dst);
        Ok(RowTransfer {
            delivered,
            time_sec,
            bytes_sent,
            missing_coordinates: missing,
            stale_epoch_rejects: 0,
            corrupt_rejects,
            retransmits,
            retransmit_exhausted,
            link_stats,
        })
    }
}

impl Transport for LossyTransport {
    fn name(&self) -> &'static str {
        "lossy-udp"
    }

    fn set_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }

    fn set_expected_epoch(&mut self, epoch: Option<u32>) {
        self.expected_epoch = epoch;
    }

    fn set_chaos(&mut self, chaos: Option<ChaosPlan>) {
        self.chaos = chaos;
    }

    fn set_retransmit(&mut self, config: Option<RetransmitConfig>) {
        self.retransmit = config;
    }

    fn transfer_into(
        &mut self,
        worker: u32,
        step: u64,
        gradient: &[f32],
        dst: &mut [f32],
    ) -> Result<RowTransfer> {
        if self.chaos.is_some() || self.retransmit.is_some() {
            return self.transfer_recovering(worker, step, gradient, dst);
        }
        let packets = self.codec.split_bytes_epoch(worker, step, self.epoch, gradient);
        let bytes_sent: usize = packets.iter().map(Bytes::len).sum();
        let (delivered, link_stats) = self.link.transmit_bytes(&packets);
        let assembler = match &mut self.assembler {
            Some(a) if a.dimension() == gradient.len() => a,
            slot => slot.insert(RoundAssembler::new(gradient.len())),
        };
        assembler.set_expected_epoch(self.expected_epoch);
        let missing = assembler.assemble_into(&delivered, dst)?;
        let stale_epoch_rejects = assembler.stale_rejects();
        let corrupt_rejects = assembler.corrupt_rejects();
        // UDP pays no congestion penalty: time is bytes / bandwidth + latency,
        // independent of the drop rate (only a tiny metadata retransmission
        // overhead is charged per lost packet).
        let metadata_overhead = link_stats.dropped * crate::packet::HEADER_BYTES;
        let time_sec = self.link_config.transfer_time(bytes_sent + metadata_overhead);
        if stale_epoch_rejects > 0 {
            // Every packet of a gradient shares one epoch stamp, so any
            // fenced packet means the whole gradient was fenced: nothing of
            // it may reach aggregation, and the loss policy must not
            // manufacture a row out of the NaN fill.
            return Ok(RowTransfer {
                delivered: false,
                time_sec,
                bytes_sent,
                missing_coordinates: missing,
                stale_epoch_rejects,
                corrupt_rejects,
                retransmits: 0,
                retransmit_exhausted: false,
                link_stats,
            });
        }
        let delivered = Self::apply_policy(self.policy, missing, dst);
        Ok(RowTransfer {
            delivered,
            time_sec,
            bytes_sent,
            missing_coordinates: missing,
            stale_epoch_rejects: 0,
            corrupt_rejects,
            retransmits: 0,
            retransmit_exhausted: false,
            link_stats,
        })
    }
}

/// Builds a transport by name, mirroring the original framework's choice of
/// communication backend (gRPC vs lossyMPI).
///
/// # Errors
///
/// Returns [`NetError::InvalidConfig`] for unknown transport names or invalid
/// links.
pub fn build_transport(
    name: &str,
    link: LinkConfig,
    policy: LossPolicy,
    seed: u64,
    stream: u64,
) -> Result<Box<dyn Transport>> {
    match name {
        "tcp" | "grpc" | "reliable" => {
            Ok(Box::new(ReliableTransport::new(link, GradientCodec::default_mtu())?))
        }
        "udp" | "lossy" | "lossympi" | "lossy-udp" => Ok(Box::new(LossyTransport::new(
            link,
            GradientCodec::default_mtu(),
            policy,
            seed,
            stream,
        )?)),
        other => Err(NetError::InvalidConfig(format!("unknown transport '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(d: usize) -> Vector {
        Vector::from_iter((0..d).map(|i| (i as f32).sin()))
    }

    #[test]
    fn reliable_transport_always_delivers_everything() {
        let mut t = ReliableTransport::new(
            LinkConfig::datacenter().with_drop_rate(0.1),
            GradientCodec::new(16).unwrap(),
        )
        .unwrap();
        let g = gradient(100);
        let out = t.transfer(0, 0, &g).unwrap();
        assert_eq!(out.gradient.as_ref().unwrap(), &g);
        assert_eq!(out.missing_coordinates, 0);
        assert!(out.bytes_sent > 400);
    }

    #[test]
    fn loss_collapses_reliable_throughput_but_not_lossy() {
        let clean = LinkConfig::datacenter();
        let lossy_link = clean.with_drop_rate(0.10);
        let codec = GradientCodec::default_mtu();
        let g = gradient(100_000);

        let mut tcp_clean = ReliableTransport::new(clean, codec).unwrap();
        let mut tcp_lossy = ReliableTransport::new(lossy_link, codec).unwrap();
        let t_clean = tcp_clean.transfer(0, 0, &g).unwrap().time_sec;
        let t_lossy = tcp_lossy.transfer(0, 0, &g).unwrap().time_sec;
        assert!(
            t_lossy > 5.0 * t_clean,
            "10% loss should slow TCP by a large factor: {t_clean} vs {t_lossy}"
        );

        let mut udp = LossyTransport::new(lossy_link, codec, LossPolicy::RandomFill, 1, 0).unwrap();
        let t_udp = udp.transfer(0, 0, &g).unwrap().time_sec;
        assert!(
            t_udp < t_lossy / 5.0,
            "lossy transport should be much faster than TCP under loss: {t_udp} vs {t_lossy}"
        );
    }

    #[test]
    fn drop_gradient_policy_drops_incomplete_gradients() {
        let link = LinkConfig::datacenter().with_drop_rate(0.5);
        let codec = GradientCodec::new(10).unwrap();
        let mut t = LossyTransport::new(link, codec, LossPolicy::DropGradient, 3, 0).unwrap();
        let g = gradient(1000);
        let out = t.transfer(0, 0, &g).unwrap();
        assert!(
            out.gradient.is_none(),
            "with 50% loss the gradient is practically always incomplete"
        );
        assert!(out.missing_coordinates > 0);
    }

    #[test]
    fn selective_policy_exposes_nan_random_fill_hides_them() {
        let link = LinkConfig::datacenter().with_drop_rate(0.3);
        let codec = GradientCodec::new(10).unwrap();
        let g = gradient(1000);

        let mut selective =
            LossyTransport::new(link, codec, LossPolicy::SelectiveNan, 5, 0).unwrap();
        let out = selective.transfer(0, 0, &g).unwrap();
        let received = out.gradient.unwrap();
        assert!(out.missing_coordinates > 0);
        assert_eq!(received.count_non_finite(), out.missing_coordinates);

        let mut filled = LossyTransport::new(link, codec, LossPolicy::RandomFill, 5, 0).unwrap();
        let out = filled.transfer(0, 0, &g).unwrap();
        let received = out.gradient.unwrap();
        assert!(out.missing_coordinates > 0);
        assert!(received.is_finite());
    }

    #[test]
    fn zero_loss_lossy_transport_is_lossless() {
        let mut t = LossyTransport::new(
            LinkConfig::datacenter(),
            GradientCodec::new(16).unwrap(),
            LossPolicy::SelectiveNan,
            7,
            0,
        )
        .unwrap();
        let g = gradient(200);
        let out = t.transfer(0, 0, &g).unwrap();
        assert_eq!(out.gradient.unwrap(), g);
        assert_eq!(out.missing_coordinates, 0);
    }

    #[test]
    fn transport_registry_builds_by_name() {
        let link = LinkConfig::datacenter();
        assert_eq!(
            build_transport("tcp", link, LossPolicy::RandomFill, 0, 0).unwrap().name(),
            "tcp"
        );
        assert_eq!(
            build_transport("lossympi", link, LossPolicy::RandomFill, 0, 0).unwrap().name(),
            "lossy-udp"
        );
        assert!(build_transport("pigeon", link, LossPolicy::RandomFill, 0, 0).is_err());
    }

    #[test]
    fn epoch_fence_rejects_stale_senders_on_both_transports() {
        let link = LinkConfig::datacenter();
        let g = gradient(100);
        for name in ["tcp", "lossy-udp"] {
            let mut t = build_transport(name, link, LossPolicy::RandomFill, 2, 0).unwrap();
            t.set_epoch(1);
            t.set_expected_epoch(Some(2));
            let mut row = vec![9.0f32; 100];
            let out = t.transfer_into(0, 0, g.as_slice(), &mut row).unwrap();
            assert!(!out.delivered, "{name}: a stale-epoch gradient must be fenced");
            assert!(out.stale_epoch_rejects > 0, "{name}: rejects must be counted");
            assert!(out.bytes_sent > 0, "{name}: the wire cost was still paid");

            // Syncing the sender to the expected epoch restores delivery.
            t.set_epoch(2);
            let out = t.transfer_into(0, 0, g.as_slice(), &mut row).unwrap();
            assert!(out.delivered, "{name}: current-epoch send must deliver");
            assert_eq!(out.stale_epoch_rejects, 0);
            assert_eq!(row, g.as_slice());
        }
    }

    #[test]
    fn retransmit_config_validation() {
        assert!(RetransmitConfig::default().validate().is_ok());
        assert!(RetransmitConfig { backoff_factor: 0.5, ..Default::default() }.validate().is_err());
        assert!(RetransmitConfig { initial_backoff_sec: -1.0, ..Default::default() }
            .validate()
            .is_err());
        assert!(RetransmitConfig { round_deadline_sec: 0.0, ..Default::default() }
            .validate()
            .is_err());
    }

    #[test]
    fn retransmit_recovers_all_losses_within_budget() {
        let link = LinkConfig::datacenter().with_drop_rate(0.3);
        let codec = GradientCodec::new(10).unwrap();
        let mut t = LossyTransport::new(link, codec, LossPolicy::DropGradient, 3, 0).unwrap();
        t.set_retransmit(Some(RetransmitConfig {
            max_retries: 16,
            round_deadline_sec: 10.0,
            ..Default::default()
        }));
        let g = gradient(1000);
        let mut recovered = 0usize;
        for step in 0..10u64 {
            let mut row = vec![0.0f32; 1000];
            let out = t.transfer_into(0, step, g.as_slice(), &mut row).unwrap();
            assert!(out.delivered, "step {step}: a generous retry budget must complete the row");
            assert_eq!(out.missing_coordinates, 0);
            assert!(!out.retransmit_exhausted, "a completed row never exhausted its budget");
            assert_eq!(row, g.as_slice());
            recovered += out.retransmits;
        }
        assert!(recovered > 0, "30% loss must trigger retransmissions");
    }

    #[test]
    fn chaos_damage_is_rejected_counted_and_recovered() {
        let link = LinkConfig::datacenter();
        let codec = GradientCodec::new(10).unwrap();
        let mut t = LossyTransport::new(link, codec, LossPolicy::DropGradient, 9, 1).unwrap();
        t.set_chaos(Some(ChaosPlan::new(crate::ChaosConfig::moderate(), 77).unwrap()));
        t.set_retransmit(Some(RetransmitConfig {
            max_retries: 16,
            round_deadline_sec: 10.0,
            ..Default::default()
        }));
        let g = gradient(800);
        let mut corrupt = 0usize;
        for step in 0..20u64 {
            let mut row = vec![0.0f32; 800];
            let out = t.transfer_into(0, step, g.as_slice(), &mut row).unwrap();
            corrupt += out.corrupt_rejects;
            assert!(out.delivered, "step {step}: retries must outlast moderate chaos");
            assert_eq!(row, g.as_slice(), "step {step}: recovery must be bit-exact");
        }
        assert!(corrupt > 0, "moderate chaos must corrupt some packets over 20 rounds");
    }

    #[test]
    fn deadline_exhaustion_degrades_like_a_transport_loss() {
        // A fully partitioned wire: no retry can ever complete the row. The
        // transfer must exhaust its budget gracefully — no panic, the loss
        // policy decides, and the retry count respects the bound.
        let link = LinkConfig::datacenter().with_drop_rate(1.0);
        let codec = GradientCodec::new(10).unwrap();
        let mut t = LossyTransport::new(link, codec, LossPolicy::DropGradient, 5, 0).unwrap();
        let retrans = RetransmitConfig { max_retries: 3, ..Default::default() };
        t.set_retransmit(Some(retrans));
        let g = gradient(500);
        let mut row = vec![0.0f32; 500];
        let out = t.transfer_into(0, 0, g.as_slice(), &mut row).unwrap();
        assert!(!out.delivered);
        assert_eq!(out.missing_coordinates, 500);
        assert!(out.retransmits <= 3);
        assert!(out.retransmits > 0, "the budget should at least be attempted");
        assert!(
            out.retransmit_exhausted,
            "an incomplete row with recovery enabled is a budget exhaustion, not a plain loss"
        );
        assert!(out.time_sec <= retrans.round_deadline_sec + 1.0);

        // The same partitioned wire without recovery is a plain loss: the
        // exhaustion marker stays clear so the ledger can tell them apart.
        let mut plain = LossyTransport::new(link, codec, LossPolicy::DropGradient, 5, 0).unwrap();
        let mut row = vec![0.0f32; 500];
        let out = plain.transfer_into(0, 0, g.as_slice(), &mut row).unwrap();
        assert!(!out.delivered);
        assert!(!out.retransmit_exhausted, "no recovery protocol, no exhaustion");
    }

    #[test]
    fn clean_link_recovery_path_matches_the_plain_path() {
        // With a clean wire the streaming recovery path must be
        // indistinguishable from the legacy batch path: same row bits, same
        // simulated time, zero retries.
        let link = LinkConfig::datacenter();
        let codec = GradientCodec::new(16).unwrap();
        let g = gradient(333);
        let mut plain = LossyTransport::new(link, codec, LossPolicy::RandomFill, 4, 2).unwrap();
        let mut recovering =
            LossyTransport::new(link, codec, LossPolicy::RandomFill, 4, 2).unwrap();
        recovering.set_retransmit(Some(RetransmitConfig::default()));
        let mut row_a = vec![0.0f32; 333];
        let mut row_b = vec![0.0f32; 333];
        let a = plain.transfer_into(0, 0, g.as_slice(), &mut row_a).unwrap();
        let b = recovering.transfer_into(0, 0, g.as_slice(), &mut row_b).unwrap();
        assert_eq!(row_a, row_b);
        assert_eq!(a.time_sec, b.time_sec);
        assert_eq!(a.bytes_sent, b.bytes_sent);
        assert_eq!(b.retransmits, 0);
        assert!(!b.retransmit_exhausted);
    }

    #[test]
    fn fenced_round_never_retries() {
        let link = LinkConfig::datacenter();
        let codec = GradientCodec::new(16).unwrap();
        let mut t = LossyTransport::new(link, codec, LossPolicy::RandomFill, 6, 0).unwrap();
        t.set_retransmit(Some(RetransmitConfig::default()));
        t.set_epoch(1);
        t.set_expected_epoch(Some(2));
        let g = gradient(200);
        let mut row = vec![0.0f32; 200];
        let out = t.transfer_into(0, 0, g.as_slice(), &mut row).unwrap();
        assert!(!out.delivered);
        assert!(out.stale_epoch_rejects > 0);
        assert_eq!(out.retransmits, 0, "re-sending a stale epoch can only be fenced again");
    }

    #[test]
    fn effective_bandwidth_is_monotone_in_loss() {
        let codec = GradientCodec::default_mtu();
        let b0 =
            ReliableTransport::new(LinkConfig::datacenter(), codec).unwrap().effective_bandwidth();
        let b5 = ReliableTransport::new(LinkConfig::datacenter().with_drop_rate(0.05), codec)
            .unwrap()
            .effective_bandwidth();
        let b10 = ReliableTransport::new(LinkConfig::datacenter().with_drop_rate(0.10), codec)
            .unwrap()
            .effective_bandwidth();
        assert!(b0 > b5 && b5 > b10);
    }
}
