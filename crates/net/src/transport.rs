//! The two transports compared in the paper's Figure 8: a reliable TCP-like
//! channel and the lossy UDP-like `lossyMPI` channel, plus the policies for
//! handling whatever the lossy channel fails to deliver (§3.3).

use crate::assembler::RoundAssembler;
use crate::link::{LinkConfig, LinkStats, LossyLink};
use crate::packet::GradientCodec;
use crate::{NetError, Result};
use agg_tensor::Vector;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the receiving endpoint treats lost coordinates (§3.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LossPolicy {
    /// Drop the whole gradient if any coordinate is missing ("the most
    /// straightforward solution"). The caller receives `None` for that
    /// gradient.
    DropGradient,
    /// Keep missing coordinates as `NaN`; the selective-averaging GAR ignores
    /// them.
    SelectiveNan,
    /// Fill missing coordinates with pseudo-random values and let the
    /// Byzantine-resilient GAR on top absorb them — AggregaThor's approach.
    #[default]
    RandomFill,
}

/// Everything that happened while transferring one gradient.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferOutcome {
    /// The gradient as seen by the receiver; `None` when the loss policy
    /// dropped it entirely.
    pub gradient: Option<Vector>,
    /// Simulated wall-clock time the transfer took, in seconds.
    pub time_sec: f64,
    /// Bytes put on the wire (including retransmissions for the reliable
    /// transport).
    pub bytes_sent: usize,
    /// Number of coordinates that never arrived (before policy handling).
    pub missing_coordinates: usize,
    /// Raw link statistics.
    pub link_stats: LinkStats,
}

/// What one in-place transfer did — [`TransferOutcome`] minus the owned
/// gradient: the receiver's view was written straight into the caller's
/// arena row instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowTransfer {
    /// `false` when the loss policy dropped the gradient entirely (the row's
    /// contents are then unspecified and must not be aggregated).
    pub delivered: bool,
    /// Simulated wall-clock time the transfer took, in seconds.
    pub time_sec: f64,
    /// Bytes put on the wire (including retransmissions for the reliable
    /// transport).
    pub bytes_sent: usize,
    /// Number of coordinates that never arrived (before policy handling).
    pub missing_coordinates: usize,
    /// Packets the receiver's epoch fence rejected (late packets from an
    /// evicted membership epoch). When non-zero the gradient was fenced and
    /// `delivered` is `false`.
    pub stale_epoch_rejects: usize,
    /// Raw link statistics.
    pub link_stats: LinkStats,
}

/// A one-way gradient transfer channel from a worker to the parameter
/// server (the model transfer in the opposite direction reuses the same
/// models with the roles swapped).
pub trait Transport: Send + fmt::Debug {
    /// Short transport name (`"tcp"`, `"lossy-udp"`).
    fn name(&self) -> &'static str;

    /// Stamps every subsequent send with this membership epoch — the epoch
    /// the *sender* believes is current. Default: no-op (epoch 0, the
    /// static-membership wire default).
    fn set_epoch(&mut self, _epoch: u32) {}

    /// Fences the *receiving* side on an expected membership epoch: packets
    /// stamped with any other epoch are rejected before they can fill a
    /// row (`None` accepts any epoch). Default: no-op.
    fn set_expected_epoch(&mut self, _epoch: Option<u32>) {}

    /// Transfers one gradient straight into `dst` — the hot path. The
    /// receiver's view of the gradient (after loss and policy handling) is
    /// written into the caller-provided row, typically one slot of a reused
    /// `GradientBatch` arena, so a round moves wire → arena with no
    /// intermediate `Vector`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] only for structural failures (codec
    /// inconsistencies, mismatched row length); packet loss is not an error,
    /// it is the point.
    fn transfer_into(
        &mut self,
        worker: u32,
        step: u64,
        gradient: &[f32],
        dst: &mut [f32],
    ) -> Result<RowTransfer>;

    /// Transfers one gradient, returning what the receiver observes as an
    /// owned [`Vector`] (convenience wrapper over
    /// [`Transport::transfer_into`] for callers without an arena).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Transport::transfer_into`].
    fn transfer(&mut self, worker: u32, step: u64, gradient: &Vector) -> Result<TransferOutcome> {
        let mut row = vec![0.0f32; gradient.len()];
        let outcome = self.transfer_into(worker, step, gradient.as_slice(), &mut row)?;
        Ok(TransferOutcome {
            gradient: outcome.delivered.then(|| Vector::from(row)),
            time_sec: outcome.time_sec,
            bytes_sent: outcome.bytes_sent,
            missing_coordinates: outcome.missing_coordinates,
            link_stats: outcome.link_stats,
        })
    }
}

/// A reliable, in-order transport modelling TCP/gRPC.
///
/// Every byte is delivered. The cost of reliability under loss follows the
/// classic Mathis bound: the achievable throughput of a long-lived TCP flow
/// is `MSS / (RTT · √(2p/3))`, so a 10 % loss rate collapses throughput by
/// orders of magnitude — which is exactly the behaviour the paper observes
/// ("TCP reducing (halving) its transmission rate following packet losses").
/// Lost bytes are also retransmitted (`/(1 − p)`).
#[derive(Debug, Clone)]
pub struct ReliableTransport {
    link: LinkConfig,
    codec: GradientCodec,
    /// Round-trip time used by the congestion model.
    rtt_sec: f64,
    /// Membership epoch stamped on sends (sender side).
    epoch: u32,
    /// Epoch fence applied on receipt (server side); `None` accepts any.
    expected_epoch: Option<u32>,
}

impl ReliableTransport {
    /// Creates a reliable transport over the given link.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] when the link is invalid.
    pub fn new(link: LinkConfig, codec: GradientCodec) -> Result<Self> {
        link.validate()?;
        // Effective RTT floor of 1 ms: under the loss rates this model is
        // exercised with, queues build up and retransmission timers fire, so
        // the propagation latency alone undersells the recovery cost.
        Ok(ReliableTransport {
            link,
            codec,
            rtt_sec: (2.0 * link.latency_sec).max(1e-3),
            epoch: 0,
            expected_epoch: None,
        })
    }

    /// Effective throughput (bytes/sec) under the configured loss rate.
    pub fn effective_bandwidth(&self) -> f64 {
        let p = self.link.drop_rate;
        if p <= 0.0 {
            return self.link.bandwidth_bytes_per_sec;
        }
        // Mathis et al.: rate ≈ MSS / (RTT * sqrt(2p/3)).
        let mss = (self.codec.coords_per_packet() * 4) as f64;
        let congestion_limited = mss / (self.rtt_sec * (2.0 * p / 3.0).sqrt());
        congestion_limited.min(self.link.bandwidth_bytes_per_sec)
    }
}

impl Transport for ReliableTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn set_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }

    fn set_expected_epoch(&mut self, epoch: Option<u32>) {
        self.expected_epoch = epoch;
    }

    fn transfer_into(
        &mut self,
        _worker: u32,
        _step: u64,
        gradient: &[f32],
        dst: &mut [f32],
    ) -> Result<RowTransfer> {
        if dst.len() != gradient.len() {
            return Err(NetError::InvalidConfig(format!(
                "destination row has {} coordinates, gradient has {}",
                dst.len(),
                gradient.len()
            )));
        }
        // Reliable delivery means the receiver sees every byte; the cost
        // model only needs the wire byte count, which is analytic — no
        // packets are materialised at all.
        let packet_count = self.codec.packet_count(gradient.len());
        let payload_bytes = self.codec.wire_bytes_total(gradient.len());
        let p = self.link.drop_rate;
        // Retransmissions inflate the bytes actually sent.
        let bytes_sent = (payload_bytes as f64 / (1.0 - p).max(1e-3)).ceil() as usize;
        let time_sec = bytes_sent as f64 / self.effective_bandwidth() + self.link.latency_sec;
        // Reliability gets the bytes through, but the membership fence still
        // rejects a sender stamping the wrong epoch: the wire cost was paid
        // (the sender did not know), the row is not filled.
        if let Some(expected) = self.expected_epoch {
            if self.epoch != expected {
                return Ok(RowTransfer {
                    delivered: false,
                    time_sec,
                    bytes_sent,
                    missing_coordinates: gradient.len(),
                    stale_epoch_rejects: packet_count,
                    link_stats: LinkStats {
                        sent: packet_count,
                        delivered: packet_count,
                        ..Default::default()
                    },
                });
            }
        }
        dst.copy_from_slice(gradient);
        Ok(RowTransfer {
            delivered: true,
            time_sec,
            bytes_sent,
            missing_coordinates: 0,
            stale_epoch_rejects: 0,
            link_stats: LinkStats {
                sent: packet_count,
                delivered: packet_count,
                ..Default::default()
            },
        })
    }
}

/// The lossy UDP-like transport (the paper's `lossyMPI`).
///
/// Packets travel at full link speed with no retransmission of gradient
/// payload; whatever is lost is handled by the configured [`LossPolicy`].
/// The wire path is zero-copy: the gradient is encoded into one contiguous
/// buffer, the link shuffles reference-counted views of it, and the
/// [`RoundAssembler`] scatters whatever arrives straight into the caller's
/// arena row.
#[derive(Debug)]
pub struct LossyTransport {
    link: LossyLink,
    link_config: LinkConfig,
    codec: GradientCodec,
    policy: LossPolicy,
    /// Reused across rounds; re-created only if the gradient dimension
    /// changes mid-stream (which real deployments never do).
    assembler: Option<RoundAssembler>,
    /// Membership epoch stamped into every packet header (sender side).
    epoch: u32,
    /// Epoch fence applied by the receiving assembler; `None` accepts any.
    expected_epoch: Option<u32>,
}

impl LossyTransport {
    /// Creates a lossy transport over the given link.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] when the link is invalid.
    pub fn new(
        link: LinkConfig,
        codec: GradientCodec,
        policy: LossPolicy,
        seed: u64,
        stream: u64,
    ) -> Result<Self> {
        Ok(LossyTransport {
            link: LossyLink::new(link, seed, stream)?,
            link_config: link,
            codec,
            policy,
            assembler: None,
            epoch: 0,
            expected_epoch: None,
        })
    }

    /// The configured loss policy.
    pub fn policy(&self) -> LossPolicy {
        self.policy
    }

    /// Deterministic pseudo-random fill for lost coordinates (mirrors the
    /// `RandomFill` sanitisation policy in `agg-core`).
    fn random_fill(index: usize) -> f32 {
        let mut z = (index as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ((z >> 41) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0
    }
}

impl Transport for LossyTransport {
    fn name(&self) -> &'static str {
        "lossy-udp"
    }

    fn set_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }

    fn set_expected_epoch(&mut self, epoch: Option<u32>) {
        self.expected_epoch = epoch;
    }

    fn transfer_into(
        &mut self,
        worker: u32,
        step: u64,
        gradient: &[f32],
        dst: &mut [f32],
    ) -> Result<RowTransfer> {
        let packets = self.codec.split_bytes_epoch(worker, step, self.epoch, gradient);
        let bytes_sent: usize = packets.iter().map(Bytes::len).sum();
        let (delivered, link_stats) = self.link.transmit_bytes(&packets);
        let assembler = match &mut self.assembler {
            Some(a) if a.dimension() == gradient.len() => a,
            slot => slot.insert(RoundAssembler::new(gradient.len())),
        };
        assembler.set_expected_epoch(self.expected_epoch);
        let missing = assembler.assemble_into(&delivered, dst)?;
        let stale_epoch_rejects = assembler.stale_rejects();
        // UDP pays no congestion penalty: time is bytes / bandwidth + latency,
        // independent of the drop rate (only a tiny metadata retransmission
        // overhead is charged per lost packet).
        let metadata_overhead = link_stats.dropped * crate::packet::HEADER_BYTES;
        let time_sec = self.link_config.transfer_time(bytes_sent + metadata_overhead);
        if stale_epoch_rejects > 0 {
            // Every packet of a gradient shares one epoch stamp, so any
            // fenced packet means the whole gradient was fenced: nothing of
            // it may reach aggregation, and the loss policy must not
            // manufacture a row out of the NaN fill.
            return Ok(RowTransfer {
                delivered: false,
                time_sec,
                bytes_sent,
                missing_coordinates: missing,
                stale_epoch_rejects,
                link_stats,
            });
        }
        let delivered = match self.policy {
            LossPolicy::DropGradient => missing == 0,
            LossPolicy::SelectiveNan => true,
            LossPolicy::RandomFill => {
                for (i, v) in dst.iter_mut().enumerate() {
                    if !v.is_finite() {
                        *v = Self::random_fill(i);
                    }
                }
                true
            }
        };
        Ok(RowTransfer {
            delivered,
            time_sec,
            bytes_sent,
            missing_coordinates: missing,
            stale_epoch_rejects: 0,
            link_stats,
        })
    }
}

/// Builds a transport by name, mirroring the original framework's choice of
/// communication backend (gRPC vs lossyMPI).
///
/// # Errors
///
/// Returns [`NetError::InvalidConfig`] for unknown transport names or invalid
/// links.
pub fn build_transport(
    name: &str,
    link: LinkConfig,
    policy: LossPolicy,
    seed: u64,
    stream: u64,
) -> Result<Box<dyn Transport>> {
    match name {
        "tcp" | "grpc" | "reliable" => {
            Ok(Box::new(ReliableTransport::new(link, GradientCodec::default_mtu())?))
        }
        "udp" | "lossy" | "lossympi" | "lossy-udp" => Ok(Box::new(LossyTransport::new(
            link,
            GradientCodec::default_mtu(),
            policy,
            seed,
            stream,
        )?)),
        other => Err(NetError::InvalidConfig(format!("unknown transport '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(d: usize) -> Vector {
        Vector::from_iter((0..d).map(|i| (i as f32).sin()))
    }

    #[test]
    fn reliable_transport_always_delivers_everything() {
        let mut t = ReliableTransport::new(
            LinkConfig::datacenter().with_drop_rate(0.1),
            GradientCodec::new(16).unwrap(),
        )
        .unwrap();
        let g = gradient(100);
        let out = t.transfer(0, 0, &g).unwrap();
        assert_eq!(out.gradient.as_ref().unwrap(), &g);
        assert_eq!(out.missing_coordinates, 0);
        assert!(out.bytes_sent > 400);
    }

    #[test]
    fn loss_collapses_reliable_throughput_but_not_lossy() {
        let clean = LinkConfig::datacenter();
        let lossy_link = clean.with_drop_rate(0.10);
        let codec = GradientCodec::default_mtu();
        let g = gradient(100_000);

        let mut tcp_clean = ReliableTransport::new(clean, codec).unwrap();
        let mut tcp_lossy = ReliableTransport::new(lossy_link, codec).unwrap();
        let t_clean = tcp_clean.transfer(0, 0, &g).unwrap().time_sec;
        let t_lossy = tcp_lossy.transfer(0, 0, &g).unwrap().time_sec;
        assert!(
            t_lossy > 5.0 * t_clean,
            "10% loss should slow TCP by a large factor: {t_clean} vs {t_lossy}"
        );

        let mut udp = LossyTransport::new(lossy_link, codec, LossPolicy::RandomFill, 1, 0).unwrap();
        let t_udp = udp.transfer(0, 0, &g).unwrap().time_sec;
        assert!(
            t_udp < t_lossy / 5.0,
            "lossy transport should be much faster than TCP under loss: {t_udp} vs {t_lossy}"
        );
    }

    #[test]
    fn drop_gradient_policy_drops_incomplete_gradients() {
        let link = LinkConfig::datacenter().with_drop_rate(0.5);
        let codec = GradientCodec::new(10).unwrap();
        let mut t = LossyTransport::new(link, codec, LossPolicy::DropGradient, 3, 0).unwrap();
        let g = gradient(1000);
        let out = t.transfer(0, 0, &g).unwrap();
        assert!(
            out.gradient.is_none(),
            "with 50% loss the gradient is practically always incomplete"
        );
        assert!(out.missing_coordinates > 0);
    }

    #[test]
    fn selective_policy_exposes_nan_random_fill_hides_them() {
        let link = LinkConfig::datacenter().with_drop_rate(0.3);
        let codec = GradientCodec::new(10).unwrap();
        let g = gradient(1000);

        let mut selective =
            LossyTransport::new(link, codec, LossPolicy::SelectiveNan, 5, 0).unwrap();
        let out = selective.transfer(0, 0, &g).unwrap();
        let received = out.gradient.unwrap();
        assert!(out.missing_coordinates > 0);
        assert_eq!(received.count_non_finite(), out.missing_coordinates);

        let mut filled = LossyTransport::new(link, codec, LossPolicy::RandomFill, 5, 0).unwrap();
        let out = filled.transfer(0, 0, &g).unwrap();
        let received = out.gradient.unwrap();
        assert!(out.missing_coordinates > 0);
        assert!(received.is_finite());
    }

    #[test]
    fn zero_loss_lossy_transport_is_lossless() {
        let mut t = LossyTransport::new(
            LinkConfig::datacenter(),
            GradientCodec::new(16).unwrap(),
            LossPolicy::SelectiveNan,
            7,
            0,
        )
        .unwrap();
        let g = gradient(200);
        let out = t.transfer(0, 0, &g).unwrap();
        assert_eq!(out.gradient.unwrap(), g);
        assert_eq!(out.missing_coordinates, 0);
    }

    #[test]
    fn transport_registry_builds_by_name() {
        let link = LinkConfig::datacenter();
        assert_eq!(
            build_transport("tcp", link, LossPolicy::RandomFill, 0, 0).unwrap().name(),
            "tcp"
        );
        assert_eq!(
            build_transport("lossympi", link, LossPolicy::RandomFill, 0, 0).unwrap().name(),
            "lossy-udp"
        );
        assert!(build_transport("pigeon", link, LossPolicy::RandomFill, 0, 0).is_err());
    }

    #[test]
    fn epoch_fence_rejects_stale_senders_on_both_transports() {
        let link = LinkConfig::datacenter();
        let g = gradient(100);
        for name in ["tcp", "lossy-udp"] {
            let mut t = build_transport(name, link, LossPolicy::RandomFill, 2, 0).unwrap();
            t.set_epoch(1);
            t.set_expected_epoch(Some(2));
            let mut row = vec![9.0f32; 100];
            let out = t.transfer_into(0, 0, g.as_slice(), &mut row).unwrap();
            assert!(!out.delivered, "{name}: a stale-epoch gradient must be fenced");
            assert!(out.stale_epoch_rejects > 0, "{name}: rejects must be counted");
            assert!(out.bytes_sent > 0, "{name}: the wire cost was still paid");

            // Syncing the sender to the expected epoch restores delivery.
            t.set_epoch(2);
            let out = t.transfer_into(0, 0, g.as_slice(), &mut row).unwrap();
            assert!(out.delivered, "{name}: current-epoch send must deliver");
            assert_eq!(out.stale_epoch_rejects, 0);
            assert_eq!(row, g.as_slice());
        }
    }

    #[test]
    fn effective_bandwidth_is_monotone_in_loss() {
        let codec = GradientCodec::default_mtu();
        let b0 =
            ReliableTransport::new(LinkConfig::datacenter(), codec).unwrap().effective_bandwidth();
        let b5 = ReliableTransport::new(LinkConfig::datacenter().with_drop_rate(0.05), codec)
            .unwrap()
            .effective_bandwidth();
        let b10 = ReliableTransport::new(LinkConfig::datacenter().with_drop_rate(0.10), codec)
            .unwrap()
            .effective_bandwidth();
        assert!(b0 > b5 && b5 > b10);
    }
}
