//! Zero-copy reassembly of wire packets straight into an arena row.
//!
//! The paper keeps UDP viable for gradient traffic by adding a small
//! **reliable metadata scheme** on top of the unreliable payload: every
//! packet carries worker id, step, sequence number, total packet count, and
//! the offset of its first coordinate, so a delivered packet always knows
//! where its coordinates belong no matter how the link dropped, duplicated
//! or reordered the rest of the gradient. [`RoundAssembler`] preserves that
//! scheme exactly — it validates the same header fields and tolerates the
//! same arrival pathologies as the legacy [`crate::GradientCodec::reassemble`]
//! — but delivers the payload without the legacy path's intermediate
//! allocations:
//!
//! * payloads are **scattered directly into a caller-provided arena row**
//!   (`&mut [f32]`, e.g. one row of `agg_tensor::GradientBatch`) via the bulk
//!   little-endian decode, instead of building a fresh `Vec<f32>` and then a
//!   `Vector`;
//! * received coordinates are tracked in a **compact bitset** (one bit per
//!   coordinate, reused across rounds) instead of a `Vec<bool>`, so counting
//!   what went missing is a popcount over `d/64` words;
//! * packets arrive as cheap [`Bytes`] views of the sender's contiguous
//!   encode buffer, so the whole wire → arena path copies each coordinate
//!   exactly once.
//!
//! Missing coordinates surface as `NaN` in the destination row, matching the
//! legacy reassembly contract: the caller's loss policy decides what to do
//! with them.

use crate::packet::{get_f32_slice_le, HEADER_BYTES};
use crate::{NetError, Result};
use bytes::Bytes;

/// The reliable metadata accompanying one wire packet (parsed header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WireHeader {
    worker: u32,
    step: u64,
    offset: usize,
    count: usize,
}

/// Parses the fixed-size header of an encoded packet without consuming the
/// buffer. The format is byte-identical to [`crate::Packet::encode`].
fn parse_header(data: &[u8]) -> Result<WireHeader> {
    if data.len() < HEADER_BYTES {
        return Err(NetError::MalformedPacket(format!(
            "{} bytes is shorter than the {HEADER_BYTES}-byte header",
            data.len()
        )));
    }
    let u32_at = |at: usize| -> u32 {
        u32::from_le_bytes(data[at..at + 4].try_into().expect("4-byte window"))
    };
    let worker = u32_at(0);
    let step = u64::from_le_bytes(data[4..12].try_into().expect("8-byte window"));
    let offset = u32_at(20) as usize;
    let count = u32_at(24) as usize;
    if data.len() - HEADER_BYTES < count * 4 {
        return Err(NetError::MalformedPacket(format!(
            "payload declares {count} coordinates but only {} bytes remain",
            data.len() - HEADER_BYTES
        )));
    }
    Ok(WireHeader { worker, step, offset, count })
}

/// Reassembles one gradient per call from whichever encoded packets arrived,
/// scattering payloads straight into a caller-provided row.
///
/// The bitset buffer is owned and reused, so a long-lived transport performs
/// zero reassembly allocations after the first round.
#[derive(Debug, Clone)]
pub struct RoundAssembler {
    dimension: usize,
    /// One bit per coordinate, set when any delivered packet covered it.
    filled: Vec<u64>,
}

impl RoundAssembler {
    /// Creates an assembler for gradients of dimension `dimension`.
    pub fn new(dimension: usize) -> Self {
        RoundAssembler { dimension, filled: vec![0u64; dimension.div_ceil(64)] }
    }

    /// The gradient dimension this assembler reassembles.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// Scatters the delivered packets of one gradient into `dst` and returns
    /// the number of coordinates no packet covered (left as `NaN`).
    ///
    /// Packets may arrive out of order, duplicated or truncated to a subset;
    /// the metadata header of each one says exactly where its payload
    /// belongs. A delivered `NaN` payload coordinate counts as received —
    /// only coordinates missing from every packet count as lost, which is
    /// why the bitset (not a NaN scan of `dst`) is the source of truth.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InconsistentStream`] when packets disagree about
    /// the worker or step, and [`NetError::MalformedPacket`] for truncated
    /// buffers or coordinates outside the gradient — the same contract as
    /// the legacy [`crate::GradientCodec::reassemble`].
    pub fn assemble_into(&mut self, packets: &[Bytes], dst: &mut [f32]) -> Result<usize> {
        if dst.len() != self.dimension {
            return Err(NetError::InvalidConfig(format!(
                "destination row has {} coordinates, assembler expects {}",
                dst.len(),
                self.dimension
            )));
        }
        self.filled.fill(0);
        let Some(first) = packets.first() else {
            dst.fill(f32::NAN);
            return Ok(self.dimension);
        };
        let reference = parse_header(first)?;
        for packet in packets {
            let header = parse_header(packet)?;
            if header.worker != reference.worker || header.step != reference.step {
                return Err(NetError::InconsistentStream(format!(
                    "packet from worker {} step {} mixed with worker {} step {}",
                    header.worker, header.step, reference.worker, reference.step
                )));
            }
            if header.offset + header.count > self.dimension {
                return Err(NetError::MalformedPacket(format!(
                    "packet covers coordinates {}..{} of a {}-dimensional gradient",
                    header.offset,
                    header.offset + header.count,
                    self.dimension
                )));
            }
            let payload = &packet[HEADER_BYTES..HEADER_BYTES + 4 * header.count];
            get_f32_slice_le(payload, &mut dst[header.offset..header.offset + header.count]);
            self.mark(header.offset, header.count);
        }
        // NaN-fill only the gaps, found by walking the bitset's zero bits:
        // at realistic loss rates most words are fully covered and skipped
        // outright, so the row is written once (by payloads), not twice
        // (NaN pre-fill + payloads).
        let mut missing = 0usize;
        for (w, &word) in self.filled.iter().enumerate() {
            let base = w * 64;
            let limit = (self.dimension - base).min(64);
            let mut gaps = !word;
            if limit < 64 {
                gaps &= (1u64 << limit) - 1;
            }
            missing += gaps.count_ones() as usize;
            while gaps != 0 {
                dst[base + gaps.trailing_zeros() as usize] = f32::NAN;
                gaps &= gaps - 1;
            }
        }
        Ok(missing)
    }

    /// Sets the bits for coordinates `start..start + len`, word at a time.
    fn mark(&mut self, start: usize, len: usize) {
        let end = start + len;
        let mut i = start;
        while i < end {
            let bit = i % 64;
            let take = (64 - bit).min(end - i);
            let mask = if take == 64 { !0u64 } else { ((1u64 << take) - 1) << bit };
            self.filled[i / 64] |= mask;
            i += take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::GradientCodec;

    fn gradient(d: usize) -> Vec<f32> {
        (0..d).map(|i| i as f32).collect()
    }

    #[test]
    fn assembles_a_full_round_bit_exactly() {
        let codec = GradientCodec::new(10).unwrap();
        let g = gradient(35);
        let packets = codec.split_bytes(1, 5, &g);
        assert_eq!(packets.len(), 4);
        let mut assembler = RoundAssembler::new(35);
        let mut row = vec![0.0f32; 35];
        let missing = assembler.assemble_into(&packets, &mut row).unwrap();
        assert_eq!(missing, 0);
        assert_eq!(row, g);
    }

    #[test]
    fn tolerates_reordering_and_duplication() {
        let codec = GradientCodec::new(8).unwrap();
        let g = gradient(20);
        let mut packets = codec.split_bytes(0, 0, &g);
        packets.reverse();
        packets.push(packets[0].clone());
        let mut assembler = RoundAssembler::new(20);
        let mut row = vec![0.0f32; 20];
        assert_eq!(assembler.assemble_into(&packets, &mut row).unwrap(), 0);
        assert_eq!(row, g);
    }

    #[test]
    fn missing_packets_surface_as_nan_and_are_counted() {
        let codec = GradientCodec::new(8).unwrap();
        let g = gradient(20);
        let mut packets = codec.split_bytes(0, 0, &g);
        packets.remove(1); // drop coordinates 8..16
        let mut assembler = RoundAssembler::new(20);
        let mut row = vec![0.0f32; 20];
        let missing = assembler.assemble_into(&packets, &mut row).unwrap();
        assert_eq!(missing, 8);
        assert!(row[8].is_nan() && row[15].is_nan());
        assert_eq!(row[0], 0.0);
        assert_eq!(row[19], 19.0);
    }

    #[test]
    fn nan_payload_counts_as_received() {
        let codec = GradientCodec::new(4).unwrap();
        let g = vec![f32::NAN, 1.0, f32::NEG_INFINITY, 2.0];
        let packets = codec.split_bytes(0, 0, &g);
        let mut assembler = RoundAssembler::new(4);
        let mut row = vec![0.0f32; 4];
        let missing = assembler.assemble_into(&packets, &mut row).unwrap();
        assert_eq!(missing, 0, "a delivered NaN coordinate is not a lost coordinate");
        assert!(row[0].is_nan());
        assert_eq!(row[1], 1.0);
        assert_eq!(row[2], f32::NEG_INFINITY);
    }

    #[test]
    fn rejects_mixed_streams_truncation_and_bad_offsets() {
        let codec = GradientCodec::new(8).unwrap();
        let a = codec.split_bytes(0, 0, &gradient(16));
        let b = codec.split_bytes(1, 0, &gradient(16));
        let mixed: Vec<_> = a.iter().chain(b.iter()).cloned().collect();
        let mut assembler = RoundAssembler::new(16);
        let mut row = vec![0.0f32; 16];
        assert!(matches!(
            assembler.assemble_into(&mixed, &mut row),
            Err(NetError::InconsistentStream(_))
        ));
        // Truncated header and truncated payload.
        let truncated = vec![a[0].slice(0..10)];
        assert!(matches!(
            assembler.assemble_into(&truncated, &mut row),
            Err(NetError::MalformedPacket(_))
        ));
        let short_payload = vec![a[0].slice(0..HEADER_BYTES + 4)];
        assert!(matches!(
            assembler.assemble_into(&short_payload, &mut row),
            Err(NetError::MalformedPacket(_))
        ));
        // A packet whose coordinates extend beyond the gradient.
        let far = codec.split_bytes(0, 0, &gradient(24));
        let mut small = RoundAssembler::new(16);
        assert!(matches!(
            small.assemble_into(&far[2..3], &mut row),
            Err(NetError::MalformedPacket(_))
        ));
    }

    #[test]
    fn empty_round_is_all_missing_and_empty_gradient_is_complete() {
        let mut assembler = RoundAssembler::new(10);
        let mut row = vec![0.0f32; 10];
        assert_eq!(assembler.assemble_into(&[], &mut row).unwrap(), 10);
        assert!(row.iter().all(|v| v.is_nan()));

        let codec = GradientCodec::default();
        let packets = codec.split_bytes(2, 9, &[]);
        assert_eq!(packets.len(), 1);
        let mut empty = RoundAssembler::new(0);
        assert_eq!(empty.assemble_into(&packets, &mut []).unwrap(), 0);
    }

    #[test]
    fn wrong_destination_length_is_rejected() {
        let mut assembler = RoundAssembler::new(8);
        let mut row = vec![0.0f32; 4];
        assert!(matches!(assembler.assemble_into(&[], &mut row), Err(NetError::InvalidConfig(_))));
    }
}
