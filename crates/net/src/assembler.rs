//! Zero-copy reassembly of wire packets straight into an arena row.
//!
//! The paper keeps UDP viable for gradient traffic by adding a small
//! **reliable metadata scheme** on top of the unreliable payload: every
//! packet carries worker id, step, sequence number, total packet count, and
//! the offset of its first coordinate, so a delivered packet always knows
//! where its coordinates belong no matter how the link dropped, duplicated
//! or reordered the rest of the gradient. [`RoundAssembler`] preserves that
//! scheme exactly — it validates the same header fields and tolerates the
//! same arrival pathologies as the legacy [`crate::GradientCodec::reassemble`]
//! — but delivers the payload without the legacy path's intermediate
//! allocations:
//!
//! * payloads are **scattered directly into a caller-provided arena row**
//!   (`&mut [f32]`, e.g. one row of `agg_tensor::GradientBatch`) via the bulk
//!   little-endian decode, instead of building a fresh `Vec<f32>` and then a
//!   `Vector`;
//! * received coordinates are tracked in a **compact bitset** (one bit per
//!   coordinate, reused across rounds) instead of a `Vec<bool>`, so counting
//!   what went missing is a popcount over `d/64` words;
//! * packets arrive as cheap [`Bytes`] views of the sender's contiguous
//!   encode buffer, so the whole wire → arena path copies each coordinate
//!   exactly once.
//!
//! Missing coordinates surface as `NaN` in the destination row, matching the
//! legacy reassembly contract: the caller's loss policy decides what to do
//! with them.

use crate::packet::{get_f32_slice_le, wire_integrity_error, HEADER_BYTES};
use crate::{NetError, Result};
use agg_tensor::ShardPlan;
use bytes::Bytes;

/// One bit per coordinate, tracking which coordinates any delivered packet
/// covered. Shared by the single-row [`RoundAssembler`] and the
/// [`ShardedRoundAssembler`]: the words are reused across rounds, marking a
/// coordinate range is a handful of word ORs, and finding what went missing
/// is a popcount-driven walk of the zero bits.
#[derive(Debug, Clone)]
struct CoordinateBitset {
    words: Vec<u64>,
    len: usize,
}

impl CoordinateBitset {
    fn new(len: usize) -> Self {
        CoordinateBitset { words: vec![0u64; len.div_ceil(64)], len }
    }

    /// Clears every bit, ready for the next round.
    fn reset(&mut self) {
        self.words.fill(0);
    }

    /// Sets the bits for coordinates `start..start + len`, word at a time,
    /// and returns how many of them were newly set. The return value is what
    /// makes completion accounting exact under duplication and overlap: a
    /// re-delivered range contributes zero, no matter how the packets were
    /// split or how many shard boundaries they straddle.
    fn mark(&mut self, start: usize, len: usize) -> usize {
        let end = start + len;
        let mut i = start;
        let mut newly = 0usize;
        while i < end {
            let bit = i % 64;
            let take = (64 - bit).min(end - i);
            let mask = if take == 64 { !0u64 } else { ((1u64 << take) - 1) << bit };
            newly += take - (self.words[i / 64] & mask).count_ones() as usize;
            self.words[i / 64] |= mask;
            i += take;
        }
        newly
    }

    /// Invokes `gap` for every unset coordinate, in increasing order, and
    /// returns how many there were. At realistic loss rates most words are
    /// fully covered and skipped outright.
    fn for_each_gap(&self, mut gap: impl FnMut(usize)) -> usize {
        let mut missing = 0usize;
        for (w, &word) in self.words.iter().enumerate() {
            let base = w * 64;
            let limit = (self.len - base).min(64);
            let mut gaps = !word;
            if limit < 64 {
                gaps &= (1u64 << limit) - 1;
            }
            missing += gaps.count_ones() as usize;
            while gaps != 0 {
                gap(base + gaps.trailing_zeros() as usize);
                gaps &= gaps - 1;
            }
        }
        missing
    }
}

/// The reliable metadata accompanying one wire packet (parsed header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WireHeader {
    worker: u32,
    step: u64,
    /// Pre-split packet id: the sequence number the *sender* stamped before
    /// any shard routing. This is the dedup key of the streaming feed path —
    /// a shard-straddling duplicate is one wire packet, not two.
    sequence: usize,
    total: usize,
    offset: usize,
    count: usize,
    /// Membership epoch the sender stamped. Assemblers fencing on an
    /// expected epoch reject packets stamped with any other value before
    /// they can touch a row.
    epoch: u32,
}

/// Parses the fixed-size header of an encoded packet without consuming the
/// buffer. The format is byte-identical to [`crate::Packet::encode`].
///
/// Callers run the integrity envelope ([`wire_integrity_error`]) first, so a
/// header reaching this point is checksum-valid: any inconsistency found
/// here means a broken or malicious *sender*, not wire damage, and is a hard
/// [`NetError::MalformedPacket`]. The payload length must match the declared
/// coordinate count exactly — an over-length payload is as suspect as a
/// short one.
fn parse_header(data: &[u8]) -> Result<WireHeader> {
    if data.len() < HEADER_BYTES {
        return Err(NetError::MalformedPacket(format!(
            "{} bytes is shorter than the {HEADER_BYTES}-byte header",
            data.len()
        )));
    }
    let u32_at = |at: usize| -> u32 {
        u32::from_le_bytes(data[at..at + 4].try_into().expect("4-byte window"))
    };
    let worker = u32_at(0);
    let step = u64::from_le_bytes(data[4..12].try_into().expect("8-byte window"));
    let sequence = u32_at(12) as usize;
    let total = u32_at(16) as usize;
    let offset = u32_at(20) as usize;
    let count = u32_at(24) as usize;
    let epoch = u32_at(28);
    if data.len() - HEADER_BYTES != count * 4 {
        return Err(NetError::MalformedPacket(format!(
            "payload declares {count} coordinates but carries {} bytes",
            data.len() - HEADER_BYTES
        )));
    }
    Ok(WireHeader { worker, step, sequence, total, offset, count, epoch })
}

/// Marks `sequence` in the seen-set, returning `false` when it was already
/// there. The word vector grows lazily to the stream's packet count and is
/// reused (zeroed) across rounds.
fn note_sequence(seen: &mut Vec<u64>, sequence: usize) -> bool {
    let word = sequence / 64;
    if word >= seen.len() {
        seen.resize(word + 1, 0);
    }
    let bit = 1u64 << (sequence % 64);
    if seen[word] & bit != 0 {
        return false;
    }
    seen[word] |= bit;
    true
}

/// `true` when `sequence` is already marked in the seen-set (never grows the
/// word vector — the read-only counterpart of [`note_sequence`]).
fn sequence_is_seen(seen: &[u64], sequence: usize) -> bool {
    seen.get(sequence / 64).is_some_and(|word| word & (1u64 << (sequence % 64)) != 0)
}

/// Rejects a packet whose sequence number is not below its declared total —
/// which also rejects a declared total of zero (every sequence is at or
/// above it), so a zero-`total` header can never pass.
fn check_sequence(header: &WireHeader) -> Result<()> {
    if header.total == 0 {
        return Err(NetError::MalformedPacket("packet declares a zero-packet stream".to_string()));
    }
    if header.sequence >= header.total {
        return Err(NetError::MalformedPacket(format!(
            "packet sequence {} of a {}-packet stream",
            header.sequence, header.total
        )));
    }
    Ok(())
}

/// Reassembles one gradient per call from whichever encoded packets arrived,
/// scattering payloads straight into a caller-provided row.
///
/// The bitset buffer is owned and reused, so a long-lived transport performs
/// zero reassembly allocations after the first round.
#[derive(Debug, Clone)]
pub struct RoundAssembler {
    dimension: usize,
    /// One bit per coordinate, set when any delivered packet covered it.
    filled: CoordinateBitset,
    /// Streaming-path state (see [`RoundAssembler::begin_round`]): newly
    /// covered coordinate count, the round's (worker, step) reference, and
    /// the pre-split packet ids already fed.
    received: usize,
    reference: Option<WireHeader>,
    seen: Vec<u64>,
    /// Epoch fence: `Some(e)` rejects every packet not stamped with `e`
    /// (counted in `stale_rejects`), `None` accepts any epoch (the static
    /// membership default).
    expected_epoch: Option<u32>,
    stale_rejects: usize,
    corrupt_rejects: usize,
}

impl RoundAssembler {
    /// Creates an assembler for gradients of dimension `dimension`.
    pub fn new(dimension: usize) -> Self {
        RoundAssembler {
            dimension,
            filled: CoordinateBitset::new(dimension),
            received: 0,
            reference: None,
            seen: Vec::new(),
            expected_epoch: None,
            stale_rejects: 0,
            corrupt_rejects: 0,
        }
    }

    /// The gradient dimension this assembler reassembles.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// Sets the membership-epoch fence: packets stamped with a different
    /// epoch are rejected (never written to a row, counted in
    /// [`RoundAssembler::stale_rejects`]). `None` — the default — accepts
    /// any epoch, preserving the static-membership behaviour.
    pub fn set_expected_epoch(&mut self, epoch: Option<u32>) {
        self.expected_epoch = epoch;
    }

    /// Packets rejected by the epoch fence since the last
    /// `begin_round`/`assemble_into`.
    pub fn stale_rejects(&self) -> usize {
        self.stale_rejects
    }

    /// Packets rejected by the integrity envelope (short, wrong wire
    /// version, checksum mismatch) since the last
    /// `begin_round`/`assemble_into`.
    pub fn corrupt_rejects(&self) -> usize {
        self.corrupt_rejects
    }

    /// Whether the pre-split packet id `sequence` has been fed (and
    /// accepted) this streaming round — the receiver-side state a NACK
    /// protocol inspects to decide which packets to request again.
    pub fn sequence_seen(&self, sequence: usize) -> bool {
        sequence_is_seen(&self.seen, sequence)
    }

    /// `Some(packet_epoch)` when the fence rejects this header.
    fn fence(&self, header: &WireHeader) -> Option<u32> {
        match self.expected_epoch {
            Some(expected) if header.epoch != expected => Some(header.epoch),
            _ => None,
        }
    }

    /// Starts a streaming round: clears the coverage bitset, the received
    /// count, the stream reference and the packet-id dedup set.
    ///
    /// Where [`RoundAssembler::assemble_into`] consumes a round's packets in
    /// one batch call, the streaming path feeds them as they drain off the
    /// wire — `begin_round`, then [`RoundAssembler::feed`] per packet (the
    /// caller watches [`RoundAssembler::is_complete`] to fire per-row work
    /// the moment the row is in), then [`RoundAssembler::finish_round`] to
    /// NaN-fill whatever never arrived.
    pub fn begin_round(&mut self) {
        self.filled.reset();
        self.received = 0;
        self.reference = None;
        self.seen.fill(0);
        self.stale_rejects = 0;
        self.corrupt_rejects = 0;
    }

    /// Feeds one delivered packet, scattering its payload into `dst`, and
    /// reports what it changed.
    ///
    /// A packet whose pre-split id was already fed this round is accepted
    /// with zero new coverage and without touching `dst` (first delivery
    /// wins), so completion accounting stays exact under wire duplication.
    /// A packet failing the integrity envelope is rejected first of all —
    /// [`FeedOutcome::Corrupt`], nothing parsed or written — because no
    /// field of a corrupt packet can be trusted, not even its epoch stamp.
    /// A packet stamped with the wrong membership epoch is fenced off —
    /// [`FeedOutcome::StaleEpoch`], nothing written — *before* the stream
    /// identity check, so an evicted worker's stragglers can never poison
    /// the round's reference.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RoundAssembler::assemble_into`], plus
    /// [`NetError::MalformedPacket`] for a sequence number at or above the
    /// declared stream total.
    pub fn feed(&mut self, packet: &Bytes, dst: &mut [f32]) -> Result<FeedOutcome> {
        if dst.len() != self.dimension {
            return Err(NetError::InvalidConfig(format!(
                "destination row has {} coordinates, assembler expects {}",
                dst.len(),
                self.dimension
            )));
        }
        if let Some(reason) = wire_integrity_error(packet) {
            self.corrupt_rejects += 1;
            return Ok(FeedOutcome::Corrupt { reason });
        }
        let header = parse_header(packet)?;
        if let Some(packet_epoch) = self.fence(&header) {
            self.stale_rejects += 1;
            return Ok(FeedOutcome::StaleEpoch {
                packet_epoch,
                expected_epoch: self.expected_epoch.expect("fence implies an expected epoch"),
            });
        }
        match &self.reference {
            Some(reference) => check_same_stream(&header, reference)?,
            None => self.reference = Some(header),
        }
        check_in_bounds(&header, self.dimension)?;
        check_sequence(&header)?;
        if !note_sequence(&mut self.seen, header.sequence) {
            return Ok(FeedOutcome::Accepted { newly_covered: 0, shards: 0..0 });
        }
        let payload = &packet[HEADER_BYTES..HEADER_BYTES + 4 * header.count];
        get_f32_slice_le(payload, &mut dst[header.offset..header.offset + header.count]);
        let newly = self.filled.mark(header.offset, header.count);
        self.received += newly;
        Ok(FeedOutcome::Accepted { newly_covered: newly, shards: 0..1 })
    }

    /// Coordinates covered so far in the current streaming round.
    pub fn received(&self) -> usize {
        self.received
    }

    /// Whether every coordinate of the row has been covered — the per-row
    /// completion event of the streaming round.
    pub fn is_complete(&self) -> bool {
        self.received == self.dimension
    }

    /// Ends a streaming round: NaN-fills every coordinate no packet covered
    /// and returns how many there were (the same missing count
    /// [`RoundAssembler::assemble_into`] reports).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] when `dst` does not match the
    /// assembler's dimension.
    pub fn finish_round(&mut self, dst: &mut [f32]) -> Result<usize> {
        if dst.len() != self.dimension {
            return Err(NetError::InvalidConfig(format!(
                "destination row has {} coordinates, assembler expects {}",
                dst.len(),
                self.dimension
            )));
        }
        Ok(self.filled.for_each_gap(|c| dst[c] = f32::NAN))
    }

    /// Scatters the delivered packets of one gradient into `dst` and returns
    /// the number of coordinates no packet covered (left as `NaN`).
    ///
    /// Packets may arrive out of order, duplicated or truncated to a subset;
    /// the metadata header of each one says exactly where its payload
    /// belongs. A delivered `NaN` payload coordinate counts as received —
    /// only coordinates missing from every packet count as lost, which is
    /// why the bitset (not a NaN scan of `dst`) is the source of truth.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InconsistentStream`] when packets disagree about
    /// the worker or step, and [`NetError::MalformedPacket`] for
    /// checksum-valid packets whose headers are nonsensical (bad sequence,
    /// over-length payload, coordinates outside the gradient) — the same
    /// contract as the legacy [`crate::GradientCodec::reassemble`]. A
    /// packet failing the integrity envelope (truncated, bit-flipped,
    /// unknown wire version) is *not* an error: it is counted in
    /// [`RoundAssembler::corrupt_rejects`] and skipped, exactly like a
    /// packet the link dropped.
    pub fn assemble_into(&mut self, packets: &[Bytes], dst: &mut [f32]) -> Result<usize> {
        if dst.len() != self.dimension {
            return Err(NetError::InvalidConfig(format!(
                "destination row has {} coordinates, assembler expects {}",
                dst.len(),
                self.dimension
            )));
        }
        self.filled.reset();
        self.stale_rejects = 0;
        self.corrupt_rejects = 0;
        if packets.is_empty() {
            dst.fill(f32::NAN);
            return Ok(self.dimension);
        }
        // The reference is the first packet that clears the integrity
        // envelope and the epoch fence: corrupt packets are counted and
        // skipped before anything is parsed, stale packets before any
        // identity check, so neither can poison the stream reference (or
        // fill a coordinate).
        let mut reference: Option<WireHeader> = None;
        for packet in packets {
            if wire_integrity_error(packet).is_some() {
                self.corrupt_rejects += 1;
                continue;
            }
            let header = parse_header(packet)?;
            if self.fence(&header).is_some() {
                self.stale_rejects += 1;
                continue;
            }
            match &reference {
                Some(reference) => check_same_stream(&header, reference)?,
                None => reference = Some(header),
            }
            check_in_bounds(&header, self.dimension)?;
            check_sequence(&header)?;
            let payload = &packet[HEADER_BYTES..HEADER_BYTES + 4 * header.count];
            get_f32_slice_le(payload, &mut dst[header.offset..header.offset + header.count]);
            self.filled.mark(header.offset, header.count);
        }
        // NaN-fill only the gaps, found by walking the bitset's zero bits:
        // at realistic loss rates most words are fully covered and skipped
        // outright, so the row is written once (by payloads), not twice
        // (NaN pre-fill + payloads).
        Ok(self.filled.for_each_gap(|c| dst[c] = f32::NAN))
    }
}

/// Rejects a packet whose (worker, step) identity disagrees with the round's
/// reference packet.
fn check_same_stream(header: &WireHeader, reference: &WireHeader) -> Result<()> {
    if header.worker != reference.worker || header.step != reference.step {
        return Err(NetError::InconsistentStream(format!(
            "packet from worker {} step {} mixed with worker {} step {}",
            header.worker, header.step, reference.worker, reference.step
        )));
    }
    Ok(())
}

/// Rejects a packet whose coordinate range extends beyond the gradient.
fn check_in_bounds(header: &WireHeader, dimension: usize) -> Result<()> {
    if header.offset + header.count > dimension {
        return Err(NetError::MalformedPacket(format!(
            "packet covers coordinates {}..{} of a {dimension}-dimensional gradient",
            header.offset,
            header.offset + header.count,
        )));
    }
    Ok(())
}

/// Reassembles one gradient per call into **per-shard rows**, routing every
/// packet payload to the shard(s) owning its coordinate range.
///
/// This is the wire side of the sharded parameter server: the sender splits
/// a gradient into MTU-sized packets oblivious to sharding, and each
/// delivered packet's metadata header (coordinate offset + count) decides
/// which shard arena row its payload lands in. A packet whose coordinate
/// range straddles a shard boundary is split — each shard receives exactly
/// the sub-slice of the payload it owns, still decoded in one bulk pass, so
/// routing adds no per-coordinate work. Validation and loss semantics are
/// identical to [`RoundAssembler`]: same header checks, lost coordinates
/// surface as `NaN` in the owning shard's row, and a delivered `NaN`
/// coordinate counts as received.
///
/// The [`ShardPlan`] is the same type the aggregation layer partitions the
/// arena with, so a coordinate routed to shard `s` here is by construction
/// the coordinate shard `s`'s kernels aggregate.
/// What one streaming `feed` call changed.
///
/// For an accepted packet: how many coordinates it newly covered, and which
/// shards' completion state may have flipped (poll
/// [`ShardedRoundAssembler::shard_complete`] over the range — always `0..1`
/// for the single-row [`RoundAssembler`]). A duplicate contributes nothing
/// and touches no shards. A packet stamped with the wrong membership epoch
/// is fenced off entirely: [`FeedOutcome::StaleEpoch`] reports the mismatch
/// and guarantees no row byte was written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeedOutcome {
    /// The packet passed every check and was scattered into the row(s).
    Accepted {
        /// Coordinates this packet newly covered (exact under duplication
        /// and shard-boundary splits).
        newly_covered: usize,
        /// The contiguous shard range the packet's coordinate range touches
        /// — empty for duplicates and header-only packets.
        shards: std::ops::Range<usize>,
    },
    /// The packet's epoch stamp did not match the assembler's expected
    /// epoch — a late packet from an evicted worker or a stale-epoch
    /// rejoin. Nothing was written; the reject is counted in
    /// `stale_rejects()`.
    StaleEpoch {
        /// The epoch the sender stamped into the packet.
        packet_epoch: u32,
        /// The epoch the assembler currently fences on.
        expected_epoch: u32,
    },
    /// The packet failed the integrity envelope — too short to hold a
    /// header, stamped with an unknown wire version, or its CRC32 disagrees
    /// with the bytes. Nothing was parsed (not even the epoch stamp, which
    /// is as untrustworthy as the rest of the packet), nothing was written;
    /// the reject is counted in `corrupt_rejects()`.
    Corrupt {
        /// Which integrity check failed.
        reason: &'static str,
    },
}

impl FeedOutcome {
    /// Coordinates newly covered by this feed (zero for duplicates,
    /// stale-epoch rejects and corrupt rejects).
    pub fn newly_covered(&self) -> usize {
        match self {
            FeedOutcome::Accepted { newly_covered, .. } => *newly_covered,
            FeedOutcome::StaleEpoch { .. } | FeedOutcome::Corrupt { .. } => 0,
        }
    }

    /// Whether the packet was fenced off for carrying a stale epoch.
    pub fn is_stale(&self) -> bool {
        matches!(self, FeedOutcome::StaleEpoch { .. })
    }

    /// Whether the packet was rejected by the integrity envelope.
    pub fn is_corrupt(&self) -> bool {
        matches!(self, FeedOutcome::Corrupt { .. })
    }
}

#[derive(Debug, Clone)]
pub struct ShardedRoundAssembler {
    plan: ShardPlan,
    /// One bit per (global) coordinate, set when any packet covered it.
    filled: CoordinateBitset,
    /// Streaming-path state: newly covered coordinates per shard, the
    /// round's stream reference, and the pre-split packet ids already fed.
    shard_received: Vec<usize>,
    reference: Option<WireHeader>,
    seen: Vec<u64>,
    /// Epoch fence, identical semantics to [`RoundAssembler`]'s.
    expected_epoch: Option<u32>,
    stale_rejects: usize,
    corrupt_rejects: usize,
}

impl ShardedRoundAssembler {
    /// Creates an assembler routing into the shards of `plan`.
    pub fn new(plan: ShardPlan) -> Self {
        let filled = CoordinateBitset::new(plan.dimension());
        let shard_received = vec![0usize; plan.shard_count()];
        ShardedRoundAssembler {
            plan,
            filled,
            shard_received,
            reference: None,
            seen: Vec::new(),
            expected_epoch: None,
            stale_rejects: 0,
            corrupt_rejects: 0,
        }
    }

    /// The shard partition this assembler routes into.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Sets the membership-epoch fence: packets stamped with a different
    /// epoch are rejected before routing — no shard row is touched, not
    /// even the partial slices of a boundary-straddling packet. `None`
    /// (default) accepts any epoch.
    pub fn set_expected_epoch(&mut self, epoch: Option<u32>) {
        self.expected_epoch = epoch;
    }

    /// Packets rejected by the epoch fence since the last
    /// `begin_round`/`assemble_into`.
    pub fn stale_rejects(&self) -> usize {
        self.stale_rejects
    }

    /// Packets rejected by the integrity envelope since the last
    /// `begin_round`/`assemble_into`.
    pub fn corrupt_rejects(&self) -> usize {
        self.corrupt_rejects
    }

    /// Whether the pre-split packet id `sequence` has been fed (and
    /// accepted) this streaming round — see
    /// [`RoundAssembler::sequence_seen`].
    pub fn sequence_seen(&self, sequence: usize) -> bool {
        sequence_is_seen(&self.seen, sequence)
    }

    /// `Some(packet_epoch)` when the fence rejects this header.
    fn fence(&self, header: &WireHeader) -> Option<u32> {
        match self.expected_epoch {
            Some(expected) if header.epoch != expected => Some(header.epoch),
            _ => None,
        }
    }

    /// Scatters the delivered packets of one gradient into the per-shard
    /// rows and returns the number of coordinates no packet covered (left as
    /// `NaN` in the owning shard's row).
    ///
    /// `rows` must hold one row per shard, each exactly as wide as its
    /// shard's coordinate range — e.g. row `s` of shard `s`'s
    /// `agg_tensor::GradientBatch` arena.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] when the row layout does not
    /// match the shard plan, and the same [`NetError::InconsistentStream`] /
    /// [`NetError::MalformedPacket`] conditions as
    /// [`RoundAssembler::assemble_into`].
    pub fn assemble_into(&mut self, packets: &[Bytes], rows: &mut [&mut [f32]]) -> Result<usize> {
        if rows.len() != self.plan.shard_count() {
            return Err(NetError::InvalidConfig(format!(
                "{} destination rows for a {}-shard plan",
                rows.len(),
                self.plan.shard_count()
            )));
        }
        for (s, row) in rows.iter().enumerate() {
            let width = self.plan.range(s).len();
            if row.len() != width {
                return Err(NetError::InvalidConfig(format!(
                    "shard {s} row has {} coordinates, its shard range holds {width}",
                    row.len()
                )));
            }
        }
        self.filled.reset();
        self.stale_rejects = 0;
        self.corrupt_rejects = 0;
        let dimension = self.plan.dimension();
        if packets.is_empty() {
            rows.iter_mut().for_each(|row| row.fill(f32::NAN));
            return Ok(dimension);
        }
        let mut reference: Option<WireHeader> = None;
        for packet in packets {
            if wire_integrity_error(packet).is_some() {
                self.corrupt_rejects += 1;
                continue;
            }
            let header = parse_header(packet)?;
            if self.fence(&header).is_some() {
                self.stale_rejects += 1;
                continue;
            }
            match &reference {
                Some(reference) => check_same_stream(&header, reference)?,
                None => reference = Some(header),
            }
            check_in_bounds(&header, dimension)?;
            check_sequence(&header)?;
            // Route the payload shard by shard: `consumed` counts payload
            // coordinates already scattered, `global` the coordinate the
            // next one lands on. A straddling packet takes several laps.
            let end = header.offset + header.count;
            let mut global = header.offset;
            let mut consumed = 0usize;
            while global < end {
                let shard = self.plan.shard_of(global);
                let range = self.plan.range(shard);
                let take = (end - global).min(range.end - global);
                let payload =
                    &packet[HEADER_BYTES + 4 * consumed..HEADER_BYTES + 4 * (consumed + take)];
                let local = global - range.start;
                get_f32_slice_le(payload, &mut rows[shard][local..local + take]);
                consumed += take;
                global += take;
            }
            self.filled.mark(header.offset, header.count);
        }
        // Walk the global gap bits in increasing coordinate order; the shard
        // cursor only ever advances, so routing the NaN fills is O(1)
        // amortised per gap.
        let plan = &self.plan;
        let mut shard = 0usize;
        let missing = self.filled.for_each_gap(|c| {
            while c >= plan.range(shard).end {
                shard += 1;
            }
            rows[shard][c - plan.range(shard).start] = f32::NAN;
        });
        Ok(missing)
    }

    /// Starts a streaming round: clears coverage, per-shard received counts,
    /// the stream reference and the packet-id dedup set. The streaming
    /// counterpart of [`ShardedRoundAssembler::assemble_into`]: feed packets
    /// as they arrive and fire a shard's kernels the moment
    /// [`ShardedRoundAssembler::shard_complete`] flips.
    pub fn begin_round(&mut self) {
        self.filled.reset();
        self.shard_received.fill(0);
        self.reference = None;
        self.seen.fill(0);
        self.stale_rejects = 0;
        self.corrupt_rejects = 0;
    }

    /// Feeds one delivered packet, routing its payload into the per-shard
    /// rows, and reports what it changed.
    ///
    /// Deduplication happens on the **pre-split packet id** (the sender's
    /// sequence number), not on the post-split shard pieces: a re-delivered
    /// packet that straddles a shard boundary is dropped before routing, so
    /// it cannot count toward *either* shard's completion total. Coverage is
    /// additionally counted from newly set coverage bits, so even partially
    /// overlapping ranges (distinct ids, shared coordinates) never inflate
    /// the quorum accounting.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ShardedRoundAssembler::assemble_into`], plus
    /// [`NetError::MalformedPacket`] for a sequence number at or above the
    /// declared stream total. Row-width validation covers the shards the
    /// packet touches.
    pub fn feed(&mut self, packet: &Bytes, rows: &mut [&mut [f32]]) -> Result<FeedOutcome> {
        if rows.len() != self.plan.shard_count() {
            return Err(NetError::InvalidConfig(format!(
                "{} destination rows for a {}-shard plan",
                rows.len(),
                self.plan.shard_count()
            )));
        }
        let dimension = self.plan.dimension();
        if let Some(reason) = wire_integrity_error(packet) {
            self.corrupt_rejects += 1;
            return Ok(FeedOutcome::Corrupt { reason });
        }
        let header = parse_header(packet)?;
        if let Some(packet_epoch) = self.fence(&header) {
            self.stale_rejects += 1;
            return Ok(FeedOutcome::StaleEpoch {
                packet_epoch,
                expected_epoch: self.expected_epoch.expect("fence implies an expected epoch"),
            });
        }
        match &self.reference {
            Some(reference) => check_same_stream(&header, reference)?,
            None => self.reference = Some(header),
        }
        check_in_bounds(&header, dimension)?;
        check_sequence(&header)?;
        if header.count == 0 || !note_sequence(&mut self.seen, header.sequence) {
            return Ok(FeedOutcome::Accepted { newly_covered: 0, shards: 0..0 });
        }
        let end = header.offset + header.count;
        let first_shard = self.plan.shard_of(header.offset);
        let mut global = header.offset;
        let mut consumed = 0usize;
        let mut newly = 0usize;
        let mut shard = first_shard;
        while global < end {
            shard = self.plan.shard_of(global);
            let range = self.plan.range(shard);
            if rows[shard].len() != range.len() {
                return Err(NetError::InvalidConfig(format!(
                    "shard {shard} row has {} coordinates, its shard range holds {}",
                    rows[shard].len(),
                    range.len()
                )));
            }
            let take = (end - global).min(range.end - global);
            let payload =
                &packet[HEADER_BYTES + 4 * consumed..HEADER_BYTES + 4 * (consumed + take)];
            let local = global - range.start;
            get_f32_slice_le(payload, &mut rows[shard][local..local + take]);
            let covered = self.filled.mark(global, take);
            self.shard_received[shard] += covered;
            newly += covered;
            consumed += take;
            global += take;
        }
        Ok(FeedOutcome::Accepted { newly_covered: newly, shards: first_shard..shard + 1 })
    }

    /// Coordinates of shard `s` covered so far in the current round.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn shard_received(&self, s: usize) -> usize {
        self.shard_received[s]
    }

    /// Whether every coordinate of shard `s` has been covered — the
    /// per-shard completion event that lets a coordinate rule start shard
    /// `s`'s kernels before the rest of the gradient is in.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn shard_complete(&self, s: usize) -> bool {
        self.shard_received[s] == self.plan.range(s).len()
    }

    /// Whether every coordinate of every shard has been covered.
    pub fn is_complete(&self) -> bool {
        self.shard_received.iter().sum::<usize>() == self.plan.dimension()
    }

    /// Ends a streaming round: NaN-fills every coordinate no packet covered
    /// (in its owning shard's row) and returns how many there were.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] when the row layout does not
    /// match the shard plan.
    pub fn finish_round(&mut self, rows: &mut [&mut [f32]]) -> Result<usize> {
        if rows.len() != self.plan.shard_count() {
            return Err(NetError::InvalidConfig(format!(
                "{} destination rows for a {}-shard plan",
                rows.len(),
                self.plan.shard_count()
            )));
        }
        for (s, row) in rows.iter().enumerate() {
            let width = self.plan.range(s).len();
            if row.len() != width {
                return Err(NetError::InvalidConfig(format!(
                    "shard {s} row has {} coordinates, its shard range holds {width}",
                    row.len()
                )));
            }
        }
        let plan = &self.plan;
        let mut shard = 0usize;
        let missing = self.filled.for_each_gap(|c| {
            while c >= plan.range(shard).end {
                shard += 1;
            }
            rows[shard][c - plan.range(shard).start] = f32::NAN;
        });
        Ok(missing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::GradientCodec;

    fn gradient(d: usize) -> Vec<f32> {
        (0..d).map(|i| i as f32).collect()
    }

    #[test]
    fn assembles_a_full_round_bit_exactly() {
        let codec = GradientCodec::new(10).unwrap();
        let g = gradient(35);
        let packets = codec.split_bytes(1, 5, &g);
        assert_eq!(packets.len(), 4);
        let mut assembler = RoundAssembler::new(35);
        let mut row = vec![0.0f32; 35];
        let missing = assembler.assemble_into(&packets, &mut row).unwrap();
        assert_eq!(missing, 0);
        assert_eq!(row, g);
    }

    #[test]
    fn tolerates_reordering_and_duplication() {
        let codec = GradientCodec::new(8).unwrap();
        let g = gradient(20);
        let mut packets = codec.split_bytes(0, 0, &g);
        packets.reverse();
        packets.push(packets[0].clone());
        let mut assembler = RoundAssembler::new(20);
        let mut row = vec![0.0f32; 20];
        assert_eq!(assembler.assemble_into(&packets, &mut row).unwrap(), 0);
        assert_eq!(row, g);
    }

    #[test]
    fn missing_packets_surface_as_nan_and_are_counted() {
        let codec = GradientCodec::new(8).unwrap();
        let g = gradient(20);
        let mut packets = codec.split_bytes(0, 0, &g);
        packets.remove(1); // drop coordinates 8..16
        let mut assembler = RoundAssembler::new(20);
        let mut row = vec![0.0f32; 20];
        let missing = assembler.assemble_into(&packets, &mut row).unwrap();
        assert_eq!(missing, 8);
        assert!(row[8].is_nan() && row[15].is_nan());
        assert_eq!(row[0], 0.0);
        assert_eq!(row[19], 19.0);
    }

    #[test]
    fn nan_payload_counts_as_received() {
        let codec = GradientCodec::new(4).unwrap();
        let g = vec![f32::NAN, 1.0, f32::NEG_INFINITY, 2.0];
        let packets = codec.split_bytes(0, 0, &g);
        let mut assembler = RoundAssembler::new(4);
        let mut row = vec![0.0f32; 4];
        let missing = assembler.assemble_into(&packets, &mut row).unwrap();
        assert_eq!(missing, 0, "a delivered NaN coordinate is not a lost coordinate");
        assert!(row[0].is_nan());
        assert_eq!(row[1], 1.0);
        assert_eq!(row[2], f32::NEG_INFINITY);
    }

    #[test]
    fn rejects_mixed_streams_truncation_and_bad_offsets() {
        let codec = GradientCodec::new(8).unwrap();
        let a = codec.split_bytes(0, 0, &gradient(16));
        let b = codec.split_bytes(1, 0, &gradient(16));
        let mixed: Vec<_> = a.iter().chain(b.iter()).cloned().collect();
        let mut assembler = RoundAssembler::new(16);
        let mut row = vec![0.0f32; 16];
        assert!(matches!(
            assembler.assemble_into(&mixed, &mut row),
            Err(NetError::InconsistentStream(_))
        ));
        // A truncated header or a truncated payload is wire damage, not a
        // malformed sender: counted as corrupt and skipped like a loss.
        let truncated = vec![a[0].slice(0..10)];
        assert_eq!(assembler.assemble_into(&truncated, &mut row).unwrap(), 16);
        assert_eq!(assembler.corrupt_rejects(), 1);
        let short_payload = vec![a[0].slice(0..HEADER_BYTES + 4)];
        assert_eq!(assembler.assemble_into(&short_payload, &mut row).unwrap(), 16);
        assert_eq!(assembler.corrupt_rejects(), 1);
        // A packet whose coordinates extend beyond the gradient.
        let far = codec.split_bytes(0, 0, &gradient(24));
        let mut small = RoundAssembler::new(16);
        assert!(matches!(
            small.assemble_into(&far[2..3], &mut row),
            Err(NetError::MalformedPacket(_))
        ));
    }

    #[test]
    fn empty_round_is_all_missing_and_empty_gradient_is_complete() {
        let mut assembler = RoundAssembler::new(10);
        let mut row = vec![0.0f32; 10];
        assert_eq!(assembler.assemble_into(&[], &mut row).unwrap(), 10);
        assert!(row.iter().all(|v| v.is_nan()));

        let codec = GradientCodec::default();
        let packets = codec.split_bytes(2, 9, &[]);
        assert_eq!(packets.len(), 1);
        let mut empty = RoundAssembler::new(0);
        assert_eq!(empty.assemble_into(&packets, &mut []).unwrap(), 0);
    }

    #[test]
    fn wrong_destination_length_is_rejected() {
        let mut assembler = RoundAssembler::new(8);
        let mut row = vec![0.0f32; 4];
        assert!(matches!(assembler.assemble_into(&[], &mut row), Err(NetError::InvalidConfig(_))));
    }

    #[test]
    fn duplicate_packet_over_already_filled_coordinates_is_idempotent() {
        // The UDP link can deliver the same datagram twice; the second copy
        // rewrites identical bytes over coordinates the bitset already marks,
        // so values and the missing count are unchanged — in both the
        // single-row and the sharded assembler.
        let codec = GradientCodec::new(6).unwrap();
        let g = gradient(14);
        let mut packets = codec.split_bytes(3, 2, &g);
        packets.push(packets[1].clone());
        packets.push(packets[1].clone());
        let mut assembler = RoundAssembler::new(14);
        let mut row = vec![0.0f32; 14];
        assert_eq!(assembler.assemble_into(&packets, &mut row).unwrap(), 0);
        assert_eq!(row, g);

        let plan = agg_tensor::ShardPlan::new(14, 3).unwrap();
        let mut sharded = ShardedRoundAssembler::new(plan.clone());
        let mut shard_rows: Vec<Vec<f32>> = plan.ranges().map(|r| vec![0.0f32; r.len()]).collect();
        let mut views: Vec<&mut [f32]> = shard_rows.iter_mut().map(Vec::as_mut_slice).collect();
        assert_eq!(sharded.assemble_into(&packets, &mut views).unwrap(), 0);
        let flat: Vec<f32> = shard_rows.concat();
        assert_eq!(flat, g);
    }

    #[test]
    fn straddling_packets_split_across_shard_boundaries() {
        // 8 coordinates per packet against shards of width 5: every packet
        // except the aligned first one straddles a boundary and must be
        // split between two shard rows.
        let codec = GradientCodec::new(8).unwrap();
        let g = gradient(20);
        let packets = codec.split_bytes(0, 0, &g);
        let plan = agg_tensor::ShardPlan::new(20, 4).unwrap();
        assert_eq!(plan.range(0), 0..5);
        let mut sharded = ShardedRoundAssembler::new(plan.clone());
        let mut shard_rows: Vec<Vec<f32>> = plan.ranges().map(|r| vec![0.0f32; r.len()]).collect();
        let mut views: Vec<&mut [f32]> = shard_rows.iter_mut().map(Vec::as_mut_slice).collect();
        assert_eq!(sharded.assemble_into(&packets, &mut views).unwrap(), 0);
        for (s, range) in plan.ranges().enumerate() {
            assert_eq!(shard_rows[s], g[range], "shard {s}");
        }
    }

    #[test]
    fn straddling_packet_loss_leaves_nan_in_both_touched_shards() {
        let codec = GradientCodec::new(8).unwrap();
        let g = gradient(20);
        let mut packets = codec.split_bytes(0, 0, &g);
        // Coordinates 8..16 go missing: they span shard 1 (5..10), all of
        // shard 2 (10..15) and the first coordinate of shard 3 (15..20).
        packets.remove(1);
        let plan = agg_tensor::ShardPlan::new(20, 4).unwrap();
        let mut sharded = ShardedRoundAssembler::new(plan.clone());
        let mut shard_rows: Vec<Vec<f32>> = plan.ranges().map(|r| vec![0.0f32; r.len()]).collect();
        let mut views: Vec<&mut [f32]> = shard_rows.iter_mut().map(Vec::as_mut_slice).collect();
        assert_eq!(sharded.assemble_into(&packets, &mut views).unwrap(), 8);
        assert_eq!(shard_rows[1][..3], g[5..8]);
        assert!(shard_rows[1][3..].iter().all(|v| v.is_nan()));
        assert!(shard_rows[2].iter().all(|v| v.is_nan()));
        assert!(shard_rows[3][0].is_nan());
        assert_eq!(shard_rows[3][1..], g[16..20]);
    }

    #[test]
    fn zero_length_payload_packets_are_tolerated() {
        // A zero-dimensional gradient encodes as one header-only packet with
        // count = 0: valid metadata, nothing to scatter, nothing missing.
        let codec = GradientCodec::default();
        let packets = codec.split_bytes(5, 1, &[]);
        assert_eq!(packets.len(), 1);

        let mut assembler = RoundAssembler::new(0);
        assert_eq!(assembler.assemble_into(&packets, &mut []).unwrap(), 0);

        let plan = agg_tensor::ShardPlan::new(0, 3).unwrap();
        let mut sharded = ShardedRoundAssembler::new(plan);
        let mut shard_rows: Vec<Vec<f32>> = vec![vec![]; 3];
        let mut views: Vec<&mut [f32]> = shard_rows.iter_mut().map(Vec::as_mut_slice).collect();
        assert_eq!(sharded.assemble_into(&packets, &mut views).unwrap(), 0);
    }

    #[test]
    fn sharded_assembler_matches_single_row_assembler_under_loss() {
        // Same packets, same loss pattern: concatenating the shard rows must
        // reproduce the single-row reassembly bit for bit (NaN positions
        // included), for several shard counts including empty shards.
        let codec = GradientCodec::new(7).unwrap();
        let g: Vec<f32> = (0..53).map(|i| (i as f32).sin()).collect();
        let mut packets = codec.split_bytes(2, 4, &g);
        packets.remove(5);
        packets.remove(2);
        packets.push(packets[0].clone()); // and a duplicate
        let mut reference = RoundAssembler::new(53);
        let mut flat = vec![0.0f32; 53];
        let expected_missing = reference.assemble_into(&packets, &mut flat).unwrap();
        for shards in [1usize, 2, 5, 60] {
            let plan = agg_tensor::ShardPlan::new(53, shards).unwrap();
            let mut sharded = ShardedRoundAssembler::new(plan.clone());
            let mut shard_rows: Vec<Vec<f32>> =
                plan.ranges().map(|r| vec![0.0f32; r.len()]).collect();
            let mut views: Vec<&mut [f32]> = shard_rows.iter_mut().map(Vec::as_mut_slice).collect();
            assert_eq!(sharded.assemble_into(&packets, &mut views).unwrap(), expected_missing);
            let rebuilt: Vec<f32> = shard_rows.concat();
            for (c, (a, b)) in rebuilt.iter().zip(&flat).enumerate() {
                assert!(a.to_bits() == b.to_bits(), "shards={shards} coordinate {c}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn sharded_assembler_rejects_wrong_row_layouts() {
        let plan = agg_tensor::ShardPlan::new(10, 2).unwrap();
        let mut sharded = ShardedRoundAssembler::new(plan);
        let mut one = vec![0.0f32; 5];
        assert!(matches!(
            sharded.assemble_into(&[], &mut [one.as_mut_slice()]),
            Err(NetError::InvalidConfig(_))
        ));
        let mut a = vec![0.0f32; 5];
        let mut b = vec![0.0f32; 4];
        assert!(matches!(
            sharded.assemble_into(&[], &mut [a.as_mut_slice(), b.as_mut_slice()]),
            Err(NetError::InvalidConfig(_))
        ));
    }

    #[test]
    fn streaming_feed_matches_batch_assembly_bit_for_bit() {
        // begin_round/feed/finish_round over the same packet multiset must
        // reproduce assemble_into exactly: same row bits, same missing count,
        // for both assemblers.
        let codec = GradientCodec::new(7).unwrap();
        let g: Vec<f32> = (0..53).map(|i| (i as f32).cos()).collect();
        let mut packets = codec.split_bytes(4, 8, &g);
        packets.remove(4);
        packets.reverse();
        packets.push(packets[2].clone());

        let mut batch = RoundAssembler::new(53);
        let mut expected = vec![0.0f32; 53];
        let expected_missing = batch.assemble_into(&packets, &mut expected).unwrap();

        let mut streaming = RoundAssembler::new(53);
        streaming.begin_round();
        let mut row = vec![0.0f32; 53];
        for p in &packets {
            streaming.feed(p, &mut row).unwrap();
        }
        assert!(!streaming.is_complete());
        assert_eq!(streaming.finish_round(&mut row).unwrap(), expected_missing);
        for (c, (a, b)) in row.iter().zip(&expected).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "coordinate {c}");
        }

        let plan = agg_tensor::ShardPlan::new(53, 4).unwrap();
        let mut sharded = ShardedRoundAssembler::new(plan.clone());
        sharded.begin_round();
        let mut shard_rows: Vec<Vec<f32>> = plan.ranges().map(|r| vec![0.0f32; r.len()]).collect();
        let mut views: Vec<&mut [f32]> = shard_rows.iter_mut().map(Vec::as_mut_slice).collect();
        for p in &packets {
            sharded.feed(p, &mut views).unwrap();
        }
        assert_eq!(sharded.finish_round(&mut views).unwrap(), expected_missing);
        let rebuilt: Vec<f32> = shard_rows.concat();
        for (c, (a, b)) in rebuilt.iter().zip(&expected).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "sharded coordinate {c}");
        }
    }

    #[test]
    fn row_completion_fires_exactly_when_the_last_coordinate_lands() {
        let codec = GradientCodec::new(8).unwrap();
        let g = gradient(20);
        let packets = codec.split_bytes(1, 3, &g);
        let mut assembler = RoundAssembler::new(20);
        assembler.begin_round();
        let mut row = vec![0.0f32; 20];
        for (i, p) in packets.iter().enumerate() {
            assert!(!assembler.is_complete(), "complete before packet {i}");
            assembler.feed(p, &mut row).unwrap();
        }
        assert!(assembler.is_complete());
        assert_eq!(assembler.received(), 20);
        assert_eq!(assembler.finish_round(&mut row).unwrap(), 0);
        assert_eq!(row, g);
    }

    #[test]
    fn duplicate_straddling_packet_counts_toward_neither_shards_total() {
        // The quorum-accounting regression: shards of width 5, packets of 8
        // coordinates, so packet 0 covers 0..8 — it straddles the shard 0/1
        // boundary. Feeding it twice must leave shard 0 at 5 and shard 1 at
        // 3 covered coordinates: the duplicate is dropped on its pre-split
        // id *before* shard routing, so neither shard's completion total
        // moves, and shard 1 only completes when packet 1 (8..16) arrives.
        let codec = GradientCodec::new(8).unwrap();
        let g = gradient(20);
        let packets = codec.split_bytes(0, 0, &g);
        let plan = agg_tensor::ShardPlan::new(20, 4).unwrap();
        let mut sharded = ShardedRoundAssembler::new(plan.clone());
        sharded.begin_round();
        let mut shard_rows: Vec<Vec<f32>> = plan.ranges().map(|r| vec![0.0f32; r.len()]).collect();
        let mut views: Vec<&mut [f32]> = shard_rows.iter_mut().map(Vec::as_mut_slice).collect();

        let first = sharded.feed(&packets[0], &mut views).unwrap();
        assert_eq!(first, FeedOutcome::Accepted { newly_covered: 8, shards: 0..2 });
        assert!(sharded.shard_complete(0));
        assert_eq!(sharded.shard_received(1), 3);

        let duplicate = sharded.feed(&packets[0], &mut views).unwrap();
        assert_eq!(duplicate, FeedOutcome::Accepted { newly_covered: 0, shards: 0..0 });
        assert_eq!(sharded.shard_received(0), 5, "duplicate must not inflate shard 0");
        assert_eq!(sharded.shard_received(1), 3, "duplicate must not inflate shard 1");
        assert!(!sharded.shard_complete(1));

        let second = sharded.feed(&packets[1], &mut views).unwrap();
        assert_eq!(second.newly_covered(), 8);
        assert!(sharded.shard_complete(1));
        assert!(sharded.shard_complete(2));
        assert!(!sharded.is_complete());
        sharded.feed(&packets[2], &mut views).unwrap();
        assert!(sharded.is_complete());
        assert_eq!(sharded.finish_round(&mut views).unwrap(), 0);
        assert_eq!(shard_rows.concat(), g);
    }

    #[test]
    fn feed_rejects_mixed_streams_and_bad_sequences() {
        let codec = GradientCodec::new(8).unwrap();
        let a = codec.split_bytes(0, 0, &gradient(16));
        let b = codec.split_bytes(1, 0, &gradient(16));
        let mut assembler = RoundAssembler::new(16);
        assembler.begin_round();
        let mut row = vec![0.0f32; 16];
        assembler.feed(&a[0], &mut row).unwrap();
        assert!(matches!(assembler.feed(&b[0], &mut row), Err(NetError::InconsistentStream(_))));
        // A sequence number at/above the declared total, resealed so the
        // checksum is valid: a *sender* bug, so a hard error rather than a
        // corrupt-reject.
        let mut bytes = a[0].to_vec();
        bytes[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        crate::packet::reseal_packet_bytes(&mut bytes);
        assert!(matches!(
            assembler.feed(&Bytes::from(bytes), &mut row),
            Err(NetError::MalformedPacket(_))
        ));
    }

    /// Builds a checksum-valid packet with an arbitrary header mutation
    /// applied after sealing.
    fn resealed(base: &Bytes, mutate: impl FnOnce(&mut Vec<u8>)) -> Bytes {
        let mut bytes = base.to_vec();
        mutate(&mut bytes);
        crate::packet::reseal_packet_bytes(&mut bytes);
        Bytes::from(bytes)
    }

    #[test]
    fn malformed_header_shapes_are_rejected_up_front() {
        // Checksum-valid but semantically broken headers: each shape must be
        // a hard MalformedPacket in both the feed and the batch path of both
        // assemblers — never scattered, never silently skipped.
        let codec = GradientCodec::new(8).unwrap();
        let g = gradient(16);
        let a = codec.split_bytes(0, 0, &g);
        let zero_total = resealed(&a[0], |b| b[16..20].copy_from_slice(&0u32.to_le_bytes()));
        let bad_sequence = resealed(&a[0], |b| b[12..16].copy_from_slice(&9u32.to_le_bytes()));
        let over_length = resealed(&a[0], |b| b.extend_from_slice(&[0u8; 4]));
        let out_of_bounds = resealed(&a[1], |b| b[20..24].copy_from_slice(&12u32.to_le_bytes()));
        for (shape, packet) in [
            ("zero total", &zero_total),
            ("sequence >= total", &bad_sequence),
            ("over-length payload", &over_length),
            ("out of bounds", &out_of_bounds),
        ] {
            let mut assembler = RoundAssembler::new(16);
            let mut row = vec![0.0f32; 16];
            assembler.begin_round();
            assert!(
                matches!(assembler.feed(packet, &mut row), Err(NetError::MalformedPacket(_))),
                "feed must reject {shape}"
            );
            assert!(
                matches!(
                    assembler.assemble_into(std::slice::from_ref(packet), &mut row),
                    Err(NetError::MalformedPacket(_))
                ),
                "assemble_into must reject {shape}"
            );
            assert_eq!(assembler.corrupt_rejects(), 0, "{shape} is malformed, not corrupt");

            let plan = agg_tensor::ShardPlan::new(16, 3).unwrap();
            let mut sharded = ShardedRoundAssembler::new(plan.clone());
            let mut shard_rows: Vec<Vec<f32>> =
                plan.ranges().map(|r| vec![0.0f32; r.len()]).collect();
            let mut views: Vec<&mut [f32]> = shard_rows.iter_mut().map(Vec::as_mut_slice).collect();
            sharded.begin_round();
            assert!(
                matches!(sharded.feed(packet, &mut views), Err(NetError::MalformedPacket(_))),
                "sharded feed must reject {shape}"
            );
            assert!(
                matches!(
                    sharded.assemble_into(std::slice::from_ref(packet), &mut views),
                    Err(NetError::MalformedPacket(_))
                ),
                "sharded assemble_into must reject {shape}"
            );
        }
    }

    #[test]
    fn corrupt_packets_are_counted_and_never_touch_a_row() {
        // Wire-damage shapes: short header, truncated payload, flipped
        // payload bit, flipped header bit, unknown wire version. Each is a
        // FeedOutcome::Corrupt — counted, skipped, and provably absent from
        // the row — in both assemblers, and the intact remainder of the
        // round still lands.
        let codec = GradientCodec::new(8).unwrap();
        let g = gradient(20);
        let packets = codec.split_bytes(0, 0, &g);
        let corrupted: Vec<Bytes> = vec![
            packets[0].slice(0..HEADER_BYTES - 1),
            packets[0].slice(0..HEADER_BYTES + 7),
            {
                let mut b = packets[1].to_vec();
                b[HEADER_BYTES + 2] ^= 0x10;
                Bytes::from(b)
            },
            {
                let mut b = packets[1].to_vec();
                b[21] ^= 0x01; // offset field
                Bytes::from(b)
            },
            {
                let mut b = packets[2].to_vec();
                b[32..36].copy_from_slice(&7u32.to_le_bytes()); // version
                crate::packet::reseal_packet_bytes(&mut b);
                Bytes::from(b)
            },
        ];

        let mut assembler = RoundAssembler::new(20);
        assembler.begin_round();
        let mut row = vec![-4.5f32; 20];
        for c in &corrupted {
            let outcome = assembler.feed(c, &mut row).unwrap();
            assert!(outcome.is_corrupt());
            assert_eq!(outcome.newly_covered(), 0);
        }
        assert!(row.iter().all(|&v| v == -4.5), "a corrupt packet must never touch the row");
        assert_eq!(assembler.corrupt_rejects(), corrupted.len());
        assert_eq!(assembler.received(), 0);
        for p in &packets {
            assert!(!assembler.feed(p, &mut row).unwrap().is_corrupt());
        }
        assert!(assembler.is_complete());
        assert_eq!(row, g);

        // Batch path: corrupt packets mixed into an otherwise-complete round
        // are skipped without error and without affecting the result.
        let mixed: Vec<Bytes> = corrupted.iter().chain(packets.iter()).cloned().collect();
        let mut batch = RoundAssembler::new(20);
        let mut batch_row = vec![0.0f32; 20];
        assert_eq!(batch.assemble_into(&mixed, &mut batch_row).unwrap(), 0);
        assert_eq!(batch.corrupt_rejects(), corrupted.len());
        assert_eq!(batch_row, g);

        // Sharded, straddling packets: same guarantees per shard row.
        let plan = agg_tensor::ShardPlan::new(20, 4).unwrap();
        let mut sharded = ShardedRoundAssembler::new(plan.clone());
        sharded.begin_round();
        let mut shard_rows: Vec<Vec<f32>> = plan.ranges().map(|r| vec![-4.5f32; r.len()]).collect();
        let mut views: Vec<&mut [f32]> = shard_rows.iter_mut().map(Vec::as_mut_slice).collect();
        for c in &corrupted {
            assert!(sharded.feed(c, &mut views).unwrap().is_corrupt());
        }
        assert!(shard_rows.iter().flatten().all(|&v| v == -4.5));
        let mut sharded = ShardedRoundAssembler::new(plan.clone());
        let mut shard_rows: Vec<Vec<f32>> = plan.ranges().map(|r| vec![0.0f32; r.len()]).collect();
        let mut views: Vec<&mut [f32]> = shard_rows.iter_mut().map(Vec::as_mut_slice).collect();
        assert_eq!(sharded.assemble_into(&mixed, &mut views).unwrap(), 0);
        assert_eq!(sharded.corrupt_rejects(), corrupted.len());
        assert_eq!(shard_rows.concat(), g);
    }

    #[test]
    fn corruption_detected_equals_explicit_drop() {
        // The zero-silent-corruption invariant at the assembler level:
        // corrupting a subset of packets must produce exactly the row a
        // plain drop of the same subset produces — same bits, same missing
        // count — with corrupt_rejects accounting for every damaged packet.
        let codec = GradientCodec::new(8).unwrap();
        let g: Vec<f32> = (0..50).map(|i| (i as f32).sin()).collect();
        let packets = codec.split_bytes(3, 11, &g);
        let damage = [1usize, 4];
        let corrupted: Vec<Bytes> = packets
            .iter()
            .enumerate()
            .map(|(i, p)| {
                if damage.contains(&i) {
                    let mut b = p.to_vec();
                    b[HEADER_BYTES] ^= 0x40;
                    Bytes::from(b)
                } else {
                    p.clone()
                }
            })
            .collect();
        let dropped: Vec<Bytes> = packets
            .iter()
            .enumerate()
            .filter(|(i, _)| !damage.contains(i))
            .map(|(_, p)| p.clone())
            .collect();

        let mut a = RoundAssembler::new(50);
        let mut row_corrupt = vec![0.0f32; 50];
        let missing_corrupt = a.assemble_into(&corrupted, &mut row_corrupt).unwrap();
        assert_eq!(a.corrupt_rejects(), damage.len());
        let mut b = RoundAssembler::new(50);
        let mut row_drop = vec![0.0f32; 50];
        let missing_drop = b.assemble_into(&dropped, &mut row_drop).unwrap();
        assert_eq!(b.corrupt_rejects(), 0);
        assert_eq!(missing_corrupt, missing_drop);
        for (c, (x, y)) in row_corrupt.iter().zip(&row_drop).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "coordinate {c}");
        }
    }

    #[test]
    fn begin_round_resets_streaming_state_between_rounds() {
        let codec = GradientCodec::new(8).unwrap();
        let plan = agg_tensor::ShardPlan::new(20, 4).unwrap();
        let mut sharded = ShardedRoundAssembler::new(plan.clone());
        let mut shard_rows: Vec<Vec<f32>> = plan.ranges().map(|r| vec![0.0f32; r.len()]).collect();
        let mut views: Vec<&mut [f32]> = shard_rows.iter_mut().map(Vec::as_mut_slice).collect();

        let g = gradient(20);
        sharded.begin_round();
        for p in codec.split_bytes(0, 0, &g) {
            sharded.feed(&p, &mut views).unwrap();
        }
        assert!(sharded.is_complete());

        // Next round, next step: the dedup set and counters must start
        // fresh, so the same sequence numbers land again.
        sharded.begin_round();
        assert!(!sharded.is_complete());
        assert_eq!(sharded.shard_received(0), 0);
        let next: Vec<f32> = g.iter().map(|x| x + 1.0).collect();
        for p in codec.split_bytes(0, 1, &next) {
            sharded.feed(&p, &mut views).unwrap();
        }
        assert!(sharded.is_complete());
        assert_eq!(sharded.finish_round(&mut views).unwrap(), 0);
        assert_eq!(shard_rows.concat(), next);
    }

    #[test]
    fn stale_epoch_packet_never_fills_a_row() {
        // An epoch-2 fence against an epoch-1 sender: every packet is
        // fenced, no coordinate lands, and the row the caller primed stays
        // byte-identical — the streaming feed path.
        let codec = GradientCodec::new(8).unwrap();
        let g = gradient(20);
        let stale = codec.split_bytes_epoch(0, 0, 1, &g);
        let mut assembler = RoundAssembler::new(20);
        assembler.set_expected_epoch(Some(2));
        assembler.begin_round();
        let mut row = vec![-7.5f32; 20];
        for p in &stale {
            let outcome = assembler.feed(p, &mut row).unwrap();
            assert_eq!(outcome, FeedOutcome::StaleEpoch { packet_epoch: 1, expected_epoch: 2 });
            assert_eq!(outcome.newly_covered(), 0);
            assert!(outcome.is_stale());
        }
        assert!(row.iter().all(|&v| v == -7.5), "a stale packet must never touch the row");
        assert_eq!(assembler.received(), 0);
        assert_eq!(assembler.stale_rejects(), stale.len());
        assert_eq!(assembler.finish_round(&mut row).unwrap(), 20);

        // Current-epoch packets still land after the stale burst — the
        // fence never poisons the stream reference.
        assembler.begin_round();
        let mut row = vec![0.0f32; 20];
        for p in &stale {
            assert!(assembler.feed(p, &mut row).unwrap().is_stale());
        }
        for p in codec.split_bytes_epoch(0, 0, 2, &g) {
            assert!(!assembler.feed(&p, &mut row).unwrap().is_stale());
        }
        assert!(assembler.is_complete());
        assert_eq!(row, g);
    }

    #[test]
    fn stale_epoch_packet_is_fenced_in_batch_assembly() {
        // assemble_into with a mix of current and stale packets: stale ones
        // are skipped (counted), current ones land, missing = what only the
        // stale packets would have covered.
        let codec = GradientCodec::new(8).unwrap();
        let g = gradient(20);
        let current = codec.split_bytes_epoch(0, 0, 3, &g);
        let stale = codec.split_bytes_epoch(0, 0, 2, &g);
        // Stale copy of packet 1 (coords 8..16) plus current packets 0 and 2.
        let mixed = vec![stale[1].clone(), current[0].clone(), current[2].clone()];
        let mut assembler = RoundAssembler::new(20);
        assembler.set_expected_epoch(Some(3));
        let mut row = vec![0.0f32; 20];
        assert_eq!(assembler.assemble_into(&mixed, &mut row).unwrap(), 8);
        assert_eq!(assembler.stale_rejects(), 1);
        assert!(row[8..16].iter().all(|v| v.is_nan()));
        assert_eq!(row[..8], g[..8]);

        // All-stale round: everything missing, nothing written.
        let mut all_stale_row = vec![5.0f32; 20];
        assert_eq!(assembler.assemble_into(&stale, &mut all_stale_row).unwrap(), 20);
        assert_eq!(assembler.stale_rejects(), stale.len());
        assert!(all_stale_row.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn stale_epoch_straddling_packet_touches_neither_shard() {
        // The sharded straddle path: packet 0 covers 0..8 and would split
        // across shards 0 (0..5) and 1 (5..10). Stamped with a stale epoch
        // it must be fenced *before* routing — neither shard's row nor its
        // completion total may move, even for the partial slice.
        let codec = GradientCodec::new(8).unwrap();
        let g = gradient(20);
        let stale = codec.split_bytes_epoch(0, 0, 4, &g);
        let plan = agg_tensor::ShardPlan::new(20, 4).unwrap();
        let mut sharded = ShardedRoundAssembler::new(plan.clone());
        sharded.set_expected_epoch(Some(5));
        sharded.begin_round();
        let mut shard_rows: Vec<Vec<f32>> =
            plan.ranges().map(|r| vec![-3.25f32; r.len()]).collect();
        let mut views: Vec<&mut [f32]> = shard_rows.iter_mut().map(Vec::as_mut_slice).collect();

        let outcome = sharded.feed(&stale[0], &mut views).unwrap();
        assert_eq!(outcome, FeedOutcome::StaleEpoch { packet_epoch: 4, expected_epoch: 5 });
        assert_eq!(sharded.shard_received(0), 0, "stale straddler must not fill shard 0");
        assert_eq!(sharded.shard_received(1), 0, "stale straddler must not fill shard 1");
        assert_eq!(sharded.stale_rejects(), 1);
        assert!(
            shard_rows.iter().flatten().all(|&v| v == -3.25),
            "no shard row byte may change on a stale packet"
        );

        // The batch path fences the same straddler identically.
        let mut sharded = ShardedRoundAssembler::new(plan.clone());
        sharded.set_expected_epoch(Some(5));
        let mut shard_rows: Vec<Vec<f32>> = plan.ranges().map(|r| vec![0.0f32; r.len()]).collect();
        {
            let mut views: Vec<&mut [f32]> = shard_rows.iter_mut().map(Vec::as_mut_slice).collect();
            assert_eq!(sharded.assemble_into(&stale, &mut views).unwrap(), 20);
        }
        assert_eq!(sharded.stale_rejects(), stale.len());
        assert!(shard_rows.iter().flatten().all(|v| v.is_nan()));

        // And a current-epoch round through the same fence is untouched.
        let current = codec.split_bytes_epoch(0, 0, 5, &g);
        {
            let mut views: Vec<&mut [f32]> = shard_rows.iter_mut().map(Vec::as_mut_slice).collect();
            assert_eq!(sharded.assemble_into(&current, &mut views).unwrap(), 0);
        }
        assert_eq!(sharded.stale_rejects(), 0);
        assert_eq!(shard_rows.concat(), g);
    }

    #[test]
    fn sharded_assembler_empty_round_nan_fills_every_shard() {
        let plan = agg_tensor::ShardPlan::new(9, 2).unwrap();
        let mut sharded = ShardedRoundAssembler::new(plan.clone());
        assert_eq!(sharded.plan().shard_count(), 2);
        let mut shard_rows: Vec<Vec<f32>> = plan.ranges().map(|r| vec![0.0f32; r.len()]).collect();
        let mut views: Vec<&mut [f32]> = shard_rows.iter_mut().map(Vec::as_mut_slice).collect();
        assert_eq!(sharded.assemble_into(&[], &mut views).unwrap(), 9);
        assert!(shard_rows.iter().flatten().all(|v| v.is_nan()));
    }
}
