//! Error type for the communication layer.

use thiserror::Error;

/// Errors produced by packet encoding/decoding and transport configuration.
#[derive(Debug, Error, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A packet buffer is too short or structurally invalid.
    #[error("malformed packet: {0}")]
    MalformedPacket(String),

    /// Decoded packets disagree about the gradient they belong to.
    #[error("inconsistent packet stream: {0}")]
    InconsistentStream(String),

    /// Invalid configuration value.
    #[error("invalid network configuration: {0}")]
    InvalidConfig(String),

    /// The reassembled gradient is unusable under the configured policy
    /// (e.g. every packet of the gradient was lost and the policy is
    /// drop-gradient).
    #[error("gradient dropped: {0}")]
    GradientDropped(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(NetError::MalformedPacket("too short".into()).to_string().contains("too short"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }
}
