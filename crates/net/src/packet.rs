//! Packetisation of gradients.
//!
//! A gradient of dimension `d` is split into packets carrying at most
//! `coords_per_packet` consecutive `f32` coordinates. Every packet carries a
//! small header — worker id, step, sequence number, total packet count,
//! coordinate offset, count and membership epoch — which is exactly the
//! "reliability scheme for metadata (accompanying gradients) and packets
//! ordering" the paper adds on top of UDP: the payload may be lost, but a
//! delivered packet always knows where its coordinates belong. The epoch
//! stamp lets the receiver fence off late packets from evicted workers and
//! stale-epoch rejoins under elastic membership.

use crate::{NetError, Result};
use agg_tensor::Vector;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Header + payload of one gradient packet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Worker that produced the gradient.
    pub worker: u32,
    /// Model-update step the gradient belongs to.
    pub step: u64,
    /// Sequence number of this packet within the gradient (0-based).
    pub sequence: u32,
    /// Total number of packets the gradient was split into.
    pub total: u32,
    /// Index of the first coordinate carried by this packet.
    pub offset: u32,
    /// Membership epoch the sender believed was current. Receivers that
    /// fence on an expected epoch reject packets stamped with any other
    /// value; epoch 0 is the static-membership default.
    pub epoch: u32,
    /// The coordinates carried by this packet.
    pub payload: Vec<f32>,
}

/// Number of header bytes in the wire format: worker (4), step (8),
/// sequence (4), total (4), offset (4), count (4), epoch (4).
pub const HEADER_BYTES: usize = 4 + 8 + 4 + 4 + 4 + 4 + 4;

/// Bulk little-endian encode: appends `values` to `buf` in one pass over
/// 4-byte chunks. This is the hot-path replacement for per-element
/// `put_f32_le` loops — the reserved region is written in place and the
/// chunked copy vectorises to a straight memcpy on little-endian targets.
pub fn put_f32_slice_le(buf: &mut BytesMut, values: &[f32]) {
    let start = buf.len();
    buf.resize(start + 4 * values.len(), 0);
    for (dst, &v) in buf[start..].chunks_exact_mut(4).zip(values) {
        dst.copy_from_slice(&v.to_le_bytes());
    }
}

/// Bulk little-endian decode: fills `dst` from `src` in one pass over 4-byte
/// chunks (the inverse of [`put_f32_slice_le`]; NaN payloads round-trip
/// bit-exactly).
///
/// # Panics
///
/// Panics if `src.len() != 4 * dst.len()`.
pub fn get_f32_slice_le(src: &[u8], dst: &mut [f32]) {
    assert_eq!(src.len(), 4 * dst.len(), "byte payload must be 4 bytes per coordinate");
    for (v, raw) in dst.iter_mut().zip(src.chunks_exact(4)) {
        *v = f32::from_le_bytes(raw.try_into().expect("chunks_exact yields 4-byte chunks"));
    }
}

impl Packet {
    /// Serialises the packet into a length-delimited byte buffer
    /// (little-endian).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(HEADER_BYTES + 4 * self.payload.len());
        buf.put_u32_le(self.worker);
        buf.put_u64_le(self.step);
        buf.put_u32_le(self.sequence);
        buf.put_u32_le(self.total);
        buf.put_u32_le(self.offset);
        buf.put_u32_le(self.payload.len() as u32);
        buf.put_u32_le(self.epoch);
        for &v in &self.payload {
            buf.put_f32_le(v);
        }
        buf.freeze()
    }

    /// Parses a packet from a byte buffer produced by [`Packet::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`NetError::MalformedPacket`] for truncated or inconsistent
    /// buffers.
    pub fn decode(mut data: Bytes) -> Result<Packet> {
        if data.len() < HEADER_BYTES {
            return Err(NetError::MalformedPacket(format!(
                "{} bytes is shorter than the {HEADER_BYTES}-byte header",
                data.len()
            )));
        }
        let worker = data.get_u32_le();
        let step = data.get_u64_le();
        let sequence = data.get_u32_le();
        let total = data.get_u32_le();
        let offset = data.get_u32_le();
        let count = data.get_u32_le() as usize;
        let epoch = data.get_u32_le();
        if data.remaining() < count * 4 {
            return Err(NetError::MalformedPacket(format!(
                "payload declares {count} coordinates but only {} bytes remain",
                data.remaining()
            )));
        }
        let payload = (0..count).map(|_| data.get_f32_le()).collect();
        Ok(Packet { worker, step, sequence, total, offset, epoch, payload })
    }

    /// Number of bytes this packet occupies on the wire.
    pub fn wire_bytes(&self) -> usize {
        HEADER_BYTES + 4 * self.payload.len()
    }
}

/// Splits gradients into packets and reassembles them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GradientCodec {
    coords_per_packet: usize,
}

impl GradientCodec {
    /// Creates a codec carrying `coords_per_packet` coordinates per packet.
    ///
    /// The default MTU-style choice is 350 coordinates ≈ 1400 payload bytes.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] when `coords_per_packet == 0`.
    pub fn new(coords_per_packet: usize) -> Result<Self> {
        if coords_per_packet == 0 {
            return Err(NetError::InvalidConfig("coords_per_packet must be positive".to_string()));
        }
        Ok(GradientCodec { coords_per_packet })
    }

    /// The codec used throughout the experiments (≈1.4 kB payload per
    /// packet, a typical Ethernet MTU).
    pub fn default_mtu() -> Self {
        GradientCodec { coords_per_packet: 350 }
    }

    /// Coordinates carried per packet.
    pub fn coords_per_packet(&self) -> usize {
        self.coords_per_packet
    }

    /// Number of packets a gradient of dimension `d` splits into (a
    /// zero-dimensional gradient still costs one metadata-only packet).
    pub fn packet_count(&self, d: usize) -> usize {
        d.div_ceil(self.coords_per_packet).max(1)
    }

    /// Total wire bytes (headers + payload) of a gradient of dimension `d` —
    /// the analytic form of summing [`Packet::wire_bytes`] over a split,
    /// without materialising any packet.
    pub fn wire_bytes_total(&self, d: usize) -> usize {
        self.packet_count(d) * HEADER_BYTES + 4 * d
    }

    /// Splits a gradient into packets (stamped with epoch 0, the static
    /// membership default; see [`GradientCodec::split_epoch`]).
    pub fn split(&self, worker: u32, step: u64, gradient: &Vector) -> Vec<Packet> {
        self.split_epoch(worker, step, 0, gradient)
    }

    /// Splits a gradient into packets stamped with a membership epoch.
    pub fn split_epoch(
        &self,
        worker: u32,
        step: u64,
        epoch: u32,
        gradient: &Vector,
    ) -> Vec<Packet> {
        let d = gradient.len();
        let total = d.div_ceil(self.coords_per_packet).max(1) as u32;
        let mut packets = Vec::with_capacity(total as usize);
        let data = gradient.as_slice();
        for (seq, chunk) in data.chunks(self.coords_per_packet).enumerate() {
            packets.push(Packet {
                worker,
                step,
                sequence: seq as u32,
                total,
                offset: (seq * self.coords_per_packet) as u32,
                epoch,
                payload: chunk.to_vec(),
            });
        }
        if packets.is_empty() {
            // Zero-dimensional gradient still produces one empty packet so
            // the receiver learns the step happened.
            packets.push(Packet {
                worker,
                step,
                sequence: 0,
                total: 1,
                offset: 0,
                epoch,
                payload: vec![],
            });
        }
        packets
    }

    /// Splits a gradient into **encoded wire packets**: every packet of the
    /// gradient is written into one contiguous `BytesMut` (headers via the
    /// header writers, payload via the bulk [`put_f32_slice_le`] pass) and
    /// handed out as zero-copy [`Bytes`] slices of that single buffer.
    ///
    /// The wire format of each slice is byte-identical to
    /// [`Packet::encode`], so the two codecs interoperate packet-for-packet;
    /// this path just skips the per-packet `Vec<f32>` payloads and
    /// per-element `put_f32_le` loops of the legacy split-then-encode pair.
    ///
    /// Packets are stamped with epoch 0 (static membership); see
    /// [`GradientCodec::split_bytes_epoch`].
    pub fn split_bytes(&self, worker: u32, step: u64, gradient: &[f32]) -> Vec<Bytes> {
        self.split_bytes_epoch(worker, step, 0, gradient)
    }

    /// [`GradientCodec::split_bytes`] with an explicit membership epoch
    /// stamped into every packet header.
    pub fn split_bytes_epoch(
        &self,
        worker: u32,
        step: u64,
        epoch: u32,
        gradient: &[f32],
    ) -> Vec<Bytes> {
        let d = gradient.len();
        let total = self.packet_count(d);
        let mut buf = BytesMut::with_capacity(self.wire_bytes_total(d));
        let mut bounds = Vec::with_capacity(total);
        let mut write_packet = |seq: usize, chunk: &[f32]| {
            let start = buf.len();
            buf.put_u32_le(worker);
            buf.put_u64_le(step);
            buf.put_u32_le(seq as u32);
            buf.put_u32_le(total as u32);
            buf.put_u32_le((seq * self.coords_per_packet) as u32);
            buf.put_u32_le(chunk.len() as u32);
            buf.put_u32_le(epoch);
            put_f32_slice_le(&mut buf, chunk);
            bounds.push(start..buf.len());
        };
        if d == 0 {
            write_packet(0, &[]);
        } else {
            for (seq, chunk) in gradient.chunks(self.coords_per_packet).enumerate() {
                write_packet(seq, chunk);
            }
        }
        let frozen = buf.freeze();
        bounds.into_iter().map(|range| frozen.slice(range)).collect()
    }

    /// Reassembles a gradient of dimension `dimension` from whichever packets
    /// arrived (possibly out of order, duplicated or incomplete).
    ///
    /// Missing coordinates are set to `NaN`; the caller's loss policy decides
    /// what to do with them. Returns the reassembled vector and the number of
    /// missing coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InconsistentStream`] when packets disagree about
    /// the worker or step, and [`NetError::MalformedPacket`] when a packet's
    /// coordinates fall outside the gradient.
    pub fn reassemble(&self, packets: &[Packet], dimension: usize) -> Result<(Vector, usize)> {
        let mut data = vec![f32::NAN; dimension];
        let mut filled = vec![false; dimension];
        if let Some(first) = packets.first() {
            for p in packets {
                if p.worker != first.worker || p.step != first.step {
                    return Err(NetError::InconsistentStream(format!(
                        "packet from worker {} step {} mixed with worker {} step {}",
                        p.worker, p.step, first.worker, first.step
                    )));
                }
                let offset = p.offset as usize;
                if offset + p.payload.len() > dimension {
                    return Err(NetError::MalformedPacket(format!(
                        "packet covers coordinates {}..{} of a {}-dimensional gradient",
                        offset,
                        offset + p.payload.len(),
                        dimension
                    )));
                }
                for (i, &v) in p.payload.iter().enumerate() {
                    data[offset + i] = v;
                    filled[offset + i] = true;
                }
            }
        }
        let missing = filled.iter().filter(|&&f| !f).count();
        Ok((Vector::from(data), missing))
    }
}

impl Default for GradientCodec {
    fn default() -> Self {
        GradientCodec::default_mtu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(d: usize) -> Vector {
        Vector::from_iter((0..d).map(|i| i as f32))
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = Packet {
            worker: 3,
            step: 42,
            sequence: 7,
            total: 9,
            offset: 700,
            epoch: 6,
            payload: vec![1.5, -2.5, f32::NAN],
        };
        let decoded = Packet::decode(p.encode()).unwrap();
        assert_eq!(decoded.worker, 3);
        assert_eq!(decoded.step, 42);
        assert_eq!(decoded.sequence, 7);
        assert_eq!(decoded.offset, 700);
        assert_eq!(decoded.epoch, 6);
        assert_eq!(decoded.payload.len(), 3);
        assert!(decoded.payload[2].is_nan());
        assert_eq!(p.wire_bytes(), HEADER_BYTES + 12);
    }

    #[test]
    fn decode_rejects_truncation() {
        let p = Packet {
            worker: 0,
            step: 0,
            sequence: 0,
            total: 1,
            offset: 0,
            epoch: 0,
            payload: vec![1.0; 10],
        };
        let encoded = p.encode();
        assert!(Packet::decode(encoded.slice(0..10)).is_err());
        assert!(Packet::decode(encoded.slice(0..HEADER_BYTES + 4)).is_err());
    }

    #[test]
    fn split_covers_every_coordinate_exactly_once() {
        let codec = GradientCodec::new(10).unwrap();
        let g = gradient(35);
        let packets = codec.split(1, 5, &g);
        assert_eq!(packets.len(), 4);
        assert_eq!(packets[3].payload.len(), 5);
        assert!(packets.iter().all(|p| p.total == 4));
        let (restored, missing) = codec.reassemble(&packets, 35).unwrap();
        assert_eq!(missing, 0);
        assert_eq!(restored, g);
    }

    #[test]
    fn reassembly_tolerates_reordering_and_duplication() {
        let codec = GradientCodec::new(8).unwrap();
        let g = gradient(20);
        let mut packets = codec.split(0, 0, &g);
        packets.reverse();
        packets.push(packets[0].clone()); // duplicate
        let (restored, missing) = codec.reassemble(&packets, 20).unwrap();
        assert_eq!(missing, 0);
        assert_eq!(restored, g);
    }

    #[test]
    fn missing_packets_surface_as_nan() {
        let codec = GradientCodec::new(8).unwrap();
        let g = gradient(20);
        let mut packets = codec.split(0, 0, &g);
        packets.remove(1); // drop coordinates 8..16
        let (restored, missing) = codec.reassemble(&packets, 20).unwrap();
        assert_eq!(missing, 8);
        assert!(restored[8].is_nan());
        assert!(restored[15].is_nan());
        assert_eq!(restored[0], 0.0);
        assert_eq!(restored[19], 19.0);
    }

    #[test]
    fn reassembly_rejects_mixed_streams_and_bad_offsets() {
        let codec = GradientCodec::new(8).unwrap();
        let a = codec.split(0, 0, &gradient(16));
        let b = codec.split(1, 0, &gradient(16));
        let mixed: Vec<Packet> = a.iter().chain(b.iter()).cloned().collect();
        assert!(codec.reassemble(&mixed, 16).is_err());
        // A packet that claims to extend beyond the gradient.
        let too_far = vec![Packet {
            worker: 0,
            step: 0,
            sequence: 0,
            total: 1,
            offset: 14,
            epoch: 0,
            payload: vec![0.0; 8],
        }];
        assert!(codec.reassemble(&too_far, 16).is_err());
    }

    #[test]
    fn empty_gradient_still_produces_a_packet() {
        let codec = GradientCodec::default();
        let packets = codec.split(2, 9, &Vector::zeros(0));
        assert_eq!(packets.len(), 1);
        let (restored, missing) = codec.reassemble(&packets, 0).unwrap();
        assert_eq!(restored.len(), 0);
        assert_eq!(missing, 0);
    }

    #[test]
    fn epoch_stamp_round_trips_through_both_split_paths() {
        let codec = GradientCodec::new(8).unwrap();
        let g = gradient(20);
        assert!(codec.split_epoch(1, 2, 7, &g).iter().all(|p| p.epoch == 7));
        for bytes in codec.split_bytes_epoch(1, 2, 7, g.as_slice()) {
            assert_eq!(Packet::decode(bytes).unwrap().epoch, 7);
        }
        // The legacy entry points stamp the static-membership epoch 0.
        assert!(codec.split(1, 2, &g).iter().all(|p| p.epoch == 0));
        for bytes in codec.split_bytes(1, 2, g.as_slice()) {
            assert_eq!(Packet::decode(bytes).unwrap().epoch, 0);
        }
    }

    #[test]
    fn zero_coords_per_packet_is_rejected() {
        assert!(GradientCodec::new(0).is_err());
        assert_eq!(GradientCodec::default().coords_per_packet(), 350);
    }
}
