//! Packetisation of gradients.
//!
//! A gradient of dimension `d` is split into packets carrying at most
//! `coords_per_packet` consecutive `f32` coordinates. Every packet carries a
//! small header — worker id, step, sequence number, total packet count,
//! coordinate offset, count, membership epoch, wire version and a CRC32
//! checksum — which is exactly the "reliability scheme for metadata
//! (accompanying gradients) and packets ordering" the paper adds on top of
//! UDP: the payload may be lost, but a delivered packet always knows where
//! its coordinates belong. The epoch stamp lets the receiver fence off late
//! packets from evicted workers and stale-epoch rejoins under elastic
//! membership; the checksum (wire format v2) covers header and payload so a
//! bit-flipped or truncated packet is rejected instead of scattered into a
//! gradient row.

use crate::{NetError, Result};
use agg_tensor::Vector;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Header + payload of one gradient packet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Worker that produced the gradient.
    pub worker: u32,
    /// Model-update step the gradient belongs to.
    pub step: u64,
    /// Sequence number of this packet within the gradient (0-based).
    pub sequence: u32,
    /// Total number of packets the gradient was split into.
    pub total: u32,
    /// Index of the first coordinate carried by this packet.
    pub offset: u32,
    /// Membership epoch the sender believed was current. Receivers that
    /// fence on an expected epoch reject packets stamped with any other
    /// value; epoch 0 is the static-membership default.
    pub epoch: u32,
    /// The coordinates carried by this packet.
    pub payload: Vec<f32>,
}

/// Number of header bytes in the wire format: worker (4), step (8),
/// sequence (4), total (4), offset (4), count (4), epoch (4), version (4),
/// checksum (4).
pub const HEADER_BYTES: usize = 4 + 8 + 4 + 4 + 4 + 4 + 4 + 4 + 4;

/// Current wire-format version stamped into every packet header. Version 2
/// added the version and CRC-32C checksum fields; receivers reject any other
/// value as corrupt.
pub const WIRE_VERSION: u32 = 2;

/// Byte offset of the CRC-32C checksum field within the header. The checksum
/// covers every wire byte *except* this field: header bytes
/// `0..CHECKSUM_OFFSET` followed by the payload bytes at `HEADER_BYTES..`.
pub const CHECKSUM_OFFSET: usize = HEADER_BYTES - 4;

/// Reflected CRC-32C (Castagnoli) polynomial. Chosen over the IEEE 802.3
/// polynomial because x86 has computed it in hardware since SSE 4.2 (the
/// `crc32` instruction iSCSI, ext4 and Btrfs ride on), so the per-packet
/// integrity envelope costs a fraction of the payload memcpy instead of a
/// table walk per byte.
const CRC32C_POLY: u32 = 0x82F6_3B78;

/// Slicing-by-8 lookup tables for the software CRC-32C path, built at
/// compile time: table 0 is the classic one-byte-at-a-time table, table `t`
/// advances a byte through `t` further zero bytes, so eight lookups fold
/// eight message bytes per iteration.
const CRC32C_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ CRC32C_POLY } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

/// Starts a streaming CRC-32C computation (see [`crc32_update`]).
pub fn crc32_init() -> u32 {
    0xFFFF_FFFF
}

/// Software CRC-32C: slicing-by-8, folding one 64-bit chunk per iteration.
fn crc32c_update_sw(mut state: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ state;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        state = CRC32C_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC32C_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC32C_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC32C_TABLES[4][(lo >> 24) as usize]
            ^ CRC32C_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC32C_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC32C_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC32C_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        state = (state >> 8) ^ CRC32C_TABLES[0][((state ^ b as u32) & 0xFF) as usize];
    }
    state
}

/// Hardware CRC-32C: the SSE 4.2 `crc32` instruction, eight bytes per fold.
/// Bit-identical to the software path — the instruction implements exactly
/// the reflected Castagnoli update the tables encode.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32c_update_hw(state: u32, bytes: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut crc = u64::from(state);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("exact 8-byte chunk"));
        crc = _mm_crc32_u64(crc, word);
    }
    let mut crc = crc as u32;
    for &b in chunks.remainder() {
        crc = _mm_crc32_u8(crc, b);
    }
    crc
}

/// Folds `bytes` into a streaming CRC-32C state. Chain over disjoint slices —
/// e.g. header then payload — to checksum them as one logical buffer in the
/// same single-pass style as [`put_f32_slice_le`].
pub fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        // The detection result is cached in an atomic by std, so the hot
        // path pays one relaxed load before dropping into the instruction.
        if std::arch::is_x86_feature_detected!("sse4.2") {
            // SAFETY: the sse4.2 feature was just verified at runtime.
            return unsafe { crc32c_update_hw(state, bytes) };
        }
    }
    crc32c_update_sw(state, bytes)
}

/// Finishes a streaming CRC-32C computation.
pub fn crc32_finish(state: u32) -> u32 {
    !state
}

/// One-shot CRC-32C of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_finish(crc32_update(crc32_init(), bytes))
}

/// Computes the wire checksum of one encoded packet occupying
/// `buf[start..]`: CRC32 over the header up to the checksum field, then over
/// the payload after it.
fn wire_checksum(buf: &[u8], start: usize) -> u32 {
    let state = crc32_update(crc32_init(), &buf[start..start + CHECKSUM_OFFSET]);
    crc32_finish(crc32_update(state, &buf[start + HEADER_BYTES..]))
}

/// Patches the checksum field of the packet occupying `buf[start..]` after
/// header and payload have been written (the field must hold a placeholder
/// zero when the checksum is computed — it is excluded from coverage, so any
/// placeholder works, but zero keeps the format canonical).
fn seal_packet(buf: &mut BytesMut, start: usize) {
    let crc = wire_checksum(buf, start);
    buf[start + CHECKSUM_OFFSET..start + HEADER_BYTES].copy_from_slice(&crc.to_le_bytes());
}

/// Recomputes the checksum field of an already-encoded packet in place.
/// Receivers reject packets whose stored checksum disagrees with the bytes,
/// so any test (or adversary model) that mutates header fields of a sealed
/// packet must re-seal it to reach the semantic validation layer.
pub fn reseal_packet_bytes(data: &mut [u8]) {
    assert!(data.len() >= HEADER_BYTES, "cannot reseal a short packet");
    data[CHECKSUM_OFFSET..HEADER_BYTES].copy_from_slice(&[0; 4]);
    let crc = wire_checksum(data, 0);
    data[CHECKSUM_OFFSET..HEADER_BYTES].copy_from_slice(&crc.to_le_bytes());
}

/// Verifies the integrity envelope of one received wire packet: long enough
/// to hold a header, stamped with the current [`WIRE_VERSION`], and with a
/// CRC32 that matches every byte outside the checksum field. Returns the
/// reason the packet is corrupt, or `None` when it is intact.
pub fn wire_integrity_error(data: &[u8]) -> Option<&'static str> {
    if data.len() < HEADER_BYTES {
        return Some("short header");
    }
    let version = u32::from_le_bytes(
        data[CHECKSUM_OFFSET - 4..CHECKSUM_OFFSET].try_into().expect("4-byte field"),
    );
    if version != WIRE_VERSION {
        return Some("unknown wire version");
    }
    let stored =
        u32::from_le_bytes(data[CHECKSUM_OFFSET..HEADER_BYTES].try_into().expect("4-byte field"));
    if wire_checksum(data, 0) != stored {
        return Some("checksum mismatch");
    }
    None
}

/// Bulk little-endian encode: appends `values` to `buf` in one pass over
/// 4-byte chunks. This is the hot-path replacement for per-element
/// `put_f32_le` loops — the reserved region is written in place and the
/// chunked copy vectorises to a straight memcpy on little-endian targets.
pub fn put_f32_slice_le(buf: &mut BytesMut, values: &[f32]) {
    let start = buf.len();
    buf.resize(start + 4 * values.len(), 0);
    for (dst, &v) in buf[start..].chunks_exact_mut(4).zip(values) {
        dst.copy_from_slice(&v.to_le_bytes());
    }
}

/// Bulk little-endian decode: fills `dst` from `src` in one pass over 4-byte
/// chunks (the inverse of [`put_f32_slice_le`]; NaN payloads round-trip
/// bit-exactly).
///
/// # Panics
///
/// Panics if `src.len() != 4 * dst.len()`.
pub fn get_f32_slice_le(src: &[u8], dst: &mut [f32]) {
    assert_eq!(src.len(), 4 * dst.len(), "byte payload must be 4 bytes per coordinate");
    for (v, raw) in dst.iter_mut().zip(src.chunks_exact(4)) {
        *v = f32::from_le_bytes(raw.try_into().expect("chunks_exact yields 4-byte chunks"));
    }
}

impl Packet {
    /// Serialises the packet into a length-delimited byte buffer
    /// (little-endian).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(HEADER_BYTES + 4 * self.payload.len());
        buf.put_u32_le(self.worker);
        buf.put_u64_le(self.step);
        buf.put_u32_le(self.sequence);
        buf.put_u32_le(self.total);
        buf.put_u32_le(self.offset);
        buf.put_u32_le(self.payload.len() as u32);
        buf.put_u32_le(self.epoch);
        buf.put_u32_le(WIRE_VERSION);
        buf.put_u32_le(0); // checksum placeholder, patched by seal_packet
        for &v in &self.payload {
            buf.put_f32_le(v);
        }
        seal_packet(&mut buf, 0);
        buf.freeze()
    }

    /// Parses a packet from a byte buffer produced by [`Packet::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`NetError::MalformedPacket`] for truncated or inconsistent
    /// buffers.
    pub fn decode(mut data: Bytes) -> Result<Packet> {
        if let Some(reason) = wire_integrity_error(&data) {
            return Err(NetError::MalformedPacket(format!(
                "{reason} ({} bytes on the wire)",
                data.len()
            )));
        }
        let worker = data.get_u32_le();
        let step = data.get_u64_le();
        let sequence = data.get_u32_le();
        let total = data.get_u32_le();
        let offset = data.get_u32_le();
        let count = data.get_u32_le() as usize;
        let epoch = data.get_u32_le();
        let _version = data.get_u32_le();
        let _checksum = data.get_u32_le();
        if data.remaining() < count * 4 {
            return Err(NetError::MalformedPacket(format!(
                "payload declares {count} coordinates but only {} bytes remain",
                data.remaining()
            )));
        }
        let payload = (0..count).map(|_| data.get_f32_le()).collect();
        Ok(Packet { worker, step, sequence, total, offset, epoch, payload })
    }

    /// Number of bytes this packet occupies on the wire.
    pub fn wire_bytes(&self) -> usize {
        HEADER_BYTES + 4 * self.payload.len()
    }
}

/// Splits gradients into packets and reassembles them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GradientCodec {
    coords_per_packet: usize,
}

impl GradientCodec {
    /// Creates a codec carrying `coords_per_packet` coordinates per packet.
    ///
    /// The default MTU-style choice is 350 coordinates ≈ 1400 payload bytes.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidConfig`] when `coords_per_packet == 0`.
    pub fn new(coords_per_packet: usize) -> Result<Self> {
        if coords_per_packet == 0 {
            return Err(NetError::InvalidConfig("coords_per_packet must be positive".to_string()));
        }
        Ok(GradientCodec { coords_per_packet })
    }

    /// The codec used throughout the experiments (≈1.4 kB payload per
    /// packet, a typical Ethernet MTU).
    pub fn default_mtu() -> Self {
        GradientCodec { coords_per_packet: 350 }
    }

    /// Coordinates carried per packet.
    pub fn coords_per_packet(&self) -> usize {
        self.coords_per_packet
    }

    /// Number of packets a gradient of dimension `d` splits into (a
    /// zero-dimensional gradient still costs one metadata-only packet).
    pub fn packet_count(&self, d: usize) -> usize {
        d.div_ceil(self.coords_per_packet).max(1)
    }

    /// Total wire bytes (headers + payload) of a gradient of dimension `d` —
    /// the analytic form of summing [`Packet::wire_bytes`] over a split,
    /// without materialising any packet.
    pub fn wire_bytes_total(&self, d: usize) -> usize {
        self.packet_count(d) * HEADER_BYTES + 4 * d
    }

    /// Splits a gradient into packets (stamped with epoch 0, the static
    /// membership default; see [`GradientCodec::split_epoch`]).
    pub fn split(&self, worker: u32, step: u64, gradient: &Vector) -> Vec<Packet> {
        self.split_epoch(worker, step, 0, gradient)
    }

    /// Splits a gradient into packets stamped with a membership epoch.
    pub fn split_epoch(
        &self,
        worker: u32,
        step: u64,
        epoch: u32,
        gradient: &Vector,
    ) -> Vec<Packet> {
        let d = gradient.len();
        let total = d.div_ceil(self.coords_per_packet).max(1) as u32;
        let mut packets = Vec::with_capacity(total as usize);
        let data = gradient.as_slice();
        for (seq, chunk) in data.chunks(self.coords_per_packet).enumerate() {
            packets.push(Packet {
                worker,
                step,
                sequence: seq as u32,
                total,
                offset: (seq * self.coords_per_packet) as u32,
                epoch,
                payload: chunk.to_vec(),
            });
        }
        if packets.is_empty() {
            // Zero-dimensional gradient still produces one empty packet so
            // the receiver learns the step happened.
            packets.push(Packet {
                worker,
                step,
                sequence: 0,
                total: 1,
                offset: 0,
                epoch,
                payload: vec![],
            });
        }
        packets
    }

    /// Splits a gradient into **encoded wire packets**: every packet of the
    /// gradient is written into one contiguous `BytesMut` (headers via the
    /// header writers, payload via the bulk [`put_f32_slice_le`] pass) and
    /// handed out as zero-copy [`Bytes`] slices of that single buffer.
    ///
    /// The wire format of each slice is byte-identical to
    /// [`Packet::encode`], so the two codecs interoperate packet-for-packet;
    /// this path just skips the per-packet `Vec<f32>` payloads and
    /// per-element `put_f32_le` loops of the legacy split-then-encode pair.
    ///
    /// Packets are stamped with epoch 0 (static membership); see
    /// [`GradientCodec::split_bytes_epoch`].
    pub fn split_bytes(&self, worker: u32, step: u64, gradient: &[f32]) -> Vec<Bytes> {
        self.split_bytes_epoch(worker, step, 0, gradient)
    }

    /// [`GradientCodec::split_bytes`] with an explicit membership epoch
    /// stamped into every packet header.
    pub fn split_bytes_epoch(
        &self,
        worker: u32,
        step: u64,
        epoch: u32,
        gradient: &[f32],
    ) -> Vec<Bytes> {
        let d = gradient.len();
        let total = self.packet_count(d);
        let mut buf = BytesMut::with_capacity(self.wire_bytes_total(d));
        let mut bounds = Vec::with_capacity(total);
        let mut write_packet = |seq: usize, chunk: &[f32]| {
            let start = buf.len();
            buf.put_u32_le(worker);
            buf.put_u64_le(step);
            buf.put_u32_le(seq as u32);
            buf.put_u32_le(total as u32);
            buf.put_u32_le((seq * self.coords_per_packet) as u32);
            buf.put_u32_le(chunk.len() as u32);
            buf.put_u32_le(epoch);
            buf.put_u32_le(WIRE_VERSION);
            buf.put_u32_le(0); // checksum placeholder, patched by seal_packet
            put_f32_slice_le(&mut buf, chunk);
            seal_packet(&mut buf, start);
            bounds.push(start..buf.len());
        };
        if d == 0 {
            write_packet(0, &[]);
        } else {
            for (seq, chunk) in gradient.chunks(self.coords_per_packet).enumerate() {
                write_packet(seq, chunk);
            }
        }
        let frozen = buf.freeze();
        bounds.into_iter().map(|range| frozen.slice(range)).collect()
    }

    /// Reassembles a gradient of dimension `dimension` from whichever packets
    /// arrived (possibly out of order, duplicated or incomplete).
    ///
    /// Missing coordinates are set to `NaN`; the caller's loss policy decides
    /// what to do with them. Returns the reassembled vector and the number of
    /// missing coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InconsistentStream`] when packets disagree about
    /// the worker or step, and [`NetError::MalformedPacket`] when a packet's
    /// coordinates fall outside the gradient.
    pub fn reassemble(&self, packets: &[Packet], dimension: usize) -> Result<(Vector, usize)> {
        let mut data = vec![f32::NAN; dimension];
        let mut filled = vec![false; dimension];
        if let Some(first) = packets.first() {
            for p in packets {
                if p.worker != first.worker || p.step != first.step {
                    return Err(NetError::InconsistentStream(format!(
                        "packet from worker {} step {} mixed with worker {} step {}",
                        p.worker, p.step, first.worker, first.step
                    )));
                }
                let offset = p.offset as usize;
                if offset + p.payload.len() > dimension {
                    return Err(NetError::MalformedPacket(format!(
                        "packet covers coordinates {}..{} of a {}-dimensional gradient",
                        offset,
                        offset + p.payload.len(),
                        dimension
                    )));
                }
                for (i, &v) in p.payload.iter().enumerate() {
                    data[offset + i] = v;
                    filled[offset + i] = true;
                }
            }
        }
        let missing = filled.iter().filter(|&&f| !f).count();
        Ok((Vector::from(data), missing))
    }
}

impl Default for GradientCodec {
    fn default() -> Self {
        GradientCodec::default_mtu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(d: usize) -> Vector {
        Vector::from_iter((0..d).map(|i| i as f32))
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = Packet {
            worker: 3,
            step: 42,
            sequence: 7,
            total: 9,
            offset: 700,
            epoch: 6,
            payload: vec![1.5, -2.5, f32::NAN],
        };
        let decoded = Packet::decode(p.encode()).unwrap();
        assert_eq!(decoded.worker, 3);
        assert_eq!(decoded.step, 42);
        assert_eq!(decoded.sequence, 7);
        assert_eq!(decoded.offset, 700);
        assert_eq!(decoded.epoch, 6);
        assert_eq!(decoded.payload.len(), 3);
        assert!(decoded.payload[2].is_nan());
        assert_eq!(p.wire_bytes(), HEADER_BYTES + 12);
    }

    #[test]
    fn decode_rejects_truncation() {
        let p = Packet {
            worker: 0,
            step: 0,
            sequence: 0,
            total: 1,
            offset: 0,
            epoch: 0,
            payload: vec![1.0; 10],
        };
        let encoded = p.encode();
        assert!(Packet::decode(encoded.slice(0..10)).is_err());
        assert!(Packet::decode(encoded.slice(0..HEADER_BYTES + 4)).is_err());
    }

    #[test]
    fn split_covers_every_coordinate_exactly_once() {
        let codec = GradientCodec::new(10).unwrap();
        let g = gradient(35);
        let packets = codec.split(1, 5, &g);
        assert_eq!(packets.len(), 4);
        assert_eq!(packets[3].payload.len(), 5);
        assert!(packets.iter().all(|p| p.total == 4));
        let (restored, missing) = codec.reassemble(&packets, 35).unwrap();
        assert_eq!(missing, 0);
        assert_eq!(restored, g);
    }

    #[test]
    fn reassembly_tolerates_reordering_and_duplication() {
        let codec = GradientCodec::new(8).unwrap();
        let g = gradient(20);
        let mut packets = codec.split(0, 0, &g);
        packets.reverse();
        packets.push(packets[0].clone()); // duplicate
        let (restored, missing) = codec.reassemble(&packets, 20).unwrap();
        assert_eq!(missing, 0);
        assert_eq!(restored, g);
    }

    #[test]
    fn missing_packets_surface_as_nan() {
        let codec = GradientCodec::new(8).unwrap();
        let g = gradient(20);
        let mut packets = codec.split(0, 0, &g);
        packets.remove(1); // drop coordinates 8..16
        let (restored, missing) = codec.reassemble(&packets, 20).unwrap();
        assert_eq!(missing, 8);
        assert!(restored[8].is_nan());
        assert!(restored[15].is_nan());
        assert_eq!(restored[0], 0.0);
        assert_eq!(restored[19], 19.0);
    }

    #[test]
    fn reassembly_rejects_mixed_streams_and_bad_offsets() {
        let codec = GradientCodec::new(8).unwrap();
        let a = codec.split(0, 0, &gradient(16));
        let b = codec.split(1, 0, &gradient(16));
        let mixed: Vec<Packet> = a.iter().chain(b.iter()).cloned().collect();
        assert!(codec.reassemble(&mixed, 16).is_err());
        // A packet that claims to extend beyond the gradient.
        let too_far = vec![Packet {
            worker: 0,
            step: 0,
            sequence: 0,
            total: 1,
            offset: 14,
            epoch: 0,
            payload: vec![0.0; 8],
        }];
        assert!(codec.reassemble(&too_far, 16).is_err());
    }

    #[test]
    fn empty_gradient_still_produces_a_packet() {
        let codec = GradientCodec::default();
        let packets = codec.split(2, 9, &Vector::zeros(0));
        assert_eq!(packets.len(), 1);
        let (restored, missing) = codec.reassemble(&packets, 0).unwrap();
        assert_eq!(restored.len(), 0);
        assert_eq!(missing, 0);
    }

    #[test]
    fn epoch_stamp_round_trips_through_both_split_paths() {
        let codec = GradientCodec::new(8).unwrap();
        let g = gradient(20);
        assert!(codec.split_epoch(1, 2, 7, &g).iter().all(|p| p.epoch == 7));
        for bytes in codec.split_bytes_epoch(1, 2, 7, g.as_slice()) {
            assert_eq!(Packet::decode(bytes).unwrap().epoch, 7);
        }
        // The legacy entry points stamp the static-membership epoch 0.
        assert!(codec.split(1, 2, &g).iter().all(|p| p.epoch == 0));
        for bytes in codec.split_bytes(1, 2, g.as_slice()) {
            assert_eq!(Packet::decode(bytes).unwrap().epoch, 0);
        }
    }

    #[test]
    fn zero_coords_per_packet_is_rejected() {
        assert!(GradientCodec::new(0).is_err());
        assert_eq!(GradientCodec::default().coords_per_packet(), 350);
    }

    #[test]
    fn crc32c_matches_the_castagnoli_reference_vector() {
        // The canonical CRC-32C check value for the ASCII digits 1-9 (the
        // same vector iSCSI pins, RFC 3720 B.4).
        assert_eq!(crc32(b"123456789"), 0xE306_9283);
        // Streaming over split slices equals the one-shot result.
        let state = crc32_update(crc32_init(), b"1234");
        assert_eq!(crc32_finish(crc32_update(state, b"56789")), 0xE306_9283);
    }

    #[test]
    fn software_crc32c_agrees_with_the_dispatched_path() {
        // Exercise every chunk-remainder shape across the slicing-by-8
        // boundary so the software fallback and the hardware instruction
        // can never silently disagree on any platform.
        let data: Vec<u8> = (0..=255u8).cycle().take(1021).collect();
        for len in [0, 1, 7, 8, 9, 63, 64, 65, 1021] {
            let slice = &data[..len];
            assert_eq!(
                crc32c_update_sw(crc32_init(), slice),
                crc32_update(crc32_init(), slice),
                "sw/dispatch divergence at len {len}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let p = Packet {
            worker: 1,
            step: 3,
            sequence: 0,
            total: 1,
            offset: 0,
            epoch: 2,
            payload: vec![0.5, -1.5, 2.0],
        };
        let encoded = p.encode();
        assert!(wire_integrity_error(&encoded).is_none());
        for byte in 0..encoded.len() {
            for bit in 0..8 {
                let mut flipped = encoded.to_vec();
                flipped[byte] ^= 1 << bit;
                // Flips inside the checksum field desynchronise the stored
                // value; flips anywhere else change the computed CRC. Either
                // way the packet must be rejected (CRC32 detects all
                // single-bit errors).
                assert!(
                    wire_integrity_error(&flipped).is_some(),
                    "bit {bit} of byte {byte} flipped undetected"
                );
                assert!(Packet::decode(Bytes::from(flipped)).is_err());
            }
        }
    }

    #[test]
    fn unknown_wire_version_is_rejected() {
        let encoded = Packet {
            worker: 0,
            step: 0,
            sequence: 0,
            total: 1,
            offset: 0,
            epoch: 0,
            payload: vec![1.0],
        }
        .encode();
        let mut v1 = encoded.to_vec();
        v1[CHECKSUM_OFFSET - 4..CHECKSUM_OFFSET].copy_from_slice(&1u32.to_le_bytes());
        reseal_packet_bytes(&mut v1);
        assert_eq!(wire_integrity_error(&v1), Some("unknown wire version"));
    }

    #[test]
    fn reseal_restores_integrity_after_header_mutation() {
        let encoded = Packet {
            worker: 4,
            step: 8,
            sequence: 1,
            total: 2,
            offset: 8,
            epoch: 0,
            payload: vec![3.0; 8],
        }
        .encode();
        let mut mutated = encoded.to_vec();
        mutated[12..16].copy_from_slice(&u32::MAX.to_le_bytes()); // sequence
        assert_eq!(wire_integrity_error(&mutated), Some("checksum mismatch"));
        reseal_packet_bytes(&mut mutated);
        assert!(wire_integrity_error(&mutated).is_none());
        assert_eq!(Packet::decode(Bytes::from(mutated)).unwrap().sequence, u32::MAX);
    }

    #[test]
    fn appended_garbage_breaks_the_checksum() {
        let mut bytes =
            GradientCodec::new(4).unwrap().split_bytes(0, 0, &[1.0, 2.0, 3.0])[0].to_vec();
        assert!(wire_integrity_error(&bytes).is_none());
        bytes.push(0xAB);
        assert!(wire_integrity_error(&bytes).is_some());
    }
}
