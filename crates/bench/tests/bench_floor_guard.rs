//! Regression tests for the `bench_floor` gate itself.
//!
//! The gate's one subtle failure mode: a floored key that *disappears*
//! from a regenerated `BENCH_*.json` (a renamed rule, a dropped cell, a
//! schema change) must count as a violation — otherwise the gate silently
//! stops checking what it claims to check and a kernel regression can land
//! under a green check-mark. These tests pin that arm, plus the ordinary
//! below-floor and all-clear arms, with doctored files in a scratch
//! directory — and then run the full declared floor list against the
//! committed repo-root files, so `cargo test` fails the moment a committed
//! trajectory and the floors drift apart.

use agg_bench::floor::{check_floors, check_floors_against, FLOORS};
use std::path::{Path, PathBuf};

/// A scratch directory holding doctored BENCH files, removed on drop.
struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("bench_floor_guard_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch { dir }
    }

    fn write(&self, file: &str, contents: &str) {
        std::fs::write(self.dir.join(file), contents).expect("write doctored file");
    }

    fn path(&self) -> &Path {
        &self.dir
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// A doctored BENCH_gar.json holding exactly the given (rule, d, speedup)
/// cells.
fn gar_json(cells: &[(&str, usize, f64)]) -> String {
    let rows: Vec<String> = cells
        .iter()
        .map(|(rule, d, speedup)| {
            format!("{{\"rule\": \"{rule}\", \"d\": {d}, \"speedup\": {speedup}}}")
        })
        .collect();
    format!("{{\"bench\": \"gar_perf\", \"results\": [{}]}}", rows.join(", "))
}

#[test]
fn floors_that_hold_pass() {
    let scratch = Scratch::new("hold");
    scratch.write("BENCH_gar.json", &gar_json(&[("median", 1000, 4.5), ("krum", 1000, 2.0)]));
    let floors: &[(&str, &str, f64)] =
        &[("BENCH_gar.json", "median@d1000", 4.0), ("BENCH_gar.json", "krum@d1000", 1.6)];
    let report = check_floors_against(scratch.path(), floors).expect("readable");
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert_eq!(report.held.len(), 2);
}

#[test]
fn a_speedup_below_its_floor_is_a_violation() {
    let scratch = Scratch::new("below");
    scratch.write("BENCH_gar.json", &gar_json(&[("median", 1000, 3.2)]));
    let floors: &[(&str, &str, f64)] = &[("BENCH_gar.json", "median@d1000", 4.0)];
    let report = check_floors_against(scratch.path(), floors).expect("readable");
    assert!(!report.passed());
    assert_eq!(report.violations.len(), 1);
    assert!(
        report.violations[0].contains("below the floor"),
        "unexpected message: {}",
        report.violations[0]
    );
}

#[test]
fn a_floored_key_missing_from_the_file_is_a_violation_not_a_silent_pass() {
    // The regression this guard exists for: the file parses fine and every
    // *present* key clears its floor, but one floored key has vanished
    // (here: median@d100000, as if a regeneration dropped the d = 100k
    // cell). The gate must go red and name the hole.
    let scratch = Scratch::new("missing");
    scratch.write("BENCH_gar.json", &gar_json(&[("median", 1000, 4.5), ("median", 10000, 4.5)]));
    let floors: &[(&str, &str, f64)] = &[
        ("BENCH_gar.json", "median@d1000", 4.0),
        ("BENCH_gar.json", "median@d10000", 4.0),
        ("BENCH_gar.json", "median@d100000", 3.0),
    ];
    let report = check_floors_against(scratch.path(), floors).expect("readable");
    assert!(!report.passed(), "a vanished floored key must fail the gate");
    assert_eq!(report.held.len(), 2);
    assert_eq!(report.violations.len(), 1);
    assert!(
        report.violations[0].contains("no such speedup field"),
        "unexpected message: {}",
        report.violations[0]
    );
}

#[test]
fn a_missing_trajectory_file_is_an_error() {
    let scratch = Scratch::new("nofile");
    let floors: &[(&str, &str, f64)] = &[("BENCH_gar.json", "median@d1000", 4.0)];
    let error = check_floors_against(scratch.path(), floors).expect_err("unreadable");
    assert!(error.contains("cannot read"), "unexpected message: {error}");
}

#[test]
fn an_unparseable_trajectory_file_is_an_error() {
    let scratch = Scratch::new("badjson");
    scratch.write("BENCH_gar.json", "{\"results\": [");
    let floors: &[(&str, &str, f64)] = &[("BENCH_gar.json", "median@d1000", 4.0)];
    let error = check_floors_against(scratch.path(), floors).expect_err("unparseable");
    assert!(error.contains("cannot parse"), "unexpected message: {error}");
}

#[test]
fn unfloored_speedups_are_reported_as_unguarded() {
    let scratch = Scratch::new("unguarded");
    scratch.write("BENCH_gar.json", &gar_json(&[("median", 1000, 4.5), ("meamed", 1000, 9.9)]));
    let floors: &[(&str, &str, f64)] = &[("BENCH_gar.json", "median@d1000", 4.0)];
    let report = check_floors_against(scratch.path(), floors).expect("readable");
    assert!(report.passed());
    assert_eq!(report.unguarded.len(), 1);
    assert!(report.unguarded[0].contains("meamed@d1000"));
}

#[test]
fn every_declared_floor_holds_against_the_committed_trajectories() {
    // The committed repo-root BENCH_*.json files and the declared floor
    // list must agree at all times — including every BENCH_tree.json
    // scale point. This is the same check CI's bench-floor job runs, so a
    // drift fails `cargo test` locally before it fails CI.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = check_floors(&root).expect("committed trajectory files are readable");
    assert!(report.passed(), "floor violations: {:#?}", report.violations);
    assert_eq!(report.held.len(), FLOORS.len());
}
