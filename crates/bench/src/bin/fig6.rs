//! Figure 6 — impact of the declared `f` on convergence (non-Byzantine
//! environment).
//!
//! The paper observes a trade-off between update throughput and update
//! quality: increasing `f` makes Multi-Krum slightly *slower* to converge
//! (it averages fewer gradients, so each update is noisier) while Bulyan
//! becomes slightly *faster* (its throughput gain outweighs the extra
//! noise); the effect shrinks for small mini-batches.

use agg_bench::{format_time, paper_runner, proxy_experiment};
use agg_core::GarKind;
use agg_draco::{DracoConfig, DracoTrainer};
use agg_metrics::Table;
use agg_nn::optim::OptimizerKind;
use agg_nn::schedule::LearningRate;
use agg_ps::{CostModel, SyncTrainingEngine, TrainingReport, VirtualModelCost};

fn run_gar(kind: GarKind, f: usize, batch: usize, steps: u64) -> TrainingReport {
    SyncTrainingEngine::new(paper_runner(kind, f, batch, steps))
        .expect("valid configuration")
        .run()
        .expect("run completes")
}

fn run_draco(f: usize, batch: usize, steps: u64) -> TrainingReport {
    let config = DracoConfig {
        batch_size: batch,
        max_steps: steps,
        eval_every: (steps / 20).max(1),
        eval_samples: 512,
        learning_rate: LearningRate::Fixed { rate: 5e-3 },
        optimizer: OptimizerKind::RmsProp,
        cost: CostModel::paper_like().with_virtual_model(VirtualModelCost::paper_cnn()),
        seed: 42,
        ..DracoConfig::paper_like(proxy_experiment(), 19, f)
    };
    DracoTrainer::new(config).expect("valid config").run().expect("run completes")
}

fn regime(batch: usize, steps: u64) {
    let runs: Vec<(&str, TrainingReport)> = vec![
        ("Multi-Krum f=1", run_gar(GarKind::MultiKrum, 1, batch, steps)),
        ("Multi-Krum f=4", run_gar(GarKind::MultiKrum, 4, batch, steps)),
        ("Bulyan f=1", run_gar(GarKind::Bulyan, 1, batch, steps)),
        ("Bulyan f=4", run_gar(GarKind::Bulyan, 4, batch, steps)),
        ("Draco f=1", run_draco(1, batch, steps)),
        ("Draco f=4", run_draco(4, batch, steps)),
    ];
    let target = 0.5 * runs.iter().map(|(_, r)| r.final_accuracy()).fold(0.0, f64::max);
    let mut table = Table::new(
        format!("Figure 6: impact of f on convergence, b = {batch}"),
        &["system", "time to 50% of best accuracy (s)", "final accuracy", "throughput (grad/s)"],
    );
    for (name, report) in &runs {
        table.add_row(&[
            name.to_string(),
            format_time(report.time_to_accuracy(target)),
            format!("{:.3}", report.final_accuracy()),
            format!("{:.2}", report.throughput.gradients_per_sec()),
        ]);
    }
    println!("{table}");
}

fn main() {
    println!("--- large mini-batch regime (b = 250) ---");
    regime(250, 150);
    println!(
        "expected shape: Multi-Krum slightly slower with f=4 than f=1, Bulyan slightly faster \
         with f=4 than f=1 (throughput compensates the extra noise); Draco far slower overall.\n"
    );
    println!("--- small mini-batch regime (b = 20) ---");
    regime(20, 300);
    println!("expected shape: same ordering, smaller impact of f.");
}
