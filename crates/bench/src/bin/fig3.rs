//! Figure 3 — overhead of AggregaThor in a non-Byzantine environment.
//!
//! The paper trains its CNN on CIFAR-10 with 19 workers and compares vanilla
//! TensorFlow averaging against AggregaThor's Average, Median, Multi-Krum
//! (f=4) and Bulyan (f=4), plus Draco, for two mini-batch sizes. The headline
//! numbers: Multi-Krum is ≈19 % slower and Bulyan ≈43 % slower than the
//! baseline to reach 50 % of the final accuracy, while accuracy per model
//! update is unchanged.
//!
//! This reproduction trains the proxy model (see DESIGN.md §2) with the same
//! worker count, GARs and declared `f`, charging simulated time as if the
//! model were the paper CNN, and prints the same comparisons.

use agg_bench::{format_overhead, format_time, paper_runner, proxy_experiment};
use agg_core::GarKind;
use agg_draco::{DracoConfig, DracoTrainer};
use agg_metrics::Table;
use agg_nn::optim::OptimizerKind;
use agg_nn::schedule::LearningRate;
use agg_ps::{CostModel, SyncTrainingEngine, TrainingReport, VirtualModelCost};

fn run_gar(kind: GarKind, f: usize, batch: usize, steps: u64) -> TrainingReport {
    let config = paper_runner(kind, f, batch, steps);
    SyncTrainingEngine::new(config)
        .expect("configuration is valid")
        .run()
        .expect("training run completes")
}

fn run_draco(f: usize, batch: usize, steps: u64) -> TrainingReport {
    let config = DracoConfig {
        batch_size: batch,
        max_steps: steps,
        eval_every: (steps / 20).max(1),
        eval_samples: 512,
        learning_rate: LearningRate::Fixed { rate: 5e-3 },
        optimizer: OptimizerKind::RmsProp,
        cost: CostModel::paper_like().with_virtual_model(VirtualModelCost::paper_cnn()),
        seed: 42,
        ..DracoConfig::paper_like(proxy_experiment(), 19, f)
    };
    DracoTrainer::new(config).expect("valid Draco config").run().expect("Draco run completes")
}

fn report_batch_regime(batch: usize, steps: u64) {
    println!("\n--- mini-batch size = {batch} (paper: 250 / 20) ---");
    let baseline = run_gar(GarKind::Average, 0, batch, steps);
    let runs: Vec<(&str, TrainingReport)> = vec![
        ("TF (baseline averaging)", baseline.clone()),
        ("Average (AggregaThor)", run_gar(GarKind::Average, 0, batch, steps)),
        ("Median", run_gar(GarKind::Median, 4, batch, steps)),
        ("Multi-Krum (f=4)", run_gar(GarKind::MultiKrum, 4, batch, steps)),
        ("Bulyan (f=4)", run_gar(GarKind::Bulyan, 4, batch, steps)),
        ("Draco (f=4)", run_draco(4, batch, steps)),
    ];

    // The paper's statistic: time to reach 50 % of the baseline's final
    // accuracy.
    let target = 0.5 * baseline.final_accuracy();
    let baseline_time = baseline.time_to_accuracy(target);

    let mut table = Table::new(
        format!("Figure 3 (accuracy vs time), b = {batch}: time to 50% of baseline final accuracy"),
        &["system", "time-to-target (s)", "overhead vs TF", "final accuracy", "steps"],
    );
    for (name, report) in &runs {
        table.add_row(&[
            name.to_string(),
            format_time(report.time_to_accuracy(target)),
            format_overhead(report.time_to_accuracy(target), baseline_time),
            format!("{:.3}", report.final_accuracy()),
            report.steps_completed.to_string(),
        ]);
    }
    println!("{table}");

    let mut updates = Table::new(
        format!("Figure 3 (accuracy vs model updates), b = {batch}"),
        &["system", "steps to 50% target", "final accuracy"],
    );
    for (name, report) in &runs {
        let steps_to = report.trace.steps_to_accuracy(target);
        updates.add_row(&[
            name.to_string(),
            steps_to.map(|s| s.to_string()).unwrap_or_else(|| "never".into()),
            format!("{:.3}", report.final_accuracy()),
        ]);
    }
    println!("{updates}");
    println!(
        "paper reference: Multi-Krum ≈ +19% and Bulyan ≈ +43% time overhead vs TF; \
         all systems reach comparable accuracy per model update."
    );
}

fn main() {
    // The paper's two mini-batch regimes: 250 and 20.
    report_batch_regime(250, 150);
    report_batch_regime(20, 300);
}
