//! Table 1 — the CNN model used throughout the paper's evaluation.
//!
//! Builds the Table 1 architecture with this repository's layer
//! implementations and prints the per-layer and total parameter counts; the
//! paper describes the model as having "a total of 1.75M parameters".

use agg_metrics::Table;
use agg_nn::models;

fn main() {
    let model = models::paper_cnn(0);
    let mut table =
        Table::new("Table 1: CNN model parameters (paper: ~1.75M total)", &["layer", "parameters"]);
    for (name, params) in model.layer_summary() {
        table.add_row(&[name.to_string(), params.to_string()]);
    }
    table.add_row(&["TOTAL".to_string(), model.param_count().to_string()]);
    println!("{table}");
    println!(
        "paper total: ~1,750,000 parameters | reproduced total: {} parameters ({:.2}M)",
        model.param_count(),
        model.param_count() as f64 / 1e6
    );
    println!(
        "forward cost estimate: {:.1} MFLOP per sample",
        model.flops_per_sample() as f64 / 1e6
    );

    let large = models::large_model(0);
    println!(
        "\nResNet50 stand-in (Figure 5b): {} parameters ({:.1}M), {:.1} MFLOP/sample",
        large.param_count(),
        large.param_count() as f64 / 1e6,
        large.flops_per_sample() as f64 / 1e6
    );
}
