//! Figure 7 — impact of malformed input (corrupted data) on convergence.
//!
//! One worker trains on corrupted records. The paper shows vanilla
//! TensorFlow diverges ("TensorFlow is intolerant" to this mild Byzantine
//! behaviour) while AggregaThor with f = 1 converges like the ideal,
//! non-Byzantine TensorFlow run.

use agg_bench::{format_time, paper_runner};
use agg_core::GarKind;
use agg_data::corruption::Corruption;
use agg_metrics::Table;
use agg_ps::{SyncTrainingEngine, TrainingReport};

fn run(kind: GarKind, f: usize, poisoned_workers: usize, steps: u64) -> TrainingReport {
    let mut config = paper_runner(kind, f, 50, steps);
    config.byzantine_count = poisoned_workers;
    if poisoned_workers > 0 {
        config.data_poisoning = Some(Corruption::HugeValues);
    }
    SyncTrainingEngine::new(config).expect("valid configuration").run().expect("run completes")
}

fn main() {
    let steps = 150;
    let ideal = run(GarKind::Average, 0, 0, steps);
    let tf_poisoned = run(GarKind::Average, 0, 1, steps);
    let aggregathor = run(GarKind::MultiKrum, 1, 1, steps);

    let target = 0.5 * ideal.final_accuracy();
    let mut table = Table::new(
        "Figure 7: one worker trains on malformed records (mini-batch 50)",
        &["system", "final accuracy", "best accuracy", "time to 50% of ideal (s)"],
    );
    for (name, report) in [
        ("TF (non-Byzantine ideal)", &ideal),
        ("TF with 1 corrupted worker", &tf_poisoned),
        ("AggregaThor Multi-Krum (f=1)", &aggregathor),
    ] {
        table.add_row(&[
            name.to_string(),
            format!("{:.3}", report.final_accuracy()),
            format!("{:.3}", report.best_accuracy()),
            format_time(report.time_to_accuracy(target)),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: the ideal TF run and AggregaThor (f=1) converge to comparable accuracy; \
         TF with a single corrupted worker degrades or diverges (the paper observes divergence)."
    );
}
