//! §4.3 / Figure 9 — the dimensional-leeway attack: weak versus strong
//! Byzantine resilience.
//!
//! An omniscient adversary that stays inside the honest gradient cloud
//! ("a little is enough") is accepted by weakly resilient GARs and slowly
//! biases the model, while a strongly resilient GAR (Bulyan) bounds the
//! per-coordinate deviation and resists. This experiment also reports how
//! often the crafted gradients enter Multi-Krum's selection, the mechanism
//! behind the hidden vulnerability.

use agg_attacks::AttackKind;
use agg_bench::paper_runner;
use agg_core::GarKind;
use agg_metrics::Table;
use agg_ps::{SyncTrainingEngine, TrainingReport};

fn run(kind: GarKind, f: usize, attack: Option<AttackKind>, steps: u64) -> TrainingReport {
    let mut config = paper_runner(kind, f, 25, steps);
    if let Some(attack) = attack {
        config.byzantine_count = f;
        config.attack = attack;
    }
    SyncTrainingEngine::new(config).expect("valid configuration").run().expect("run completes")
}

fn main() {
    let steps = 200;
    let attack = AttackKind::LittleIsEnough { z: 1.5 };

    let mut table = Table::new(
        "Strong vs weak resilience under the dimensional-leeway attack (f = 4 of 19 workers)",
        &["system", "attack", "final accuracy", "best accuracy", "final test loss"],
    );
    let runs = [
        ("Multi-Krum f=4", GarKind::MultiKrum, None),
        ("Multi-Krum f=4", GarKind::MultiKrum, Some(attack)),
        ("Bulyan f=4", GarKind::Bulyan, None),
        ("Bulyan f=4", GarKind::Bulyan, Some(attack)),
        ("Average", GarKind::Average, Some(attack)),
    ];
    for (name, kind, attack) in runs {
        let report = run(kind, 4, attack, steps);
        let final_loss = report.trace.points().last().map(|p| p.loss).unwrap_or(f64::NAN);
        table.add_row(&[
            name.to_string(),
            attack.map(|_| "little-is-enough").unwrap_or("none").to_string(),
            format!("{:.3}", report.final_accuracy()),
            format!("{:.3}", report.best_accuracy()),
            format!("{:.4}", final_loss),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: the attack degrades the weakly resilient rules (visible in the test \
         loss even when the easy proxy task still classifies correctly) more than the strongly \
         resilient Bulyan; plain averaging is hurt the most. The effect is strongest in the \
         paper's high-dimensional, highly non-convex setting (see Figure 9 of the paper)."
    );
}
