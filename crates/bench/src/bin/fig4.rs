//! Figure 4 — latency breakdown per epoch.
//!
//! The paper decomposes the average per-round latency into
//! "computation + communication" and "aggregation", reporting that
//! aggregation accounts for ≈35 % of the round for Median, ≈27 % for
//! Multi-Krum and ≈52 % for Bulyan (and a negligible share for plain
//! TensorFlow averaging).
//!
//! The reproduction measures the aggregation kernels for real on random
//! gradients, rescales the measurement to the paper CNN's 1.75 M dimensions,
//! and charges computation/communication analytically (see DESIGN.md §6).

use agg_core::{GarConfig, GarKind};
use agg_metrics::Table;
use agg_net::LinkConfig;
use agg_ps::{CostModel, ThroughputSimulation, VirtualModelCost};

fn main() {
    let cost = CostModel::paper_like().with_virtual_model(VirtualModelCost::paper_cnn());
    let systems = [
        ("TF (averaging)", GarConfig::new(GarKind::Average, 0)),
        ("Median", GarConfig::new(GarKind::Median, 4)),
        ("Multi-Krum (f=4)", GarConfig::new(GarKind::MultiKrum, 4)),
        ("Bulyan (f=4)", GarConfig::new(GarKind::Bulyan, 4)),
    ];

    let mut table = Table::new(
        "Figure 4: latency breakdown per round (19 workers, paper CNN cost model)",
        &[
            "system",
            "compute+comm (s)",
            "aggregation (s)",
            "total (s)",
            "aggregation share",
            "paper share",
        ],
    );
    let paper_share = ["~0%", "35%", "27%", "52%"];
    for ((name, gar), paper) in systems.iter().zip(paper_share) {
        let sim = ThroughputSimulation {
            workers: 19,
            gar: *gar,
            batch_size: 100,
            cost,
            link: LinkConfig::datacenter(),
            proxy_dimension: 200_000,
            rounds: 6,
            seed: 7,
        };
        let result = sim.run().expect("simulation runs");
        let share = result.aggregation_time_sec / result.round_time_sec;
        table.add_row(&[
            name.to_string(),
            format!("{:.3}", result.compute_comm_time_sec),
            format!("{:.3}", result.aggregation_time_sec),
            format!("{:.3}", result.round_time_sec),
            format!("{:.1}%", 100.0 * share),
            paper.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape: aggregation share negligible for averaging, largest for Bulyan, \
         with Multi-Krum below Bulyan."
    );
}
