//! `tree_perf` — the hierarchical-aggregation n-scaling trajectory.
//!
//! The flat robust round is O(n²d): the Multi-Krum distance matrix
//! dominates from a few dozen workers. The two-level tree
//! ([`agg_core::TreeAggregator`]) runs a full GAR per group of g ≤ 32 on
//! the arena + selection-network kernels at their sweet spot, then a GAR
//! over the n/g group outputs — O(n·g·d + (n/g)²d), the first tier that
//! changes the asymptotics rather than the constants.
//!
//! This binary measures that claim on one box: median ns/round for the
//! flat Multi-Krum rule vs the tree (Multi-Krum at both levels, g = 32)
//! at n ∈ {128, 256, 512, 1024}, d = 4096. Both arms aggregate the same
//! packed arena, interleaved round-robin so they see the same slice of the
//! machine's thermal drift. Results land in `BENCH_tree.json` (override
//! with `--out <path>`); the committed repo-root copy is gated by
//! `bench_floor` (≥3× from n = 256, the PR-9 acceptance anchor).

use agg_core::{GarConfig, GarKind, TreeAggregator, TreeConfig};
use agg_tensor::rng::{gaussian_fill, seeded_rng};
use agg_tensor::GradientBatch;
use std::fmt::Write as _;
use std::time::Instant;

const D: usize = 4096;
const GROUP_SIZE: usize = 32;
const SEED: u64 = 13;
const SCALES: [usize; 4] = [128, 256, 512, 1024];
/// Both levels and the flat baseline declare roughly the paper's n/5
/// Byzantine ratio, capped by each rule's 2f + 3 floor.
fn declared_f(n: usize) -> usize {
    (n / 5).min(n.saturating_sub(3) / 2)
}

/// Per-scale time budget across both arms; each arm still takes at least
/// `MIN_SAMPLES` runs.
const BUDGET_NS: u128 = 1_500_000_000;
const MIN_SAMPLES: usize = 3;
const MAX_SAMPLES: usize = 30;

/// Median ns/round per arm, sampled round-robin across the arms (first
/// pass is warm-up) — the same scheme as `shard_perf`, so the
/// tree-over-flat ratios compare like with like.
fn interleaved_median_ns(arms: &mut [&mut dyn FnMut()]) -> Vec<u128> {
    for run in arms.iter_mut() {
        run();
    }
    let mut samples: Vec<Vec<u128>> = vec![Vec::new(); arms.len()];
    let mut total = 0u128;
    while samples[0].len() < MIN_SAMPLES || (total < BUDGET_NS && samples[0].len() < MAX_SAMPLES) {
        for (run, bucket) in arms.iter_mut().zip(samples.iter_mut()) {
            let start = Instant::now();
            run();
            let ns = start.elapsed().as_nanos().max(1);
            total += ns;
            bucket.push(ns);
        }
    }
    samples
        .into_iter()
        .map(|mut bucket| {
            bucket.sort_unstable();
            bucket[bucket.len() / 2]
        })
        .collect()
}

struct ScaleRow {
    n: usize,
    groups: usize,
    f_flat: usize,
    f_group: usize,
    f_root: usize,
    flat_ns: u128,
    tree_ns: u128,
}

impl ScaleRow {
    fn speedup(&self) -> f64 {
        self.flat_ns as f64 / self.tree_ns.max(1) as f64
    }
}

fn main() {
    let mut out_path = String::from("BENCH_tree.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_path = args.next().expect("--out requires a path");
            }
            other => {
                eprintln!("tree_perf: unknown argument '{other}' (supported: --out <path>)");
                std::process::exit(2);
            }
        }
    }

    println!("tree_perf: multi-krum, d = {D}, g = {GROUP_SIZE} (median ns/round)");
    println!(
        "{:<6} {:>7} {:>7} {:>7} {:>7} {:>15} {:>15} {:>8}",
        "n", "groups", "f_flat", "f_grp", "f_root", "flat_ns", "tree_ns", "speedup"
    );

    let mut rows: Vec<ScaleRow> = Vec::new();
    for n in SCALES {
        let groups = n.div_ceil(GROUP_SIZE);
        let f_flat = declared_f(n);
        let f_group = declared_f(GROUP_SIZE);
        let f_root = declared_f(groups);
        let flat = GarConfig::new(GarKind::MultiKrum, f_flat).build().expect("valid flat rule");
        let tree = TreeAggregator::new(TreeConfig {
            group: GarConfig::new(GarKind::MultiKrum, f_group),
            root: GarConfig::new(GarKind::MultiKrum, f_root),
            group_size: GROUP_SIZE,
        })
        .expect("valid tree config");
        let assignment: Vec<usize> = (0..n).map(|i| i / GROUP_SIZE).collect();

        // One round of gradients, packed once — both arms aggregate the
        // same arena, so the comparison isolates the aggregation path.
        let mut rng = seeded_rng(0x7BEE ^ SEED ^ n as u64);
        let mut batch = GradientBatch::with_capacity(D, n);
        for _ in 0..n {
            batch.push_row_with(|dst| gaussian_fill(&mut rng, dst, 0.0, 1.0));
        }
        let batch_ref = &batch;
        let assignment_ref = &assignment;

        let mut run_flat =
            || drop(flat.aggregate_batch(batch_ref).expect("flat aggregation succeeds"));
        let mut run_tree = || {
            drop(
                tree.aggregate_batch_grouped(batch_ref, assignment_ref)
                    .expect("tree aggregation succeeds"),
            )
        };
        let mut arms: Vec<&mut dyn FnMut()> = vec![&mut run_flat, &mut run_tree];
        let medians = interleaved_median_ns(&mut arms);
        let row = ScaleRow {
            n,
            groups,
            f_flat,
            f_group,
            f_root,
            flat_ns: medians[0],
            tree_ns: medians[1],
        };
        println!(
            "{:<6} {:>7} {:>7} {:>7} {:>7} {:>15} {:>15} {:>7.2}x",
            row.n,
            row.groups,
            row.f_flat,
            row.f_group,
            row.f_root,
            row.flat_ns,
            row.tree_ns,
            row.speedup()
        );
        rows.push(row);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"tree_perf\",\n");
    json.push_str("  \"rule\": \"multi-krum\",\n");
    let _ = writeln!(json, "  \"d\": {D},");
    let _ = writeln!(json, "  \"group_size\": {GROUP_SIZE},");
    json.push_str("  \"unit\": \"median_ns_per_round\",\n");
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"groups\": {}, \"f_flat\": {}, \"f_group\": {}, \"f_root\": {}, \
             \"flat_ns\": {}, \"tree_ns\": {}, \"speedup\": {:.2}}}{comma}",
            row.n,
            row.groups,
            row.f_flat,
            row.f_group,
            row.f_root,
            row.flat_ns,
            row.tree_ns,
            row.speedup()
        );
    }
    json.push_str("  ]\n");
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_tree.json");
    println!("\nwrote {out_path}");
}
