//! `gar_perf` — the repo's gradient-aggregation perf trajectory.
//!
//! Times one aggregation round (ns/round, median of repeated samples) for
//! the six rules of the paper's §4.2 cost analysis at the paper's deployment
//! size (n = 19 workers, f = 4 Byzantine) across gradient dimensions
//! d ∈ {1k, 10k, 100k}, on two code paths:
//!
//! * **arena** — the live [`agg_core::Gar::aggregate_batch`] kernels over
//!   the contiguous [`GradientBatch`] arena (triangular distance matrix,
//!   fused column-block kernels, partial selection);
//! * **reference** — the frozen pre-arena implementations in
//!   [`agg_core::reference`] (dense both-triangles matrix, per-coordinate
//!   gathers over scattered vectors, allocate-and-sort scoring).
//!
//! The results are written as machine-readable JSON (default
//! `BENCH_gar.json`, override with `--out <path>`) so CI can archive a perf
//! trajectory per commit, and printed as a table for humans.

use agg_core::{reference, Gar, GarConfig, GarKind};
use agg_tensor::rng::{gaussian_vector, seeded_rng};
use agg_tensor::{GradientBatch, Vector};
use std::fmt::Write as _;
use std::time::Instant;

/// The paper's deployment: 19 workers, 4 declared Byzantine.
const N: usize = 19;
const F: usize = 4;
const DIMS: [usize; 3] = [1_000, 10_000, 100_000];
const RULES: [GarKind; 6] = [
    GarKind::Average,
    GarKind::Median,
    GarKind::TrimmedMean,
    GarKind::Krum,
    GarKind::MultiKrum,
    GarKind::Bulyan,
];

/// Per-cell time budget; each cell still takes at least `MIN_SAMPLES` runs.
const BUDGET_NS: u128 = 150_000_000;
const MIN_SAMPLES: usize = 5;
const MAX_SAMPLES: usize = 60;

/// Median ns/round of repeated timed runs (first run is warm-up).
fn median_round_ns(mut run: impl FnMut()) -> u128 {
    run();
    let mut samples: Vec<u128> = Vec::new();
    let mut total = 0u128;
    while samples.len() < MIN_SAMPLES || (total < BUDGET_NS && samples.len() < MAX_SAMPLES) {
        let start = Instant::now();
        run();
        let ns = start.elapsed().as_nanos().max(1);
        total += ns;
        samples.push(ns);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Cell {
    rule: &'static str,
    d: usize,
    arena_ns: u128,
    reference_ns: u128,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.reference_ns as f64 / self.arena_ns.max(1) as f64
    }
}

fn main() {
    let mut out_path = String::from("BENCH_gar.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_path = args.next().expect("--out requires a path");
            }
            other => {
                eprintln!("gar_perf: unknown argument '{other}' (supported: --out <path>)");
                std::process::exit(2);
            }
        }
    }

    println!("gar_perf: n = {N}, f = {F}, dims = {DIMS:?} (median ns/round)");
    println!(
        "{:<14} {:>8} {:>14} {:>14} {:>9}",
        "rule", "d", "arena_ns", "reference_ns", "speedup"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &d in &DIMS {
        let mut rng = seeded_rng(0xA66_7A70 ^ d as u64);
        let gradients: Vec<Vector> =
            (0..N).map(|_| gaussian_vector(&mut rng, d, 0.0, 1.0)).collect();
        let batch = GradientBatch::from_vectors(&gradients).expect("consistent batch");
        for kind in RULES {
            let gar: Box<dyn Gar> = GarConfig::new(kind, F).build().expect("valid GAR config");
            let arena_ns = median_round_ns(|| {
                gar.aggregate_batch(&batch).expect("arena aggregation succeeds");
            });
            let reference_ns = median_round_ns(|| {
                reference::aggregate(kind, F, &gradients).expect("reference aggregation succeeds");
            });
            let cell = Cell { rule: kind.name(), d, arena_ns, reference_ns };
            println!(
                "{:<14} {:>8} {:>14} {:>14} {:>8.2}x",
                cell.rule,
                cell.d,
                cell.arena_ns,
                cell.reference_ns,
                cell.speedup()
            );
            cells.push(cell);
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"gar_perf\",\n");
    let _ = writeln!(json, "  \"n\": {N},");
    let _ = writeln!(json, "  \"f\": {F},");
    json.push_str("  \"unit\": \"median_ns_per_round\",\n");
    json.push_str("  \"results\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"rule\": \"{}\", \"d\": {}, \"arena_ns\": {}, \"reference_ns\": {}, \
             \"speedup\": {:.2}}}{comma}",
            cell.rule,
            cell.d,
            cell.arena_ns,
            cell.reference_ns,
            cell.speedup()
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_gar.json");
    println!("\nwrote {out_path}");
}
