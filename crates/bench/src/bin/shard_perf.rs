//! `shard_perf` — shard-parallel aggregation perf trajectory.
//!
//! Times one aggregation round (median ns/round) at the paper's deployment
//! size (n = 19 workers, f = 4 Byzantine, d = 100k) on two code paths:
//!
//! * **unsharded** — the live single-shard arena path
//!   (`GarConfig::build()` + `aggregate_batch`), the baseline every
//!   previous PR's numbers refer to;
//! * **sharded S ∈ {1, 2, 4, 8}** — the `ShardedAggregator` pipeline:
//!   per-shard partial distance matrices (column-blocked, sixteen-lane
//!   inner kernel), shard-order reduce, one global selection, per-shard
//!   column kernels on the selected rows.
//!
//! On a multi-core box the shards run concurrently under rayon; on a single
//! core the win comes from the per-shard kernel itself (L2-resident column
//! tiles and an accumulate chain deep enough to keep the vector pipes
//! busy). Results are written as machine-readable JSON (default
//! `BENCH_shard.json`, override with `--out <path>`) so CI can archive the
//! trajectory, and printed as a table for humans.

use agg_core::{Gar, GarConfig, GarKind, ShardedAggregator};
use agg_tensor::rng::{gaussian_fill, seeded_rng};
use agg_tensor::GradientBatch;
use std::fmt::Write as _;
use std::time::Instant;

/// The paper's deployment: 19 workers, 4 declared Byzantine, 100k proxy
/// dimension.
const N: usize = 19;
const F: usize = 4;
const D: usize = 100_000;
const SEED: u64 = 11;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// The shard count the headline speedup column reports (the acceptance
/// configuration: S = 4 shard-parallel vs the single-shard arena path).
const KEY_SHARDS: usize = 4;
/// The three distance-decomposed rules plus both coordinate-wise
/// order-statistic rules, so the per-shard column kernels (which inherit the
/// selection-network speedup directly) are tracked alongside the distance
/// pipeline.
const RULES: [GarKind; 5] =
    [GarKind::MultiKrum, GarKind::Krum, GarKind::Bulyan, GarKind::Median, GarKind::TrimmedMean];

/// Per-rule time budget across all arms; each arm still takes at least
/// `MIN_SAMPLES` runs.
const BUDGET_NS: u128 = 2_000_000_000;
const MIN_SAMPLES: usize = 5;
const MAX_SAMPLES: usize = 60;

/// Median ns/round per arm, sampled **round-robin across the arms** (first
/// pass is warm-up): every arm of a rule sees the same slice of the
/// machine's thermal/frequency drift, so the sharded-over-unsharded ratios
/// compare like with like. Sampling each arm to completion in sequence
/// — the previous scheme — systematically penalised whichever arm ran last
/// by a few percent, which is the same order as the overhead being
/// measured.
fn interleaved_median_ns(arms: &mut [&mut dyn FnMut()]) -> Vec<u128> {
    for run in arms.iter_mut() {
        run();
    }
    let mut samples: Vec<Vec<u128>> = vec![Vec::new(); arms.len()];
    let mut total = 0u128;
    while samples[0].len() < MIN_SAMPLES || (total < BUDGET_NS && samples[0].len() < MAX_SAMPLES) {
        for (run, bucket) in arms.iter_mut().zip(samples.iter_mut()) {
            let start = Instant::now();
            run();
            let ns = start.elapsed().as_nanos().max(1);
            total += ns;
            bucket.push(ns);
        }
    }
    samples
        .into_iter()
        .map(|mut bucket| {
            bucket.sort_unstable();
            bucket[bucket.len() / 2]
        })
        .collect()
}

struct RuleRow {
    rule: &'static str,
    unsharded_ns: u128,
    /// `(shards, median ns)` in `SHARD_COUNTS` order.
    sharded_ns: Vec<(usize, u128)>,
}

impl RuleRow {
    fn speedup(&self, shards: usize) -> f64 {
        let ns = self
            .sharded_ns
            .iter()
            .find(|(s, _)| *s == shards)
            .map(|&(_, ns)| ns)
            .unwrap_or(u128::MAX);
        self.unsharded_ns as f64 / ns.max(1) as f64
    }
}

fn main() {
    let mut out_path = String::from("BENCH_shard.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_path = args.next().expect("--out requires a path");
            }
            other => {
                eprintln!("shard_perf: unknown argument '{other}' (supported: --out <path>)");
                std::process::exit(2);
            }
        }
    }

    // One round of gradients, packed once — both arms aggregate the same
    // arena, so the comparison isolates the aggregation path.
    let mut rng = seeded_rng(0x5AAD ^ SEED);
    let mut batch = GradientBatch::with_capacity(D, N);
    for _ in 0..N {
        batch.push_row_with(|dst| gaussian_fill(&mut rng, dst, 0.0, 1.0));
    }

    println!("shard_perf: n = {N}, f = {F}, d = {D} (median ns/round)");
    let mut header = format!("{:<11} {:>13}", "rule", "unsharded_ns");
    for shards in SHARD_COUNTS {
        let _ = write!(header, " {:>13}", format!("S={shards}_ns"));
    }
    let _ = write!(header, " {:>8}", format!("S{KEY_SHARDS}_spd"));
    println!("{header}");

    let mut rows: Vec<RuleRow> = Vec::new();
    for kind in RULES {
        let config = GarConfig::new(kind, F);
        let unsharded = config.build().expect("valid GAR config");
        let sharded: Vec<ShardedAggregator> = SHARD_COUNTS
            .iter()
            .map(|&shards| ShardedAggregator::new(config, shards).expect("valid shard count"))
            .collect();
        let batch_ref = &batch;
        let mut run_unsharded =
            || drop(unsharded.aggregate_batch(batch_ref).expect("aggregation succeeds"));
        let mut run_sharded: Vec<Box<dyn FnMut()>> = sharded
            .iter()
            .map(|rule| -> Box<dyn FnMut()> {
                Box::new(move || {
                    drop(rule.aggregate_batch(batch_ref).expect("aggregation succeeds"));
                })
            })
            .collect();
        let mut arms: Vec<&mut dyn FnMut()> = vec![&mut run_unsharded];
        arms.extend(run_sharded.iter_mut().map(|b| &mut **b as &mut dyn FnMut()));
        let medians = interleaved_median_ns(&mut arms);
        let unsharded_ns = medians[0];
        let sharded_ns: Vec<(usize, u128)> =
            SHARD_COUNTS.iter().copied().zip(medians[1..].iter().copied()).collect();
        let row = RuleRow { rule: kind.name(), unsharded_ns, sharded_ns };
        let mut line = format!("{:<11} {:>13}", row.rule, row.unsharded_ns);
        for &(_, ns) in &row.sharded_ns {
            let _ = write!(line, " {ns:>13}");
        }
        let _ = write!(line, " {:>7.2}x", row.speedup(KEY_SHARDS));
        println!("{line}");
        rows.push(row);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"shard_perf\",\n");
    let _ = writeln!(json, "  \"n\": {N},");
    let _ = writeln!(json, "  \"f\": {F},");
    let _ = writeln!(json, "  \"d\": {D},");
    json.push_str("  \"unit\": \"median_ns_per_round\",\n");
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let sharded: Vec<String> = row
            .sharded_ns
            .iter()
            .map(|&(s, ns)| {
                format!("{{\"shards\": {s}, \"ns\": {ns}, \"speedup\": {:.2}}}", row.speedup(s))
            })
            .collect();
        let _ = writeln!(
            json,
            "    {{\"rule\": \"{}\", \"unsharded_ns\": {}, \"sharded\": [{}]}}{comma}",
            row.rule,
            row.unsharded_ns,
            sharded.join(", ")
        );
    }
    json.push_str("  ]\n");
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_shard.json");
    println!("\nwrote {out_path}");
}
