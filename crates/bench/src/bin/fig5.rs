//! Figure 5 — throughput against the number of workers.
//!
//! (a) the Table 1 CNN: all systems coincide up to ~6 workers, then the
//! Byzantine-resilient GARs fall below averaging, with higher declared `f`
//! giving *higher* throughput (fewer selected gradients / fewer Bulyan
//! iterations) and Draco an order of magnitude below everything.
//!
//! (b) the ResNet50-class model: gradient computation dominates, so the
//! robust GARs track averaging closely.

use agg_core::{GarConfig, GarKind};
use agg_draco::{AssignmentScheme, DracoThroughputSimulation};
use agg_metrics::Table;
use agg_net::LinkConfig;
use agg_ps::{CostModel, ThroughputSimulation, VirtualModelCost};

struct System {
    name: &'static str,
    gar: Option<GarConfig>,
    /// `Some(f)` marks a Draco row.
    draco_f: Option<usize>,
}

fn simulate(system: &System, workers: usize, virtual_model: VirtualModelCost) -> Option<f64> {
    let cost = CostModel::paper_like().with_virtual_model(virtual_model);
    match (system.gar, system.draco_f) {
        (Some(gar), None) => {
            let sim = ThroughputSimulation {
                workers,
                gar,
                batch_size: 100,
                cost,
                link: LinkConfig::datacenter(),
                proxy_dimension: 100_000,
                rounds: 4,
                seed: 11,
            };
            sim.run().ok().map(|r| r.batches_per_sec)
        }
        (None, Some(f)) => DracoThroughputSimulation {
            workers,
            f,
            scheme: AssignmentScheme::Repetition,
            batch_size: 100,
            cost,
            link: LinkConfig::datacenter(),
            dimension: virtual_model.dimension,
            encode_overhead_factor: 2.0,
            decode_sec_per_worker_million_params: 0.03,
        }
        .run()
        .ok(),
        _ => None,
    }
}

fn sweep(title: &str, virtual_model: VirtualModelCost, systems: &[System]) {
    let worker_counts = [2usize, 4, 6, 8, 10, 12, 14, 16, 18];
    let mut header: Vec<String> = vec!["workers".to_string()];
    header.extend(systems.iter().map(|s| s.name.to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(title, &header_refs);
    for &n in &worker_counts {
        let mut row = vec![n.to_string()];
        for system in systems {
            let value = simulate(system, n, virtual_model);
            row.push(match value {
                Some(v) => format!("{v:.2}"),
                None => "n/a".to_string(),
            });
        }
        table.add_row(&row);
    }
    println!("{table}");
}

fn main() {
    let systems = vec![
        System {
            name: "TF/Average",
            gar: Some(GarConfig::new(GarKind::Average, 0)),
            draco_f: None,
        },
        System { name: "Median", gar: Some(GarConfig::new(GarKind::Median, 4)), draco_f: None },
        System {
            name: "Multi-Krum f=1",
            gar: Some(GarConfig::new(GarKind::MultiKrum, 1)),
            draco_f: None,
        },
        System {
            name: "Multi-Krum f=4",
            gar: Some(GarConfig::new(GarKind::MultiKrum, 4)),
            draco_f: None,
        },
        System { name: "Bulyan f=1", gar: Some(GarConfig::new(GarKind::Bulyan, 1)), draco_f: None },
        System { name: "Bulyan f=2", gar: Some(GarConfig::new(GarKind::Bulyan, 2)), draco_f: None },
        System { name: "Draco f=1", gar: None, draco_f: Some(1) },
        System { name: "Draco f=4", gar: None, draco_f: Some(4) },
    ];

    sweep(
        "Figure 5(a): throughput (batches/sec) vs #workers — Table 1 CNN",
        VirtualModelCost::paper_cnn(),
        &systems,
    );
    println!(
        "expected shape: systems coincide for small clusters; robust GARs fall below averaging \
         as n grows; higher f => higher throughput; Draco at the bottom ('n/a' = the GAR's \
         precondition n >= 2f+3 / 4f+3 is not met at that cluster size).\n"
    );

    sweep(
        "Figure 5(b): throughput (batches/sec) vs #workers — ResNet50-class model",
        VirtualModelCost::resnet50(),
        &systems,
    );
    println!(
        "expected shape: gradient computation dominates, so Multi-Krum and Bulyan track \
         averaging closely; Draco remains far below."
    );
}
