//! `round_perf` — end-to-end round-pipeline perf trajectory.
//!
//! Times one full training round (worker gradients → transport →
//! reassembly → submissions arena → GAR aggregation; median ns/round) at the
//! paper's deployment size (n = 19 workers, f = 4 Byzantine, d = 100k) over
//! the two transports of Figure 8, on two code paths:
//!
//! * **pipeline** — the live zero-copy path: `Transport::transfer_into`
//!   delivers every worker's gradient straight into its row of one reused
//!   `GradientBatch` arena (lossy links go `split_bytes` → shared-buffer
//!   `Bytes` packets → `RoundAssembler` bitset scatter), then the GAR
//!   aggregates the arena in place.
//! * **reference** — the pre-pipeline path the seed engine ran: per-worker
//!   `GradientCodec::split` into `Vec<f32>`-payload packets, per-coordinate
//!   reassembly into a fresh `Vector` (+ `Vec<bool>` mask), submissions
//!   collected as `Vec<Vector>` and re-packed with
//!   `GradientBatch::from_vectors` every round.
//! * **streaming** — the event-driven path: a `RoundPipeline` with per-row
//!   completion events, so each delivered row's distance contributions fold
//!   into the incremental accumulator while the row is still hot in cache,
//!   and the GAR runs distance-primed (`aggregate_batch_with_distances`)
//!   instead of recomputing the O(n²·d) matrix at the barrier.
//! * **quorum** — the streaming path under the `n − f` quorum policy: the
//!   round aggregates at the first `n − f` arrivals and never pays for the
//!   `f` slowest deliveries or their distance rows, exactly as the engine
//!   does with `QuorumPolicy::NMinusF`.
//! * **churn** — one membership transition per round: epoch restamp, fence
//!   checks, and one fenced stale sender compacted away.
//! * **chaos** — the pipeline round with the moderate seeded wire-fault
//!   plan active on every link and the bounded NACK/retransmit protocol
//!   repairing the damage; gates the integrity + recovery machinery at
//!   ≥ 0.95× of a static round.
//! * **reputation** — the pipeline round plus the per-round ledger work the
//!   reputation engine adds: the affinity collusion sketch over every
//!   delivered row, the six-stream evidence fold, and the
//!   quarantine-candidate scan; gates the ledger at ≥ 0.95× of a static
//!   round.
//!
//! A separate codec section isolates the wire leg (encode + decode of one
//! d = 100k gradient): bulk 4-byte-chunk passes vs the legacy per-element
//! `put_f32_le`/`get_f32_le` loops.
//!
//! Results are written as machine-readable JSON (default `BENCH_round.json`,
//! override with `--out <path>`) so CI can archive the trajectory, and
//! printed as a table for humans.

use agg_core::{Gar, GarConfig, GarKind};
use agg_net::{
    ChaosConfig, ChaosPlan, GradientCodec, LinkConfig, LossPolicy, LossyLink, LossyTransport,
    Packet, ReliableTransport, RetransmitConfig, RoundAssembler, Transport,
};
use agg_ps::reputation::{affinity_sample_indices, collusion_flags};
use agg_ps::{QuorumPolicy, ReputationConfig, ReputationLedger, RoundEvidence, RoundPipeline};
use agg_tensor::rng::{gaussian_vector, seeded_rng};
use agg_tensor::{GradientBatch, Vector};
use std::fmt::Write as _;

/// The paper's deployment: 19 workers, 4 declared Byzantine, ~100k proxy
/// dimension, 10 % injected loss on the lossy links.
const N: usize = 19;
const F: usize = 4;
const D: usize = 100_000;
const DROP_RATE: f64 = 0.10;
const SEED: u64 = 9;
const RULES: [GarKind; 2] = [GarKind::Average, GarKind::MultiKrum];

/// Per-cell time budget; each cell still takes at least `MIN_SAMPLES` runs.
const BUDGET_NS: u128 = 400_000_000;
const MIN_SAMPLES: usize = 5;
const MAX_SAMPLES: usize = 60;

/// Full measurement repetitions per cell. Measurement noise is strictly
/// additive — contention can only inflate a sample, never deflate one —
/// so every arm keeps its hot-loop median within one repetition (hot
/// caches per arm: the methodology the committed floors were anchored
/// with), and the cell keeps the per-arm *minimum* across repetitions
/// spread out in time. A disturbance that blankets an arm's entire median
/// window in one repetition is rejected by a clean window in another,
/// instead of skewing the floored ratio. (Interleaving the arms
/// round-robin was tried first and abandoned: it cancels spikes in the
/// ratios but evicts each arm's hot cache state every pass, which shifts
/// the arms' *relative* cost by up to ~20% and invalidates floors
/// anchored under sequential sampling.)
const REPS: usize = 5;

/// Process-CPU-clock ns (`CLOCK_PROCESS_CPUTIME_ID`): robust to scheduler
/// preemption and hypervisor steal on shared bench boxes, where stolen
/// wall time inflates an `Instant` window by 2× or more without any extra
/// work being done. On the single-core CI runner every thread serialises
/// onto the one CPU, so process CPU time is exactly the round's compute
/// cost (including any rayon pool threads the kernels fan out to).
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
fn bench_clock_ns() -> u128 {
    const SYS_CLOCK_GETTIME: u64 = 228;
    const CLOCK_PROCESS_CPUTIME_ID: u64 = 2;
    let mut timespec = [0i64; 2];
    unsafe {
        std::arch::asm!(
            "syscall",
            in("rax") SYS_CLOCK_GETTIME,
            in("rdi") CLOCK_PROCESS_CPUTIME_ID,
            in("rsi") timespec.as_mut_ptr(),
            lateout("rax") _,
            out("rcx") _,
            out("r11") _,
        );
    }
    timespec[0] as u128 * 1_000_000_000 + timespec[1] as u128
}

/// Wall-clock fallback where the raw clock syscall isn't wired up.
#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
fn bench_clock_ns() -> u128 {
    use std::time::Instant;
    static START: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_nanos()
}

/// Median ns/round of repeated timed runs (first run is warm-up).
fn median_round_ns(mut run: impl FnMut()) -> u128 {
    run();
    let mut samples: Vec<u128> = Vec::new();
    let mut total = 0u128;
    while samples.len() < MIN_SAMPLES || (total < BUDGET_NS && samples.len() < MAX_SAMPLES) {
        let start = bench_clock_ns();
        run();
        let ns = (bench_clock_ns() - start).max(1);
        total += ns;
        samples.push(ns);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Deterministic stand-in for the transport's lost-coordinate fill (same
/// amount of work; the bench only compares time, not values).
fn fill_lost(index: usize) -> f32 {
    (index as f32).sin()
}

fn gradients() -> Vec<Vector> {
    let mut rng = seeded_rng(0x0707 ^ SEED);
    (0..N).map(|_| gaussian_vector(&mut rng, D, 0.0, 1.0)).collect()
}

/// The seed engine's round: legacy struct packets, per-coordinate
/// reassembly, `Vec<Vector>` submissions, fresh arena every round.
fn reference_round(
    gar: Option<&dyn Gar>,
    codec: GradientCodec,
    links: &mut Option<Vec<LossyLink>>,
    gradients: &[Vector],
) {
    let mut submissions: Vec<Vector> = Vec::new();
    for (worker, gradient) in gradients.iter().enumerate() {
        let packets = codec.split(worker as u32, 0, gradient);
        let received = match links {
            // Reliable link: every packet arrives; the seed transport
            // cloned the gradient for the receiver.
            None => {
                std::hint::black_box(&packets);
                gradient.clone()
            }
            Some(links) => {
                let (delivered, _) = links[worker].transmit(&packets);
                let (mut v, _missing) = codec.reassemble(&delivered, D).expect("consistent round");
                v.replace_non_finite(fill_lost);
                v
            }
        };
        submissions.push(received);
    }
    let batch = GradientBatch::from_vectors(&submissions).expect("non-empty round");
    if let Some(gar) = gar {
        gar.aggregate_batch(&batch).expect("aggregation succeeds");
    } else {
        std::hint::black_box(batch.n());
    }
}

/// The live round: `transfer_into` delivers each worker straight into its
/// reused arena row; the GAR aggregates in place.
fn pipeline_round(
    gar: Option<&dyn Gar>,
    transports: &mut [Box<dyn Transport>],
    arena: &mut GradientBatch,
    gradients: &[Vector],
) {
    arena.resize_rows(N);
    for (worker, (transport, row)) in transports.iter_mut().zip(arena.rows_mut()).enumerate() {
        transport
            .transfer_into(worker as u32, 0, gradients[worker].as_slice(), row)
            .expect("transfer succeeds");
    }
    if let Some(gar) = gar {
        gar.aggregate_batch(arena).expect("aggregation succeeds");
    } else {
        std::hint::black_box(arena.n());
    }
}

/// The elastic-membership round: one membership transition per round. The
/// epoch advances, every transport is restamped (the per-round cost the
/// engine pays whenever a fault plan is active), and one sender still
/// carries the previous epoch — the receiver fence rejects its packets and
/// the round compacts to the delivered rows, exactly what a rejoiner's
/// first round costs the server.
fn churn_round(
    gar: Option<&dyn Gar>,
    transports: &mut [Box<dyn Transport>],
    arena: &mut GradientBatch,
    gradients: &[Vector],
    epoch: &mut u32,
) {
    *epoch = epoch.wrapping_add(1);
    let stale = N - 1;
    let mut delivered = [false; N];
    arena.resize_rows(N);
    for (worker, (transport, row)) in transports.iter_mut().zip(arena.rows_mut()).enumerate() {
        transport.set_expected_epoch(Some(*epoch));
        transport.set_epoch(if worker == stale { epoch.wrapping_sub(1) } else { *epoch });
        let transfer = transport
            .transfer_into(worker as u32, 0, gradients[worker].as_slice(), row)
            .expect("transfer succeeds");
        delivered[worker] = transfer.delivered;
    }
    arena.retain_rows(&delivered);
    if let Some(gar) = gar {
        gar.aggregate_batch(arena).expect("aggregation succeeds");
    } else {
        std::hint::black_box(arena.n());
    }
}

/// The streaming round: the arena buffers flip, each delivered row fires a
/// completion event that folds its distance contributions in while the row
/// is hot in cache, and the GAR runs distance-primed on the first `accept`
/// arrivals (the stragglers are compacted away like transport losses).
fn streaming_round(
    gar: &dyn Gar,
    transports: &mut [Box<dyn Transport>],
    pipeline: &mut RoundPipeline,
    gradients: &[Vector],
    accept: usize,
) {
    pipeline.begin_round(N);
    for worker in 0..accept {
        transports[worker]
            .transfer_into(
                worker as u32,
                0,
                gradients[worker].as_slice(),
                pipeline.arena_mut().row_mut(worker),
            )
            .expect("transfer succeeds");
        pipeline.row_done(worker);
    }
    let keep: Vec<usize> = (0..accept).collect();
    let distances = pipeline.matrix(&keep);
    if accept < N {
        let mut flags = vec![false; N];
        flags[..accept].fill(true);
        pipeline.arena_mut().retain_rows(&flags);
    }
    match &distances {
        Some(distances) => gar.aggregate_batch_with_distances(pipeline.arena(), distances),
        None => gar.aggregate_batch(pipeline.arena()),
    }
    .expect("aggregation succeeds");
}

/// The reputation round: the static pipeline round plus the per-round
/// ledger work the engine adds when a [`ReputationConfig`] is installed —
/// the affinity collusion sketch over every delivered row, the six-stream
/// evidence fold into the decayed suspicion scores, and the
/// quarantine-candidate scan.
fn reputation_round(
    gar: Option<&dyn Gar>,
    transports: &mut [Box<dyn Transport>],
    arena: &mut GradientBatch,
    gradients: &[Vector],
    ledger: &mut ReputationLedger,
    sample: &[usize],
    step: &mut u64,
) {
    arena.resize_rows(N);
    for (worker, (transport, row)) in transports.iter_mut().zip(arena.rows_mut()).enumerate() {
        transport
            .transfer_into(worker as u32, 0, gradients[worker].as_slice(), row)
            .expect("transfer succeeds");
    }
    let cfg = *ledger.config();
    let rows: Vec<Option<&[f32]>> = (0..N).map(|w| Some(arena.row(w))).collect();
    let colluding = collusion_flags(&rows, sample, cfg.affinity_epsilon, cfg.affinity_min_cluster);
    let evidence: Vec<RoundEvidence> = colluding
        .into_iter()
        .map(|colluding| RoundEvidence {
            corrupt: false,
            stale: false,
            exhausted: false,
            straggled: false,
            excluded: false,
            colluding,
        })
        .collect();
    ledger.observe(*step, &evidence);
    std::hint::black_box(ledger.quarantine_candidates().len());
    *step += 1;
    if let Some(gar) = gar {
        gar.aggregate_batch(arena).expect("aggregation succeeds");
    } else {
        std::hint::black_box(arena.n());
    }
}

struct Cell {
    transport: &'static str,
    rule: &'static str,
    pipeline_ns: u128,
    reference_ns: u128,
    /// Same round with the GAR call skipped: the wire → arena leg this PR
    /// rebuilt, without the (path-independent) aggregation floor.
    pipeline_wire_ns: u128,
    reference_wire_ns: u128,
    /// Event-driven round over all `n` workers (distance-primed GAR).
    streaming_ns: u128,
    /// Event-driven round under the `n − f` quorum policy.
    quorum_ns: u128,
    /// Elastic round: epoch bump + transport restamp + one fenced stale
    /// sender per round.
    churn_ns: u128,
    /// Chaos round: the moderate seeded wire-fault plan active on every
    /// link and the bounded NACK/retransmit protocol repairing the damage.
    chaos_ns: u128,
    /// Reputation round: the pipeline round plus the affinity sketch,
    /// evidence fold and quarantine-candidate scan of the suspicion ledger.
    reputation_ns: u128,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.reference_ns as f64 / self.pipeline_ns.max(1) as f64
    }

    fn wire_speedup(&self) -> f64 {
        self.reference_wire_ns as f64 / self.pipeline_wire_ns.max(1) as f64
    }

    fn streaming_speedup(&self) -> f64 {
        self.reference_ns as f64 / self.streaming_ns.max(1) as f64
    }

    fn quorum_speedup(&self) -> f64 {
        self.reference_ns as f64 / self.quorum_ns.max(1) as f64
    }

    /// Static pipeline round over the churn round: ≥ 0.95 means the whole
    /// elastic machinery (epoch restamp, fence checks, row compaction)
    /// costs at most ~5% of a round.
    fn churn_speedup(&self) -> f64 {
        self.pipeline_ns as f64 / self.churn_ns.max(1) as f64
    }

    /// Static pipeline round over the chaos round: ≥ 0.95 means CRC
    /// verification, fault injection and the bounded retransmit recovery
    /// together cost at most ~5% of a round. On the reliable transport the
    /// chaos hooks are no-ops, so its cell gates the hook plumbing alone.
    fn chaos_speedup(&self) -> f64 {
        self.pipeline_ns as f64 / self.chaos_ns.max(1) as f64
    }

    /// Static pipeline round over the reputation round: ≥ 0.95 means the
    /// whole suspicion ledger — the affinity sketch over every delivered
    /// row, the evidence fold and the candidate scan — costs at most ~5%
    /// of a round.
    fn reputation_speedup(&self) -> f64 {
        self.pipeline_ns as f64 / self.reputation_ns.max(1) as f64
    }
}

fn main() {
    let mut out_path = String::from("BENCH_round.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_path = args.next().expect("--out requires a path");
            }
            other => {
                eprintln!("round_perf: unknown argument '{other}' (supported: --out <path>)");
                std::process::exit(2);
            }
        }
    }

    let codec = GradientCodec::default_mtu();
    let clean = LinkConfig::datacenter();
    let lossy = clean.with_drop_rate(DROP_RATE);
    let gradients = gradients();

    println!(
        "round_perf: n = {N}, f = {F}, d = {D}, drop = {DROP_RATE} (median ns/round, end-to-end)"
    );
    println!(
        "{:<11} {:<12} {:>13} {:>13} {:>8} {:>13} {:>13} {:>9} {:>13} {:>8} {:>13} {:>8} {:>13} {:>9} {:>13} {:>9} {:>13} {:>8}",
        "transport",
        "rule",
        "pipeline_ns",
        "reference_ns",
        "speedup",
        "pipe_wire_ns",
        "ref_wire_ns",
        "wire_spd",
        "streaming_ns",
        "strm_spd",
        "quorum_ns",
        "quor_spd",
        "churn_ns",
        "churn_spd",
        "chaos_ns",
        "chaos_spd",
        "rep_ns",
        "rep_spd"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for transport_name in ["tcp", "lossy-udp"] {
        for kind in RULES {
            let gar = GarConfig::new(kind, F).build().expect("valid GAR config");

            // Per-arm minimum of the repetitions' medians (see `REPS`).
            let mut cell = Cell {
                transport: transport_name,
                rule: kind.name(),
                pipeline_ns: u128::MAX,
                reference_ns: u128::MAX,
                pipeline_wire_ns: u128::MAX,
                reference_wire_ns: u128::MAX,
                streaming_ns: u128::MAX,
                quorum_ns: u128::MAX,
                churn_ns: u128::MAX,
                chaos_ns: u128::MAX,
                reputation_ns: u128::MAX,
            };
            for _rep in 0..REPS {
                let mut transports: Vec<Box<dyn Transport>> = (0..N)
                    .map(|worker| -> Box<dyn Transport> {
                        match transport_name {
                            "tcp" => {
                                Box::new(ReliableTransport::new(clean, codec).expect("valid link"))
                            }
                            _ => Box::new(
                                LossyTransport::new(
                                    lossy,
                                    codec,
                                    LossPolicy::RandomFill,
                                    SEED,
                                    worker as u64,
                                )
                                .expect("valid link"),
                            ),
                        }
                    })
                    .collect();
                let mut arena = GradientBatch::with_capacity(D, N);
                cell.pipeline_ns = cell.pipeline_ns.min(median_round_ns(|| {
                    pipeline_round(Some(gar.as_ref()), &mut transports, &mut arena, &gradients);
                }));
                cell.pipeline_wire_ns = cell.pipeline_wire_ns.min(median_round_ns(|| {
                    pipeline_round(None, &mut transports, &mut arena, &gradients);
                }));

                // The reference arm drives the same link model (same
                // per-worker RNG streams) through the legacy
                // split/reassemble/Vec<Vector> path the seed engine ran.
                let mut links: Option<Vec<LossyLink>> = match transport_name {
                    "tcp" => None,
                    _ => Some(
                        (0..N)
                            .map(|worker| {
                                LossyLink::new(lossy, SEED, worker as u64).expect("valid link")
                            })
                            .collect(),
                    ),
                };
                cell.reference_ns = cell.reference_ns.min(median_round_ns(|| {
                    reference_round(Some(gar.as_ref()), codec, &mut links, &gradients);
                }));
                cell.reference_wire_ns = cell.reference_wire_ns.min(median_round_ns(|| {
                    reference_round(None, codec, &mut links, &gradients);
                }));

                // The streaming arms run the engine's event-driven round:
                // the same transports, delivered into a double-buffered
                // pipeline with per-row distance events (flat replay,
                // matching the unsharded server this bench drives).
                let mut pipeline = RoundPipeline::new(D, N);
                if kind.uses_distances() {
                    pipeline.enable_distance_streaming(N, D, 1).expect("valid plan");
                }
                cell.streaming_ns = cell.streaming_ns.min(median_round_ns(|| {
                    streaming_round(gar.as_ref(), &mut transports, &mut pipeline, &gradients, N);
                }));
                let accept = QuorumPolicy::NMinusF.accept_count(N, F);
                cell.quorum_ns = cell.quorum_ns.min(median_round_ns(|| {
                    streaming_round(
                        gar.as_ref(),
                        &mut transports,
                        &mut pipeline,
                        &gradients,
                        accept,
                    );
                }));

                // The churn arm reuses the pipeline transports; clear the
                // fences afterwards so no other arm sees a stale epoch.
                let mut epoch = 0u32;
                cell.churn_ns = cell.churn_ns.min(median_round_ns(|| {
                    churn_round(
                        Some(gar.as_ref()),
                        &mut transports,
                        &mut arena,
                        &gradients,
                        &mut epoch,
                    );
                }));
                for transport in &mut transports {
                    transport.set_expected_epoch(None);
                    transport.set_epoch(0);
                }

                // The chaos arm: the same pipeline round with the moderate
                // seeded wire-fault plan damaging every link (bit flips,
                // truncations, mutated duplicates, reorder bursts, delay
                // spikes, transient partitions) and the bounded
                // NACK/retransmit protocol repairing it. Reset the hooks
                // afterwards so the codec section sees clean transports.
                for transport in &mut transports {
                    transport.set_chaos(Some(
                        ChaosPlan::new(ChaosConfig::moderate(), SEED).expect("valid chaos config"),
                    ));
                    transport.set_retransmit(Some(RetransmitConfig::default()));
                }
                cell.chaos_ns = cell.chaos_ns.min(median_round_ns(|| {
                    pipeline_round(Some(gar.as_ref()), &mut transports, &mut arena, &gradients);
                }));
                for transport in &mut transports {
                    transport.set_chaos(None);
                    transport.set_retransmit(None);
                }

                // The reputation arm: the same pipeline round with the
                // suspicion ledger's per-round work folded in, exactly what
                // the engine adds when `RunnerConfig::reputation` is set.
                let rep_cfg = ReputationConfig::default();
                let mut ledger = ReputationLedger::new(rep_cfg, N);
                let sample = affinity_sample_indices(SEED, D, rep_cfg.affinity_max_coords);
                let mut rep_step = 0u64;
                cell.reputation_ns = cell.reputation_ns.min(median_round_ns(|| {
                    reputation_round(
                        Some(gar.as_ref()),
                        &mut transports,
                        &mut arena,
                        &gradients,
                        &mut ledger,
                        &sample,
                        &mut rep_step,
                    );
                }));
            }
            println!(
                "{:<11} {:<12} {:>13} {:>13} {:>7.2}x {:>13} {:>13} {:>8.2}x {:>13} {:>7.2}x {:>13} {:>7.2}x {:>13} {:>8.2}x {:>13} {:>8.2}x {:>13} {:>7.2}x",
                cell.transport,
                cell.rule,
                cell.pipeline_ns,
                cell.reference_ns,
                cell.speedup(),
                cell.pipeline_wire_ns,
                cell.reference_wire_ns,
                cell.wire_speedup(),
                cell.streaming_ns,
                cell.streaming_speedup(),
                cell.quorum_ns,
                cell.quorum_speedup(),
                cell.churn_ns,
                cell.churn_speedup(),
                cell.chaos_ns,
                cell.chaos_speedup(),
                cell.reputation_ns,
                cell.reputation_speedup()
            );
            cells.push(cell);
        }
    }

    // Codec-only section: the wire leg (encode + decode of one gradient),
    // min-of-medians across repetitions like the cell arms above.
    let g = gradients[0].clone();
    let mut bulk_codec_ns = u128::MAX;
    let mut reference_codec_ns = u128::MAX;
    for _rep in 0..REPS {
        bulk_codec_ns = bulk_codec_ns.min({
            let mut assembler = RoundAssembler::new(D);
            let mut row = vec![0.0f32; D];
            median_round_ns(|| {
                let packets = codec.split_bytes(0, 0, g.as_slice());
                let missing = assembler.assemble_into(&packets, &mut row).expect("consistent");
                std::hint::black_box(missing);
            })
        });
        reference_codec_ns = reference_codec_ns.min(median_round_ns(|| {
            let encoded: Vec<_> = codec.split(0, 0, &g).iter().map(Packet::encode).collect();
            let decoded: Vec<Packet> =
                encoded.into_iter().map(|b| Packet::decode(b).expect("well-formed")).collect();
            let (restored, _missing) = codec.reassemble(&decoded, D).expect("consistent");
            std::hint::black_box(restored.len());
        }));
    }
    let codec_speedup = reference_codec_ns as f64 / bulk_codec_ns.max(1) as f64;
    println!(
        "\ncodec encode+decode d = {D}: bulk {bulk_codec_ns} ns, \
         reference {reference_codec_ns} ns ({codec_speedup:.2}x)"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"round_perf\",\n");
    let _ = writeln!(json, "  \"n\": {N},");
    let _ = writeln!(json, "  \"f\": {F},");
    let _ = writeln!(json, "  \"d\": {D},");
    let _ = writeln!(json, "  \"drop_rate\": {DROP_RATE},");
    json.push_str("  \"unit\": \"median_ns_per_round\",\n");
    json.push_str("  \"results\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"transport\": \"{}\", \"rule\": \"{}\", \"pipeline_ns\": {}, \
             \"reference_ns\": {}, \"speedup\": {:.2}, \"pipeline_wire_ns\": {}, \
             \"reference_wire_ns\": {}, \"wire_speedup\": {:.2}, \"streaming_ns\": {}, \
             \"streaming_speedup\": {:.2}, \"quorum_ns\": {}, \
             \"quorum_speedup\": {:.2}, \"churn_ns\": {}, \
             \"churn_speedup\": {:.2}, \"chaos_ns\": {}, \
             \"chaos_speedup\": {:.2}, \"reputation_ns\": {}, \
             \"reputation_speedup\": {:.2}}}{comma}",
            cell.transport,
            cell.rule,
            cell.pipeline_ns,
            cell.reference_ns,
            cell.speedup(),
            cell.pipeline_wire_ns,
            cell.reference_wire_ns,
            cell.wire_speedup(),
            cell.streaming_ns,
            cell.streaming_speedup(),
            cell.quorum_ns,
            cell.quorum_speedup(),
            cell.churn_ns,
            cell.churn_speedup(),
            cell.chaos_ns,
            cell.chaos_speedup(),
            cell.reputation_ns,
            cell.reputation_speedup()
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"codec\": {{\"bulk_ns\": {bulk_codec_ns}, \"reference_ns\": {reference_codec_ns}, \
         \"speedup\": {codec_speedup:.2}}}"
    );
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_round.json");
    println!("\nwrote {out_path}");
}
