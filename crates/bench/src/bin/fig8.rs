//! Figure 8 — impact of dropped packets on convergence.
//!
//! The gradient transfer of the last `f = 8` workers runs over the lossy
//! UDP-like transport. With no added loss (a) the three loss-handling
//! strategies of §3.3 behave alike; with a 10 % artificial drop rate (b)
//! AggregaThor over lossyMPI converges to 30 % accuracy more than ~6× faster
//! than TensorFlow over gRPC (whose TCP flow collapses under loss), while
//! non-robust averaging over the lossy transport fails to converge cleanly.

use agg_bench::{format_time, paper_runner};
use agg_core::GarKind;
use agg_metrics::Table;
use agg_net::{LinkConfig, LossPolicy};
use agg_ps::{SyncTrainingEngine, TrainingReport, TransportKind};

struct Scenario {
    name: &'static str,
    gar: GarKind,
    f: usize,
    transport: TransportKind,
    lossy_links: usize,
}

fn run(scenario: &Scenario, drop_rate: f64, steps: u64) -> TrainingReport {
    let mut config = paper_runner(scenario.gar, scenario.f, 50, steps);
    config.transport = scenario.transport;
    config.lossy_links = scenario.lossy_links;
    config.link = LinkConfig::datacenter().with_drop_rate(drop_rate);
    SyncTrainingEngine::new(config).expect("valid configuration").run().expect("run completes")
}

fn report(title: &str, drop_rate: f64, scenarios: &[Scenario], steps: u64) {
    let mut table = Table::new(
        title,
        &["system", "final accuracy", "time to 30% accuracy (s)", "simulated time (s)"],
    );
    for scenario in scenarios {
        let result = run(scenario, drop_rate, steps);
        table.add_row(&[
            scenario.name.to_string(),
            format!("{:.3}", result.final_accuracy()),
            format_time(result.time_to_accuracy(0.30)),
            format!("{:.1}", result.simulated_time_sec),
        ]);
    }
    println!("{table}");
}

fn main() {
    let steps = 150;

    let no_loss = [
        Scenario {
            name: "TF (drop whole gradient)",
            gar: GarKind::Average,
            f: 0,
            transport: TransportKind::Lossy { policy: LossPolicy::DropGradient },
            lossy_links: 8,
        },
        Scenario {
            name: "Selective Average",
            gar: GarKind::SelectiveAverage,
            f: 0,
            transport: TransportKind::Lossy { policy: LossPolicy::SelectiveNan },
            lossy_links: 8,
        },
        Scenario {
            name: "AggregaThor (Multi-Krum f=8)",
            gar: GarKind::MultiKrum,
            f: 8,
            transport: TransportKind::Lossy { policy: LossPolicy::RandomFill },
            lossy_links: 8,
        },
    ];
    report(
        "Figure 8(a): 0% artificial drop rate, lossy transport on 8 links",
        0.0,
        &no_loss,
        steps,
    );
    println!("expected shape: the three strategies converge almost identically.\n");

    let lossy = [
        Scenario {
            name: "AggregaThor (Multi-Krum f=8, lossyMPI)",
            gar: GarKind::MultiKrum,
            f: 8,
            transport: TransportKind::Lossy { policy: LossPolicy::RandomFill },
            lossy_links: 8,
        },
        Scenario {
            name: "TF (gRPC / reliable TCP)",
            gar: GarKind::Average,
            f: 0,
            transport: TransportKind::Reliable,
            lossy_links: 8,
        },
        Scenario {
            name: "TF (lossyMPI, non-robust averaging)",
            gar: GarKind::Average,
            f: 0,
            transport: TransportKind::Lossy { policy: LossPolicy::SelectiveNan },
            lossy_links: 8,
        },
    ];
    report("Figure 8(b): 10% artificial drop rate", 0.10, &lossy, steps);
    println!(
        "expected shape: AggregaThor over the lossy transport reaches 30% accuracy several times \
         (paper: >6x) faster than TF over TCP, whose congestion control collapses under loss; \
         non-robust averaging over the lossy transport fails to converge cleanly."
    );
}
