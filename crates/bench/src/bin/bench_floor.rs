//! `bench_floor` — the perf-trajectory regression gate.
//!
//! Parses the **committed** repo-root `BENCH_*.json` files (the perf
//! trajectory each kernel PR records) and fails when any recorded speedup
//! field has dropped below its declared floor — or has *disappeared* from
//! its file, which would otherwise turn the gate into a silent no-op. The
//! committed files only change when a PR regenerates and commits new
//! numbers, so this check makes it impossible to land a kernel regression
//! silently: whoever commits a BENCH file with a speedup under the floor
//! sees CI go red and must either fix the kernel or consciously lower the
//! floor in `agg_bench::floor::FLOORS` — a reviewable, greppable act.
//!
//! All parsing, extraction and floor logic lives in [`agg_bench::floor`]
//! so the gate itself is regression-tested
//! (`crates/bench/tests/bench_floor_guard.rs`); this binary only handles
//! the CLI and the exit code.
//!
//! Usage: `bench_floor [--root <dir>]` (default `.`, the repo root).

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = String::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().expect("--root requires a path"),
            other => {
                eprintln!("bench_floor: unknown argument '{other}' (supported: --root <dir>)");
                return ExitCode::from(2);
            }
        }
    }

    let report = match agg_bench::floor::check_floors(Path::new(&root)) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("bench_floor: {message}");
            return ExitCode::FAILURE;
        }
    };
    for line in &report.held {
        println!("ok   {line}");
    }
    for line in &report.violations {
        println!("FAIL {line}");
    }
    for line in &report.unguarded {
        println!("note {line}");
    }
    println!(
        "bench_floor: {} floors hold, {} violations",
        report.held.len(),
        report.violations.len()
    );
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
