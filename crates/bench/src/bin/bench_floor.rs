//! `bench_floor` — the perf-trajectory regression gate.
//!
//! Parses the **committed** repo-root `BENCH_*.json` files (the perf
//! trajectory each kernel PR records) and fails when any recorded speedup
//! field has dropped below its declared floor. The committed files only
//! change when a PR regenerates and commits new numbers, so this check
//! makes it impossible to land a kernel regression silently: whoever
//! commits a BENCH file with a speedup under the floor sees CI go red and
//! must either fix the kernel or consciously lower the floor in this file —
//! a reviewable, greppable act.
//!
//! Floors are intentionally set below the committed values (~15–20% slack
//! for machine-class variation between regenerations) except for the
//! acceptance-anchored entries, which encode hard promises the repo has
//! made: the selection-network order-statistic kernels stay ≥3× over the
//! frozen scalar reference at d = 100k, and the coordinate-wise rules never
//! again regress under sharding (the S ∈ {2, 4, 8} median floor sits at
//! parity minus noise).
//!
//! Usage: `bench_floor [--root <dir>]` (default `.`, the repo root).

use serde::Value;
use std::process::ExitCode;

/// Every floor: (file, label, minimum recorded speedup). Labels are the
/// stable coordinates of a speedup field inside its file — see the
/// extractors below.
const FLOORS: &[(&str, &str, f64)] = &[
    // BENCH_gar.json — arena kernels vs the frozen pre-arena reference
    // (`reference_ns / arena_ns`).
    ("BENCH_gar.json", "average@d1000", 0.90),
    ("BENCH_gar.json", "average@d10000", 0.90),
    ("BENCH_gar.json", "average@d100000", 0.90),
    ("BENCH_gar.json", "median@d1000", 4.0),
    ("BENCH_gar.json", "median@d10000", 4.0),
    // Acceptance anchor (PR 5): ≥3× over the PR-4 quickselect kernels,
    // which tracked the reference within a few percent at d = 100k.
    ("BENCH_gar.json", "median@d100000", 3.0),
    ("BENCH_gar.json", "trimmed-mean@d1000", 6.0),
    ("BENCH_gar.json", "trimmed-mean@d10000", 5.5),
    ("BENCH_gar.json", "trimmed-mean@d100000", 4.5),
    ("BENCH_gar.json", "krum@d1000", 1.6),
    ("BENCH_gar.json", "krum@d10000", 1.6),
    ("BENCH_gar.json", "krum@d100000", 1.6),
    ("BENCH_gar.json", "multi-krum@d1000", 1.6),
    ("BENCH_gar.json", "multi-krum@d10000", 1.9),
    ("BENCH_gar.json", "multi-krum@d100000", 2.1),
    ("BENCH_gar.json", "bulyan@d1000", 3.3),
    ("BENCH_gar.json", "bulyan@d10000", 3.3),
    ("BENCH_gar.json", "bulyan@d100000", 3.3),
    // BENCH_shard.json — sharded vs unsharded per shard count
    // (`unsharded_ns / sharded_ns`).
    ("BENCH_shard.json", "multi-krum@S1", 1.3),
    ("BENCH_shard.json", "multi-krum@S2", 1.3),
    ("BENCH_shard.json", "multi-krum@S4", 1.3),
    ("BENCH_shard.json", "multi-krum@S8", 1.3),
    ("BENCH_shard.json", "krum@S1", 1.3),
    ("BENCH_shard.json", "krum@S2", 1.3),
    ("BENCH_shard.json", "krum@S4", 1.3),
    ("BENCH_shard.json", "krum@S8", 1.3),
    ("BENCH_shard.json", "bulyan@S1", 1.0),
    ("BENCH_shard.json", "bulyan@S2", 1.0),
    ("BENCH_shard.json", "bulyan@S4", 1.0),
    ("BENCH_shard.json", "bulyan@S8", 1.0),
    // Acceptance anchor (PR 5): coordinate-wise rules never regress under
    // sharding again (the recorded fix was 0.95 → 1.00).
    ("BENCH_shard.json", "median@S1", 0.98),
    ("BENCH_shard.json", "median@S2", 0.98),
    ("BENCH_shard.json", "median@S4", 0.98),
    ("BENCH_shard.json", "median@S8", 0.98),
    ("BENCH_shard.json", "trimmed-mean@S1", 0.98),
    ("BENCH_shard.json", "trimmed-mean@S2", 0.98),
    ("BENCH_shard.json", "trimmed-mean@S4", 0.98),
    ("BENCH_shard.json", "trimmed-mean@S8", 0.98),
    // BENCH_round.json — round pipeline vs the pre-pipeline reference.
    //
    // Re-anchored in PR 8: wire format v2 seals every packet with a
    // CRC-32C and the receiver verifies before a byte reaches an arena
    // row, so the live bytes path now pays two hardware-CRC passes the
    // frozen struct-packet reference never does. The lossy-udp and codec
    // floors drop accordingly — a conscious trade of ~1.5 ms/round at
    // n = 19, d = 100k for end-to-end integrity; the pipeline must still
    // beat the (checksum-free) reference outright.
    ("BENCH_round.json", "tcp:average", 1.3),
    ("BENCH_round.json", "tcp:average:wire", 2.2),
    ("BENCH_round.json", "tcp:multi-krum", 1.0),
    ("BENCH_round.json", "tcp:multi-krum:wire", 2.1),
    ("BENCH_round.json", "lossy-udp:average", 1.0),
    ("BENCH_round.json", "lossy-udp:average:wire", 1.05),
    ("BENCH_round.json", "lossy-udp:multi-krum", 1.05),
    ("BENCH_round.json", "lossy-udp:multi-krum:wire", 1.15),
    ("BENCH_round.json", "codec", 5.0),
    // BENCH_round.json streaming arms — the event-driven round engine vs
    // the pre-pipeline reference. The full-streaming arm is pinned
    // bit-identical to the batch kernels, so on one core it can only match
    // them (its floor guards against the event plumbing adding real cost);
    // the quorum arm is where the wall-clock win lives.
    ("BENCH_round.json", "tcp:average:streaming", 1.6),
    ("BENCH_round.json", "tcp:multi-krum:streaming", 0.95),
    ("BENCH_round.json", "lossy-udp:average:streaming", 0.9),
    ("BENCH_round.json", "lossy-udp:multi-krum:streaming", 0.9),
    // Acceptance anchor (PR 6): the n − f quorum round beats the seed's
    // synchronous reference by ≥1.8× on tcp multi-krum at the paper's
    // deployment size (n = 19, f = 4, d = 100k).
    ("BENCH_round.json", "tcp:average:quorum", 1.9),
    ("BENCH_round.json", "tcp:multi-krum:quorum", 1.8),
    ("BENCH_round.json", "lossy-udp:average:quorum", 1.15),
    ("BENCH_round.json", "lossy-udp:multi-krum:quorum", 1.1),
    // Acceptance anchor (PR 7): the elastic-membership machinery — per-round
    // epoch restamp, receiver fence checks and fenced-row compaction — costs
    // at most ~5% of a static pipeline round (`pipeline_ns / churn_ns`).
    ("BENCH_round.json", "tcp:average:churn", 0.95),
    ("BENCH_round.json", "tcp:multi-krum:churn", 0.95),
    ("BENCH_round.json", "lossy-udp:average:churn", 0.95),
    ("BENCH_round.json", "lossy-udp:multi-krum:churn", 0.95),
    // Acceptance anchor (PR 8): the chaos machinery — CRC-32C verification,
    // the moderate seeded wire-fault plan on every link, and the bounded
    // NACK/retransmit recovery protocol — together cost at most ~5% of a
    // static pipeline round (`pipeline_ns / chaos_ns`). On tcp the chaos
    // hooks are no-ops, so those cells gate the hook plumbing alone.
    ("BENCH_round.json", "tcp:average:chaos", 0.95),
    ("BENCH_round.json", "tcp:multi-krum:chaos", 0.95),
    ("BENCH_round.json", "lossy-udp:average:chaos", 0.95),
    ("BENCH_round.json", "lossy-udp:multi-krum:chaos", 0.95),
];

/// A speedup extracted from a committed bench file.
struct Recorded {
    file: &'static str,
    label: String,
    speedup: f64,
}

fn as_f64(value: &Value) -> Option<f64> {
    match value {
        Value::F64(v) => Some(*v),
        Value::I64(v) => Some(*v as f64),
        Value::U64(v) => Some(*v as f64),
        _ => None,
    }
}

fn field_str(value: &Value, key: &str) -> String {
    match value.get_field(key) {
        Ok(Value::Str(s)) => s.clone(),
        Ok(other) => as_f64(other).map(|v| format!("{v}")).unwrap_or_default(),
        Err(_) => String::new(),
    }
}

fn field_f64(value: &Value, key: &str) -> Option<f64> {
    value.get_field(key).ok().and_then(as_f64)
}

fn seq<'v>(value: &'v Value, key: &str) -> Vec<&'v Value> {
    match value.get_field(key) {
        Ok(Value::Seq(items)) => items.iter().collect(),
        _ => Vec::new(),
    }
}

/// `BENCH_gar.json`: one `{rule, d, speedup}` per cell.
fn extract_gar(doc: &Value, out: &mut Vec<Recorded>) {
    for cell in seq(doc, "results") {
        let rule = field_str(cell, "rule");
        let d = field_str(cell, "d");
        if let Some(speedup) = field_f64(cell, "speedup") {
            out.push(Recorded { file: "BENCH_gar.json", label: format!("{rule}@d{d}"), speedup });
        }
    }
}

/// `BENCH_shard.json`: `{rule, sharded: [{shards, speedup}]}` per rule.
fn extract_shard(doc: &Value, out: &mut Vec<Recorded>) {
    for row in seq(doc, "results") {
        let rule = field_str(row, "rule");
        for arm in seq(row, "sharded") {
            let shards = field_str(arm, "shards");
            if let Some(speedup) = field_f64(arm, "speedup") {
                out.push(Recorded {
                    file: "BENCH_shard.json",
                    label: format!("{rule}@S{shards}"),
                    speedup,
                });
            }
        }
    }
}

/// `BENCH_round.json`: `{transport, rule, speedup, wire_speedup}` per cell
/// plus the one codec comparison.
fn extract_round(doc: &Value, out: &mut Vec<Recorded>) {
    for cell in seq(doc, "results") {
        let transport = field_str(cell, "transport");
        let rule = field_str(cell, "rule");
        if let Some(speedup) = field_f64(cell, "speedup") {
            out.push(Recorded {
                file: "BENCH_round.json",
                label: format!("{transport}:{rule}"),
                speedup,
            });
        }
        if let Some(speedup) = field_f64(cell, "wire_speedup") {
            out.push(Recorded {
                file: "BENCH_round.json",
                label: format!("{transport}:{rule}:wire"),
                speedup,
            });
        }
        if let Some(speedup) = field_f64(cell, "streaming_speedup") {
            out.push(Recorded {
                file: "BENCH_round.json",
                label: format!("{transport}:{rule}:streaming"),
                speedup,
            });
        }
        if let Some(speedup) = field_f64(cell, "quorum_speedup") {
            out.push(Recorded {
                file: "BENCH_round.json",
                label: format!("{transport}:{rule}:quorum"),
                speedup,
            });
        }
        if let Some(speedup) = field_f64(cell, "churn_speedup") {
            out.push(Recorded {
                file: "BENCH_round.json",
                label: format!("{transport}:{rule}:churn"),
                speedup,
            });
        }
        if let Some(speedup) = field_f64(cell, "chaos_speedup") {
            out.push(Recorded {
                file: "BENCH_round.json",
                label: format!("{transport}:{rule}:chaos"),
                speedup,
            });
        }
    }
    if let Ok(codec) = doc.get_field("codec") {
        if let Some(speedup) = field_f64(codec, "speedup") {
            out.push(Recorded { file: "BENCH_round.json", label: "codec".into(), speedup });
        }
    }
}

fn main() -> ExitCode {
    let mut root = String::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().expect("--root requires a path"),
            other => {
                eprintln!("bench_floor: unknown argument '{other}' (supported: --root <dir>)");
                return ExitCode::from(2);
            }
        }
    }

    type Extractor = fn(&Value, &mut Vec<Recorded>);
    let files: [(&str, Extractor); 3] = [
        ("BENCH_gar.json", extract_gar),
        ("BENCH_shard.json", extract_shard),
        ("BENCH_round.json", extract_round),
    ];
    let mut recorded: Vec<Recorded> = Vec::new();
    for (file, extract) in files {
        let path = format!("{root}/{file}");
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                // The trajectory files are committed; a missing one means
                // the gate is not checking what it claims to check.
                eprintln!("bench_floor: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let doc: Value = match serde_json::from_str(&text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("bench_floor: cannot parse {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        extract(&doc, &mut recorded);
    }

    let mut failures = 0usize;
    let mut checked = 0usize;
    for (file, label, floor) in FLOORS {
        match recorded.iter().find(|r| r.file == *file && r.label == *label) {
            Some(r) if r.speedup >= *floor => {
                checked += 1;
                println!("ok   {file} {label}: {:.2} >= {floor:.2}", r.speedup);
            }
            Some(r) => {
                failures += 1;
                println!(
                    "FAIL {file} {label}: recorded speedup {:.2} is below the floor {floor:.2}",
                    r.speedup
                );
            }
            None => {
                // A floor whose field vanished is a silent hole in the gate.
                failures += 1;
                println!("FAIL {file} {label}: no such speedup field in the committed file");
            }
        }
    }
    // Speedups with no declared floor are listed so new bench cells are
    // visibly unguarded until someone declares a floor for them.
    for r in &recorded {
        if !FLOORS.iter().any(|(file, label, _)| r.file == *file && r.label == *label) {
            println!("note {} {}: {:.2} (no declared floor)", r.file, r.label, r.speedup);
        }
    }

    println!("bench_floor: {checked} floors hold, {failures} violations");
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
