//! The perf-trajectory floor gate, as a library.
//!
//! `bench_floor` (the CI binary) is a thin wrapper around
//! [`check_floors`]: parsing the committed repo-root `BENCH_*.json` files
//! and comparing every recorded speedup against its declared floor lives
//! here so the gate itself is testable — in particular the regression the
//! guard exists to prevent: a floored key that *disappears* from a
//! regenerated file must count as a violation, never as a silent pass
//! (`crates/bench/tests/bench_floor_guard.rs` pins this with doctored
//! files).

use serde::Value;
use std::path::Path;

/// Every floor: (file, label, minimum recorded speedup). Labels are the
/// stable coordinates of a speedup field inside its file — see the
/// extractors below.
///
/// Floors are intentionally set below the committed values (~15–20% slack
/// for machine-class variation between regenerations) except for the
/// acceptance-anchored entries, which encode hard promises the repo has
/// made.
pub const FLOORS: &[(&str, &str, f64)] = &[
    // BENCH_gar.json — arena kernels vs the frozen pre-arena reference
    // (`reference_ns / arena_ns`).
    ("BENCH_gar.json", "average@d1000", 0.90),
    ("BENCH_gar.json", "average@d10000", 0.90),
    ("BENCH_gar.json", "average@d100000", 0.90),
    ("BENCH_gar.json", "median@d1000", 4.0),
    ("BENCH_gar.json", "median@d10000", 4.0),
    // Acceptance anchor (PR 5): ≥3× over the PR-4 quickselect kernels,
    // which tracked the reference within a few percent at d = 100k.
    ("BENCH_gar.json", "median@d100000", 3.0),
    ("BENCH_gar.json", "trimmed-mean@d1000", 6.0),
    ("BENCH_gar.json", "trimmed-mean@d10000", 5.5),
    ("BENCH_gar.json", "trimmed-mean@d100000", 4.5),
    ("BENCH_gar.json", "krum@d1000", 1.6),
    ("BENCH_gar.json", "krum@d10000", 1.6),
    ("BENCH_gar.json", "krum@d100000", 1.6),
    ("BENCH_gar.json", "multi-krum@d1000", 1.6),
    ("BENCH_gar.json", "multi-krum@d10000", 1.9),
    ("BENCH_gar.json", "multi-krum@d100000", 2.1),
    ("BENCH_gar.json", "bulyan@d1000", 3.3),
    ("BENCH_gar.json", "bulyan@d10000", 3.3),
    ("BENCH_gar.json", "bulyan@d100000", 3.3),
    // BENCH_shard.json — sharded vs unsharded per shard count
    // (`unsharded_ns / sharded_ns`).
    ("BENCH_shard.json", "multi-krum@S1", 1.3),
    ("BENCH_shard.json", "multi-krum@S2", 1.3),
    ("BENCH_shard.json", "multi-krum@S4", 1.3),
    ("BENCH_shard.json", "multi-krum@S8", 1.3),
    ("BENCH_shard.json", "krum@S1", 1.3),
    ("BENCH_shard.json", "krum@S2", 1.3),
    ("BENCH_shard.json", "krum@S4", 1.3),
    ("BENCH_shard.json", "krum@S8", 1.3),
    ("BENCH_shard.json", "bulyan@S1", 1.0),
    ("BENCH_shard.json", "bulyan@S2", 1.0),
    ("BENCH_shard.json", "bulyan@S4", 1.0),
    ("BENCH_shard.json", "bulyan@S8", 1.0),
    // Acceptance anchor (PR 5): coordinate-wise rules never regress under
    // sharding again (the recorded fix was 0.95 → 1.00).
    ("BENCH_shard.json", "median@S1", 0.98),
    ("BENCH_shard.json", "median@S2", 0.98),
    ("BENCH_shard.json", "median@S4", 0.98),
    ("BENCH_shard.json", "median@S8", 0.98),
    ("BENCH_shard.json", "trimmed-mean@S1", 0.98),
    ("BENCH_shard.json", "trimmed-mean@S2", 0.98),
    ("BENCH_shard.json", "trimmed-mean@S4", 0.98),
    ("BENCH_shard.json", "trimmed-mean@S8", 0.98),
    // BENCH_round.json — round pipeline vs the pre-pipeline reference.
    //
    // Re-anchored in PR 8: wire format v2 seals every packet with a
    // CRC-32C and the receiver verifies before a byte reaches an arena
    // row, so the live bytes path now pays two hardware-CRC passes the
    // frozen struct-packet reference never does. The lossy-udp and codec
    // floors drop accordingly — a conscious trade of ~1.5 ms/round at
    // n = 19, d = 100k for end-to-end integrity; the pipeline must still
    // beat the (checksum-free) reference outright.
    ("BENCH_round.json", "tcp:average", 1.3),
    ("BENCH_round.json", "tcp:average:wire", 2.2),
    ("BENCH_round.json", "tcp:multi-krum", 1.0),
    ("BENCH_round.json", "tcp:multi-krum:wire", 2.1),
    ("BENCH_round.json", "lossy-udp:average", 1.0),
    ("BENCH_round.json", "lossy-udp:average:wire", 1.05),
    ("BENCH_round.json", "lossy-udp:multi-krum", 1.05),
    ("BENCH_round.json", "lossy-udp:multi-krum:wire", 1.15),
    ("BENCH_round.json", "codec", 5.0),
    // BENCH_round.json streaming arms — the event-driven round engine vs
    // the pre-pipeline reference. The full-streaming arm is pinned
    // bit-identical to the batch kernels, so on one core it can only match
    // them (its floor guards against the event plumbing adding real cost);
    // the quorum arm is where the wall-clock win lives.
    ("BENCH_round.json", "tcp:average:streaming", 1.6),
    ("BENCH_round.json", "tcp:multi-krum:streaming", 0.95),
    ("BENCH_round.json", "lossy-udp:average:streaming", 0.9),
    ("BENCH_round.json", "lossy-udp:multi-krum:streaming", 0.9),
    // Acceptance anchor (PR 6): the n − f quorum round beats the seed's
    // synchronous reference by ≥1.8× on tcp multi-krum at the paper's
    // deployment size (n = 19, f = 4, d = 100k).
    ("BENCH_round.json", "tcp:average:quorum", 1.9),
    ("BENCH_round.json", "tcp:multi-krum:quorum", 1.8),
    ("BENCH_round.json", "lossy-udp:average:quorum", 1.15),
    ("BENCH_round.json", "lossy-udp:multi-krum:quorum", 1.1),
    // Acceptance anchor (PR 7): the elastic-membership machinery — per-round
    // epoch restamp, receiver fence checks and fenced-row compaction — costs
    // at most ~5% of a static pipeline round (`pipeline_ns / churn_ns`).
    ("BENCH_round.json", "tcp:average:churn", 0.95),
    ("BENCH_round.json", "tcp:multi-krum:churn", 0.95),
    ("BENCH_round.json", "lossy-udp:average:churn", 0.95),
    ("BENCH_round.json", "lossy-udp:multi-krum:churn", 0.95),
    // Acceptance anchor (PR 8): the chaos machinery — CRC-32C verification,
    // the moderate seeded wire-fault plan on every link, and the bounded
    // NACK/retransmit recovery protocol — together cost at most ~5% of a
    // static pipeline round (`pipeline_ns / chaos_ns`). On tcp the chaos
    // hooks are no-ops, so those cells gate the hook plumbing alone.
    ("BENCH_round.json", "tcp:average:chaos", 0.95),
    ("BENCH_round.json", "tcp:multi-krum:chaos", 0.95),
    ("BENCH_round.json", "lossy-udp:average:chaos", 0.95),
    ("BENCH_round.json", "lossy-udp:multi-krum:chaos", 0.95),
    // Acceptance anchor (PR 10): the reputation ledger — the affinity
    // collusion sketch over every delivered row, the six-stream evidence
    // fold into the decayed suspicion scores, and the quarantine-candidate
    // scan — costs at most ~5% of a static pipeline round
    // (`pipeline_ns / reputation_ns`).
    ("BENCH_round.json", "tcp:average:reputation", 0.95),
    ("BENCH_round.json", "tcp:multi-krum:reputation", 0.95),
    ("BENCH_round.json", "lossy-udp:average:reputation", 0.95),
    ("BENCH_round.json", "lossy-udp:multi-krum:reputation", 0.95),
    // BENCH_tree.json — the two-level group-wise tier vs the flat GAR at
    // the same n (`flat_ns / tree_ns`), Multi-Krum at both levels, g = 32.
    // Acceptance anchor (PR 9): the tree changes the asymptotics
    // (O(n²d) → O(n·g·d + (n/g)²d)), so from n = 256 the composed round is
    // ≥3× the flat one on one box, growing with n.
    ("BENCH_tree.json", "multi-krum@n128", 1.5),
    ("BENCH_tree.json", "multi-krum@n256", 3.0),
    ("BENCH_tree.json", "multi-krum@n512", 3.0),
    ("BENCH_tree.json", "multi-krum@n1024", 3.0),
];

/// A speedup extracted from a committed bench file.
pub struct Recorded {
    /// The `BENCH_*.json` file the value came from.
    pub file: &'static str,
    /// The stable coordinate of the speedup field inside its file.
    pub label: String,
    /// The recorded speedup.
    pub speedup: f64,
}

/// An extractor turns one parsed `BENCH_*.json` document into labelled
/// speedups.
pub type Extractor = fn(&Value, &mut Vec<Recorded>);

/// Every trajectory file the gate knows, with its extractor.
pub const FILES: &[(&str, Extractor)] = &[
    ("BENCH_gar.json", extract_gar),
    ("BENCH_shard.json", extract_shard),
    ("BENCH_round.json", extract_round),
    ("BENCH_tree.json", extract_tree),
];

fn as_f64(value: &Value) -> Option<f64> {
    match value {
        Value::F64(v) => Some(*v),
        Value::I64(v) => Some(*v as f64),
        Value::U64(v) => Some(*v as f64),
        _ => None,
    }
}

fn field_str(value: &Value, key: &str) -> String {
    match value.get_field(key) {
        Ok(Value::Str(s)) => s.clone(),
        Ok(other) => as_f64(other).map(|v| format!("{v}")).unwrap_or_default(),
        Err(_) => String::new(),
    }
}

fn field_f64(value: &Value, key: &str) -> Option<f64> {
    value.get_field(key).ok().and_then(as_f64)
}

fn seq<'v>(value: &'v Value, key: &str) -> Vec<&'v Value> {
    match value.get_field(key) {
        Ok(Value::Seq(items)) => items.iter().collect(),
        _ => Vec::new(),
    }
}

/// `BENCH_gar.json`: one `{rule, d, speedup}` per cell.
fn extract_gar(doc: &Value, out: &mut Vec<Recorded>) {
    for cell in seq(doc, "results") {
        let rule = field_str(cell, "rule");
        let d = field_str(cell, "d");
        if let Some(speedup) = field_f64(cell, "speedup") {
            out.push(Recorded { file: "BENCH_gar.json", label: format!("{rule}@d{d}"), speedup });
        }
    }
}

/// `BENCH_shard.json`: `{rule, sharded: [{shards, speedup}]}` per rule.
fn extract_shard(doc: &Value, out: &mut Vec<Recorded>) {
    for row in seq(doc, "results") {
        let rule = field_str(row, "rule");
        for arm in seq(row, "sharded") {
            let shards = field_str(arm, "shards");
            if let Some(speedup) = field_f64(arm, "speedup") {
                out.push(Recorded {
                    file: "BENCH_shard.json",
                    label: format!("{rule}@S{shards}"),
                    speedup,
                });
            }
        }
    }
}

/// `BENCH_round.json`: `{transport, rule, speedup, wire_speedup, ...}` per
/// cell plus the one codec comparison.
fn extract_round(doc: &Value, out: &mut Vec<Recorded>) {
    const ARMS: &[(&str, &str)] = &[
        ("speedup", ""),
        ("wire_speedup", ":wire"),
        ("streaming_speedup", ":streaming"),
        ("quorum_speedup", ":quorum"),
        ("churn_speedup", ":churn"),
        ("chaos_speedup", ":chaos"),
        ("reputation_speedup", ":reputation"),
    ];
    for cell in seq(doc, "results") {
        let transport = field_str(cell, "transport");
        let rule = field_str(cell, "rule");
        for (field, suffix) in ARMS {
            if let Some(speedup) = field_f64(cell, field) {
                out.push(Recorded {
                    file: "BENCH_round.json",
                    label: format!("{transport}:{rule}{suffix}"),
                    speedup,
                });
            }
        }
    }
    if let Ok(codec) = doc.get_field("codec") {
        if let Some(speedup) = field_f64(codec, "speedup") {
            out.push(Recorded { file: "BENCH_round.json", label: "codec".into(), speedup });
        }
    }
}

/// `BENCH_tree.json`: one `{n, flat_ns, tree_ns, speedup}` per scale point,
/// with the rule named once at the top level.
fn extract_tree(doc: &Value, out: &mut Vec<Recorded>) {
    let rule = field_str(doc, "rule");
    for cell in seq(doc, "results") {
        let n = field_str(cell, "n");
        if let Some(speedup) = field_f64(cell, "speedup") {
            out.push(Recorded { file: "BENCH_tree.json", label: format!("{rule}@n{n}"), speedup });
        }
    }
}

/// The outcome of one gate run, ready to print.
#[derive(Debug)]
pub struct FloorReport {
    /// One `"<file> <label>: <speedup> >= <floor>"` line per floor that held.
    pub held: Vec<String>,
    /// One line per violation — a recorded speedup below its floor, or a
    /// floored key missing from the committed file (a silent hole in the
    /// gate, counted as a failure since PR 9).
    pub violations: Vec<String>,
    /// Recorded speedups with no declared floor, listed so new bench cells
    /// are visibly unguarded until someone declares a floor for them.
    pub unguarded: Vec<String>,
}

impl FloorReport {
    /// True when every declared floor held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks `floors` against the trajectory files under `root`. Only the
/// files named by at least one floor are read; a file that cannot be read
/// or parsed is an error (the trajectory files are committed — a missing
/// one means the gate is not checking what it claims to check).
///
/// # Errors
///
/// Returns a human-readable message when a needed file is unreadable or
/// not valid JSON.
pub fn check_floors_against(
    root: &Path,
    floors: &[(&str, &str, f64)],
) -> Result<FloorReport, String> {
    let mut recorded: Vec<Recorded> = Vec::new();
    for (file, extract) in FILES {
        if !floors.iter().any(|(f, _, _)| f == file) {
            continue;
        }
        let path = root.join(file);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let doc: Value = serde_json::from_str(&text)
            .map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
        extract(&doc, &mut recorded);
    }

    let mut report =
        FloorReport { held: Vec::new(), violations: Vec::new(), unguarded: Vec::new() };
    for (file, label, floor) in floors {
        match recorded.iter().find(|r| r.file == *file && r.label == *label) {
            Some(r) if r.speedup >= *floor => {
                report.held.push(format!("{file} {label}: {:.2} >= {floor:.2}", r.speedup));
            }
            Some(r) => {
                report.violations.push(format!(
                    "{file} {label}: recorded speedup {:.2} is below the floor {floor:.2}",
                    r.speedup
                ));
            }
            None => {
                // A floor whose field vanished is a silent hole in the gate.
                report
                    .violations
                    .push(format!("{file} {label}: no such speedup field in the committed file"));
            }
        }
    }
    for r in &recorded {
        if !floors.iter().any(|(file, label, _)| r.file == *file && r.label == *label) {
            report
                .unguarded
                .push(format!("{} {}: {:.2} (no declared floor)", r.file, r.label, r.speedup));
        }
    }
    Ok(report)
}

/// [`check_floors_against`] with the full declared [`FLOORS`] list — what
/// the `bench_floor` binary runs.
///
/// # Errors
///
/// Same conditions as [`check_floors_against`].
pub fn check_floors(root: &Path) -> Result<FloorReport, String> {
    check_floors_against(root, FLOORS)
}
