//! # agg-bench — experiment harness
//!
//! Shared configuration builders for the experiment binaries that reproduce
//! every table and figure of the paper's evaluation section. One binary per
//! artefact:
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `table1` | Table 1 — CNN model parameters |
//! | `fig3` | Figure 3 — overhead in a non-Byzantine environment |
//! | `fig4` | Figure 4 — latency breakdown |
//! | `fig5` | Figure 5 — throughput vs number of workers (CNN and ResNet50) |
//! | `fig6` | Figure 6 — impact of `f` on convergence |
//! | `fig7` | Figure 7 — impact of malformed input on convergence |
//! | `fig8` | Figure 8 — impact of dropped packets on convergence |
//! | `attack_strong` | §4.3 — dimensional-leeway attack: weak vs strong resilience |
//!
//! Run any of them with `cargo run --release -p agg-bench --bin <name>`.
//! Criterion micro-benchmarks of the GAR kernels (the §4.2 cost analysis)
//! live under `benches/`.

pub mod floor;

use agg_core::{GarConfig, GarKind};
use agg_nn::optim::OptimizerKind;
use agg_nn::schedule::LearningRate;
use agg_ps::{CostModel, ExperimentKind, RunnerConfig, VirtualModelCost};

/// The proxy experiment used by every convergence figure: a 32-feature,
/// 10-class Gaussian-blob task learned by a one-hidden-layer MLP. Small
/// enough that a full sweep runs in seconds, statistically rich enough that
/// every comparative behaviour of the paper shows up.
pub fn proxy_experiment() -> ExperimentKind {
    ExperimentKind::MlpBlobs { input_dim: 32, hidden: 64, classes: 10, samples: 4000 }
}

/// Baseline runner configuration shared by the figure experiments: 19
/// workers (the paper's deployment), RMSProp, fixed learning rate, and a cost
/// model that charges time as if the model were the paper's 1.75 M-parameter
/// CNN (see DESIGN.md §6).
pub fn paper_runner(gar: GarKind, f: usize, batch_size: usize, max_steps: u64) -> RunnerConfig {
    RunnerConfig {
        experiment: proxy_experiment(),
        gar: GarConfig::new(gar, f),
        workers: 19,
        batch_size,
        max_steps,
        eval_every: (max_steps / 20).max(1),
        eval_samples: 512,
        optimizer: OptimizerKind::RmsProp,
        learning_rate: LearningRate::Fixed { rate: 5e-3 },
        cost: CostModel::paper_like().with_virtual_model(VirtualModelCost::paper_cnn()),
        seed: 42,
        ..RunnerConfig::quick_default()
    }
}

/// Formats an optional time-to-accuracy as a table cell.
pub fn format_time(value: Option<f64>) -> String {
    match value {
        Some(t) => format!("{t:.1}"),
        None => "never".to_string(),
    }
}

/// Relative overhead of `time` versus `baseline` as a percentage string
/// ("+19.0%"), or "n/a" when either side is missing.
pub fn format_overhead(time: Option<f64>, baseline: Option<f64>) -> String {
    match (time, baseline) {
        (Some(t), Some(b)) if b > 0.0 => format!("{:+.1}%", 100.0 * (t - b) / b),
        _ => "n/a".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_runner_is_valid_for_every_gar() {
        for (kind, f) in [
            (GarKind::Average, 0),
            (GarKind::Median, 4),
            (GarKind::MultiKrum, 4),
            (GarKind::Bulyan, 4),
        ] {
            let config = paper_runner(kind, f, 25, 10);
            assert!(config.validate().is_ok(), "{kind:?} config invalid");
            assert_eq!(config.workers, 19);
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(format_time(Some(12.34)), "12.3");
        assert_eq!(format_time(None), "never");
        assert_eq!(format_overhead(Some(119.0), Some(100.0)), "+19.0%");
        assert_eq!(format_overhead(None, Some(1.0)), "n/a");
        assert_eq!(format_overhead(Some(1.0), None), "n/a");
    }
}
