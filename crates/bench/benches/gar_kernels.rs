//! Criterion micro-benchmarks of the gradient aggregation kernels.
//!
//! These back the paper's §4.2 cost analysis: Multi-Krum and Bulyan are
//! O(n²·d) per round (the same asymptotic cost as averaging's O(n·d) once
//! d ≫ n), with Bulyan a constant factor above Multi-Krum. The benches sweep
//! both the gradient dimension `d` and the worker count `n` so the scaling
//! claims can be checked from the Criterion report.

use agg_core::{
    reference, Average, Bulyan, CoordinateMedian, Gar, GarKind, Krum, MultiKrum, TrimmedMean,
};
use agg_tensor::rng::{gaussian_vector, seeded_rng};
use agg_tensor::{GradientBatch, Vector};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn gradients(n: usize, d: usize, seed: u64) -> Vec<Vector> {
    let mut rng = seeded_rng(seed);
    (0..n).map(|_| gaussian_vector(&mut rng, d, 0.0, 1.0)).collect()
}

/// Sweep the gradient dimension at the paper's worker count (n = 19, f = 4).
fn bench_dimension_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("gar_dimension_sweep_n19_f4");
    group.sample_size(10);
    for &d in &[1_000usize, 10_000, 100_000] {
        let gs = gradients(19, d, 1);
        let rules: Vec<(&str, Box<dyn Gar>)> = vec![
            ("average", Box::new(Average::new())),
            ("median", Box::new(CoordinateMedian::new(4))),
            ("trimmed-mean", Box::new(TrimmedMean::new(4))),
            ("krum", Box::new(Krum::new(4))),
            ("multi-krum", Box::new(MultiKrum::new(4).unwrap())),
            ("bulyan", Box::new(Bulyan::new(4).unwrap())),
        ];
        for (name, gar) in rules {
            group.bench_with_input(BenchmarkId::new(name, d), &gs, |b, gs| {
                b.iter(|| gar.aggregate(black_box(gs)).unwrap())
            });
        }
    }
    group.finish();
}

/// Sweep the worker count at a fixed dimension (the n² term).
fn bench_worker_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("gar_worker_sweep_d20000");
    group.sample_size(10);
    for &n in &[7usize, 11, 19, 27] {
        let gs = gradients(n, 20_000, 2);
        let f = 1;
        let mk = MultiKrum::new(f).unwrap();
        let bulyan = Bulyan::new(f).unwrap();
        let avg = Average::new();
        group.bench_with_input(BenchmarkId::new("multi-krum-f1", n), &gs, |b, gs| {
            b.iter(|| mk.aggregate(black_box(gs)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("bulyan-f1", n), &gs, |b, gs| {
            b.iter(|| bulyan.aggregate(black_box(gs)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("average", n), &gs, |b, gs| {
            b.iter(|| avg.aggregate(black_box(gs)).unwrap())
        });
    }
    group.finish();
}

/// The ablation the paper calls out: higher declared f means fewer Multi-Krum
/// neighbours and fewer Bulyan iterations, hence *faster* aggregation.
fn bench_f_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("gar_f_ablation_n19_d20000");
    group.sample_size(10);
    let gs = gradients(19, 20_000, 3);
    for &f in &[1usize, 2, 4] {
        let mk = MultiKrum::new(f).unwrap();
        group.bench_with_input(BenchmarkId::new("multi-krum", f), &gs, |b, gs| {
            b.iter(|| mk.aggregate(black_box(gs)).unwrap())
        });
        let bulyan = Bulyan::new(f).unwrap();
        group.bench_with_input(BenchmarkId::new("bulyan", f), &gs, |b, gs| {
            b.iter(|| bulyan.aggregate(black_box(gs)).unwrap())
        });
    }
    group.finish();
}

/// Arena kernels versus the frozen pre-arena reference implementations, side
/// by side: the before/after evidence for the contiguous `GradientBatch`
/// refactor (triangular distances computed once, fused phase-2, clone-free
/// averaging). The `gar_perf` binary emits the same comparison as JSON.
fn bench_arena_vs_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("gar_arena_vs_reference_n19_f4");
    group.sample_size(10);
    for &d in &[10_000usize, 100_000] {
        let gs = gradients(19, d, 4);
        let batch = GradientBatch::from_vectors(&gs).unwrap();
        let mk = MultiKrum::new(4).unwrap();
        group.bench_with_input(BenchmarkId::new("multi-krum-arena", d), &batch, |b, batch| {
            b.iter(|| mk.aggregate_batch(black_box(batch)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("multi-krum-reference", d), &gs, |b, gs| {
            b.iter(|| reference::aggregate(GarKind::MultiKrum, 4, black_box(gs)).unwrap())
        });
        let bulyan = Bulyan::new(4).unwrap();
        group.bench_with_input(BenchmarkId::new("bulyan-arena", d), &batch, |b, batch| {
            b.iter(|| bulyan.aggregate_batch(black_box(batch)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("bulyan-reference", d), &gs, |b, gs| {
            b.iter(|| reference::aggregate(GarKind::Bulyan, 4, black_box(gs)).unwrap())
        });
    }
    group.finish();
}

/// Vertical selection networks versus the scalar quickselect kernels, per
/// order-statistic reduction, across worker counts spanning the network
/// range (n = 5, 19, 31 — the cap is 32) and both cache regimes (d = 1k
/// resident, d = 100k streaming). This is the before/after evidence for the
/// branch-free lane-major sort path: the quickselect entry points are the
/// exact scalar kernels the dispatch falls back to above the cap.
fn bench_selection_networks(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection_networks");
    group.sample_size(10);
    for &n in &[5usize, 19, 31] {
        for &d in &[1_000usize, 100_000] {
            let gs = gradients(n, d, 5);
            let batch = GradientBatch::from_vectors(&gs).unwrap();
            let label = format!("n{n}-d{d}");
            group.bench_with_input(
                BenchmarkId::new("median-network", &label),
                &batch,
                |b, batch| b.iter(|| black_box(batch).coordinate_median().unwrap()),
            );
            group.bench_with_input(
                BenchmarkId::new("median-quickselect", &label),
                &batch,
                |b, batch| b.iter(|| black_box(batch).coordinate_median_quickselect().unwrap()),
            );
            let trim = (n / 5).max(1);
            group.bench_with_input(
                BenchmarkId::new("trimmed-mean-network", &label),
                &batch,
                |b, batch| b.iter(|| black_box(batch).coordinate_trimmed_mean(trim).unwrap()),
            );
            group.bench_with_input(
                BenchmarkId::new("trimmed-mean-quickselect", &label),
                &batch,
                |b, batch| {
                    b.iter(|| black_box(batch).coordinate_trimmed_mean_quickselect(trim).unwrap())
                },
            );
            let keep = n - trim;
            group.bench_with_input(
                BenchmarkId::new("mean-around-median-network", &label),
                &batch,
                |b, batch| b.iter(|| black_box(batch).mean_around_median(keep).unwrap()),
            );
            group.bench_with_input(
                BenchmarkId::new("mean-around-median-quickselect", &label),
                &batch,
                |b, batch| {
                    b.iter(|| {
                        black_box(batch).coordinate_mean_around_median_quickselect(keep).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dimension_sweep,
    bench_worker_sweep,
    bench_f_ablation,
    bench_arena_vs_reference,
    bench_selection_networks
);
criterion_main!(benches);
