//! Criterion benchmarks of the neural-network substrate: the per-worker
//! gradient computation whose cost dominates every round (Figures 3–5).

use agg_data::synthetic::{gaussian_blobs, synthetic_images, BlobConfig, ImageConfig};
use agg_nn::models;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_mlp_gradient(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_mlp_gradient");
    group.sample_size(20);
    let mut model = models::synthetic_mlp(32, &[64], 10, 0);
    let data =
        gaussian_blobs(&BlobConfig { classes: 10, dim: 32, samples: 256, ..Default::default() }, 1)
            .unwrap();
    let (batch, labels) = data.head_batch(64).unwrap();
    group.bench_function("batch64", |b| {
        b.iter(|| model.gradient(black_box(&batch), black_box(&labels)).unwrap())
    });
    group.finish();
}

fn bench_small_cnn_gradient(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_small_cnn_gradient");
    group.sample_size(10);
    let mut model = models::small_cnn(1, 4, 0);
    let data = synthetic_images(&ImageConfig::tiny(64, 4), 1).unwrap();
    let (batch, labels) = data.head_batch(16).unwrap();
    group.bench_function("batch16", |b| {
        b.iter(|| model.gradient(black_box(&batch), black_box(&labels)).unwrap())
    });
    group.finish();
}

fn bench_paper_cnn_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_paper_cnn_forward");
    group.sample_size(10);
    let mut model = models::paper_cnn(0);
    let data = synthetic_images(&ImageConfig::cifar_like(4), 1).unwrap();
    let (batch, labels) = data.head_batch(1).unwrap();
    group.bench_function("single_sample_inference", |b| {
        b.iter(|| model.evaluate_loss(black_box(&batch), black_box(&labels)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_mlp_gradient, bench_small_cnn_gradient, bench_paper_cnn_forward);
criterion_main!(benches);
