//! Criterion benchmarks of the communication layer: packetisation,
//! reassembly, the bulk codec against the legacy per-coordinate codec, and
//! the lossy-link simulation behind the Figure 8 experiments.

use agg_net::{
    GradientCodec, LinkConfig, LossPolicy, LossyTransport, Packet, ReliableTransport,
    RoundAssembler, Transport,
};
use agg_tensor::rng::{gaussian_vector, seeded_rng};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_codec");
    group.sample_size(20);
    let codec = GradientCodec::default_mtu();
    for &d in &[10_000usize, 100_000] {
        let gradient = gaussian_vector(&mut seeded_rng(1), d, 0.0, 1.0);
        group.bench_with_input(BenchmarkId::new("split", d), &gradient, |b, g| {
            b.iter(|| codec.split(0, 0, black_box(g)))
        });
        let packets = codec.split(0, 0, &gradient);
        group.bench_with_input(BenchmarkId::new("reassemble", d), &packets, |b, p| {
            b.iter(|| codec.reassemble(black_box(p), d).unwrap())
        });
    }
    group.finish();
}

/// Old vs bulk codec on the full wire leg of one gradient: split + encode +
/// decode + reassemble. The legacy arm runs the per-coordinate
/// `put_f32_le`/`get_f32_le` loops through `Vec<f32>`-payload packets and a
/// fresh `Vector`; the bulk arm runs `split_bytes` (one contiguous buffer,
/// zero-copy `Bytes` slices) + `RoundAssembler` (bitset scatter into a
/// reused row).
fn bench_codec_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_codec_bulk_vs_legacy");
    group.sample_size(20);
    let codec = GradientCodec::default_mtu();
    for &d in &[10_000usize, 100_000] {
        let gradient = gaussian_vector(&mut seeded_rng(4), d, 0.0, 1.0);
        group.bench_with_input(BenchmarkId::new("encode_decode_legacy", d), &gradient, |b, g| {
            b.iter(|| {
                let encoded: Vec<_> = codec.split(0, 0, g).iter().map(Packet::encode).collect();
                let decoded: Vec<Packet> =
                    encoded.into_iter().map(|p| Packet::decode(p).unwrap()).collect();
                codec.reassemble(black_box(&decoded), d).unwrap()
            })
        });
        let mut assembler = RoundAssembler::new(d);
        let mut row = vec![0.0f32; d];
        group.bench_with_input(BenchmarkId::new("encode_decode_bulk", d), &gradient, |b, g| {
            b.iter(|| {
                let packets = codec.split_bytes(0, 0, g.as_slice());
                assembler.assemble_into(black_box(&packets), &mut row).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_transports(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_transports");
    group.sample_size(20);
    let gradient = gaussian_vector(&mut seeded_rng(2), 100_000, 0.0, 1.0);
    let codec = GradientCodec::default_mtu();

    let mut reliable = ReliableTransport::new(LinkConfig::datacenter(), codec).unwrap();
    group.bench_function("reliable_100k", |b| {
        b.iter(|| reliable.transfer(0, 0, black_box(&gradient)).unwrap())
    });

    let mut lossy = LossyTransport::new(
        LinkConfig::datacenter().with_drop_rate(0.10),
        codec,
        LossPolicy::RandomFill,
        3,
        0,
    )
    .unwrap();
    group.bench_function("lossy_10pct_100k", |b| {
        b.iter(|| lossy.transfer(0, 0, black_box(&gradient)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_codec, bench_codec_comparison, bench_transports);
criterion_main!(benches);
