//! Per-round latency breakdown: computation + communication versus
//! aggregation time (the decomposition of Figure 4).

use serde::{Deserialize, Serialize};

/// Accumulates where the time of each synchronous round goes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    compute_comm_sec: f64,
    aggregation_sec: f64,
    rounds: u64,
}

impl LatencyBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        LatencyBreakdown::default()
    }

    /// Records one round: the time the server waited for gradients (worker
    /// computation plus the transfer) and the time it spent aggregating.
    pub fn record_round(&mut self, compute_comm_sec: f64, aggregation_sec: f64) {
        self.compute_comm_sec += compute_comm_sec.max(0.0);
        self.aggregation_sec += aggregation_sec.max(0.0);
        self.rounds += 1;
    }

    /// Total computation + communication time.
    pub fn compute_comm_sec(&self) -> f64 {
        self.compute_comm_sec
    }

    /// Total aggregation time.
    pub fn aggregation_sec(&self) -> f64 {
        self.aggregation_sec
    }

    /// Number of rounds recorded.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Mean computation + communication time per round.
    pub fn mean_compute_comm_sec(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.compute_comm_sec / self.rounds as f64
        }
    }

    /// Mean aggregation time per round.
    pub fn mean_aggregation_sec(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.aggregation_sec / self.rounds as f64
        }
    }

    /// Fraction of total round time spent in aggregation — the percentage the
    /// paper reports (35 % for Median, 27 % for Multi-Krum, 52 % for Bulyan).
    pub fn aggregation_share(&self) -> f64 {
        let total = self.compute_comm_sec + self.aggregation_sec;
        if total <= 0.0 {
            0.0
        } else {
            self.aggregation_sec / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_averages() {
        let mut b = LatencyBreakdown::new();
        b.record_round(0.4, 0.1);
        b.record_round(0.6, 0.3);
        assert_eq!(b.rounds(), 2);
        assert!((b.compute_comm_sec() - 1.0).abs() < 1e-9);
        assert!((b.aggregation_sec() - 0.4).abs() < 1e-9);
        assert!((b.mean_compute_comm_sec() - 0.5).abs() < 1e-9);
        assert!((b.mean_aggregation_sec() - 0.2).abs() < 1e-9);
        assert!((b.aggregation_share() - 0.4 / 1.4).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_is_all_zero() {
        let b = LatencyBreakdown::new();
        assert_eq!(b.aggregation_share(), 0.0);
        assert_eq!(b.mean_aggregation_sec(), 0.0);
        assert_eq!(b.mean_compute_comm_sec(), 0.0);
    }

    #[test]
    fn negative_inputs_are_clamped() {
        let mut b = LatencyBreakdown::new();
        b.record_round(-1.0, -2.0);
        assert_eq!(b.compute_comm_sec(), 0.0);
        assert_eq!(b.aggregation_sec(), 0.0);
        assert_eq!(b.rounds(), 1);
    }
}
