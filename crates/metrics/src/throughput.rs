//! Throughput measurement: gradients (mini-batches) received by the
//! aggregator per second of simulated time (the metric of Figure 5).

use serde::{Deserialize, Serialize};

/// Accumulates the throughput of a training run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ThroughputMeter {
    gradients_received: u64,
    model_updates: u64,
    elapsed_sec: f64,
}

impl ThroughputMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        ThroughputMeter::default()
    }

    /// Records one synchronous round: `gradients` received, one model update,
    /// `round_time_sec` of simulated time.
    pub fn record_round(&mut self, gradients: u64, round_time_sec: f64) {
        self.gradients_received += gradients;
        self.model_updates += 1;
        self.elapsed_sec += round_time_sec.max(0.0);
    }

    /// Total gradients received.
    pub fn gradients_received(&self) -> u64 {
        self.gradients_received
    }

    /// Total model updates performed.
    pub fn model_updates(&self) -> u64 {
        self.model_updates
    }

    /// Total simulated time.
    pub fn elapsed_sec(&self) -> f64 {
        self.elapsed_sec
    }

    /// Gradients received per second — the y-axis of Figure 5
    /// ("Throughput (batches/sec)" where every worker contributes one batch
    /// per round).
    pub fn gradients_per_sec(&self) -> f64 {
        if self.elapsed_sec <= 0.0 {
            0.0
        } else {
            self.gradients_received as f64 / self.elapsed_sec
        }
    }

    /// Model updates per second.
    pub fn updates_per_sec(&self) -> f64 {
        if self.elapsed_sec <= 0.0 {
            0.0
        } else {
            self.model_updates as f64 / self.elapsed_sec
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_rounds() {
        let mut m = ThroughputMeter::new();
        m.record_round(19, 0.5);
        m.record_round(19, 0.5);
        assert_eq!(m.gradients_received(), 38);
        assert_eq!(m.model_updates(), 2);
        assert!((m.elapsed_sec() - 1.0).abs() < 1e-9);
        assert!((m.gradients_per_sec() - 38.0).abs() < 1e-9);
        assert!((m.updates_per_sec() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_meter_reports_zero() {
        let m = ThroughputMeter::new();
        assert_eq!(m.gradients_per_sec(), 0.0);
        assert_eq!(m.updates_per_sec(), 0.0);
    }

    #[test]
    fn negative_times_are_clamped() {
        let mut m = ThroughputMeter::new();
        m.record_round(5, -1.0);
        assert_eq!(m.elapsed_sec(), 0.0);
    }
}
