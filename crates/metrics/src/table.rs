//! Plain-text table rendering for the experiment binaries.
//!
//! Every figure of the paper is reproduced as a textual table (one row per
//! plotted point or bar); this module keeps that rendering uniform.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple column-aligned text table with a title, a header row and data
/// rows. Also serialises to CSV.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Shorter rows are padded with empty cells; longer rows
    /// are truncated to the header width.
    pub fn add_row<S: ToString>(&mut self, cells: &[S]) {
        let mut row: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as CSV (header + rows, no title).
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let render_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, cell)| format!("{:width$}", cell, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", render_row(&self.header))?;
        writeln!(f, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()))?;
        for row in &self.rows {
            writeln!(f, "{}", render_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_header_and_rows() {
        let mut t = Table::new("Throughput", &["workers", "batches/sec"]);
        t.add_row(&["2", "10.5"]);
        t.add_row(&["4", "20.9"]);
        let s = t.to_string();
        assert!(s.contains("== Throughput =="));
        assert!(s.contains("workers"));
        assert!(s.contains("20.9"));
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.title(), "Throughput");
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new("x", &["a", "b"]);
        t.add_row(&[1, 2]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn rows_are_padded_and_truncated() {
        let mut t = Table::new("x", &["a", "b"]);
        t.add_row(&["only-one"]);
        t.add_row(&["1", "2", "3"]);
        assert_eq!(t.to_csv(), "a,b\nonly-one,\n1,2\n");
    }

    #[test]
    fn display_is_nonempty_for_empty_table() {
        let t = Table::new("empty", &["col"]);
        assert!(t.to_string().contains("empty"));
    }
}
