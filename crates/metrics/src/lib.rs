//! # agg-metrics — experiment measurement and reporting
//!
//! The paper evaluates AggregaThor with three metrics (§4.1):
//!
//! * **Accuracy** (top-1 cross-accuracy) with respect to wall-clock time and
//!   with respect to model updates — captured by [`trace::TrainingTrace`].
//! * **Throughput** (gradients/batches received by the aggregator per
//!   second) — captured by [`throughput::ThroughputMeter`].
//! * **Latency breakdown** per epoch (computation + communication vs
//!   aggregation time, Figure 4) — captured by
//!   [`latency::LatencyBreakdown`].
//!
//! [`table`] renders the small text tables and CSV series the experiment
//! binaries print, so every figure of the paper has a textual counterpart.

pub mod latency;
pub mod table;
pub mod throughput;
pub mod trace;

pub use latency::LatencyBreakdown;
pub use table::Table;
pub use throughput::ThroughputMeter;
pub use trace::{TracePoint, TrainingTrace};
