//! Training traces: accuracy/loss versus simulated time and model updates.

use serde::{Deserialize, Serialize};

/// One evaluation point along a training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Model-update step at which the evaluation happened.
    pub step: u64,
    /// Simulated wall-clock time (seconds since training started).
    pub time_sec: f64,
    /// Test-set top-1 accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Test-set loss.
    pub loss: f64,
}

/// The accuracy/loss trajectory of one training run.
///
/// This is the raw material of Figures 3, 6, 7 and 8: accuracy as a function
/// of time and as a function of model updates.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingTrace {
    /// Label of the run (e.g. `"multi-krum f=4"`).
    pub label: String,
    points: Vec<TracePoint>,
}

impl TrainingTrace {
    /// Creates an empty trace with a label.
    pub fn new(label: impl Into<String>) -> Self {
        TrainingTrace { label: label.into(), points: Vec::new() }
    }

    /// Appends an evaluation point.
    pub fn record(&mut self, point: TracePoint) {
        self.points.push(point);
    }

    /// All recorded points, in recording order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Highest accuracy observed so far.
    pub fn best_accuracy(&self) -> f64 {
        self.points.iter().map(|p| p.accuracy).fold(0.0, f64::max)
    }

    /// Accuracy of the last recorded point (0 when empty).
    pub fn final_accuracy(&self) -> f64 {
        self.points.last().map(|p| p.accuracy).unwrap_or(0.0)
    }

    /// Earliest simulated time at which the run reached `target` accuracy,
    /// or `None` if it never did.
    ///
    /// This is the paper's headline statistic ("time to reach 50 % of final
    /// accuracy"), used to compute the 19 % / 43 % overhead numbers.
    pub fn time_to_accuracy(&self, target: f64) -> Option<f64> {
        self.points.iter().find(|p| p.accuracy >= target).map(|p| p.time_sec)
    }

    /// Earliest model-update step at which the run reached `target` accuracy.
    pub fn steps_to_accuracy(&self, target: f64) -> Option<u64> {
        self.points.iter().find(|p| p.accuracy >= target).map(|p| p.step)
    }

    /// Serialises the trace as a CSV string with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("step,time_sec,accuracy,loss\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6}\n",
                p.step, p.time_sec, p.accuracy, p.loss
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> TrainingTrace {
        let mut t = TrainingTrace::new("test");
        for i in 0..10u64 {
            t.record(TracePoint {
                step: i * 10,
                time_sec: i as f64,
                accuracy: i as f64 / 10.0,
                loss: 1.0 - i as f64 / 10.0,
            });
        }
        t
    }

    #[test]
    fn records_and_accessors() {
        let t = trace();
        assert_eq!(t.len(), 10);
        assert!(!t.is_empty());
        assert_eq!(t.points()[3].step, 30);
        assert!((t.best_accuracy() - 0.9).abs() < 1e-9);
        assert!((t.final_accuracy() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn time_and_steps_to_accuracy() {
        let t = trace();
        assert_eq!(t.time_to_accuracy(0.5), Some(5.0));
        assert_eq!(t.steps_to_accuracy(0.5), Some(50));
        assert_eq!(t.time_to_accuracy(0.95), None);
        assert_eq!(TrainingTrace::new("empty").time_to_accuracy(0.1), None);
    }

    #[test]
    fn empty_trace_defaults() {
        let t = TrainingTrace::new("empty");
        assert!(t.is_empty());
        assert_eq!(t.final_accuracy(), 0.0);
        assert_eq!(t.best_accuracy(), 0.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = trace().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 11);
        assert_eq!(lines[0], "step,time_sec,accuracy,loss");
        assert!(lines[1].starts_with("0,"));
    }

    #[test]
    fn serde_round_trip() {
        let t = trace();
        let json = serde_json::to_string(&t).unwrap();
        let back: TrainingTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
