//! The [`Attack`] trait and the information an omniscient adversary sees.

use agg_tensor::Vector;
use std::fmt;

/// Everything the adversary knows when crafting this round's Byzantine
/// gradients (the paper grants the adversary all of it: §3.1).
#[derive(Debug, Clone, Copy)]
pub struct AttackContext<'a> {
    /// The gradients computed by the correct workers this round, as borrowed
    /// row views (arena rows or vector slices) — the engine hands these out
    /// without cloning a single coordinate.
    pub honest_gradients: &'a [&'a [f32]],
    /// The current global model parameters.
    pub model: &'a Vector,
    /// How many Byzantine gradients to produce.
    pub byzantine_count: usize,
    /// The `f` the server has declared to its GAR (the adversary knows the
    /// defence configuration).
    pub declared_f: usize,
    /// Current model-update step.
    pub step: u64,
    /// Experiment seed (attacks derive their own deterministic streams).
    pub seed: u64,
    /// Total number of workers submitting this round (honest + Byzantine).
    /// Lets n-aware attacks (ALIE) derive the exact within-variance budget
    /// and lets the adaptive attacker recognise its own slots in the
    /// selection set.
    pub total_workers: usize,
    /// The worker indices the GAR selected in the *previous* round, when
    /// the server computed a selection (`None` on the first round and for
    /// non-selecting rules). The adaptive attacker conditions on it.
    pub previous_selection: Option<&'a [usize]>,
}

impl<'a> AttackContext<'a> {
    /// Dimension of the model / gradients.
    pub fn dimension(&self) -> usize {
        self.model.len()
    }

    /// Coordinate-wise mean of the honest gradients (the quantity most
    /// attacks perturb). Zero vector when there are no honest gradients.
    pub fn honest_mean(&self) -> Vector {
        if self.honest_gradients.is_empty() {
            return Vector::zeros(self.dimension());
        }
        let mut acc = vec![0.0f32; self.honest_gradients[0].len()];
        for row in self.honest_gradients {
            for (a, &v) in acc.iter_mut().zip(*row) {
                *a += v;
            }
        }
        let scale = 1.0 / self.honest_gradients.len() as f32;
        acc.iter_mut().for_each(|a| *a *= scale);
        Vector::from(acc)
    }
}

/// A membership transition an adaptive adversary requests for one of its own
/// workers — the attacker-controlled-churn-timing channel. The engine applies
/// directives through the same epoch-fenced [`MembershipView`] machinery as
/// scheduled faults, so a directive can never do more than a crash or rejoin
/// the fault plan could have scheduled: redundant directives (crashing a
/// crashed worker, rejoining a live one) are no-ops, and a rejoiner's first
/// round back is still fenced as stale.
///
/// [`MembershipView`]: https://docs.rs/agg-ps (crate `agg-ps`, `membership`)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnDirective {
    /// Crash the given worker at the start of this round.
    Crash(usize),
    /// Rejoin the given (previously crashed) worker at the start of this
    /// round.
    Rejoin(usize),
}

/// A Byzantine worker behaviour.
///
/// `craft` returns exactly `ctx.byzantine_count` gradients; the parameter
/// server simulator submits them alongside the honest ones. Implementations
/// must be deterministic functions of the context (including `seed` and
/// `step`) so experiments replay exactly.
pub trait Attack: Send + Sync + fmt::Debug {
    /// Short attack name used in experiment configurations and reports.
    fn name(&self) -> &'static str;

    /// Crafts this round's Byzantine gradients.
    fn craft(&self, ctx: &AttackContext<'_>) -> Vec<Vector>;

    /// Chooses membership transitions for the adversary's own workers at the
    /// start of this round, from the previous round's selection feedback.
    /// Called only when the engine has attacker-controlled churn enabled;
    /// the default adversary never churns. Like `craft`, implementations
    /// must be deterministic functions of the context.
    fn plan_churn(&self, _ctx: &AttackContext<'_>) -> Vec<ChurnDirective> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_mean_is_the_coordinate_mean() {
        let honest: Vec<&[f32]> = vec![&[1.0, 3.0], &[3.0, 5.0]];
        let model = Vector::zeros(2);
        let ctx = AttackContext {
            honest_gradients: &honest,
            model: &model,
            byzantine_count: 1,
            declared_f: 1,
            step: 0,
            seed: 0,
            total_workers: 3,
            previous_selection: None,
        };
        assert_eq!(ctx.honest_mean().as_slice(), &[2.0, 4.0]);
        assert_eq!(ctx.dimension(), 2);
    }

    #[test]
    fn honest_mean_of_nothing_is_zero() {
        let model = Vector::zeros(3);
        let ctx = AttackContext {
            honest_gradients: &[],
            model: &model,
            byzantine_count: 2,
            declared_f: 2,
            step: 5,
            seed: 1,
            total_workers: 2,
            previous_selection: None,
        };
        assert_eq!(ctx.honest_mean(), Vector::zeros(3));
    }
}
