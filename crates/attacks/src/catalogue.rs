//! Concrete attack implementations and the [`AttackKind`] registry.

use crate::attack::{Attack, AttackContext, ChurnDirective};
use agg_tensor::rng::{derive_seed, gaussian_vector, seeded_rng};
use agg_tensor::{stats, Vector};
use serde::{Deserialize, Serialize};

/// Honest behaviour: produces gradients identical to the honest mean.
///
/// Used as the "no attack" baseline so every experiment can run through the
/// same code path with and without an adversary.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoAttack;

impl Attack for NoAttack {
    fn name(&self) -> &'static str {
        "none"
    }

    fn craft(&self, ctx: &AttackContext<'_>) -> Vec<Vector> {
        vec![ctx.honest_mean(); ctx.byzantine_count]
    }
}

/// Large random gradients (`N(0, magnitude²)` per coordinate).
#[derive(Debug, Clone, Copy)]
pub struct RandomGradient {
    /// Standard deviation of each Byzantine coordinate.
    pub magnitude: f32,
}

impl Default for RandomGradient {
    fn default() -> Self {
        RandomGradient { magnitude: 100.0 }
    }
}

impl Attack for RandomGradient {
    fn name(&self) -> &'static str {
        "random"
    }

    fn craft(&self, ctx: &AttackContext<'_>) -> Vec<Vector> {
        (0..ctx.byzantine_count)
            .map(|k| {
                let mut rng =
                    seeded_rng(derive_seed(ctx.seed, ctx.step ^ (k as u64) << 32 | 0xA77));
                gaussian_vector(&mut rng, ctx.dimension(), 0.0, self.magnitude)
            })
            .collect()
    }
}

/// The reversed-gradient adversary (the model used for the paper's Draco
/// comparison): sends `−scale ·` (honest mean).
#[derive(Debug, Clone, Copy)]
pub struct ReversedGradient {
    /// Magnification applied to the reversed direction (Draco's default
    /// experiments use 100).
    pub scale: f32,
}

impl Default for ReversedGradient {
    fn default() -> Self {
        ReversedGradient { scale: 100.0 }
    }
}

impl Attack for ReversedGradient {
    fn name(&self) -> &'static str {
        "reversed"
    }

    fn craft(&self, ctx: &AttackContext<'_>) -> Vec<Vector> {
        let mut g = ctx.honest_mean();
        g.scale(-self.scale);
        vec![g; ctx.byzantine_count]
    }
}

/// Sign-flipping: sends the negated honest mean without magnification.
#[derive(Debug, Clone, Copy, Default)]
pub struct SignFlip;

impl Attack for SignFlip {
    fn name(&self) -> &'static str {
        "sign-flip"
    }

    fn craft(&self, ctx: &AttackContext<'_>) -> Vec<Vector> {
        let mut g = ctx.honest_mean();
        g.scale(-1.0);
        vec![g; ctx.byzantine_count]
    }
}

/// Non-finite gradients: a mixture of `NaN` and `±∞` coordinates — the
/// malformed input a real malicious worker (or a lossy transport) produces.
#[derive(Debug, Clone, Copy, Default)]
pub struct NonFinite;

impl Attack for NonFinite {
    fn name(&self) -> &'static str {
        "non-finite"
    }

    fn craft(&self, ctx: &AttackContext<'_>) -> Vec<Vector> {
        let d = ctx.dimension();
        (0..ctx.byzantine_count)
            .map(|k| {
                Vector::from_iter((0..d).map(|i| match (i + k) % 3 {
                    0 => f32::NAN,
                    1 => f32::INFINITY,
                    _ => f32::NEG_INFINITY,
                }))
            })
            .collect()
    }
}

/// Constant drift towards a fixed target direction, scaled per step — models
/// an adversary steering the model towards a specific bad optimum.
#[derive(Debug, Clone, Copy)]
pub struct ConstantDrift {
    /// Per-coordinate drift value.
    pub value: f32,
}

impl Default for ConstantDrift {
    fn default() -> Self {
        ConstantDrift { value: 10.0 }
    }
}

impl Attack for ConstantDrift {
    fn name(&self) -> &'static str {
        "constant-drift"
    }

    fn craft(&self, ctx: &AttackContext<'_>) -> Vec<Vector> {
        vec![Vector::filled(ctx.dimension(), self.value); ctx.byzantine_count]
    }
}

/// The dimensional-leeway attack against weakly Byzantine-resilient GARs
/// (the "hidden vulnerability" of El Mhamdi et al., illustrated in the
/// paper's Figure 9, also known as "a little is enough").
///
/// The adversary submits `mean + z · σ` where `σ` is the per-coordinate
/// standard deviation of the honest gradients and `z` is small enough that
/// the crafted gradient stays inside the honest point cloud (so Krum-style
/// selection accepts it) yet, accumulated over `d ≫ 1` coordinates and many
/// steps, biases convergence towards a poor optimum. Strongly resilient GARs
/// (Bulyan) bound the per-coordinate deviation and resist it.
#[derive(Debug, Clone, Copy)]
pub struct LittleIsEnough {
    /// Multiple of the per-coordinate standard deviation to add.
    pub z: f32,
}

impl Default for LittleIsEnough {
    fn default() -> Self {
        LittleIsEnough { z: 1.0 }
    }
}

impl Attack for LittleIsEnough {
    fn name(&self) -> &'static str {
        "little-is-enough"
    }

    fn craft(&self, ctx: &AttackContext<'_>) -> Vec<Vector> {
        let mean = ctx.honest_mean();
        // The row-view kernel is the right tool here: `craft` receives
        // borrowed honest rows once per round, so packing them into an arena
        // would add an O(n·d) copy for a single std computation.
        let std = stats::coordinate_std_of_rows(ctx.honest_gradients)
            .unwrap_or_else(|_| Vector::zeros(ctx.dimension()));
        let mut crafted = mean;
        let _ = crafted.axpy(self.z, &std);
        vec![crafted; ctx.byzantine_count]
    }
}

/// Per-coordinate standard deviation of the honest rows, zero when it
/// cannot be computed (fewer than two rows).
fn honest_std(ctx: &AttackContext<'_>) -> Vector {
    stats::coordinate_std_of_rows(ctx.honest_gradients)
        .unwrap_or_else(|_| Vector::zeros(ctx.dimension()))
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf approximation
/// (max absolute error ≈ 1.5e-7 — far below what the z search needs).
fn normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.327_591_1 * x.abs());
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erf = 1.0 - poly * (-x * x).exp();
    let erf = if x < 0.0 { -erf } else { erf };
    0.5 * (1.0 + erf)
}

/// The ALIE `z_max`: the largest z with `Φ(z) ≤ (n − m − s) / (n − m)`
/// where `s = ⌊n/2⌋ + 1 − m` supporters are needed for a majority
/// (Baruch et al., "A Little Is Enough"). Found by deterministic bisection.
fn alie_z_max(n: usize, m: usize) -> f32 {
    if n <= m {
        return 0.0;
    }
    let s = (n / 2 + 1).saturating_sub(m);
    let cutoff = (n - m).saturating_sub(s) as f64 / (n - m) as f64;
    if cutoff <= 0.5 {
        // Fewer than half the non-Byzantine workers can be out-supported:
        // no positive z keeps a majority, stay at the mean.
        return 0.0;
    }
    let (mut lo, mut hi) = (0.0f64, 10.0f64);
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if normal_cdf(mid) <= cutoff {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo as f32
}

/// Squared Euclidean distance between two rows, accumulated in f64.
fn row_distance_sq(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (f64::from(x) - f64::from(y)).powi(2)).sum()
}

/// Largest `γ ≥ 0` such that `constraint(mean + γ·direction)` holds, by
/// deterministic doubling + bisection. `constraint` must hold at γ = 0.
fn max_admissible_gamma(
    mean: &Vector,
    direction: &Vector,
    constraint: impl Fn(&[f32]) -> bool,
) -> f32 {
    let crafted_at = |gamma: f32| {
        let mut crafted = mean.clone();
        let _ = crafted.axpy(gamma, direction);
        crafted
    };
    if !constraint(crafted_at(0.0).as_slice()) {
        return 0.0;
    }
    let mut hi = 1.0f32;
    let mut doublings = 0;
    while constraint(crafted_at(hi).as_slice()) && doublings < 40 {
        hi *= 2.0;
        doublings += 1;
    }
    if doublings == 40 {
        return hi;
    }
    let mut lo = if doublings == 0 { 0.0 } else { hi / 2.0 };
    for _ in 0..30 {
        let mid = 0.5 * (lo + hi);
        if constraint(crafted_at(mid).as_slice()) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// The perturbation direction the min-max / min-sum family scales: the unit
/// vector opposing the honest mean (the "inverse unit vector" choice of
/// Shejwalkar & Houmansadr), falling back to the std direction when the
/// mean is (numerically) zero.
fn perturbation_direction(ctx: &AttackContext<'_>) -> Vector {
    let mean = ctx.honest_mean();
    let norm = (mean.as_slice().iter().map(|&v| f64::from(v).powi(2)).sum::<f64>()).sqrt();
    if norm > 1e-12 {
        let mut dir = mean;
        dir.scale(-(1.0 / norm as f32));
        return dir;
    }
    honest_std(ctx)
}

/// The "A Little Is Enough" attack (Baruch et al.): all Byzantine workers
/// collude on `mean − z · σ`, with `z` defaulting to the exact `z_max` the
/// worker count supports — the strongest shift that still keeps a majority
/// of honest workers closer to the crafted gradient than to each other.
#[derive(Debug, Clone, Copy)]
pub struct Alie {
    /// Standard-deviation multiple; any non-positive value derives the
    /// classic `z_max` from `(total_workers, byzantine_count)`.
    pub z: f32,
}

impl Default for Alie {
    fn default() -> Self {
        Alie { z: 0.0 }
    }
}

impl Attack for Alie {
    fn name(&self) -> &'static str {
        "alie"
    }

    fn craft(&self, ctx: &AttackContext<'_>) -> Vec<Vector> {
        let z = if self.z > 0.0 {
            self.z
        } else {
            alie_z_max(ctx.total_workers.max(1), ctx.byzantine_count)
        };
        let mut crafted = ctx.honest_mean();
        let _ = crafted.axpy(-z, &honest_std(ctx));
        vec![crafted; ctx.byzantine_count]
    }
}

/// The min-max distance attack (Shejwalkar & Houmansadr): submit
/// `mean + γ·p` with the largest `γ` keeping the crafted gradient's maximum
/// distance to any honest gradient within the maximum pairwise honest
/// distance — so no distance-based score can call it an outlier.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinMax;

impl Attack for MinMax {
    fn name(&self) -> &'static str {
        "min-max"
    }

    fn craft(&self, ctx: &AttackContext<'_>) -> Vec<Vector> {
        let honest = ctx.honest_gradients;
        if honest.len() < 2 {
            return vec![ctx.honest_mean(); ctx.byzantine_count];
        }
        let mut max_pairwise = 0.0f64;
        for (i, a) in honest.iter().enumerate() {
            for b in &honest[i + 1..] {
                max_pairwise = max_pairwise.max(row_distance_sq(a, b));
            }
        }
        let mean = ctx.honest_mean();
        let direction = perturbation_direction(ctx);
        let gamma = max_admissible_gamma(&mean, &direction, |crafted| {
            honest.iter().all(|g| row_distance_sq(crafted, g) <= max_pairwise)
        });
        let mut crafted = mean;
        let _ = crafted.axpy(gamma, &direction);
        vec![crafted; ctx.byzantine_count]
    }
}

/// The min-sum distance attack (Shejwalkar & Houmansadr): like
/// [`MinMax`], but the constraint bounds the crafted gradient's *sum* of
/// squared distances to the honest gradients by the worst honest worker's
/// sum — the tighter budget that also fools sum-of-distances scores (Krum).
#[derive(Debug, Clone, Copy, Default)]
pub struct MinSum;

impl Attack for MinSum {
    fn name(&self) -> &'static str {
        "min-sum"
    }

    fn craft(&self, ctx: &AttackContext<'_>) -> Vec<Vector> {
        let honest = ctx.honest_gradients;
        if honest.len() < 2 {
            return vec![ctx.honest_mean(); ctx.byzantine_count];
        }
        let mut max_honest_sum = 0.0f64;
        for a in honest {
            let sum: f64 = honest.iter().map(|b| row_distance_sq(a, b)).sum();
            max_honest_sum = max_honest_sum.max(sum);
        }
        let mean = ctx.honest_mean();
        let direction = perturbation_direction(ctx);
        let gamma = max_admissible_gamma(&mean, &direction, |crafted| {
            honest.iter().map(|g| row_distance_sq(crafted, g)).sum::<f64>() <= max_honest_sum
        });
        let mut crafted = mean;
        let _ = crafted.axpy(gamma, &direction);
        vec![crafted; ctx.byzantine_count]
    }
}

/// An adaptive attacker that conditions on the previous round's selection
/// set ([`AttackContext::previous_selection`]):
///
/// * no selection information yet → a moderate within-variance shift;
/// * its gradients were selected last round → press the advantage with a
///   stronger shift;
/// * it was excluded last round → retreat to a stealthier shift to get
///   back inside the selection.
///
/// The policy itself is stateless — everything it adapts to travels in the
/// context, so replays stay deterministic.
#[derive(Debug, Clone, Copy)]
pub struct Adaptive {
    /// Shift (in σ multiples) used before any selection feedback exists.
    pub base_z: f32,
    /// Shift used after a round in which an attacker slot was selected.
    pub aggressive_z: f32,
    /// Shift used after a round of exclusion.
    pub stealth_z: f32,
}

impl Default for Adaptive {
    fn default() -> Self {
        Adaptive { base_z: 0.5, aggressive_z: 1.0, stealth_z: 0.2 }
    }
}

impl Attack for Adaptive {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn craft(&self, ctx: &AttackContext<'_>) -> Vec<Vector> {
        // Attacker slots are the trailing worker ids, mirroring the
        // engine's role layout.
        let first_attacker = ctx.total_workers.saturating_sub(ctx.byzantine_count);
        let z = match ctx.previous_selection {
            None => self.base_z,
            Some(selected) if selected.iter().any(|&w| w >= first_attacker) => self.aggressive_z,
            Some(_) => self.stealth_z,
        };
        let mut crafted = ctx.honest_mean();
        let _ = crafted.axpy(-z, &honest_std(ctx));
        vec![crafted; ctx.byzantine_count]
    }

    /// Times churn from the same feedback channel as the gradient policy —
    /// an identity-rotation schedule:
    ///
    /// * no selection information yet → stay put;
    /// * an attacker slot was *selected* last round → crash it: the slot
    ///   retires at its moment of maximum exposure, before a stateful
    ///   defence can build a profile of it, and forces an epoch bump the
    ///   server must absorb;
    /// * an attacker slot was *excluded* (or is sitting out) → rejoin it:
    ///   exclusion already nullifies its gradients, so coming back with a
    ///   fenced first round costs the adversary nothing.
    ///
    /// Directives are redundant-safe: rejoining a live worker or crashing a
    /// crashed one is a no-op in the engine's membership view, so the policy
    /// can restate its intent every round and stay stateless — everything it
    /// adapts to travels in the context, and replays stay deterministic.
    fn plan_churn(&self, ctx: &AttackContext<'_>) -> Vec<ChurnDirective> {
        let first_attacker = ctx.total_workers.saturating_sub(ctx.byzantine_count);
        let Some(selected) = ctx.previous_selection else {
            return Vec::new();
        };
        (first_attacker..ctx.total_workers)
            .map(|slot| {
                if selected.contains(&slot) {
                    ChurnDirective::Crash(slot)
                } else {
                    ChurnDirective::Rejoin(slot)
                }
            })
            .collect()
    }
}

/// The reputation-evading rotation: identity churn paced *slower than the
/// suspicion ledger's decay horizon*, with individually jittered
/// within-variance gradients.
///
/// The fast identity rotation ([`Adaptive::plan_churn`]) pays one
/// stale-epoch fence hit per rejoin; rotating every round accrues that
/// evidence faster than geometric decay can forget it, and a reputation
/// ledger crosses its quarantine threshold within a few rounds. This
/// variant makes the opposite trade: each window of `period` rounds crashes
/// exactly one attacker slot (round-robin), so any single slot pays a fence
/// hit only once every `byzantine_count · period` rounds — by which time the
/// decayed residual of the previous hit is negligible and the score saw-tooths
/// below the threshold forever. The cost of evasion is proportionally less
/// attack pressure: stealthy shifts, no collusion clique (per-slot jitter
/// keeps pairwise distances above any affinity sketch's epsilon), and most
/// slots honest-looking most of the time.
///
/// The schedule reads only `ctx.step`, so the policy stays stateless and
/// replays stay deterministic.
#[derive(Debug, Clone, Copy)]
pub struct SlowRotation {
    /// Rounds per rotation window; each window crashes the next attacker
    /// slot in round-robin order. Zero behaves as 1 (fast rotation — the
    /// degenerate case a ledger catches).
    pub period: u64,
    /// Shift (in σ multiples) of the within-variance crafted gradients.
    pub z: f32,
}

impl Default for SlowRotation {
    fn default() -> Self {
        // A default window comfortably past the default ledger's decay
        // horizon (0.7^16 ≈ 3e-3): evidence from the previous rotation is
        // forgotten before the next one lands.
        SlowRotation { period: 16, z: 0.5 }
    }
}

impl SlowRotation {
    /// The attacker slot resting (crashed) during `step`'s window, if any.
    fn resting_slot(&self, ctx: &AttackContext<'_>) -> Option<usize> {
        if ctx.byzantine_count == 0 {
            return None;
        }
        let first_attacker = ctx.total_workers.saturating_sub(ctx.byzantine_count);
        let window = ctx.step / self.period.max(1);
        Some(first_attacker + (window as usize % ctx.byzantine_count))
    }
}

impl Attack for SlowRotation {
    fn name(&self) -> &'static str {
        "slow-rotation"
    }

    fn craft(&self, ctx: &AttackContext<'_>) -> Vec<Vector> {
        let mean = ctx.honest_mean();
        let std = honest_std(ctx);
        (0..ctx.byzantine_count)
            .map(|k| {
                let mut crafted = mean.clone();
                let _ = crafted.axpy(-self.z, &std);
                // Per-slot, per-round jitter: no two crafted rows are ever
                // bit-close, so a collusion-affinity sketch sees no clique.
                let mut rng = seeded_rng(derive_seed(
                    derive_seed(ctx.seed, 0x5107_A7E0 ^ ctx.step),
                    k as u64,
                ));
                let _ = crafted.axpy(
                    0.2 * self.z.abs().max(0.1),
                    &gaussian_vector(&mut rng, ctx.dimension(), 0.0, 1.0),
                );
                crafted
            })
            .collect()
    }

    fn plan_churn(&self, ctx: &AttackContext<'_>) -> Vec<ChurnDirective> {
        let Some(resting) = self.resting_slot(ctx) else {
            return Vec::new();
        };
        let first_attacker = ctx.total_workers.saturating_sub(ctx.byzantine_count);
        // Restate the full intent every round (redundant directives are
        // membership no-ops): the resting slot stays down, everyone else is
        // (re)joined — at a window boundary exactly one slot crashes and the
        // previous rester rejoins through the epoch fence.
        (first_attacker..ctx.total_workers)
            .map(|slot| {
                if slot == resting {
                    ChurnDirective::Crash(slot)
                } else {
                    ChurnDirective::Rejoin(slot)
                }
            })
            .collect()
    }
}

/// The colluding-group attack against the hierarchical (tree) aggregation
/// tier. Byzantine slots are the trailing worker ids and the tree's
/// `GroupPlan` partitions workers contiguously, so an adversary with `f`
/// slots automatically owns the *fewest possible groups* — the worst case
/// for the composed bound `f_total = (f_group + 1)(f_root + 1) − 1`.
///
/// Within a group the attackers submit bit-identical extreme gradients
/// (`−scale ·` honest mean): zero intra-group distance means a fully
/// captured group's distance-based GAR selects the crafted gradient with
/// certainty and emits it verbatim as the group output. Across captured
/// groups the copies differ by a tiny per-group jitter — near-zero pairwise
/// distance at the root, so the captured outputs collude there exactly like
/// colluding workers do in a flat round. The tree survives iff the number
/// of captured groups stays ≤ `f_root`, which is precisely what
/// `agg_core::resilience::composed_max_f` promises.
#[derive(Debug, Clone, Copy)]
pub struct GroupCollusion {
    /// Magnification applied to the reversed honest mean.
    pub scale: f32,
    /// The tree tier's group size `g`, used to align the collusion cliques
    /// with group boundaries. Zero behaves as one global clique.
    pub group_size: usize,
}

impl Default for GroupCollusion {
    fn default() -> Self {
        GroupCollusion { scale: 100.0, group_size: 32 }
    }
}

impl Attack for GroupCollusion {
    fn name(&self) -> &'static str {
        "group-collusion"
    }

    fn craft(&self, ctx: &AttackContext<'_>) -> Vec<Vector> {
        let mut base = ctx.honest_mean();
        base.scale(-self.scale);
        let first_attacker = ctx.total_workers.saturating_sub(ctx.byzantine_count);
        let group_size = self.group_size.max(1);
        let jitter_scale = 0.001 * self.scale.abs().max(1.0);
        (0..ctx.byzantine_count)
            .map(|k| {
                // Identical inside a group, jittered across groups: the
                // per-group aggregate stays extreme while no two captured
                // groups hand the root the exact same bits.
                let group = ((first_attacker + k) / group_size) as u64;
                let mut rng = seeded_rng(derive_seed(ctx.seed, 0xC011_ABCD ^ group));
                let mut crafted = base.clone();
                let _ = crafted
                    .axpy(jitter_scale, &gaussian_vector(&mut rng, ctx.dimension(), 0.0, 1.0));
                crafted
            })
            .collect()
    }
}

/// The attack choices exposed to experiment configurations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackKind {
    /// No attack (honest duplicates of the mean).
    None,
    /// Large random gradients.
    Random {
        /// Standard deviation of each coordinate.
        magnitude: f32,
    },
    /// Reversed (and magnified) honest mean.
    Reversed {
        /// Magnification factor.
        scale: f32,
    },
    /// Negated honest mean.
    SignFlip,
    /// NaN / ±∞ coordinates.
    NonFinite,
    /// Constant per-coordinate drift.
    ConstantDrift {
        /// Drift value.
        value: f32,
    },
    /// The dimensional-leeway ("little is enough") attack.
    LittleIsEnough {
        /// Standard-deviation multiple.
        z: f32,
    },
    /// The ALIE within-variance attack (`z ≤ 0` derives the exact `z_max`
    /// from the worker count).
    Alie {
        /// Standard-deviation multiple, or non-positive for auto.
        z: f32,
    },
    /// The min-max distance attack.
    MinMax,
    /// The min-sum distance attack.
    MinSum,
    /// The selection-feedback adaptive attacker (default shift schedule).
    Adaptive,
    /// The reputation-evading rotation: identity churn paced slower than a
    /// suspicion ledger's decay horizon, with jittered stealth gradients.
    SlowRotation {
        /// Rounds per rotation window (one slot rests per window).
        period: u64,
        /// Standard-deviation multiple of the stealth shift.
        z: f32,
    },
    /// The colluding-group attack against the hierarchical tree tier.
    GroupCollusion {
        /// Magnification of the reversed honest mean.
        scale: f32,
        /// The tree tier's group size (aligns collusion cliques with
        /// group boundaries).
        group_size: usize,
    },
}

impl AttackKind {
    /// Builds the attack.
    pub fn build(&self) -> Box<dyn Attack> {
        match *self {
            AttackKind::None => Box::new(NoAttack),
            AttackKind::Random { magnitude } => Box::new(RandomGradient { magnitude }),
            AttackKind::Reversed { scale } => Box::new(ReversedGradient { scale }),
            AttackKind::SignFlip => Box::new(SignFlip),
            AttackKind::NonFinite => Box::new(NonFinite),
            AttackKind::ConstantDrift { value } => Box::new(ConstantDrift { value }),
            AttackKind::LittleIsEnough { z } => Box::new(LittleIsEnough { z }),
            AttackKind::Alie { z } => Box::new(Alie { z }),
            AttackKind::MinMax => Box::new(MinMax),
            AttackKind::MinSum => Box::new(MinSum),
            AttackKind::Adaptive => Box::new(Adaptive::default()),
            AttackKind::SlowRotation { period, z } => Box::new(SlowRotation { period, z }),
            AttackKind::GroupCollusion { scale, group_size } => {
                Box::new(GroupCollusion { scale, group_size })
            }
        }
    }

    /// Canonical name of the attack.
    pub fn name(&self) -> &'static str {
        self.build().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agg_core::{Average, Gar, MultiKrum};

    fn honest_cloud(n: usize, d: usize) -> Vec<Vector> {
        let mut rng = seeded_rng(3);
        (0..n)
            .map(|_| {
                let mut v = Vector::filled(d, 1.0);
                let _ = v.axpy(1.0, &gaussian_vector(&mut rng, d, 0.0, 0.1));
                v
            })
            .collect()
    }

    fn views(honest: &[Vector]) -> Vec<&[f32]> {
        honest.iter().map(Vector::as_slice).collect()
    }

    fn ctx<'a>(honest: &'a [&'a [f32]], model: &'a Vector, byz: usize) -> AttackContext<'a> {
        AttackContext {
            honest_gradients: honest,
            model,
            byzantine_count: byz,
            declared_f: byz,
            step: 3,
            seed: 17,
            total_workers: honest.len() + byz,
            previous_selection: None,
        }
    }

    #[test]
    fn every_kind_produces_the_requested_count_and_dimension() {
        let honest = honest_cloud(8, 6);
        let honest_views = views(&honest);
        let model = Vector::zeros(6);
        let kinds = [
            AttackKind::None,
            AttackKind::Random { magnitude: 10.0 },
            AttackKind::Reversed { scale: 100.0 },
            AttackKind::SignFlip,
            AttackKind::NonFinite,
            AttackKind::ConstantDrift { value: 5.0 },
            AttackKind::LittleIsEnough { z: 1.0 },
            AttackKind::Alie { z: 0.0 },
            AttackKind::MinMax,
            AttackKind::MinSum,
            AttackKind::Adaptive,
            AttackKind::SlowRotation { period: 4, z: 0.5 },
            AttackKind::GroupCollusion { scale: 100.0, group_size: 4 },
        ];
        for kind in kinds {
            let attack = kind.build();
            let crafted = attack.craft(&ctx(&honest_views, &model, 3));
            assert_eq!(crafted.len(), 3, "{}", attack.name());
            assert!(crafted.iter().all(|g| g.len() == 6), "{}", attack.name());
        }
    }

    #[test]
    fn attacks_are_deterministic() {
        let honest = honest_cloud(8, 6);
        let honest_views = views(&honest);
        let model = Vector::zeros(6);
        for kind in [
            AttackKind::Random { magnitude: 10.0 },
            AttackKind::LittleIsEnough { z: 1.5 },
            AttackKind::Alie { z: 0.0 },
            AttackKind::MinMax,
            AttackKind::MinSum,
            AttackKind::Adaptive,
            AttackKind::SlowRotation { period: 4, z: 0.5 },
            AttackKind::GroupCollusion { scale: 100.0, group_size: 4 },
        ] {
            let a = kind.build().craft(&ctx(&honest_views, &model, 2));
            let b = kind.build().craft(&ctx(&honest_views, &model, 2));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn reversed_gradient_points_against_the_mean() {
        let honest = honest_cloud(5, 4);
        let honest_views = views(&honest);
        let model = Vector::zeros(4);
        let crafted = ReversedGradient { scale: 10.0 }.craft(&ctx(&honest_views, &model, 1));
        let mean = ctx(&honest_views, &model, 1).honest_mean();
        let dot = crafted[0].dot(&mean).unwrap();
        assert!(dot < 0.0);
    }

    #[test]
    fn non_finite_attack_is_actually_non_finite() {
        let honest = honest_cloud(4, 9);
        let honest_views = views(&honest);
        let model = Vector::zeros(9);
        let crafted = NonFinite.craft(&ctx(&honest_views, &model, 2));
        assert!(crafted.iter().all(|g| !g.is_finite()));
    }

    #[test]
    fn reversed_attack_ruins_averaging_but_not_multi_krum() {
        // The paper's core claim in one test: a single Byzantine worker
        // defeats averaging while Multi-Krum stays within the honest cloud.
        let honest = honest_cloud(8, 5);
        let honest_views = views(&honest);
        let model = Vector::zeros(5);
        let byz = ReversedGradient { scale: 100.0 }.craft(&ctx(&honest_views, &model, 1));
        let mut all = honest.clone();
        all.extend(byz);

        let averaged = Average::new().aggregate(&all).unwrap();
        assert!(averaged[0] < 0.0, "averaging is dragged negative by the attack");

        let robust = MultiKrum::new(1).unwrap().aggregate(&all).unwrap();
        assert!((robust[0] - 1.0).abs() < 0.3, "Multi-Krum stays near the honest mean");
    }

    #[test]
    fn little_is_enough_is_selected_by_multi_krum() {
        // The crafted gradient stays inside the honest cloud, so Multi-Krum
        // (weak resilience) accepts it into its selection — exactly the
        // vulnerability that motivates Bulyan.
        let honest = honest_cloud(11, 20);
        let honest_views = views(&honest);
        let model = Vector::zeros(20);
        let context = ctx(&honest_views, &model, 4);
        let byz = LittleIsEnough { z: 0.5 }.craft(&context);
        let mut all = honest.clone();
        all.extend(byz);
        let mk = MultiKrum::new(4).unwrap();
        let selected = mk.select(&all).unwrap();
        assert!(
            selected.iter().any(|&i| i >= 11),
            "the stealthy gradient should enter the selection: {selected:?}"
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(AttackKind::None.name(), "none");
        assert_eq!(AttackKind::SignFlip.name(), "sign-flip");
        assert_eq!(AttackKind::LittleIsEnough { z: 1.0 }.name(), "little-is-enough");
        assert_eq!(AttackKind::Alie { z: 0.0 }.name(), "alie");
        assert_eq!(AttackKind::MinMax.name(), "min-max");
        assert_eq!(AttackKind::MinSum.name(), "min-sum");
        assert_eq!(AttackKind::Adaptive.name(), "adaptive");
        assert_eq!(AttackKind::SlowRotation { period: 16, z: 0.5 }.name(), "slow-rotation");
        assert_eq!(
            AttackKind::GroupCollusion { scale: 100.0, group_size: 32 }.name(),
            "group-collusion"
        );
    }

    #[test]
    fn slow_rotation_rests_one_slot_per_window() {
        let honest = honest_cloud(10, 6);
        let honest_views = views(&honest);
        let model = Vector::zeros(6);
        let attack = SlowRotation { period: 4, z: 0.5 };
        // 3 attacker slots (10, 11, 12), windows of 4 rounds: the resting
        // slot advances round-robin at each window boundary, so any single
        // slot rejoins only once per 12 rounds — slower than a decaying
        // suspicion score can accumulate.
        for (step, resting) in [(0, 10), (3, 10), (4, 11), (7, 11), (8, 12), (12, 10)] {
            let context = AttackContext { step, ..ctx(&honest_views, &model, 3) };
            let directives = attack.plan_churn(&context);
            assert_eq!(directives.len(), 3, "step {step}");
            for directive in &directives {
                match *directive {
                    ChurnDirective::Crash(slot) => assert_eq!(slot, resting, "step {step}"),
                    ChurnDirective::Rejoin(slot) => assert_ne!(slot, resting, "step {step}"),
                }
            }
            assert_eq!(
                directives.iter().filter(|d| matches!(d, ChurnDirective::Crash(_))).count(),
                1,
                "exactly one slot rests per window (step {step})"
            );
        }
    }

    #[test]
    fn slow_rotation_rows_are_jittered_apart() {
        // Unlike Adaptive's identical rows, the crafted rows must never form
        // a zero-distance clique a collusion-affinity sketch could flag.
        let honest = honest_cloud(10, 16);
        let honest_views = views(&honest);
        let model = Vector::zeros(16);
        let crafted = SlowRotation::default().craft(&ctx(&honest_views, &model, 3));
        assert_eq!(crafted.len(), 3);
        for i in 0..crafted.len() {
            for j in i + 1..crafted.len() {
                let d = row_distance_sq(crafted[i].as_slice(), crafted[j].as_slice());
                assert!(d > 1e-4, "rows {i} and {j} are bit-close: {d}");
            }
        }
        // The stealth shift still points against the honest mean direction.
        let mean = ctx(&honest_views, &model, 3).honest_mean();
        let shifted = crafted[0].dot(&mean).unwrap();
        let aligned = mean.dot(&mean).unwrap();
        assert!(shifted < aligned, "crafted row must sit below the mean along itself");
    }

    #[test]
    fn group_collusion_is_identical_within_a_group_and_jittered_across() {
        // 24 honest + 40 Byzantine of 64 workers, groups of 32: attacker
        // slots 24..64 span groups 0 and 1.
        let honest = honest_cloud(24, 8);
        let honest_views = views(&honest);
        let model = Vector::zeros(8);
        let context = ctx(&honest_views, &model, 40);
        assert_eq!(context.total_workers, 64);
        let crafted = GroupCollusion { scale: 100.0, group_size: 32 }.craft(&context);
        assert_eq!(crafted.len(), 40);
        // Slots 24..32 (first 8 crafted rows) share group 0; slots 32..64
        // (the rest) share group 1.
        for g in &crafted[..8] {
            assert_eq!(g, &crafted[0], "group 0 clique must be bit-identical");
        }
        for g in &crafted[8..] {
            assert_eq!(g, &crafted[8], "group 1 clique must be bit-identical");
        }
        assert_ne!(crafted[0], crafted[8], "captured groups must not hand the root equal bits");
        // Both cliques still point hard against the honest mean.
        let mean = context.honest_mean();
        assert!(crafted[0].dot(&mean).unwrap() < 0.0);
        assert!(crafted[8].dot(&mean).unwrap() < 0.0);
        // ...and the cross-group jitter stays tiny relative to the payload.
        let jitter = row_distance_sq(crafted[0].as_slice(), crafted[8].as_slice());
        let payload = row_distance_sq(crafted[0].as_slice(), mean.as_slice());
        assert!(jitter < 1e-4 * payload, "jitter {jitter} vs payload {payload}");
    }

    #[test]
    fn alie_z_max_matches_the_papers_example() {
        // n = 19 workers, m = 4 Byzantine: s = ⌊19/2⌋ + 1 − 4 = 6
        // supporters, cutoff = (19 − 4 − 6)/(19 − 4) = 0.6, so
        // z_max = Φ⁻¹(0.6) ≈ 0.2533.
        let z = alie_z_max(19, 4);
        assert!((z - 0.2533).abs() < 1e-3, "z_max = {z}");
        // A Byzantine majority leaves no admissible shift.
        assert_eq!(alie_z_max(5, 5), 0.0);
        assert_eq!(alie_z_max(4, 2), 0.0);
    }

    #[test]
    fn alie_stays_within_the_honest_variance() {
        let honest = honest_cloud(15, 30);
        let honest_views = views(&honest);
        let model = Vector::zeros(30);
        let context = ctx(&honest_views, &model, 4);
        let crafted = Alie::default().craft(&context);
        assert_eq!(crafted.len(), 4);
        let mean = context.honest_mean();
        let std = honest_std(&context);
        for (c, (m, s)) in
            crafted[0].as_slice().iter().zip(mean.as_slice().iter().zip(std.as_slice()))
        {
            assert!((c - m).abs() <= 1.001 * s.abs() + 1e-6, "shift must stay within one σ");
        }
    }

    #[test]
    fn min_max_respects_the_pairwise_distance_budget() {
        let honest = honest_cloud(12, 25);
        let honest_views = views(&honest);
        let model = Vector::zeros(25);
        let context = ctx(&honest_views, &model, 3);
        let crafted = MinMax.craft(&context);
        let mut max_pairwise = 0.0f64;
        for (i, a) in honest_views.iter().enumerate() {
            for b in &honest_views[i + 1..] {
                max_pairwise = max_pairwise.max(row_distance_sq(a, b));
            }
        }
        for g in &honest_views {
            let d = row_distance_sq(crafted[0].as_slice(), g);
            assert!(d <= max_pairwise * 1.001, "min-max exceeded the budget: {d} > {max_pairwise}");
        }
        // And it is not the trivial zero perturbation: it moved off the mean.
        let mean = context.honest_mean();
        assert!(row_distance_sq(crafted[0].as_slice(), mean.as_slice()) > 0.0);
    }

    #[test]
    fn min_sum_respects_the_sum_distance_budget() {
        let honest = honest_cloud(12, 25);
        let honest_views = views(&honest);
        let model = Vector::zeros(25);
        let context = ctx(&honest_views, &model, 3);
        let crafted = MinSum.craft(&context);
        let mut max_honest_sum = 0.0f64;
        for a in &honest_views {
            let sum: f64 = honest_views.iter().map(|b| row_distance_sq(a, b)).sum();
            max_honest_sum = max_honest_sum.max(sum);
        }
        let crafted_sum: f64 =
            honest_views.iter().map(|g| row_distance_sq(crafted[0].as_slice(), g)).sum();
        assert!(crafted_sum <= max_honest_sum * 1.001);
        // The min-sum budget is at most the min-max one in sum terms, so
        // the crafted point still sits inside the cloud for Krum scores.
        let mean = context.honest_mean();
        assert!(row_distance_sq(crafted[0].as_slice(), mean.as_slice()) > 0.0);
    }

    #[test]
    fn adaptive_attack_conditions_on_the_previous_selection() {
        let honest = honest_cloud(10, 12);
        let honest_views = views(&honest);
        let model = Vector::zeros(12);
        let base_ctx = ctx(&honest_views, &model, 2); // workers 10, 11 are attackers
        let base = Adaptive::default().craft(&base_ctx)[0].clone();

        // Selected last round (slot 11 is an attacker) → aggressive.
        let selected: Vec<usize> = vec![0, 1, 2, 11];
        let aggressive_ctx = AttackContext { previous_selection: Some(&selected), ..base_ctx };
        let aggressive = Adaptive::default().craft(&aggressive_ctx)[0].clone();

        // Excluded last round → stealthy.
        let excluded: Vec<usize> = vec![0, 1, 2, 3];
        let stealth_ctx = AttackContext { previous_selection: Some(&excluded), ..base_ctx };
        let stealth = Adaptive::default().craft(&stealth_ctx)[0].clone();

        let mean = base_ctx.honest_mean();
        let d_base = row_distance_sq(base.as_slice(), mean.as_slice());
        let d_aggressive = row_distance_sq(aggressive.as_slice(), mean.as_slice());
        let d_stealth = row_distance_sq(stealth.as_slice(), mean.as_slice());
        assert!(
            d_stealth < d_base && d_base < d_aggressive,
            "shift must be ordered stealth < base < aggressive: {d_stealth} {d_base} {d_aggressive}"
        );
    }

    #[test]
    fn within_variance_attacks_never_break_bulyan() {
        // The acceptance-side sanity check at unit scope: under each new
        // attack, Bulyan's aggregate stays near the honest mean.
        use agg_core::Bulyan;
        let honest = honest_cloud(15, 10);
        let honest_views = views(&honest);
        let model = Vector::zeros(10);
        let context = ctx(&honest_views, &model, 4);
        for kind in [
            AttackKind::Alie { z: 0.0 },
            AttackKind::MinMax,
            AttackKind::MinSum,
            AttackKind::Adaptive,
        ] {
            let byz = kind.build().craft(&context);
            let mut all = honest.clone();
            all.extend(byz);
            let aggregate = Bulyan::new(4).unwrap().aggregate(&all).unwrap();
            for &v in aggregate.as_slice() {
                assert!((v - 1.0).abs() < 0.5, "{}: coordinate {v} drifted", kind.name());
            }
        }
    }
}
